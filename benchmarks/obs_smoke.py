#!/usr/bin/env python3
"""Observability smoke check (``make obs-smoke``).

Runs a tiny traced campaign through the orchestration service and
validates every surface of the unified observability layer
(:mod:`repro.obs`) against the schemas documented in
``docs/OBSERVABILITY.md``:

* the Chrome-trace export is loadable JSON with complete ("X") events,
  microsecond ``ts``/``dur``, and actually-nested spans (a ``module``
  span inside ``campaign``, ``operating-point`` inside ``module``, ...);
* the Prometheus text exposition parses line by line (HELP/TYPE
  comments, ``name{labels} value`` samples), histograms are cumulative
  and consistent (``+Inf`` bucket == ``_count``);
* telemetry events carry both the ``ts`` (wall) and ``mono``
  (duration-safe) timestamps;
* the study JSON written through the disk cache carries a
  schema-valid provenance block that survives a cache-hit round trip;
* an API-submitted pooled job yields ONE stitched cross-process trace:
  the same trace id from HTTP admission (``api.admission``) through the
  worker thread (``api.job``), the orchestrator (``campaign``) and the
  pool workers' ``work-unit`` spans, with flow events over the queue
  hop and per-tenant SLO histograms on the exposition.

Exits non-zero on any violation. ``--artifacts DIR`` additionally
copies the Chrome traces (inline + stitched) and the Prometheus text
into DIR for CI upload.

Run:  PYTHONPATH=src python benchmarks/obs_smoke.py
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
import tempfile

try:
    import repro  # noqa: F401
except ImportError:  # launched from a checkout without PYTHONPATH
    sys.path.insert(
        0, os.path.join(os.path.dirname(__file__), os.pardir, "src")
    )

from repro.core.scale import StudyScale
from repro.harness import cache
from repro.obs.metrics import REGISTRY
from repro.obs.provenance import validate_provenance
from repro.obs.trace import TRACER
from repro.service import CampaignService
from repro.service.telemetry import TelemetryLog

MODULE = "C5"
TESTS = ("rowhammer",)
SEED = 0

#: Span nesting the trace must exhibit (child -> allowed parents).
#: ``module`` sits under ``campaign`` directly in study runs and under
#: the service's ``service.unit`` phase span in orchestrated runs.
EXPECTED_NESTING = {
    "module": {"campaign", "service.unit"},
    "operating-point": {"module"},
    "bisection": {"operating-point", "rowhammer"},
}

_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [0-9+.eE-]+(Inf)?$"
)


def check(condition: bool, message: str) -> None:
    if not condition:
        print(f"obs smoke FAILED: {message}", file=sys.stderr)
        sys.exit(1)


def validate_chrome_trace(path: str) -> None:
    with open(path) as handle:
        document = json.load(handle)
    check("traceEvents" in document, "trace has no traceEvents key")
    events = document["traceEvents"]
    check(len(events) > 0, "trace is empty")
    by_name = {}
    for event in events:
        for key in ("name", "ph", "ts", "dur", "pid", "tid", "args"):
            check(key in event, f"trace event missing {key!r}: {event}")
        check(event["ph"] == "X", f"unexpected phase {event['ph']!r}")
        check(event["dur"] >= 0, "negative span duration")
        check(
            isinstance(event["args"].get("depth"), int),
            "span args missing integer depth",
        )
        by_name.setdefault(event["name"], []).append(event)
    for child, parents in EXPECTED_NESTING.items():
        check(child in by_name, f"no {child!r} spans in trace")
        seen_parents = {e["args"].get("parent") for e in by_name[child]}
        check(
            seen_parents & parents,
            f"{child!r} spans nested under {sorted(seen_parents)}, "
            f"expected one of {sorted(parents)}",
        )
    campaign = by_name.get("campaign", [])
    check(len(campaign) == 1, "expected exactly one campaign span")
    check(campaign[0]["args"]["depth"] == 0, "campaign span not root")
    module = by_name["module"][0]
    check(
        module["ts"] >= campaign[0]["ts"]
        and module["ts"] + module["dur"]
        <= campaign[0]["ts"] + campaign[0]["dur"] + 1,
        "module span not contained in the campaign span",
    )
    print(f"  trace: {len(events)} spans, "
          f"{len(by_name)} distinct names, nesting OK")


def validate_prometheus(text: str) -> None:
    check(text.endswith("\n"), "exposition must end with a newline")
    histogram_state = {}
    typed = {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            check(kind in ("counter", "gauge", "histogram"),
                  f"unknown metric type {kind!r}")
            typed[name] = kind
            continue
        check(not line.startswith("#"), f"malformed comment: {line!r}")
        check(_SAMPLE_RE.match(line), f"malformed sample line: {line!r}")
        name = line.split("{")[0].split(" ")[0]
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        if base in typed and typed[base] == "histogram":
            state = histogram_state.setdefault(
                base, {"buckets": [], "count": None}
            )
            value = float(line.rsplit(" ", 1)[1].replace("+Inf", "inf"))
            if name.endswith("_bucket"):
                state["buckets"].append(value)
            elif name.endswith("_count"):
                state["count"] = value
        else:
            check(name in typed, f"sample {name!r} has no TYPE line")
    check(typed, "no metrics exposed")
    for base, state in histogram_state.items():
        buckets = state["buckets"]
        check(buckets == sorted(buckets),
              f"{base}: histogram buckets not cumulative")
        check(buckets and state["count"] == buckets[-1],
              f"{base}: +Inf bucket != count")
    histograms = sum(1 for kind in typed.values() if kind == "histogram")
    print(f"  metrics: {len(typed)} metrics "
          f"({histograms} histograms), exposition OK")


def validate_events(events) -> None:
    check(len(events) > 0, "no telemetry events")
    for record in events:
        check("ts" in record and "mono" in record,
              f"event missing ts/mono: {record}")
    kinds = [record["event"] for record in events]
    check(kinds[0] == "campaign_started", "first event not campaign_started")
    check(kinds[-1] == "campaign_finished", "last event not campaign_finished")
    print(f"  events: {len(events)} records, all carry ts+mono")


def validate_cache_provenance(tmp: str, scale: StudyScale) -> None:
    previous = cache.set_study_cache_dir(os.path.join(tmp, "cache"))
    try:
        cache.clear_cache()
        fresh = cache.get_study(TESTS, modules=(MODULE,), scale=scale,
                                seed=SEED)
        check(fresh.provenance is not None, "fresh study has no provenance")
        validate_provenance(fresh.provenance)
        check(fresh.provenance["cache"] == "miss",
              "fresh study not marked as a cache miss")
        cache.clear_cache()  # force the disk layer
        reloaded = cache.get_study(TESTS, modules=(MODULE,), scale=scale,
                                   seed=SEED)
        check(reloaded.provenance is not None,
              "provenance lost in the disk round trip")
        validate_provenance(reloaded.provenance)
        check(reloaded.provenance == fresh.provenance,
              "provenance changed in the disk round trip")
    finally:
        cache.clear_cache()
        cache.set_study_cache_dir(previous)
    print("  provenance: schema-valid, disk round trip OK")


def validate_stitched_api_trace(tmp: str) -> dict:
    """An API-submitted ``workers: 2`` job must produce one stitched
    trace spanning HTTP admission -> orchestrator -> pool workers."""
    from repro.api.jobs import run_job
    from repro.api.server import ApiServer
    from repro.obs import context as obs_context

    TRACER.reset()
    TRACER.label = "repro.api coordinator"
    TRACER.enable()
    obs_context.clear_fragments()
    api = ApiServer(
        os.path.join(tmp, "store"), os.path.join(tmp, "state"), workers=1
    )
    status, document = api.handle("POST", "/v1/jobs", {}, {
        "modules": [MODULE], "tests": list(TESTS), "scale": "tiny",
        "seed": SEED, "workers": 2,
    }, "smoke")
    check(status == 202, f"job submission failed: {document}")
    trace_id = document["job"]["trace"]["trace_id"]
    check(bool(trace_id), "admitted job carries no trace id")
    job = api.queue.pop(timeout=1.0)
    check(job is not None, "submitted job never became poppable")
    run_job(job, api.store, api.checkpoint_base,
            flight_base=api.flight_base)
    check(job.state == "completed", f"api job failed: {job.error}")
    status, payload = api.handle(
        "GET", f"/v1/jobs/{job.id}/trace", {}, None, "smoke"
    )
    check(status == 200, f"trace endpoint failed: {payload}")
    stitched = payload["trace"]
    slices = [e for e in stitched["traceEvents"] if e["ph"] == "X"]
    names = {e["name"] for e in slices}
    expected = {"api.admission", "api.job", "campaign", "work-unit"}
    check(expected <= names,
          f"stitched trace misses spans: {sorted(expected - names)}")
    trace_ids = {e["args"].get("trace") for e in slices}
    check(trace_ids == {trace_id},
          f"stitched trace mixes trace ids: {trace_ids}")
    pids = {e["pid"] for e in slices}
    check(len(pids) >= 2,
          "stitched trace has a single process lane (no worker spans)")
    flows = [
        e for e in stitched["traceEvents"]
        if e.get("cat") == "repro.flow"
    ]
    check(bool(flows), "no cross-process flow events over the queue hop")
    text = REGISTRY.prometheus_text()
    for needle in (
        'repro_api_queue_wait_seconds_bucket{tenant="smoke"',
        'repro_api_job_seconds_count{tenant="smoke"',
    ):
        check(needle in text,
              f"per-tenant SLO series missing from /metrics: {needle}")
    TRACER.disable()
    obs_context.clear_fragments()
    print(f"  stitched: one trace ({trace_id[:8]}...) across "
          f"{len(pids)} processes, {len(flows) // 2} queue-hop flows, "
          "per-tenant SLO series exposed")
    return stitched


def _emit_artifacts(directory, inline_trace_path, stitched) -> None:
    os.makedirs(directory, exist_ok=True)
    with open(inline_trace_path) as handle:
        inline = handle.read()
    with open(os.path.join(directory, "trace-inline.json"), "w") as out:
        out.write(inline)
    with open(
        os.path.join(directory, "trace-stitched.json"), "w"
    ) as out:
        json.dump(stitched, out)
    with open(os.path.join(directory, "metrics.prom"), "w") as out:
        out.write(REGISTRY.prometheus_text())
    print(f"  artifacts: trace-inline.json, trace-stitched.json, "
          f"metrics.prom -> {directory}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--artifacts", default=None, metavar="DIR",
        help="also write the Chrome traces and Prometheus text here "
             "(CI uploads these as workflow artifacts)",
    )
    args = parser.parse_args(argv)
    scale = StudyScale.tiny()
    TRACER.reset()
    TRACER.enable()
    print("obs smoke: tiny traced campaign...")
    with tempfile.TemporaryDirectory() as tmp:
        with TelemetryLog(os.path.join(tmp, "events.jsonl")) as telemetry:
            service = CampaignService(
                modules=[MODULE], tests=TESTS, scale=scale, seed=SEED,
                telemetry=telemetry,
            )
            service.run()
            events = list(telemetry.events)
        trace_path = os.path.join(tmp, "trace.json")
        TRACER.write_chrome_trace(trace_path)
        TRACER.disable()
        validate_chrome_trace(trace_path)
        validate_prometheus(REGISTRY.prometheus_text())
        validate_events(events)
        validate_cache_provenance(tmp, scale)
        stitched = validate_stitched_api_trace(tmp)
        if args.artifacts:
            _emit_artifacts(args.artifacts, trace_path, stitched)
    print("obs smoke: trace + metrics + events + provenance + "
          "stitched API trace OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
