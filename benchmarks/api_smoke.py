#!/usr/bin/env python3
"""API smoke check (``make api-smoke``): one full service round trip.

Boots an in-process :class:`~repro.api.server.BackgroundServer` and
asserts, end to end:

* submit -> poll -> SSE -> study fetch works for a tiny campaign;
* the served study carries the request's provenance fingerprint and is
  bit-identical to a direct ``CharacterizationStudy.run`` (the API's
  determinism contract);
* an identical resubmission short-circuits against the
  content-addressed store (``cache: hit``, no recompute);
* the error surface holds: 400 for unknown ids, 404 for unknown
  jobs/fingerprints, 429 past the tenant quota, 409 cancelling a
  finished job;
* both CLIs (``python -m repro.api``, ``python -m repro.service``)
  exit 2 on unknown module / experiment ids -- the shared
  ``repro.harness.validation`` contract.

Run:  PYTHONPATH=src python benchmarks/api_smoke.py
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile

try:
    import repro  # noqa: F401
except ImportError:  # launched from a checkout without PYTHONPATH
    sys.path.insert(
        0, os.path.join(os.path.dirname(__file__), os.pardir, "src")
    )

from repro.api import ApiClient, ApiError, BackgroundServer
from repro.core.scale import StudyScale
from repro.core.serialization import study_to_dict
from repro.core.study import CharacterizationStudy
from repro.harness.cache import attach_provenance

PAYLOAD = {
    "modules": ["C5"], "tests": ["rowhammer"], "scale": "tiny", "seed": 0,
}


def check_round_trip(client: ApiClient) -> dict:
    job = client.submit_job(PAYLOAD)
    assert job["state"] in ("queued", "running"), job["state"]
    events = list(client.events(job["id"]))
    kinds = [event["event"] for event in events]
    assert "campaign_started" in kinds and "job_finished" in kinds, kinds
    assert all(event["job"] == job["id"] for event in events)
    job = client.wait_job(job["id"])
    assert job["state"] == "completed", (job["state"], job["error"])
    print(f"  round trip: {len(events)} SSE events, "
          f"{job['metrics']['units_completed']} unit(s), cache miss")
    return job


def check_determinism(client: ApiClient, job: dict) -> None:
    served = client.get_study(job["fingerprint"])
    direct = CharacterizationStudy(
        scale=StudyScale.tiny(), seed=PAYLOAD["seed"]
    ).run(modules=PAYLOAD["modules"], tests=tuple(PAYLOAD["tests"]))
    attach_provenance(
        direct, PAYLOAD["tests"], PAYLOAD["modules"], PAYLOAD["seed"],
        wall_seconds=0.0,
    )
    direct_doc = study_to_dict(direct)
    assert (
        served["provenance"]["fingerprint"]
        == direct_doc["provenance"]["fingerprint"]
        == job["fingerprint"]
    )
    strip = lambda doc: {k: v for k, v in doc.items() if k != "provenance"}
    assert strip(served) == strip(direct_doc), (
        "API-served study diverged from the direct run"
    )
    print(f"  determinism: served study bit-identical "
          f"(fingerprint {job['fingerprint'][:12]}...)")


def check_store_short_circuit(client: ApiClient) -> None:
    job = client.wait_job(client.submit_job(PAYLOAD)["id"])
    assert job["state"] == "completed" and job["cache"] == "hit", (
        job["state"], job["cache"],
    )
    print("  short circuit: identical resubmission served from the store")


def check_errors(client: ApiClient, finished_job: dict) -> None:
    def expect(status, fn, *args):
        try:
            fn(*args)
        except ApiError as error:
            assert error.status == status, (error.status, status)
            return
        raise AssertionError(f"expected HTTP {status}")

    expect(400, client.submit_job, {"modules": ["ZZ9"]})
    expect(400, client.submit_job, {"experiment": "nope"})
    expect(400, client.submit_job, {**PAYLOAD, "scale": "galactic"})
    expect(404, client.get_job, "job-doesnotexist")
    expect(404, client.get_study, "0" * 32)
    expect(409, client.cancel_job, finished_job["id"])
    print("  errors: 400 / 404 / 409 mapping holds")


def check_quota() -> None:
    tmp = tempfile.mkdtemp(prefix="repro-api-quota-")
    with BackgroundServer(
        os.path.join(tmp, "store"), os.path.join(tmp, "state"),
        workers=1, tenant_quota=1,
    ) as server:
        client = ApiClient(port=server.port)
        first = client.submit_job(PAYLOAD)
        try:
            client.submit_job(PAYLOAD)
        except ApiError as error:
            assert error.status == 429, error.status
        else:
            raise AssertionError("expected HTTP 429 past the quota")
        client.wait_job(first["id"])
    print("  quota: second active job from one tenant rejected with 429")


def check_cli_exit_codes() -> None:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(os.path.dirname(__file__), os.pardir, "src"),
         env.get("PYTHONPATH", "")]
    )
    cases = [
        (["-m", "repro.api", "--modules", "ZZ9"], 2),
        (["-m", "repro.api", "--experiments", "nope"], 2),
        (["-m", "repro.service", "--modules", "ZZ9"], 2),
        (["-m", "repro.harness.runner", "not-an-experiment"], 2),
    ]
    for args, expected in cases:
        proc = subprocess.run(
            [sys.executable, *args], env=env, timeout=120,
            capture_output=True, text=True,
        )
        assert proc.returncode == expected, (
            f"{' '.join(args)} exited {proc.returncode}, expected "
            f"{expected}; stderr: {proc.stderr[-200:]}"
        )
    print("  exit codes: repro.api / repro.service / runner all exit 2 "
          "on unknown ids")


def main() -> int:
    print("api smoke: one tiny campaign through the full HTTP surface...")
    tmp = tempfile.mkdtemp(prefix="repro-api-smoke-")
    with BackgroundServer(
        os.path.join(tmp, "store"), os.path.join(tmp, "state"), workers=2,
    ) as server:
        client = ApiClient(port=server.port)
        health = client.health()
        assert health["status"] == "ok", health
        job = check_round_trip(client)
        check_determinism(client, job)
        check_store_short_circuit(client)
        check_errors(client, job)
        assert "repro_api_requests_total" in client.metrics_text()
    check_quota()
    check_cli_exit_codes()
    print("api smoke: submit/SSE/poll/fetch, determinism, store "
          "short-circuit, error mapping, CLI exit codes all OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
