"""Bench: the extension experiments beyond the paper's artifacts
(DESIGN.md section 6): model ablations, WCDP sensitivity (footnote 9),
the TRR-interaction demonstration, and the Section 8 Pareto frontier.
"""

from conftest import run_once

from repro.core.scale import StudyScale
from repro.dram.calibration import ModuleGeometry
from repro.harness.registry import run_experiment


def test_ablation_reversal_mechanism(benchmark):
    output = run_once(
        benchmark, lambda: run_experiment("ablation", modules=("B3", "B9"))
    )
    print("\n" + output.render())
    results = output.data["results"]
    for module in ("B3", "B9"):
        # No heterogeneity -> deterministic module-level direction.
        flat = results[module]["no gamma spread"]["reversing_fraction"]
        assert flat in (0.0, 1.0)
    # B3's full-model reversal population sits near the paper's 14.2%.
    assert 0.02 <= results["B3"]["full model"]["reversing_fraction"] <= 0.4


def test_wcdp_sensitivity_footnote9(benchmark):
    scale = StudyScale(
        rows_per_module=24, iterations=1, hcfirst_min_step=8000,
        geometry=ModuleGeometry(rows_per_bank=2048, banks=1, row_bits=4096),
    )
    output = run_once(
        benchmark,
        lambda: run_experiment(
            "wcdp_sensitivity", scale=scale, modules=("B3", "C5")
        ),
    )
    print("\n" + output.render())
    for info in output.data["modules"].values():
        # Footnote 9: WCDP changes for only ~2.4% of rows.
        assert info["fraction"] <= 0.35


def test_trr_demo(benchmark, bench_scale):
    output = run_once(
        benchmark,
        lambda: run_experiment("trr_demo", scale=bench_scale, modules=("B3",)),
    )
    print("\n" + output.render())
    flips = output.data["flips"]
    assert flips["withheld"] > 0
    assert flips["interleaved"] == 0


def test_pareto_frontier(benchmark, bench_scale):
    output = run_once(
        benchmark,
        lambda: run_experiment("pareto", scale=bench_scale, modules=("B3", "A0")),
    )
    print("\n" + output.render())
    for module, frontier in output.data["frontiers"].items():
        assert frontier
        gains = [p["hcfirst_gain"] for p in frontier]
        guardbands = [p["guardband"] for p in frontier]
        # Along the frontier (sorted by V_PP), security falls while the
        # latency guardband grows.
        assert all(a >= b for a, b in zip(gains, gains[1:]))
        assert all(a <= b for a, b in zip(guardbands, guardbands[1:]))


def test_system_mitigations(benchmark, bench_scale):
    output = run_once(
        benchmark,
        lambda: run_experiment(
            "system_mitigations", scale=bench_scale, modules=("B6",),
            row_count=48,
        ),
    )
    print("\n" + output.render())
    results = output.data["results"]
    assert results["V_PPmin, no mitigation"]["corrupted_words"] > 0
    assert results["V_PPmin + SECDED"]["corrupted_words"] == 0
    assert results["V_PPmin + selective refresh"]["corrupted_words"] == 0


def test_defense_synergy(benchmark, bench_scale):
    output = run_once(
        benchmark,
        lambda: run_experiment(
            "defense_synergy", scale=bench_scale, modules=("B3", "C9")
        ),
    )
    print("\n" + output.render())
    for module, costs in output.data["costs"].items():
        vpps = sorted(costs)
        nominal = costs[max(vpps)]
        at_min = costs[min(vpps)]
        # Where HC_first improved at V_PPmin, every defense got cheaper.
        if at_min["hcfirst"] > nominal["hcfirst"]:
            assert at_min["para_probability"] < nominal["para_probability"]
            assert at_min["graphene_entries"] <= nominal["graphene_entries"]
            assert (
                at_min["blockhammer_safe_rate"]
                > nominal["blockhammer_safe_rate"]
            )


def test_vppmin_survey(benchmark):
    output = run_once(benchmark, lambda: run_experiment("vppmin_survey"))
    print("\n" + output.render())
    # Every one of the 30 modules' V_PPmin matches the Table 3 appendix;
    # extremes are A0 (1.4 V) and A5 (2.4 V), per Section 7.
    assert output.data["all_match"]
    assert output.data["discovered"]["A0"] == 1.4
    assert output.data["discovered"]["A5"] == 2.4


def test_blast_radius(benchmark, bench_scale):
    output = run_once(
        benchmark,
        lambda: run_experiment("blast_radius", scale=bench_scale),
    )
    print("\n" + output.render())
    totals = output.data["totals"]
    assert totals[1] > 20 * max(1, totals[2])
    assert totals[2] > 0  # distance-2 bleed exists at high hammer counts
    assert totals[3] == 0


def test_wcdp_distribution(benchmark, bench_scale):
    output = run_once(
        benchmark,
        lambda: run_experiment(
            "wcdp_distribution", scale=bench_scale,
            modules=("A4", "B3", "C5"), rows_per_module=12,
        ),
    )
    print("\n" + output.render())
    for module, distributions in output.data["distributions"].items():
        # Retention winners are predominantly the charged stripes; a
        # checker can win when the weakest cell is charged under it with
        # a lower per-row coupling factor.
        retention = distributions["retention"]
        stripes = retention.get("rowstripe-1", 0) + retention.get(
            "rowstripe-0", 0
        )
        assert stripes >= sum(retention.values()) / 2
        for test in ("rowhammer", "trcd", "retention"):
            assert sum(distributions[test].values()) == 12
