"""Bench: regenerate Figure 9 (SPICE cell restoration waveforms +
tRAS_min Monte-Carlo distribution).

Paper shape (Observations 10/11): the restored cell voltage saturates
4.1/11.0/18.1 % below V_DD at 1.9/1.8/1.7 V; tRAS_min exceeds the
nominal below ~2.0 V and its distribution widens; below ~1.6 V the
SPICE model never completes restoration (footnote 13).
"""

import numpy as np
from conftest import run_once

from repro.harness.registry import run_experiment


def test_fig9_restoration(benchmark):
    output = run_once(
        benchmark, lambda: run_experiment("fig9", samples=60)
    )
    print("\n" + output.render())

    saturation = {
        float(vpp): info for vpp, info in output.data["saturation"].items()
    }
    # Observation 10: no deficit at/above ~2.0 V knee; growing below.
    assert saturation[2.5]["deficit_fraction"] < 0.01
    deficits = [saturation[v]["deficit_fraction"] for v in (1.9, 1.8, 1.7)]
    assert deficits == sorted(deficits)
    assert 0.01 <= deficits[0] <= 0.12  # paper: 4.1%
    assert 0.12 <= deficits[2] <= 0.28  # paper: 18.1%

    tras = {
        float(vpp): np.asarray(values)
        for vpp, values in output.data["tras_ns"].items()
    }
    # Observation 11: shift up and widen with reduced V_PP.
    assert np.nanmean(tras[2.0]) > np.nanmean(tras[2.5])
    assert np.nanstd(tras[1.8]) > np.nanstd(tras[2.5])
    # The cell waveform dips during charge sharing then recovers.
    wave = output.data["waveforms"]["2.5"]["cell"]
    assert min(wave) < wave[0]
    assert wave[-1] > 1.1
