"""Bench: regenerate Table 2 (SPICE simulation parameters)."""

import pytest
from conftest import run_once

from repro.harness.registry import run_experiment


def test_table2_spice_parameters(benchmark):
    output = run_once(benchmark, lambda: run_experiment("table2"))
    print("\n" + output.render())
    parameters = output.data["parameters"]
    # Table 2 values, verbatim.
    assert parameters["c_cell_fF"] == pytest.approx(16.8)
    assert parameters["r_cell_ohm"] == pytest.approx(698.0)
    assert parameters["c_bitline_fF"] == pytest.approx(100.5)
    assert parameters["r_bitline_ohm"] == pytest.approx(6980.0)
    assert parameters["w_access_nm"] == pytest.approx(55.0)
    assert parameters["l_access_nm"] == pytest.approx(85.0)
