"""Micro-benchmarks of the library's hot primitives.

Unlike the artifact benches (which regenerate paper figures once),
these measure steady-state throughput of the primitives that dominate
campaign runtime: a full Alg. 1 BER measurement, the per-row flip
evaluation, the batched SECDED codec, one SPICE transient step batch,
and the controller's read path.
"""

import numpy as np
import pytest

from repro.core.context import TestContext
from repro.core.rowhammer import measure_ber
from repro.core.scale import StudyScale
from repro.dram import constants
from repro.dram.calibration import ModuleGeometry
from repro.dram.ecc import BatchSecdedCodec
from repro.dram.module import DramModule
from repro.dram.patterns import STANDARD_PATTERNS
from repro.dram.profiles import module_profile
from repro.softmc.infrastructure import TestInfrastructure
from repro.spice.dram_cell import (
    DramCircuitParams,
    build_activation_circuit,
    initial_conditions,
)
from repro.spice.montecarlo import vary_params
from repro.spice.transient import TransientSolver
from repro.system import ControllerPolicy, MemoryController
from repro.units import ns

GEOMETRY = ModuleGeometry(rows_per_bank=4096, banks=1, row_bits=8192)


def _make_ctx(probe_engine=None):
    scale = StudyScale(rows_per_module=8, iterations=1,
                       hcfirst_min_step=8000, geometry=GEOMETRY)
    infra = TestInfrastructure.for_module("B3", geometry=GEOMETRY, seed=1)
    infra.set_temperature(constants.ROWHAMMER_TEST_TEMPERATURE)
    return TestContext(infra, scale, probe_engine=probe_engine)


@pytest.fixture(scope="module")
def ctx():
    return _make_ctx()


@pytest.fixture(scope="module")
def command_ctx():
    return _make_ctx(probe_engine="command")


def test_ber_measurement_throughput(benchmark, ctx):
    """One complete Alg. 1 BER probe (init 3 rows, 300K double-sided
    hammers, read + compare) on the default batched kernel."""
    pattern = STANDARD_PATTERNS[0]
    result = benchmark(lambda: measure_ber(ctx, 100, pattern, 300_000))
    assert 0.0 <= result <= 1.0


def test_ber_measurement_throughput_command(benchmark, command_ctx):
    """The same Alg. 1 BER probe through the command-level reference
    path (the perf trajectory's baseline)."""
    pattern = STANDARD_PATTERNS[0]
    result = benchmark(
        lambda: measure_ber(command_ctx, 100, pattern, 300_000)
    )
    assert 0.0 <= result <= 1.0


def test_retention_probe_throughput(benchmark, ctx):
    """One Alg. 3 write-wait-read probe on the batched kernel."""
    from repro.core.retention import measure_retention

    pattern = STANDARD_PATTERNS[2]
    ber, _ = benchmark(
        lambda: measure_retention(ctx, 100, pattern, 0.256)
    )
    assert 0.0 <= ber <= 1.0


def test_hammer_session_throughput(benchmark, ctx):
    """The analytic hammer update alone (per 300K-activation session)."""
    bank = ctx.infra.module.bank(0)
    benchmark(lambda: bank.hammer([200, 202], 300_000))


def test_batch_ecc_throughput(benchmark):
    """Encode + decode 1024 words (one 8 KiB row's worth)."""
    codec = BatchSecdedCodec()
    rng = np.random.default_rng(0)
    data = rng.integers(0, 2, (1024, 64)).astype(np.uint8)

    def roundtrip():
        codes = codec.encode_many(data)
        out, corrected, uncorrectable = codec.decode_many(codes)
        return out

    out = benchmark(roundtrip)
    assert np.array_equal(out, data)


def test_spice_transient_step_rate(benchmark):
    """A short batched transient (64 Monte-Carlo samples, 5 ns)."""
    params = vary_params(DramCircuitParams(), samples=64, seed=0)
    circuit = build_activation_circuit(params)
    solver = TransientSolver(circuit)
    initial = initial_conditions(params)

    benchmark(lambda: solver.solve(t_stop=ns(5), dt=ns(0.1), initial=initial))


def test_controller_read_path(benchmark):
    """Row-hit 64-byte reads through the memory controller."""
    module = DramModule(module_profile("B3"), geometry=GEOMETRY, seed=2)
    controller = MemoryController(module, ControllerPolicy.nominal())
    controller.write(0, b"\x5a" * 64)

    data = benchmark(lambda: controller.read(0, 64))
    assert data == b"\x5a" * 64
