#!/usr/bin/env python3
"""DRAM-program DSL smoke check (``make dsl-smoke``).

Compiles and runs every registered DSL program on a small module and
asserts the contracts ``docs/PROGRAMS.md`` documents:

* every registered spec round-trips through its canonical text
  (``parse(canonical(spec))`` is the identical spec) and unrolls to the
  same burst schedule afterwards;
* every hammer program executes bit-identically on all four probe
  engine tiers (command / fast / batch / fused) -- same BER ladder,
  same any-flip verdicts;
* every retention program drives ``characterize_row`` end to end;
* fingerprints are stable: a default-schedule program leaves the
  campaign fingerprint byte-identical to a pre-DSL request, a
  non-default program changes it, and a renamed-but-identical program
  shares it (structural identity);
* compile/fallback routing is visible in the metrics registry.

Exits non-zero on any violation.

Run:  PYTHONPATH=src python benchmarks/dsl_smoke.py
"""

from __future__ import annotations

import os
import sys

try:
    import repro  # noqa: F401
except ImportError:  # launched from a checkout without PYTHONPATH
    sys.path.insert(
        0, os.path.join(os.path.dirname(__file__), os.pardir, "src")
    )

from repro.core.context import TestContext
from repro.core.retention import characterize_row
from repro.core.probe import open_hammer_session
from repro.core.scale import StudyScale
from repro.dram import constants
from repro.dram.patterns import STANDARD_PATTERNS
from repro.harness.cache import study_fingerprint
from repro.obs.metrics import REGISTRY
from repro.progdsl import (
    compile_program,
    get_program,
    parse_program,
    program_names,
    unroll_schedule,
)
from repro.softmc.infrastructure import TestInfrastructure

MODULE = "C5"
SEED = 11
ENGINES = ("command", "fast", "batch", "fused")
HAMMER_COUNTS = (60_000, 120_000)
VICTIM_ROW = 64


def _context(scale: StudyScale, kind: str, program) -> TestContext:
    infra = TestInfrastructure.for_module(
        MODULE, geometry=scale.geometry, seed=SEED
    )
    return TestContext(infra, scale, probe_engine=kind, program=program)


def check_roundtrip(name: str) -> None:
    spec = get_program(name)
    parsed = parse_program(spec.canonical())
    assert parsed == spec, f"{name}: canonical text does not round-trip"
    if spec.kind == "hammer":
        for hc in (1, 31, 300_000):
            assert unroll_schedule(parsed, hc) == unroll_schedule(spec, hc), (
                f"{name}: round-tripped spec unrolls differently at {hc}"
            )


def check_hammer_program(name: str, scale: StudyScale) -> None:
    compiled = compile_program(name)
    pattern = STANDARD_PATTERNS[0]
    ladders = {}
    for kind in ENGINES:
        ctx = _context(scale, kind, compiled)
        with open_hammer_session(ctx, VICTIM_ROW, pattern) as probe:
            ladders[kind] = (
                [probe.ber(hc) for hc in HAMMER_COUNTS],
                probe.any_flip(90_000),
            )
    reference = ladders["command"]
    for kind in ENGINES[1:]:
        assert ladders[kind] == reference, (
            f"{name}: {kind} diverges from command: "
            f"{ladders[kind]} != {reference}"
        )


def check_retention_program(name: str, scale: StudyScale) -> None:
    compiled = compile_program(name)
    pattern = STANDARD_PATTERNS[0]
    results = {}
    for kind in ("command", "batch"):
        ctx = _context(scale, kind, compiled)
        records = characterize_row(
            ctx, VICTIM_ROW, pattern, constants.NOMINAL_VPP
        )
        results[kind] = [(r.trefw, r.ber) for r in records]
    assert results["command"] == results["batch"], (
        f"{name}: retention diverges across engines: {results}"
    )
    assert results["command"], f"{name}: retention produced no records"


def check_fingerprints(scale: StudyScale) -> None:
    base = study_fingerprint(("rowhammer",), (MODULE,), scale, SEED)
    default = study_fingerprint(
        ("rowhammer",), (MODULE,), scale, SEED, program="double-sided"
    )
    assert default == base, (
        "default-schedule program must not move the study fingerprint"
    )
    quad = study_fingerprint(
        ("rowhammer",), (MODULE,), scale, SEED, program="quad-sided"
    )
    assert quad != base, (
        "non-default program must move the study fingerprint"
    )
    renamed = get_program("quad-sided").renamed("quad-sided-alias")
    alias = study_fingerprint(
        ("rowhammer",), (MODULE,), scale, SEED, program=renamed
    )
    assert alias == quad, (
        "renamed-but-identical program must share the fingerprint"
    )
    again = study_fingerprint(
        ("rowhammer",), (MODULE,), scale, SEED, program="quad-sided"
    )
    assert again == quad, "fingerprint must be stable across compiles"


def main() -> int:
    scale = StudyScale.tiny()
    names = program_names()
    assert names, "no registered programs"
    for name in names:
        check_roundtrip(name)
        spec = get_program(name)
        if spec.kind == "hammer":
            check_hammer_program(name, scale)
        else:
            check_retention_program(name, scale)
        print(f"dsl-smoke: {name} ({spec.kind}): ok")
    check_fingerprints(scale)
    print("dsl-smoke: fingerprints: ok")
    compiles = REGISTRY.counter_values().get(
        "repro_program_compiles_total", 0
    )
    fallbacks = REGISTRY.counter_values().get(
        "repro_program_fallbacks_total", 0
    )
    assert compiles > 0, "compile counter never incremented"
    assert fallbacks > 0, "fallback counter never incremented"
    print(
        f"dsl-smoke: ok ({len(names)} programs, "
        f"{compiles:.0f} compiles, {fallbacks:.0f} fallback sessions)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
