"""Bench: regenerate Figure 5 (normalized HC_first across V_PP levels).

Paper shape (Observations 4/5): HC_first increases for most rows
(69.3 %), average +7.4 %, max +85.8 %; a minority (~14 %) decreases.
"""

from conftest import ROWHAMMER_MODULES, run_once

from repro.harness.registry import run_experiment


def test_fig5_normalized_hcfirst(benchmark, bench_scale):
    output = run_once(
        benchmark,
        lambda: run_experiment(
            "fig5", scale=bench_scale, modules=ROWHAMMER_MODULES
        ),
    )
    print("\n" + output.render())

    summary = output.data["summary"]
    # Direction: increasing rows dominate, mean change positive.
    assert summary["fraction_increasing"] > summary["fraction_decreasing"]
    assert summary["mean_change"] > 0.0
    # The paper's strongest riser gains ~86%; ours must show a strong
    # riser too (B3's anchor is +27% at module level, per-row higher).
    assert summary["max_increase"] >= 0.15
    # The opposing population exists but stays a minority.
    assert summary["fraction_decreasing"] <= 0.45

    # B3's module curve ends above 1 (its Table 3 anchors).
    b3 = output.data["curves"]["B3"]
    assert b3["mean"][-1] > 1.0
    # B9's module curve ends below 1 (the Table 3 reversal module).
    b9 = output.data["curves"]["B9"]
    assert b9["mean"][-1] < 1.05
