"""Bench: regenerate Figure 11 (retention flip character at 64/128 ms).

Paper shape (Observations 14/15): every erroneous 64-bit word at the
smallest failing window carries exactly one flip (SECDED-correctable);
only a small fraction of rows contains erroneous words at 64 ms
(16.4 %) and 128 ms (5.0 %), so selective refresh covers them.
"""

from conftest import RETENTION_MODULES, run_once

from repro.harness.registry import run_experiment


def test_fig11_ecc_and_selective_refresh(benchmark, bench_scale):
    output = run_once(
        benchmark,
        lambda: run_experiment(
            "fig11", scale=bench_scale, modules=RETENTION_MODULES
        ),
    )
    print("\n" + output.render())

    # Observation 14 for the 64 ms tier offenders: their weak cells sit
    # in distinct words by construction, so SECDED fixes everything.
    verdicts = output.data["ecc_all_correctable"]
    assert verdicts.get("B6") is True

    # Observation 15: only a bounded fraction of rows newly fails at the
    # 64 ms window (paper: 16.4%; B6 carries the B-vendor tier at 15.5%).
    fractions_64 = output.data["row_fractions"][64.0]
    assert 0.0 < fractions_64["B6"] <= 0.5
    # Clean modules contribute no rows at 64 ms.
    assert fractions_64["A4"] == 0.0
