"""Bench: regenerate Table 1 (tested-chip summary)."""

from conftest import run_once

from repro.harness.registry import run_experiment


def test_table1_chip_summary(benchmark):
    output = run_once(benchmark, lambda: run_experiment("table1"))
    print("\n" + output.render())
    # Paper: 272 chips across 30 DIMMs from three manufacturers.
    assert output.data["total_chips"] == 272
    assert output.data["total_dimms"] == 30
