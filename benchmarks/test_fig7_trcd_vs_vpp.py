"""Bench: regenerate Figure 7 (minimum reliable tRCD across V_PP).

Paper shape (Observation 7): tRCD_min rises as V_PP drops; most modules
stay below the 13.5 ns nominal across their entire range (25 of 30 in
the paper), the guardband shrinks ~21.9 % on average, and the offenders
(A0-A2 at 24 ns, B2/B5 at 15 ns) are fixed by a longer tRCD.
"""

from conftest import TRCD_MODULES, run_once

from repro.harness.registry import run_experiment


def test_fig7_trcd_curves(benchmark, bench_scale):
    output = run_once(
        benchmark,
        lambda: run_experiment(
            "fig7", scale=bench_scale, modules=TRCD_MODULES
        ),
    )
    print("\n" + output.render())

    # Offenders vs passers, per Table 3 character.
    assert set(output.data["failing_modules"]) == {"A0", "B2"}
    assert set(output.data["passing_modules"]) == {"A4", "B9", "C5", "C9"}

    # Monotone rise (within command-clock quantization).
    for curve in output.data["curves"].values():
        values = curve["trcd_min_ns"]
        assert values[-1] >= values[0]

    # A0 needs ~24 ns at V_PPmin, B2 ~15 ns.
    a0 = output.data["curves"]["A0"]["trcd_min_ns"][-1]
    b2 = output.data["curves"]["B2"]["trcd_min_ns"][-1]
    assert 19.5 <= a0 <= 25.5
    assert 13.5 < b2 <= 16.5

    # Guardband reduction in the paper's ballpark (21.9%).
    reduction = output.data["mean_guardband_reduction"]
    assert 0.05 <= reduction <= 0.6
