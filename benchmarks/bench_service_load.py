#!/usr/bin/env python3
"""API load benchmark -> the ``load`` section of BENCH_service.json.

Drives many concurrent HTTP requests (``make service-load``; >= 1000
submitted jobs by default) against an **in-process**
:class:`~repro.api.server.BackgroundServer` running tiny-scale
campaigns, and records:

* per-request latency (p50 / p99, milliseconds) across every submit,
  poll, and study fetch;
* sustained request throughput and end-to-end completed jobs/sec;
* the **deterministic gate**: the study served by
  ``GET /v1/studies/<fingerprint>`` must be bit-identical (same
  provenance fingerprint, equal records) to a direct
  ``CharacterizationStudy.run`` of the same request in this process.

The first job computes the campaign and publishes it to the
content-addressed store; every subsequent identical request
short-circuits against the store -- so the run measures the *service*
(HTTP front end, queue, persistence, store reads), not N redundant
campaigns. That is the intended production shape: the store is the
memoization layer.

``--smoke`` shrinks the job count for CI (``make bench-smoke``) while
keeping the concurrency structure and the deterministic gate intact.

Run:  PYTHONPATH=src python benchmarks/bench_service_load.py
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import statistics
import sys
import tempfile
import time

try:
    import repro  # noqa: F401
except ImportError:  # launched from a checkout without PYTHONPATH
    sys.path.insert(
        0, os.path.join(os.path.dirname(__file__), os.pardir, "src")
    )

from repro.api.server import BackgroundServer
from repro.core.scale import StudyScale
from repro.core.serialization import study_to_dict
from repro.core.study import CharacterizationStudy
from repro.harness.cache import attach_provenance
from repro.obs.metrics import REGISTRY

#: The campaign every job requests (tiny scale: single-digit seconds).
JOB_PAYLOAD = {
    "modules": ["C5"],
    "tests": ["rowhammer"],
    "scale": "tiny",
    "seed": 0,
}

#: Concurrent in-flight connections (2 fds per connection with both
#: ends in-process; 256 stays far under default fd limits).
CONCURRENCY = 256

DEFAULT_JOBS = 1000
SMOKE_JOBS = 64


async def _request(host, port, method, path, payload=None, latencies=None):
    """One HTTP/1.1 request over a fresh connection; returns
    (status, decoded JSON body)."""
    started = time.monotonic()
    reader, writer = await asyncio.open_connection(host, port)
    try:
        body = json.dumps(payload).encode() if payload is not None else b""
        writer.write(
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host}\r\n"
            f"Content-Type: application/json\r\n"
            f"X-Repro-Tenant: bench\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n".encode() + body
        )
        await writer.drain()
        raw = await reader.read(-1)  # server closes after one response
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (OSError, ConnectionError):
            pass
    if latencies is not None:
        latencies.append(time.monotonic() - started)
    head, _, payload_bytes = raw.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    document = json.loads(payload_bytes) if payload_bytes else {}
    return status, document


async def _job_round_trip(host, port, semaphore, latencies, states):
    """Submit one job, poll it to a terminal state, fetch its study."""
    async with semaphore:
        status, document = await _request(
            host, port, "POST", "/v1/jobs", JOB_PAYLOAD, latencies
        )
        assert status == 202, f"submit returned {status}: {document}"
        job = document["job"]
        while job["state"] not in ("completed", "failed", "cancelled"):
            await asyncio.sleep(0.02)
            status, document = await _request(
                host, port, "GET", f"/v1/jobs/{job['id']}",
                latencies=latencies,
            )
            assert status == 200, f"poll returned {status}"
            job = document["job"]
        states.append(job["state"])
        status, _ = await _request(
            host, port, "GET", f"/v1/studies/{job['fingerprint']}",
            latencies=latencies,
        )
        assert status == 200, f"study fetch returned {status}"
        return job


async def _drive(host, port, jobs):
    semaphore = asyncio.Semaphore(CONCURRENCY)
    latencies, states = [], []
    started = time.monotonic()
    results = await asyncio.gather(*[
        _job_round_trip(host, port, semaphore, latencies, states)
        for _ in range(jobs)
    ])
    wall = time.monotonic() - started
    return results, latencies, states, wall


def _quantile_ms(latencies, q) -> float:
    ordered = sorted(latencies)
    index = min(len(ordered) - 1, int(q * len(ordered)))
    return round(ordered[index] * 1000, 3)


def deterministic_gate(server, job) -> dict:
    """Assert the API-served study is bit-identical to a direct run.

    Same request => same provenance fingerprint => byte-equal records;
    only the provenance block's cost fields (wall clock, counters) may
    differ between the two paths.
    """
    served = server.api.store.load_dict(job["fingerprint"])
    assert served is not None, "store lost the published study"
    direct = CharacterizationStudy(
        scale=StudyScale.tiny(), seed=JOB_PAYLOAD["seed"]
    ).run(
        modules=JOB_PAYLOAD["modules"], tests=tuple(JOB_PAYLOAD["tests"])
    )
    attach_provenance(
        direct, JOB_PAYLOAD["tests"], JOB_PAYLOAD["modules"],
        JOB_PAYLOAD["seed"], wall_seconds=0.0,
    )
    direct_doc = study_to_dict(direct)
    assert (
        direct_doc["provenance"]["fingerprint"]
        == served["provenance"]["fingerprint"]
        == job["fingerprint"]
    ), "API fingerprint diverged from the direct request hash"
    served_body = {k: v for k, v in served.items() if k != "provenance"}
    direct_body = {k: v for k, v in direct_doc.items() if k != "provenance"}
    assert served_body == direct_body, (
        "API-served study is not bit-identical to the direct run"
    )
    return {
        "fingerprint": job["fingerprint"],
        "records": sum(
            len(module["rowhammer"])
            for module in served["modules"].values()
        ),
    }


def run_load(jobs: int) -> dict:
    tmp = tempfile.mkdtemp(prefix="repro-api-load-")
    with BackgroundServer(
        os.path.join(tmp, "store"), os.path.join(tmp, "state"),
        workers=2, tenant_quota=jobs + CONCURRENCY,
    ) as server:
        results, latencies, states, wall = asyncio.run(
            _drive("127.0.0.1", server.port, jobs)
        )
        failed = [state for state in states if state != "completed"]
        assert not failed, f"{len(failed)} job(s) not completed: {failed[:5]}"
        cache_hits = sum(
            1 for job in results if job.get("cache") == "hit"
        )
        gate = deterministic_gate(server, results[0])
    counters = REGISTRY.counter_values()
    return {
        "jobs": jobs,
        "requests": len(latencies),
        "concurrency": CONCURRENCY,
        "wall_seconds": round(wall, 3),
        "p50_ms": _quantile_ms(latencies, 0.50),
        "p99_ms": _quantile_ms(latencies, 0.99),
        "mean_ms": round(statistics.fmean(latencies) * 1000, 3),
        "requests_per_sec": round(len(latencies) / wall, 1),
        "jobs_per_sec": round(jobs / wall, 1),
        "store_cache_hits": cache_hits,
        "api_requests_counter": int(
            counters.get("repro_api_requests_total", 0)
        ),
        "deterministic": gate,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    default_out = os.path.join(
        os.path.dirname(__file__), "BENCH_service.json"
    )
    parser.add_argument("--out", default=default_out)
    parser.add_argument(
        "--jobs", type=int, default=None,
        help=f"jobs to submit (default {DEFAULT_JOBS}; "
             f"--smoke uses {SMOKE_JOBS})",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI shape: fewer jobs, same concurrency structure and "
             "deterministic gate",
    )
    args = parser.parse_args(argv)
    jobs = args.jobs or (SMOKE_JOBS if args.smoke else DEFAULT_JOBS)

    print(f"service load: {jobs} concurrent tiny-campaign jobs against "
          f"an in-process API server (max {CONCURRENCY} connections "
          f"in flight)...")
    payload = run_load(jobs)

    document = {}
    if os.path.isfile(args.out):
        try:
            with open(args.out) as handle:
                document = json.load(handle)
        except ValueError:
            document = {}
    document["load"] = payload
    with open(args.out, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")

    for key in ("jobs", "requests", "wall_seconds", "p50_ms", "p99_ms",
                "requests_per_sec", "jobs_per_sec", "store_cache_hits"):
        print(f"{key:>18}: {payload[key]}")
    print(f"wrote {args.out}")
    print("service load: every job completed; API-served study "
          "bit-identical to the direct run")
    return 0


if __name__ == "__main__":
    sys.exit(main())
