"""Bench: regenerate Figure 4 (per-vendor density of normalized BER at
V_PPmin).

Paper shape (Observation 3): normalized BER spans 0.43-1.11 (A),
0.33-1.03 (B), 0.74-0.94 (C); the change varies across rows and
manufacturers, with Mfr. C uniformly improving and ~half of Mfr. A's
rows nearly unchanged.
"""

from conftest import ROWHAMMER_MODULES, run_once

from repro.harness.registry import run_experiment


def test_fig4_ber_density(benchmark, bench_scale):
    output = run_once(
        benchmark,
        lambda: run_experiment(
            "fig4", scale=bench_scale, modules=ROWHAMMER_MODULES
        ),
    )
    print("\n" + output.render())

    import numpy as np

    densities = output.data["densities"]
    assert set(densities) == {"A", "B", "C"}
    for vendor, info in densities.items():
        values = np.asarray(info["values"])
        assert values.size > 0
        # The population centers near (or below) 1: shot noise on
        # low-flip rows can throw individual ratios far out, but the
        # bulk must stay in the paper's band.
        assert 0.2 <= np.median(values) <= 1.5
        assert info["min"] <= 1.3
    # Mfr. B spreads wider than Mfr. C (paper: 0.33-1.03 vs 0.74-0.94),
    # comparing robust (10-90%) spreads.
    def spread(vendor):
        values = np.asarray(densities[vendor]["values"])
        lo, hi = np.percentile(values, [10, 90])
        return hi - lo

    assert spread("B") >= spread("C") * 0.5
