"""Bench: regenerate Figure 10 (retention BER under reduced V_PP).

Paper shape (Observations 12/13): retention BER rises with the refresh
window and with reduced V_PP (vendor means at 4 s: A 0.3->0.8 %,
B 0.2->0.5 %, C 1.4->2.5 % from 2.5 to 1.5 V); most modules stay clean
at the nominal 64 ms window even at V_PPmin, with the Table 3 offenders
(here B6, C9) failing.
"""

import pytest
from conftest import RETENTION_MODULES, run_once

from repro.harness.registry import run_experiment


def test_fig10_retention(benchmark, bench_scale):
    output = run_once(
        benchmark,
        lambda: run_experiment(
            "fig10", scale=bench_scale, modules=RETENTION_MODULES
        ),
    )
    print("\n" + output.render())

    # Observation 12: per-vendor means at ~4 s grow as V_PP drops, and
    # sit within a few x of the paper's anchors.
    anchors = {"A": (0.003, 0.008), "B": (0.002, 0.005), "C": (0.014, 0.025)}
    means = output.data["mean_by_vendor_vpp"]
    for vendor, (nominal_anchor, low_anchor) in anchors.items():
        by_vpp = means[vendor]
        nominal = by_vpp[max(by_vpp)]
        lowest = by_vpp[min(by_vpp)]
        assert lowest >= nominal  # degradation with reduced V_PP
        assert nominal == pytest.approx(nominal_anchor, rel=1.5)

    # BER curves are monotone in the refresh window.
    for curve in output.data["curves"]:
        assert curve["mean_ber"] == sorted(curve["mean_ber"])

    # Observation 13: the retention offenders fail at 64 ms at V_PPmin,
    # the clean modules do not.
    assert "B6" in output.data["failing_at_64ms"]
    assert "A4" in output.data["clean_at_64ms"]
    assert "B3" in output.data["clean_at_64ms"]

