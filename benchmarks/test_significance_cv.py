"""Bench: regenerate the Section 4.6 statistical-significance analysis.

Paper: CV across measurement iterations is 0.08 / 0.13 / 0.24 at the
90th / 95th / 99th percentiles -- small enough to call the measurements
statistically significant.
"""

from conftest import ROWHAMMER_MODULES, run_once

from repro.harness.registry import run_experiment


def test_significance_cv_percentiles(benchmark, bench_scale):
    output = run_once(
        benchmark,
        lambda: run_experiment(
            "significance", scale=bench_scale, modules=ROWHAMMER_MODULES
        ),
    )
    print("\n" + output.render())

    percentiles = output.data["cv_percentiles"]
    # Ordered percentiles, all small (paper tops out at 0.24 at p99).
    assert percentiles[90.0] <= percentiles[95.0] <= percentiles[99.0]
    assert percentiles[90.0] <= 0.25
    assert percentiles[99.0] <= 1.0
    assert output.data["series_count"] > 0
