"""Benchmark harness configuration.

Each benchmark regenerates one paper artifact (table or figure) and
prints the regenerated rows/series next to the paper's reference
numbers. Campaign-based artifacts share one in-process study cache, so
the expensive characterization runs once per (tests, modules, scale)
combination regardless of how many figure benches consume it.

Run:  pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.core.scale import StudyScale
from repro.dram.calibration import ModuleGeometry

#: Module subset used by the benches: two per vendor, covering the
#: paper's interesting behaviours (strong responders B3/C5, the
#: reversal module B9, tRCD offenders A0/B2, near-insensitive A4, and
#: retention offenders B6/C9).
ROWHAMMER_MODULES = ("A0", "A4", "B3", "B9", "C5", "C9")
TRCD_MODULES = ("A0", "A4", "B2", "B9", "C5", "C9")
RETENTION_MODULES = ("A4", "B3", "B6", "C5", "C9")


@pytest.fixture(scope="session")
def bench_scale() -> StudyScale:
    """Reduced-sampling scale: preserves every paper trend at a few
    seconds per (module, V_PP) point."""
    return StudyScale(
        rows_per_module=48,
        iterations=2,
        hcfirst_min_step=4000,
        geometry=ModuleGeometry(rows_per_bank=4096, banks=1, row_bits=8192),
    )


def run_once(benchmark, function):
    """Run a macro-benchmark exactly once and return its output."""
    return benchmark.pedantic(function, rounds=1, iterations=1)
