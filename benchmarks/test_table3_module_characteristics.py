"""Bench: regenerate the Table 3 measurement columns.

Paper shape: per-module V_PPmin is discovered empirically and matches
the appendix; HC_first and BER move between nominal and V_PPmin in the
anchored directions; V_PPRec never undercuts V_PPmin.
"""

from conftest import ROWHAMMER_MODULES, run_once

import pytest

from repro.dram.profiles import module_profile
from repro.harness.registry import run_experiment


def test_table3_module_rows(benchmark, bench_scale):
    output = run_once(
        benchmark,
        lambda: run_experiment(
            "table3", scale=bench_scale, modules=ROWHAMMER_MODULES
        ),
    )
    print("\n" + output.render())

    for name, row in output.data["modules"].items():
        profile = module_profile(name)
        # V_PPmin discovered == Table 3.
        assert row["vppmin"] == pytest.approx(profile.vppmin)
        # Recommendation bounded by the operating range.
        assert profile.vppmin <= row["vpp_rec"] <= 2.5
        # Module BER at nominal lands within an order of magnitude of
        # the anchor (module max-over-rows at reduced sampling).
        assert row["ber_nominal"] == pytest.approx(
            profile.ber_nominal, rel=9.0
        )

    # HC_first shift between nominal and V_PPmin. The module metric is a
    # minimum over sampled rows -- an extreme-value statistic that the
    # per-row gamma heterogeneity can swing either way at reduced
    # sampling -- so the bench bounds the shift rather than pinning its
    # sign (the per-row mean direction is asserted by the fig5 bench).
    b3 = output.data["modules"]["B3"]
    assert b3["hcfirst_vppmin"] >= 0.5 * b3["hcfirst_nominal"]
    b9 = output.data["modules"]["B9"]
    assert b9["hcfirst_vppmin"] <= 1.5 * b9["hcfirst_nominal"]
