"""Bench: regenerate Figure 3 (normalized BER across V_PP levels).

Paper shape (Observations 1/2): BER decreases with reduced V_PP for the
large majority of rows (81.2 % in the paper), average reduction ~15 %,
with a small opposing population (~15 % of rows).
"""

from conftest import ROWHAMMER_MODULES, run_once

from repro.harness.registry import run_experiment


def test_fig3_normalized_ber(benchmark, bench_scale):
    output = run_once(
        benchmark,
        lambda: run_experiment(
            "fig3", scale=bench_scale, modules=ROWHAMMER_MODULES
        ),
    )
    print("\n" + output.render())

    summary = output.data["summary"]
    # Direction: decreasing rows dominate increasing rows, and the mean
    # change is a reduction (paper: -15.2%).
    assert summary["fraction_decreasing"] > summary["fraction_increasing"]
    assert summary["mean_change"] < 0.0
    # Magnitude band: mean reduction within a few x of the paper's 15.2%.
    assert 0.02 <= -summary["mean_change"] <= 0.45
    # A strong responder exists (paper: up to 66.9% on B3).
    assert summary["max_decrease"] >= 0.3

    # Every module's curve starts at 1.0 by construction.
    for curve in output.data["curves"].values():
        assert abs(curve["mean"][0] - 1.0) < 1e-9
