"""Bench: regenerate Figure 8 (SPICE activation waveforms + tRCD_min
Monte-Carlo distribution).

Paper shape (Observations 8/9): mean tRCD_min grows 11.6 -> 13.6 ns from
2.5 -> 1.7 V; the worst case grows 12.9 -> 16.9 ns; the distribution
shifts right and widens.
"""

import numpy as np
from conftest import run_once

from repro.harness.registry import run_experiment
from repro.units import ns


def test_fig8_activation(benchmark):
    output = run_once(
        benchmark, lambda: run_experiment("fig8", samples=200)
    )
    print("\n" + output.render())

    trcd = {
        float(vpp): np.asarray(values)
        for vpp, values in output.data["trcd_ns"].items()
    }
    mean = {vpp: np.nanmean(values) for vpp, values in trcd.items()}
    std = {vpp: np.nanstd(values) for vpp, values in trcd.items()}

    # Observation 8: 11.6 ns at nominal, ~13.6 ns at 1.7 V.
    assert abs(mean[2.5] - 11.6) < 0.6
    assert abs(mean[1.7] - 13.6) < 0.8
    # Observation 9: monotone shift and widening.
    assert mean[2.5] < mean[1.9] < mean[1.8] < mean[1.7]
    assert std[1.7] > std[2.5]

    # Waveforms: the bitline latches to V_DD after sensing at every
    # plotted V_PP >= 1.7 V.
    for vpp, wave in output.data["waveforms"].items():
        if float(vpp) >= 1.7:
            assert wave["bitline"][-1] > 1.1
