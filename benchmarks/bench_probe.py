#!/usr/bin/env python3
"""Probe-kernel and campaign benchmark -> BENCH_probe.json.

Measures, with both cache layers disabled:

* single-probe throughput (probes/sec) of the batch, fast and
  command-level engines, for the Alg. 1 hammer probe and the Alg. 3
  retention probe;
* wall-clock of a bench-scale one-module RowHammer campaign
  (``get_study(("rowhammer",))``) on the fast and command engines --
  the acceptance metric of the probe-kernel PR (fast >= 3x command);
* wall-clock of the *characterization campaign* -- Alg. 1 bisections
  plus Alg. 3 retention ladders over the bench row set at the paper
  modules' physical row size (8 KiB) -- on the fast, batch and fused
  engines: the acceptance metric of the row-batched study kernels
  (batch >= 3x fast). Engines are timed interleaved (min of several
  alternating runs) because the batch engine's advantage would
  otherwise be polluted by machine-load drift;
* wall-clock of the *V_PP-grid ladder phases* of that campaign --
  Alg. 1 and Alg. 3 re-run at every operating point of the V_PP grid
  -- on the batch and fused engines: the acceptance metric of the
  fused sweep kernels (fused >= 3x batch). Setup, preheat and WCDP
  determination run once per engine as an untimed prologue: those
  phases execute at a single operating point, so cross-operating-point
  fusion cannot apply to them and timing them would only dilute the
  metric identically on both sides.

The JSON is written next to this script (override with ``--out``) so
future PRs have a perf trajectory to compare against;
``benchmarks/bench_check.py`` (``make bench-check``) guards it.

Run:  PYTHONPATH=src python benchmarks/bench_probe.py
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
import time

from repro.core import retention as retention_test
from repro.core import rowhammer as rowhammer_test
from repro.core.context import TestContext
from repro.core.rowhammer import measure_ber
from repro.core.retention import measure_retention
from repro.core.sampling import sample_rows
from repro.core.scale import StudyScale
from repro.core.wcdp import retention_wcdp, rowhammer_wcdp
from repro.dram import constants
from repro.dram.calibration import ModuleGeometry
from repro.dram.patterns import STANDARD_PATTERNS
from repro.harness.cache import clear_cache, get_study, set_study_cache_dir
from repro.obs.metrics import REGISTRY
from repro.obs.trace import TRACER
from repro.softmc.infrastructure import TestInfrastructure

GEOMETRY = ModuleGeometry(rows_per_bank=4096, banks=1, row_bits=8192)
MODULE = "B3"
CAMPAIGN_MODULE = "A0"
CAMPAIGN_TESTS = ("rowhammer", "retention")
#: The characterization campaign runs the bench row set against the
#: paper modules' physical row size (8 KiB = 65536 cells; the default
#: bench geometry's 8192-bit rows are a deliberately small stand-in).
CHARACTERIZATION_SCALE = dataclasses.replace(
    StudyScale.bench(),
    geometry=ModuleGeometry(row_bits=65536),
)
#: The V_PP-ladder campaign keeps the paper-realistic row size on an
#: explicit two-bank module geometry (the probed bank behaves the
#: same; the second bank keeps module generation honest about size).
LADDER_SCALE = dataclasses.replace(
    StudyScale.bench(),
    geometry=ModuleGeometry(rows_per_bank=4096, banks=2, row_bits=65536),
)


def _context(probe_engine, program=None):
    scale = StudyScale(rows_per_module=8, iterations=1,
                       hcfirst_min_step=8000, geometry=GEOMETRY)
    infra = TestInfrastructure.for_module(MODULE, geometry=GEOMETRY, seed=1)
    infra.set_temperature(constants.ROWHAMMER_TEST_TEMPERATURE)
    return TestContext(
        infra, scale, probe_engine=probe_engine, program=program
    )


def _probe_rate(probe, warmup=3, seconds=1.0):
    """Steady-state probes/sec of a zero-argument probe callable."""
    for _ in range(warmup):
        probe()
    count = 0
    started = time.monotonic()
    while True:
        probe()
        count += 1
        elapsed = time.monotonic() - started
        if elapsed >= seconds:
            return count / elapsed


def bench_probe_rates():
    rates = {}
    hammer_pattern = STANDARD_PATTERNS[0]
    retention_pattern = STANDARD_PATTERNS[2]
    for engine in ("batch", "fused", "fast", "command"):
        ctx = _context(engine)
        rates[f"hammer_probes_per_sec_{engine}"] = _probe_rate(
            lambda: measure_ber(ctx, 100, hammer_pattern, 300_000)
        )
        ctx = _context(engine)
        rates[f"retention_probes_per_sec_{engine}"] = _probe_rate(
            lambda: measure_retention(ctx, 100, retention_pattern, 0.256)
        )
    rates["hammer_probe_speedup"] = (
        rates["hammer_probes_per_sec_fast"]
        / rates["hammer_probes_per_sec_command"]
    )
    rates["retention_probe_speedup"] = (
        rates["retention_probes_per_sec_fast"]
        / rates["retention_probes_per_sec_command"]
    )
    return rates


def bench_program_rates():
    """DSL-program probe throughput: the compiled path (a non-default
    4-sided program lowered onto the batch kernels) vs the fallback
    path (the same program emitted as an instruction stream on the
    command engine) -- the program-DSL PR's acceptance metric
    (compiled >= 3x command)."""
    from repro.core.probe import one_shot_hammer_ber
    from repro.progdsl import compile_program

    program = compile_program("quad-sided")
    pattern = STANDARD_PATTERNS[0]
    rates = {}
    for engine in ("batch", "command"):
        ctx = _context(engine, program=program)
        rates[f"program_probes_per_sec_{engine}"] = _probe_rate(
            lambda: one_shot_hammer_ber(ctx, 100, pattern, 300_000)
        )
    rates["program_probe_speedup"] = (
        rates["program_probes_per_sec_batch"]
        / rates["program_probes_per_sec_command"]
    )
    return rates


def _timed_campaign(engine, tests, scale=None):
    os.environ["REPRO_PROBE_ENGINE"] = engine
    try:
        clear_cache()
        started = time.monotonic()
        get_study(tests, modules=(CAMPAIGN_MODULE,), scale=scale)
        return time.monotonic() - started
    finally:
        os.environ.pop("REPRO_PROBE_ENGINE", None)
        clear_cache()


def bench_campaign():
    """The probe-kernel PR's acceptance campaign: fast vs command on
    the default bench scale (kept for the perf trajectory)."""
    results = {}
    for engine in ("fast", "command"):
        results[f"campaign_seconds_{engine}"] = _timed_campaign(
            engine, ("rowhammer",)
        )
    results["campaign_speedup"] = (
        results["campaign_seconds_command"] / results["campaign_seconds_fast"]
    )
    return results


def bench_characterization_campaign(runs=2):
    """The row-batched kernel PR's acceptance campaign: batch vs fast,
    both Alg. 1 and Alg. 3, at the paper-realistic row size. The fused
    engine rides along for the end-to-end trajectory (its acceptance
    metric is the ladder-phase campaign below, where the single-
    operating-point prologue does not dilute the comparison)."""
    engines = ("fast", "batch", "fused")
    for engine in engines:  # warmup: module generation, import costs
        _timed_campaign(engine, CAMPAIGN_TESTS, CHARACTERIZATION_SCALE)
    times = {engine: [] for engine in engines}
    for _ in range(runs):
        for engine in engines:
            times[engine].append(_timed_campaign(
                engine, CAMPAIGN_TESTS, CHARACTERIZATION_SCALE
            ))
    results = {
        f"characterization_seconds_{engine}": min(times[engine])
        for engine in engines
    }
    results["campaign_speedup_batch_over_fast"] = (
        results["characterization_seconds_fast"]
        / results["characterization_seconds_batch"]
    )
    return results


def _ladder_state(engine):
    """Untimed prologue of the ladder campaign: context, row sample,
    preheat and both WCDP maps at nominal V_PP, shared by every timed
    run of that engine."""
    scale = LADDER_SCALE
    infra = TestInfrastructure.for_module(
        CAMPAIGN_MODULE, geometry=scale.geometry, seed=1
    )
    ctx = TestContext(infra, scale, probe_engine=engine)
    rows = sample_rows(
        scale.geometry.rows_per_bank, scale.rows_per_module,
        scale.row_chunks,
    )
    preheat = getattr(ctx.engine, "preheat", None)
    if preheat is not None:
        preheat(ctx, rows)
    infra.set_vpp(constants.NOMINAL_VPP)
    infra.set_temperature(constants.ROWHAMMER_TEST_TEMPERATURE)
    wcdp_rh = {row: rowhammer_wcdp(ctx, row) for row in rows}
    infra.set_temperature(constants.RETENTION_TEST_TEMPERATURE)
    wcdp_ret = {row: retention_wcdp(ctx, row) for row in rows}
    return ctx, rows, wcdp_rh, wcdp_ret, infra.vpp_levels(scale.vpp_step)


def _timed_ladder(state):
    """One pass over the V_PP grid: Alg. 1 then Alg. 3 at every level
    (the exact phase order of ``CharacterizationStudy.run_module``)."""
    ctx, rows, wcdp_rh, wcdp_ret, levels = state
    infra = ctx.infra
    started = time.monotonic()
    infra.set_temperature(constants.ROWHAMMER_TEST_TEMPERATURE)
    for vpp in levels:
        infra.set_vpp(vpp)
        rowhammer_test.characterize_rows(ctx, rows, wcdp_rh, vpp)
    infra.set_temperature(constants.RETENTION_TEST_TEMPERATURE)
    for vpp in levels:
        infra.set_vpp(vpp)
        retention_test.characterize_rows(ctx, rows, wcdp_ret, vpp)
    return time.monotonic() - started


def bench_vpp_ladder_campaign(runs=3):
    """The fused-kernel PR's acceptance campaign: batch vs fused over
    the V_PP-grid ladder phases (Alg. 1 worst-BER ladders + bisections
    and Alg. 3 retention ladders, re-run at every operating point).

    The ladder phases are exactly where the batch engine re-enters one
    bisection per operating point while the fused engine resolves the
    whole grid against one resolved sweep; the single-operating-point
    prologue (setup, preheat, WCDP) runs once per engine, untimed --
    cross-operating-point fusion cannot apply there, so timing it
    would only shift both sides by the same constant.
    """
    engines = ("batch", "fused")
    states = {engine: _ladder_state(engine) for engine in engines}
    for engine in engines:  # warmup: sweep resolution, lazy imports
        _timed_ladder(states[engine])
    times = {engine: [] for engine in engines}
    for _ in range(runs):
        for engine in engines:
            times[engine].append(_timed_ladder(states[engine]))
    results = {
        f"ladder_seconds_{engine}": min(times[engine]) for engine in engines
    }
    results["campaign_speedup_fused_over_batch"] = (
        results["ladder_seconds_batch"] / results["ladder_seconds_fused"]
    )
    return results


REPORT_KEYS = (
    "hammer_probes_per_sec_batch", "hammer_probes_per_sec_fused",
    "hammer_probes_per_sec_fast", "hammer_probes_per_sec_command",
    "retention_probes_per_sec_batch", "retention_probes_per_sec_fused",
    "retention_probes_per_sec_fast", "retention_probes_per_sec_command",
    "hammer_probe_speedup", "retention_probe_speedup",
    "program_probes_per_sec_batch", "program_probes_per_sec_command",
    "program_probe_speedup",
    "campaign_seconds_fast", "campaign_seconds_command",
    "campaign_speedup", "characterization_seconds_fast",
    "characterization_seconds_batch", "characterization_seconds_fused",
    "campaign_speedup_batch_over_fast",
    "ladder_seconds_batch", "ladder_seconds_fused",
    "campaign_speedup_fused_over_batch",
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    default_out = os.path.join(os.path.dirname(__file__), "BENCH_probe.json")
    parser.add_argument("--out", default=default_out)
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record spans during the benchmark and write Chrome-trace "
             "JSON to PATH",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the metrics registry as Prometheus text to PATH",
    )
    args = parser.parse_args(argv)

    if args.trace:
        TRACER.enable()
    counters_before = REGISTRY.counter_values()
    set_study_cache_dir(None)
    print("measuring single-probe throughput...")
    payload = {"scope": {
        "probe_module": MODULE,
        "campaign_module": CAMPAIGN_MODULE,
        "campaign": "bench-scale get_study(('rowhammer',))",
        "characterization_campaign": (
            "bench-scale get_study(('rowhammer', 'retention')) at 65536-bit"
            " physical rows, interleaved min-of-2"
        ),
        "ladder_campaign": (
            "V_PP-grid ladder phases (Alg. 1 + Alg. 3 at every level) at"
            " 65536-bit physical rows, batch vs fused, interleaved"
            " min-of-3; setup/preheat/WCDP run untimed at a single"
            " operating point"
        ),
    }}
    payload.update(bench_probe_rates())
    print("measuring DSL-program probe throughput (compiled vs command)...")
    payload.update(bench_program_rates())
    print("measuring one-module bench campaigns (fast vs command)...")
    payload.update(bench_campaign())
    print("measuring characterization campaigns (fast vs batch vs fused)...")
    payload.update(bench_characterization_campaign())
    print("measuring V_PP-ladder campaigns (batch vs fused)...")
    payload.update(bench_vpp_ladder_campaign())

    # The registry counters spent producing these numbers travel with
    # them, so BENCH_probe.json entries are self-describing.
    counters_after = REGISTRY.counter_values()
    payload["counters"] = {
        name: value - counters_before.get(name, 0.0)
        for name, value in sorted(counters_after.items())
        if value - counters_before.get(name, 0.0)
    }

    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

    if args.trace:
        TRACER.write_chrome_trace(args.trace)
        print(f"trace written: {args.trace}")
    if args.metrics_out:
        REGISTRY.write_prometheus(args.metrics_out)
        print(f"metrics written: {args.metrics_out}")

    for key in REPORT_KEYS:
        print(f"{key:>36}: {payload[key]:.2f}")
    print(f"wrote {args.out}")
    failed = False
    if payload["campaign_speedup"] < 3.0:
        print("WARNING: fast-over-command campaign speedup below the 3x "
              "acceptance target", file=sys.stderr)
        failed = True
    if payload["campaign_speedup_batch_over_fast"] < 3.0:
        print("WARNING: batch-over-fast characterization speedup below the "
              "3x acceptance target", file=sys.stderr)
        failed = True
    if payload["campaign_speedup_fused_over_batch"] < 3.0:
        print("WARNING: fused-over-batch ladder speedup below the 3x "
              "acceptance target", file=sys.stderr)
        failed = True
    if payload["program_probe_speedup"] < 3.0:
        print("WARNING: compiled-program-over-command probe speedup below "
              "the 3x acceptance target", file=sys.stderr)
        failed = True
    if (payload["hammer_probes_per_sec_fused"]
            <= payload["hammer_probes_per_sec_fast"]):
        print("WARNING: fused single-probe hammer rate does not beat the "
              "fast engine", file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
