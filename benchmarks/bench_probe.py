#!/usr/bin/env python3
"""Probe-kernel and campaign benchmark -> BENCH_probe.json.

Measures, with both cache layers disabled:

* single-probe throughput (probes/sec) of the batched kernel and the
  command-level reference path, for the Alg. 1 hammer probe and the
  Alg. 3 retention probe;
* wall-clock of a bench-scale one-module RowHammer campaign
  (``get_study(("rowhammer",))``) on each engine, the acceptance metric
  of the probe-kernel optimization (target: fast >= 3x command).

The JSON is written next to this script (override with ``--out``) so
future PRs have a perf trajectory to compare against.

Run:  PYTHONPATH=src python benchmarks/bench_probe.py
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.core.context import TestContext
from repro.core.rowhammer import measure_ber
from repro.core.retention import measure_retention
from repro.core.scale import StudyScale
from repro.dram import constants
from repro.dram.calibration import ModuleGeometry
from repro.dram.patterns import STANDARD_PATTERNS
from repro.harness.cache import clear_cache, get_study, set_study_cache_dir
from repro.softmc.infrastructure import TestInfrastructure

GEOMETRY = ModuleGeometry(rows_per_bank=4096, banks=1, row_bits=8192)
MODULE = "B3"
CAMPAIGN_MODULE = "A0"


def _context(probe_engine):
    scale = StudyScale(rows_per_module=8, iterations=1,
                       hcfirst_min_step=8000, geometry=GEOMETRY)
    infra = TestInfrastructure.for_module(MODULE, geometry=GEOMETRY, seed=1)
    infra.set_temperature(constants.ROWHAMMER_TEST_TEMPERATURE)
    return TestContext(infra, scale, probe_engine=probe_engine)


def _probe_rate(probe, warmup=3, seconds=1.0):
    """Steady-state probes/sec of a zero-argument probe callable."""
    for _ in range(warmup):
        probe()
    count = 0
    started = time.monotonic()
    while True:
        probe()
        count += 1
        elapsed = time.monotonic() - started
        if elapsed >= seconds:
            return count / elapsed


def bench_probe_rates():
    rates = {}
    hammer_pattern = STANDARD_PATTERNS[0]
    retention_pattern = STANDARD_PATTERNS[2]
    for engine in ("fast", "command"):
        ctx = _context(engine)
        rates[f"hammer_probes_per_sec_{engine}"] = _probe_rate(
            lambda: measure_ber(ctx, 100, hammer_pattern, 300_000)
        )
        ctx = _context(engine)
        rates[f"retention_probes_per_sec_{engine}"] = _probe_rate(
            lambda: measure_retention(ctx, 100, retention_pattern, 0.256)
        )
    rates["hammer_probe_speedup"] = (
        rates["hammer_probes_per_sec_fast"]
        / rates["hammer_probes_per_sec_command"]
    )
    rates["retention_probe_speedup"] = (
        rates["retention_probes_per_sec_fast"]
        / rates["retention_probes_per_sec_command"]
    )
    return rates


def bench_campaign():
    results = {}
    for engine in ("fast", "command"):
        os.environ["REPRO_PROBE_ENGINE"] = engine
        clear_cache()
        started = time.monotonic()
        get_study(("rowhammer",), modules=(CAMPAIGN_MODULE,))
        results[f"campaign_seconds_{engine}"] = time.monotonic() - started
    os.environ.pop("REPRO_PROBE_ENGINE", None)
    clear_cache()
    results["campaign_speedup"] = (
        results["campaign_seconds_command"] / results["campaign_seconds_fast"]
    )
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    default_out = os.path.join(os.path.dirname(__file__), "BENCH_probe.json")
    parser.add_argument("--out", default=default_out)
    args = parser.parse_args(argv)

    set_study_cache_dir(None)
    print("measuring single-probe throughput...")
    payload = {"scope": {
        "probe_module": MODULE,
        "campaign_module": CAMPAIGN_MODULE,
        "campaign": "bench-scale get_study(('rowhammer',))",
    }}
    payload.update(bench_probe_rates())
    print("measuring one-module bench campaigns (both engines)...")
    payload.update(bench_campaign())

    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

    for key in ("hammer_probes_per_sec_fast", "hammer_probes_per_sec_command",
                "hammer_probe_speedup", "retention_probe_speedup",
                "campaign_seconds_fast", "campaign_seconds_command",
                "campaign_speedup"):
        print(f"{key:>34}: {payload[key]:.2f}")
    print(f"wrote {args.out}")
    if payload["campaign_speedup"] < 3.0:
        print("WARNING: campaign speedup below the 3x acceptance target",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
