"""Bench: regenerate Figure 6 (per-vendor density of normalized
HC_first at V_PPmin).

Paper shape (Observation 6): normalized HC_first spans 0.94-1.52 (A),
0.92-1.86 (B), 0.91-1.35 (C); most rows sit at or above 1.
"""

from conftest import ROWHAMMER_MODULES, run_once

import numpy as np

from repro.harness.registry import run_experiment


def test_fig6_hcfirst_density(benchmark, bench_scale):
    output = run_once(
        benchmark,
        lambda: run_experiment(
            "fig6", scale=bench_scale, modules=ROWHAMMER_MODULES
        ),
    )
    print("\n" + output.render())

    densities = output.data["densities"]
    assert set(densities) == {"A", "B", "C"}
    for info in densities.values():
        values = np.asarray(info["values"])
        assert values.size > 0
        # Normalized HC_first clusters around 1 with a bounded spread
        # (paper ranges stay within [0.91, 1.86]).
        assert np.median(values) > 0.6
        assert info["max"] < 3.5
