#!/usr/bin/env python3
"""Perf-regression guard against the committed BENCH_probe.json.

Three layers, any of which fails the check (exit 1):

* deterministic acceptance gates on the *committed* baseline itself:
  the fused engine's ladder-campaign speedup over batch must hold the
  3x target and its single-probe hammer rate must beat the fast
  engine's (asserted on the committed numbers, so a noisy check
  machine cannot flake the gate);
* a differential bit-identity gate: a tiny-scale study runs on the
  batch and fused engines and every experiment family (rowhammer,
  tRCD, retention) must match record-for-record;
* a perf-regression guard: re-measures the probe-throughput rates and
  the acceptance campaigns (``make bench`` writes them; see
  ``bench_probe.py``) and fails when any metric falls below its
  committed value by more than the tolerance band. Ratios (the
  campaign speedups) are compared with a tighter band than absolute
  probes/sec, which swing with machine load.

``--smoke`` runs only the first two, machine-speed-independent layers
(the CI entry point; ``make bench-smoke``).

Tolerances are fractions of the committed value and can be widened on
noisy machines:

    REPRO_BENCH_TOLERANCE=0.5 make bench-check

Run:  PYTHONPATH=src python benchmarks/bench_check.py
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import bench_probe  # noqa: E402  (sibling script, not a package)

#: Default fractional tolerance for absolute rates (probes/sec).
RATE_TOLERANCE = 0.5
#: Default fractional tolerance for speedup ratios; load cancels out
#: of a ratio, so the band is tighter.
SPEEDUP_TOLERANCE = 0.3

RATE_KEYS = (
    "hammer_probes_per_sec_batch",
    "hammer_probes_per_sec_fused",
    "hammer_probes_per_sec_fast",
    "hammer_probes_per_sec_command",
    "retention_probes_per_sec_batch",
    "retention_probes_per_sec_fused",
    "retention_probes_per_sec_fast",
    "retention_probes_per_sec_command",
    "program_probes_per_sec_batch",
    "program_probes_per_sec_command",
)
SPEEDUP_KEYS = (
    "campaign_speedup",
    "campaign_speedup_batch_over_fast",
    "campaign_speedup_fused_over_batch",
    "program_probe_speedup",
)

#: Experiment families covered by the differential bit-identity gate.
FAMILIES = ("rowhammer", "trcd", "retention")


def _tolerances():
    override = os.environ.get("REPRO_BENCH_TOLERANCE")
    if override is None:
        return RATE_TOLERANCE, SPEEDUP_TOLERANCE
    try:
        value = float(override)
    except ValueError:
        raise SystemExit(
            f"REPRO_BENCH_TOLERANCE must be a float, got {override!r}"
        )
    if not 0 <= value < 1:
        raise SystemExit("REPRO_BENCH_TOLERANCE must be in [0, 1)")
    return value, value


def gate_baseline(committed):
    """Acceptance floors asserted on the committed baseline itself.

    These are properties of the committed numbers, not of this run's
    machine, so they never flake: if someone regenerates
    BENCH_probe.json on a machine where the fused engine no longer
    clears its targets, the commit fails here deterministically.
    """
    failures = []
    speedup = committed.get("campaign_speedup_fused_over_batch")
    if speedup is not None and speedup < 3.0:
        failures.append(
            f"committed campaign_speedup_fused_over_batch {speedup:.2f} "
            "below the 3x acceptance target"
        )
    program = committed.get("program_probe_speedup")
    if program is not None and program < 3.0:
        failures.append(
            f"committed program_probe_speedup {program:.2f} below the "
            "3x acceptance target (compiled DSL path vs command fallback)"
        )
    fused = committed.get("hammer_probes_per_sec_fused")
    fast = committed.get("hammer_probes_per_sec_fast")
    if fused is not None and fast is not None and fused <= fast:
        failures.append(
            f"committed hammer_probes_per_sec_fused {fused:.2f} does not "
            f"beat the fast engine's {fast:.2f}"
        )
    return failures


def differential_check():
    """Return the experiment families where a tiny-scale fused study
    diverges from the batch reference (bit-identity gate)."""
    from repro.core.scale import StudyScale
    from repro.core.study import CharacterizationStudy

    def run(engine):
        study = CharacterizationStudy(
            scale=StudyScale.tiny(), seed=3, probe_engine=engine
        )
        return study.run_module(
            "A0", tests=FAMILIES, vpp_levels=(2.5, 2.2)
        )

    batch, fused = run("batch"), run("fused")
    return [
        family for family in FAMILIES
        if getattr(batch, family) != getattr(fused, family)
    ]


def check(committed, measured, rate_tol, speedup_tol):
    """Return a list of human-readable regression descriptions."""
    failures = []
    for keys, tolerance in ((RATE_KEYS, rate_tol), (SPEEDUP_KEYS, speedup_tol)):
        for key in keys:
            if key not in committed:
                continue  # older baseline: nothing to guard yet
            floor = committed[key] * (1.0 - tolerance)
            if measured[key] < floor:
                failures.append(
                    f"{key}: measured {measured[key]:.2f} < floor "
                    f"{floor:.2f} (committed {committed[key]:.2f}, "
                    f"tolerance {tolerance:.0%})"
                )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    default_baseline = os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "BENCH_probe.json"
    )
    parser.add_argument("--baseline", default=default_baseline)
    parser.add_argument(
        "--smoke", action="store_true",
        help="run only the machine-speed-independent layers (committed-"
             "baseline gates + fused-vs-batch bit-identity), skipping "
             "the timing re-measurement (the CI entry point)",
    )
    args = parser.parse_args(argv)

    with open(args.baseline) as handle:
        committed = json.load(handle)
    rate_tol, speedup_tol = _tolerances()

    from repro.harness.cache import set_study_cache_dir

    set_study_cache_dir(None)

    gate_failures = gate_baseline(committed)
    if gate_failures:
        print("committed baseline fails its acceptance gates:",
              file=sys.stderr)
        for failure in gate_failures:
            print(f"  {failure}", file=sys.stderr)
        return 1

    print("checking fused-vs-batch bit-identity (tiny scale, all "
          "experiment families)...")
    mismatches = differential_check()
    if mismatches:
        print("fused engine diverges from the batch reference on: "
              + ", ".join(mismatches), file=sys.stderr)
        return 1
    print("fused records match the batch reference bit-for-bit")

    if args.smoke:
        print("\nsmoke mode: skipping timing re-measurement")
        return 0

    print("re-measuring probe throughput...")
    measured = dict(bench_probe.bench_probe_rates())
    print("re-measuring DSL-program probe throughput...")
    measured.update(bench_probe.bench_program_rates())
    print("re-measuring one-module bench campaign (fast vs command)...")
    measured.update(bench_probe.bench_campaign())
    print("re-measuring characterization campaign (fast/batch/fused)...")
    measured.update(bench_probe.bench_characterization_campaign(runs=2))
    print("re-measuring V_PP-ladder campaign (batch vs fused)...")
    # Ladder rounds are cheap (~4 s) and the speedup ratio is what the
    # acceptance gate rides on, so spend full interleaved minima here.
    measured.update(bench_probe.bench_vpp_ladder_campaign(runs=3))

    for key in RATE_KEYS + SPEEDUP_KEYS:
        committed_value = committed.get(key)
        committed_text = (
            f"{committed_value:.2f}" if committed_value is not None else "--"
        )
        print(f"{key:>36}: {measured[key]:>10.2f}  (committed "
              f"{committed_text})")

    failures = check(committed, measured, rate_tol, speedup_tol)
    if failures:
        print("\nperformance regression against committed baseline:",
              file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nno regression against the committed baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
