#!/usr/bin/env python3
"""Perf-regression guard against the committed BENCH_probe.json.

Re-measures the probe-throughput rates and both acceptance campaigns
(``make bench`` writes them; see ``bench_probe.py``) and fails --
exit 1 -- when any metric falls below its committed value by more than
the tolerance band. Ratios (the campaign speedups) are compared with a
tighter band than absolute probes/sec, which swing with machine load.

Tolerances are fractions of the committed value and can be widened on
noisy machines:

    REPRO_BENCH_TOLERANCE=0.5 make bench-check

Run:  PYTHONPATH=src python benchmarks/bench_check.py
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import bench_probe  # noqa: E402  (sibling script, not a package)

#: Default fractional tolerance for absolute rates (probes/sec).
RATE_TOLERANCE = 0.5
#: Default fractional tolerance for speedup ratios; load cancels out
#: of a ratio, so the band is tighter.
SPEEDUP_TOLERANCE = 0.3

RATE_KEYS = (
    "hammer_probes_per_sec_batch",
    "hammer_probes_per_sec_fast",
    "hammer_probes_per_sec_command",
    "retention_probes_per_sec_batch",
    "retention_probes_per_sec_fast",
    "retention_probes_per_sec_command",
)
SPEEDUP_KEYS = (
    "campaign_speedup",
    "campaign_speedup_batch_over_fast",
)


def _tolerances():
    override = os.environ.get("REPRO_BENCH_TOLERANCE")
    if override is None:
        return RATE_TOLERANCE, SPEEDUP_TOLERANCE
    try:
        value = float(override)
    except ValueError:
        raise SystemExit(
            f"REPRO_BENCH_TOLERANCE must be a float, got {override!r}"
        )
    if not 0 <= value < 1:
        raise SystemExit("REPRO_BENCH_TOLERANCE must be in [0, 1)")
    return value, value


def check(committed, measured, rate_tol, speedup_tol):
    """Return a list of human-readable regression descriptions."""
    failures = []
    for keys, tolerance in ((RATE_KEYS, rate_tol), (SPEEDUP_KEYS, speedup_tol)):
        for key in keys:
            if key not in committed:
                continue  # older baseline: nothing to guard yet
            floor = committed[key] * (1.0 - tolerance)
            if measured[key] < floor:
                failures.append(
                    f"{key}: measured {measured[key]:.2f} < floor "
                    f"{floor:.2f} (committed {committed[key]:.2f}, "
                    f"tolerance {tolerance:.0%})"
                )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    default_baseline = os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "BENCH_probe.json"
    )
    parser.add_argument("--baseline", default=default_baseline)
    args = parser.parse_args(argv)

    with open(args.baseline) as handle:
        committed = json.load(handle)
    rate_tol, speedup_tol = _tolerances()

    from repro.harness.cache import set_study_cache_dir

    set_study_cache_dir(None)
    print("re-measuring probe throughput...")
    measured = dict(bench_probe.bench_probe_rates())
    print("re-measuring one-module bench campaign (fast vs command)...")
    measured.update(bench_probe.bench_campaign())
    print("re-measuring characterization campaign (batch vs fast)...")
    measured.update(bench_probe.bench_characterization_campaign(runs=1))

    for key in RATE_KEYS + SPEEDUP_KEYS:
        committed_value = committed.get(key)
        committed_text = (
            f"{committed_value:.2f}" if committed_value is not None else "--"
        )
        print(f"{key:>36}: {measured[key]:>10.2f}  (committed "
              f"{committed_text})")

    failures = check(committed, measured, rate_tol, speedup_tol)
    if failures:
        print("\nperformance regression against committed baseline:",
              file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nno regression against the committed baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
