#!/usr/bin/env python3
"""Orchestration-service smoke benchmark -> BENCH_service.json.

Runs a one-module orchestrated campaign (``make service-smoke``) with
one scripted fault injected into the first work unit, and asserts:

* the faulted unit was retried exactly once and the campaign finished
  with every unit completed (the retry machinery works);
* the JSON-lines event log parses and tells the full story
  (campaign_started ... unit_fault, unit_retry ... campaign_finished);
* the merged study is record-identical to a plain sequential
  ``CharacterizationStudy.run`` -- the injected fault left no trace in
  the science.

Timings land in ``benchmarks/BENCH_service.json`` (override with
``--out``) next to the probe benchmark's numbers, so ``make bench``
reports the orchestration overhead trajectory alongside probe
throughput.

Run:  PYTHONPATH=src python benchmarks/service_smoke.py
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

try:
    import repro  # noqa: F401
except ImportError:  # launched from a checkout without PYTHONPATH
    sys.path.insert(
        0, os.path.join(os.path.dirname(__file__), os.pardir, "src")
    )

from repro.core.scale import StudyScale
from repro.core.study import CharacterizationStudy
from repro.service import CampaignService, FaultPlan
from repro.service.telemetry import TelemetryLog, read_events

MODULE = "C5"
TESTS = ("rowhammer",)
SEED = 0
#: The scripted fault: a transient V_PP supply droop on the first
#: attempt of the module's first work unit.
FAULTED_UNIT = f"{MODULE}/0"


def run_smoke(scale: StudyScale, events_path: str) -> dict:
    plan = FaultPlan.script({(FAULTED_UNIT, 0): "power_droop"})
    with TelemetryLog(events_path) as telemetry:
        service = CampaignService(
            modules=[MODULE], tests=TESTS, scale=scale, seed=SEED,
            fault_plan=plan, backoff=0.0, telemetry=telemetry,
        )
        started = time.monotonic()
        outcome = service.run()
        orchestrated_seconds = time.monotonic() - started

    metrics = outcome.metrics
    assert metrics.retries == 1, (
        f"expected exactly one retry, saw {metrics.retries}"
    )
    assert metrics.faults == {"PowerDroopError": 1}, metrics.faults
    assert metrics.units_completed == metrics.units_planned, (
        "not every unit completed"
    )
    assert not metrics.quarantined, metrics.quarantined

    events = read_events(events_path)  # raises if any line is not JSON
    kinds = [event["event"] for event in events]
    assert kinds[0] == "campaign_started" and kinds[-1] == "campaign_finished"
    for expected in ("unit_started", "unit_fault", "unit_retry",
                     "unit_finished"):
        assert expected in kinds, f"missing {expected} in event log"
    faulted = [e for e in events if e["event"] == "unit_fault"]
    assert faulted[0]["unit"] == FAULTED_UNIT

    started = time.monotonic()
    reference = CharacterizationStudy(scale=scale, seed=SEED).run(
        modules=[MODULE], tests=TESTS
    )
    sequential_seconds = time.monotonic() - started
    merged = outcome.study.modules[MODULE]
    expected = reference.modules[MODULE]
    assert merged.vpp_levels == expected.vpp_levels
    assert merged.rowhammer == expected.rowhammer, (
        "orchestrated study diverged from the sequential reference"
    )

    return {
        "scope": {
            "module": MODULE,
            "tests": list(TESTS),
            "scale": "tiny",
            "fault": f"power_droop@{FAULTED_UNIT}:attempt0",
        },
        "units": metrics.units_planned,
        "retries": metrics.retries,
        "events": len(events),
        "records": len(merged.rowhammer),
        "orchestrated_seconds": round(orchestrated_seconds, 4),
        "sequential_seconds": round(sequential_seconds, 4),
        "orchestration_overhead": round(
            orchestrated_seconds / sequential_seconds, 3
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    default_out = os.path.join(
        os.path.dirname(__file__), "BENCH_service.json"
    )
    parser.add_argument("--out", default=default_out)
    args = parser.parse_args(argv)

    print("service smoke: one-module orchestrated campaign with one "
          "injected supply droop...")
    with tempfile.TemporaryDirectory() as tmp:
        payload = run_smoke(
            StudyScale.tiny(), os.path.join(tmp, "events.jsonl")
        )

    # Preserve sections other benchmarks own (bench_service_load.py
    # writes the "load" key into the same file).
    if os.path.isfile(args.out):
        try:
            with open(args.out) as handle:
                previous = json.load(handle)
            for key in ("load",):
                if key in previous and key not in payload:
                    payload[key] = previous[key]
        except ValueError:
            pass

    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

    for key in ("units", "retries", "events", "records",
                "orchestrated_seconds", "sequential_seconds",
                "orchestration_overhead"):
        print(f"{key:>24}: {payload[key]}")
    print(f"wrote {args.out}")
    print("service smoke: retry + event log + bit-identical merge OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
