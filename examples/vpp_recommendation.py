#!/usr/bin/env python3
"""Finding the optimal wordline voltage for a module (Section 8).

Characterizes RowHammer *and* activation latency across the V_PP grid,
then applies the Table 3 recommendation rule and prints the Pareto
trade-off a memory-controller designer would consult: security-critical
systems take the low-V_PP end, latency-critical systems keep the tRCD
guardband.

Run:  python examples/vpp_recommendation.py
"""

from repro import CharacterizationStudy, StudyScale
from repro.core.mitigation import recommend_vpp
from repro.dram.constants import NOMINAL_TRCD
from repro.units import seconds_to_ns


def main() -> None:
    scale = StudyScale.tiny()
    study = CharacterizationStudy(scale=scale, seed=3, progress=print)
    result = study.run(modules=["B3"], tests=("rowhammer", "trcd"))
    module = result.module("B3")

    nominal = module.vpp_levels[0]
    hc_nominal = module.min_hcfirst(nominal)
    print(f"\n{'V_PP':>5}  {'HC_first gain':>13}  {'tRCD_min [ns]':>13}  "
          f"{'guardband':>9}")
    for vpp in module.vpp_levels:
        hcfirst = module.min_hcfirst(vpp)
        trcd_min = module.max_trcd_min(vpp)
        guardband = (NOMINAL_TRCD - trcd_min) / NOMINAL_TRCD
        gain = hcfirst / hc_nominal if (hcfirst and hc_nominal) else float("nan")
        print(f"{vpp:>5.1f}  {gain:>13.2f}  "
              f"{seconds_to_ns(trcd_min):>13.1f}  {guardband:>9.1%}")

    recommendation = recommend_vpp(module)
    print(
        f"\nRecommended operating point: V_PP = {recommendation.vpp} V "
        f"(paper's B3 V_PPRec: 1.6 V)\n  rationale: "
        f"{recommendation.rationale}"
    )


if __name__ == "__main__":
    main()
