#!/usr/bin/env python3
"""Regenerate every table and figure of the paper in one run.

Equivalent to ``python -m repro.harness.runner --all --out results/``
with a configurable module subset. At the default bench subset this
takes a few minutes; pass ``--modules`` with all thirty Table 3 names
(and ideally ``--seed``/``StudyScale.paper()`` adjustments in code) for
a full-fidelity run.

Run:  python examples/full_paper_run.py [--out results/]
"""

import argparse

from repro.harness.export import export_output
from repro.harness.plan import build_plan
from repro.harness.registry import EXPERIMENT_IDS, run_experiment


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="results")
    parser.add_argument("--modules", nargs="*", default=None)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--parallel", type=int, default=None,
        help="pre-run the campaigns with N worker processes",
    )
    args = parser.parse_args()

    kwargs = {"seed": args.seed}
    if args.modules:
        kwargs["modules"] = tuple(args.modules)
    if args.parallel:
        plan = build_plan(
            EXPERIMENT_IDS, modules=kwargs.get("modules"), seed=args.seed
        )
        plan.preload_parallel(max_workers=args.parallel)
    for experiment_id in EXPERIMENT_IDS:
        output = run_experiment(experiment_id, **kwargs)
        print(output.render())
        print()
        written = export_output(output, args.out)
        print(f"[{experiment_id}: exported {len(written)} files to "
              f"{args.out}]\n")


if __name__ == "__main__":
    main()
