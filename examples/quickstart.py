#!/usr/bin/env python3
"""Quickstart: characterize one module's RowHammer vulnerability at
nominal and reduced wordline voltage.

Builds the simulated bench around module B3 (the paper's strongest V_PP
responder: +27 % HC_first and -60 % BER at its V_PPmin of 1.6 V), finds
V_PPmin empirically, and runs the paper's Alg. 1 on a small row sample
at both ends of the V_PP range.

Run:  python examples/quickstart.py
"""

from repro import CharacterizationStudy, StudyScale
from repro.dram.calibration import ModuleGeometry


def main() -> None:
    # A slightly richer sample than StudyScale.tiny() so the module-level
    # HC_first shift at V_PPmin is resolved by the bisection.
    scale = StudyScale(
        rows_per_module=32,
        iterations=2,
        hcfirst_min_step=2000,
        geometry=ModuleGeometry(rows_per_bank=2048, banks=1, row_bits=4096),
    )
    study = CharacterizationStudy(scale=scale, seed=0, progress=print)
    result = study.run(modules=["B3"], tests=("rowhammer",))

    module = result.module("B3")
    nominal = module.vpp_levels[0]
    print(f"\nModule B3: V_PP grid {module.vpp_levels}")
    print(f"V_PPmin discovered: {module.vppmin} V "
          f"(paper: {1.6} V)\n")

    for vpp in (nominal, module.vppmin):
        hcfirst = module.min_hcfirst(vpp)
        ber = module.max_ber(vpp)
        print(
            f"V_PP = {vpp:.1f} V: minimum HC_first = {hcfirst}, "
            f"module BER at 300K hammers = {ber:.2e}"
        )

    hc_ratio = module.min_hcfirst(module.vppmin) / module.min_hcfirst(nominal)
    print(
        f"\nHC_first at V_PPmin is {hc_ratio:.2f}x the nominal value "
        f"(paper's B3 anchor: {21_100 / 16_600:.2f}x) -- lowering the "
        "wordline voltage makes the attacker hammer more."
    )


if __name__ == "__main__":
    main()
