#!/usr/bin/env python3
"""A user-space RowHammer attack through the memory controller.

Unlike the characterization examples (which drive the SoftMC bench),
this attack uses nothing but ordinary reads through the system's memory
controller -- the scenario the paper's threat model worries about
(footnote 8: a 300K hammer count "is low enough to be used in a
system-level attack in a real system"):

1. the victim writes data;
2. the attacker replays a read trace alternating between the two
   addresses that map to the victim row's physical neighbors (every
   access is a row-buffer conflict, forcing an activation);
3. the victim reads back corrupted data -- no writes to the victim ever
   happened.

Run:  python examples/system_level_attack.py
"""

import numpy as np

from repro.dram.calibration import ModuleGeometry
from repro.dram.module import DramModule
from repro.dram.patterns import STANDARD_PATTERNS
from repro.dram.profiles import module_profile
from repro.system import ControllerPolicy, MemoryController
from repro.system.trace import attack_feasibility, replay, rowhammer_trace


def template_weakest_row(module, candidates, hammer_count):
    """The attacker's offline templating pass (flip-feng-shui style):
    hammer candidate victims hard and keep the one that flips most."""
    bank = module.bank(0)
    row_bits = module.geometry.row_bits
    best_row, best_flips = None, -1
    for row in candidates:
        physical = bank.mapping.to_physical(row)
        pattern = STANDARD_PATTERNS[1 if physical % 2 else 0]
        aggressors = bank.mapping.physical_neighbors(row)
        bank.activate(row)
        bank.write_row(pattern.row_bits(row_bits))
        bank.precharge()
        bank.hammer(aggressors, hammer_count)
        bank.activate(row)
        flips = int(np.sum(bank.read_row() != pattern.row_bits(row_bits)))
        bank.precharge()
        if flips > best_flips:
            best_row, best_flips = row, flips
    return best_row, best_flips


def main() -> None:
    geometry = ModuleGeometry(rows_per_bank=2048, banks=2, row_bits=4096)
    module = DramModule(module_profile("C5"), geometry=geometry, seed=8)
    controller = MemoryController(module, ControllerPolicy.nominal())

    bank = module.bank(0)
    print("Attacker templates candidate victims offline...")
    victim_row, template_flips = template_weakest_row(
        module, range(20, 220, 8), hammer_count=80_000
    )
    print(f"  weakest candidate: row {victim_row} "
          f"({template_flips} flips in templating)\n")
    physical = bank.mapping.to_physical(victim_row)
    fill = 0x00 if physical % 2 else 0xFF
    payload = bytes([fill]) * controller.mapping.row_bytes
    victim_address = controller.mapping.row_base_address(0, victim_row)

    print("Victim stores its data...")
    controller.write(victim_address, payload)
    controller.flush()

    aggressors = bank.mapping.physical_neighbors(victim_row)
    hammer_count = 90_000
    report = attack_feasibility(module.profile.hcfirst_nominal)
    print(
        f"Attacker targets rows {aggressors} (physical neighbors of "
        f"{victim_row}).\nFeasibility: {report.attacks_per_window:.0f} "
        f"complete attacks fit in one 64 ms refresh window "
        f"(HC_first anchor {report.hcfirst})."
    )

    print(f"Hammering with {hammer_count} plain reads per aggressor...")
    stats = replay(
        controller,
        rowhammer_trace(controller.mapping, 0, aggressors, hammer_count),
    )
    print(
        f"  controller stats: {stats.activations} activations, "
        f"{stats.row_hits} row hits (every access conflicts by design)"
    )

    read_back = controller.read(victim_address, len(payload))
    flipped = sum(
        bin(a ^ b).count("1") for a, b in zip(read_back, payload)
    )
    print(
        f"\nVictim reads back its data: {flipped} bit(s) flipped without "
        "a single write to the victim row."
    )
    if flipped:
        print(
            "Lowering V_PP raises HC_first (Observation 4), forcing the "
            "attacker to spend more activations for the same damage."
        )


if __name__ == "__main__":
    main()
