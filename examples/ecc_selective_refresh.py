#!/usr/bin/env python3
"""Mitigating reduced-V_PP retention flips with SECDED ECC and selective
refresh (Section 6.3, Observations 14/15).

Runs the retention sweep on module B6 (one of the paper's seven
offenders that flip at the nominal 64 ms window when operated at
V_PPmin), then:

* encodes a failing row's words with the Hamming SECDED(72,64) codec and
  shows every flip is corrected;
* computes the fraction of rows that would need a doubled refresh rate.

Run:  python examples/ecc_selective_refresh.py
"""

import numpy as np

from repro import CharacterizationStudy, StudyScale
from repro.core.mitigation import (
    ecc_report,
    selective_refresh_report,
    smallest_failing_window,
)
from repro.dram.calibration import ModuleGeometry
from repro.dram.ecc import DecodeStatus, SecdedCodec
from repro.units import ms, seconds_to_ms


def main() -> None:
    scale = StudyScale(
        rows_per_module=48,
        iterations=2,
        hcfirst_min_step=8000,
        retention_windows=(ms(32.0), ms(64.0), ms(128.0), ms(256.0)),
        geometry=ModuleGeometry(rows_per_bank=2048, banks=1, row_bits=4096),
    )
    study = CharacterizationStudy(scale=scale, seed=5, progress=print)
    result = study.run(modules=["B6"], tests=("retention",))
    module = result.module("B6")

    window = smallest_failing_window(module, module.vppmin)
    print(f"\nB6 at V_PPmin = {module.vppmin} V: first failing refresh "
          f"window = {seconds_to_ms(window):.0f} ms")

    report = ecc_report(module, module.vppmin, window)
    print(
        f"SECDED verdict: {report.words_correctable} correctable words, "
        f"{report.words_uncorrectable} uncorrectable across "
        f"{report.rows_with_flips} failing rows "
        f"(paper: all correctable)"
    )

    refresh = selective_refresh_report(module, module.vppmin, window)
    print(
        f"Selective refresh: {refresh.newly_failing_rows} of "
        f"{refresh.total_rows} rows ({refresh.row_fraction:.1%}) need the "
        f"doubled rate (paper: 16.4% at 64 ms)"
    )

    # Demonstrate the codec itself on a corrupted word.
    codec = SecdedCodec()
    data = codec.bits_from_int(0xDEAD_BEEF_CAFE_F00D)
    codeword = codec.encode(data)
    corrupted = codeword.copy()
    corrupted[17] ^= 1  # single retention flip
    decoded = codec.decode(corrupted)
    assert decoded.status is DecodeStatus.CORRECTED
    assert np.array_equal(decoded.data, data)
    print(
        "\nCodec demo: a single flipped bit in word 0xDEADBEEFCAFEF00D was "
        f"corrected at codeword position {decoded.corrected_position}."
    )


if __name__ == "__main__":
    main()
