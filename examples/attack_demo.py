#!/usr/bin/env python3
"""Double-sided RowHammer attack walkthrough on the simulated device.

Shows the full attack anatomy the paper's methodology builds on:

1. reverse-engineer the victim's physical neighbors (the DRAM-internal
   address mapping differs per vendor, Section 4.2);
2. hammer the two aggressors with increasing activation counts and watch
   the victim's bit flips appear at consistently predictable locations;
3. repeat at reduced V_PP and see the same attack need more activations
   (the paper's key finding).

Run:  python examples/attack_demo.py
"""

import numpy as np

from repro.core.adjacency import ReverseEngineeredAdjacency
from repro.core.scale import safe_timings
from repro.dram.calibration import ModuleGeometry
from repro.dram.patterns import STANDARD_PATTERNS
from repro.softmc import Program, TestInfrastructure


def flips_after_attack(infra, victim, aggressors, hammer_count, pattern):
    """Run one double-sided attack; returns the victim's flipped bit
    positions."""
    row_bits = infra.module.geometry.row_bits
    program = Program(safe_timings())
    program.initialize_row(0, victim, pattern, row_bits)
    for aggressor in aggressors:
        program.initialize_row(0, aggressor, pattern, row_bits, inverse=True)
    program.hammer_doublesided(0, aggressors, hammer_count)
    read_index = program.read_row(0, victim)
    result = infra.host.execute(program)
    expected = pattern.row_bits(row_bits)
    return np.flatnonzero(result.data(read_index) != expected)


def main() -> None:
    geometry = ModuleGeometry(rows_per_bank=2048, banks=2, row_bits=4096)
    infra = TestInfrastructure.for_module("C5", geometry=geometry, seed=11)
    infra.set_temperature(50.0)
    victim = 200

    print("Step 1: reverse-engineer the physical neighbors of row",
          victim)
    discovered = ReverseEngineeredAdjacency(infra).neighbors(0, victim)
    oracle = infra.module.bank(0).mapping.physical_neighbors(victim)
    print(f"  discovered aggressors: {discovered} (mapping oracle: "
          f"{sorted(oracle)})\n")

    pattern = STANDARD_PATTERNS[0]
    print("Step 2: escalate the hammer count at nominal V_PP (2.5 V)")
    first_flip_nominal = None
    for hammer_count in (1_000, 5_000, 20_000, 80_000, 300_000):
        flips = flips_after_attack(
            infra, victim, discovered, hammer_count, pattern
        )
        if flips.size and first_flip_nominal is None:
            first_flip_nominal = hammer_count
        preview = flips[:6].tolist()
        print(f"  HC={hammer_count:>7}: {flips.size:>3} flips "
              f"{'at bits ' + str(preview) if flips.size else ''}")

    print("\nStep 3: the same attack at V_PPmin "
          f"({infra.module.vppmin} V)")
    infra.set_vpp(infra.module.vppmin)
    for hammer_count in (1_000, 5_000, 20_000, 80_000, 300_000):
        flips = flips_after_attack(
            infra, victim, discovered, hammer_count, pattern
        )
        print(f"  HC={hammer_count:>7}: {flips.size:>3} flips")

    print(
        "\nReduced V_PP weakens each activation's disturbance: the same "
        "hammer count flips fewer bits, and the first flip needs more "
        "activations (Observations 1 and 4)."
    )


if __name__ == "__main__":
    main()
