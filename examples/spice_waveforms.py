#!/usr/bin/env python3
"""SPICE-level view of reduced-V_PP DRAM operation (Figures 8 and 9).

Simulates the Table 2 cell/bitline/sense-amplifier circuit with the
from-scratch transient solver, printing ASCII waveforms of the bitline
during activation and the cell capacitor during restoration, plus the
Monte-Carlo tRCD_min shift.

Run:  python examples/spice_waveforms.py
"""

import numpy as np

from repro.harness.figures import line_plot
from repro.spice.experiments import (
    activation_waveforms,
    restoration_saturation,
    trcd_distribution,
)
from repro.units import ns


def main() -> None:
    levels = (2.5, 1.9, 1.7)
    print("Activation: bitline voltage (Figure 8a)\n")
    waves = activation_waveforms(levels, t_stop=ns(30))
    stride = max(1, waves[2.5].times.size // 64)
    print(line_plot(
        waves[2.5].times[::stride] * 1e9,
        {f"{vpp}V": waves[vpp].bitline[::stride] for vpp in levels},
        title="bitline voltage during activation",
        x_label="t [ns]", y_label="V",
    ))
    print()

    print("Restoration saturation (Observation 10):")
    for vpp, info in restoration_saturation((2.5, 1.9, 1.8, 1.7)).items():
        print(f"  V_PP={vpp}: V_sat={info['saturation_voltage']:.3f} V "
              f"({info['deficit_fraction']:.1%} below V_DD; paper: "
              f"{'0%' if vpp == 2.5 else {1.9: '4.1%', 1.8: '11.0%', 1.7: '18.1%'}[vpp]})")

    print("\nMonte-Carlo tRCD_min (Figure 8b):")
    for vpp in (2.5, 1.7):
        values = trcd_distribution(vpp, samples=150, seed=2)
        valid = values[~np.isnan(values)] * 1e9
        print(f"  V_PP={vpp}: mean={valid.mean():.1f} ns, "
              f"worst={valid.max():.1f} ns "
              f"(paper mean: {'11.6' if vpp == 2.5 else '13.6'} ns)")


if __name__ == "__main__":
    main()
