#!/usr/bin/env python3
"""Operating a system at reduced V_PP with the Section 8 mitigations.

Puts the V_PP-aware memory controller to work on module B6 -- one of the
paper's seven retention offenders that flip bits at the nominal 64 ms
refresh window when run at V_PPmin -- and shows the end-to-end story:

* at nominal V_PP everything is clean (but RowHammer-weakest);
* at V_PPmin without mitigation the application reads corrupted data;
* SECDED or selective double-rate refresh make V_PPmin safe, buying the
  RowHammer hardening (and wordline power savings) for free.

Run:  python examples/reduced_vpp_system.py
"""

from repro.core.scale import StudyScale
from repro.harness.experiments.system_mitigations import run


def main() -> None:
    output = run(modules=("B6",), scale=StudyScale.tiny(), row_count=24)
    print(output.render())

    results = output.data["results"]
    baseline = results["V_PPmin, no mitigation"]["corrupted_words"]
    ecc = results["V_PPmin + SECDED"]["corrupted_words"]
    selective = results["V_PPmin + selective refresh"]["corrupted_words"]
    print(
        f"\nTakeaway: {baseline} corrupted words without mitigation; "
        f"{ecc} with SECDED, {selective} with selective refresh -- "
        "reduced-V_PP operation is safe with either mitigation "
        "(Observations 14/15)."
    )


if __name__ == "__main__":
    main()
