"""Shared fixtures for the test suite.

Everything uses small geometries so the full suite stays fast; the
calibration anchors are geometry-independent, so small banks exercise
exactly the same physics.
"""

from __future__ import annotations

import pytest

from repro.core.scale import StudyScale
from repro.dram.calibration import ModuleGeometry
from repro.dram.module import DramModule
from repro.dram.profiles import module_profile
from repro.harness.cache import clear_cache, set_study_cache_dir
from repro.softmc.infrastructure import TestInfrastructure
from repro.units import ms


@pytest.fixture
def small_geometry() -> ModuleGeometry:
    """A small but non-trivial bank geometry."""
    return ModuleGeometry(rows_per_bank=1024, banks=2, row_bits=2048)


@pytest.fixture
def b3_module(small_geometry) -> DramModule:
    """Module B3 (the paper's strongest V_PP responder)."""
    return DramModule(module_profile("B3"), geometry=small_geometry, seed=7)


@pytest.fixture
def b3_infra(b3_module) -> TestInfrastructure:
    """A fully wired bench around B3."""
    return TestInfrastructure(b3_module)


@pytest.fixture
def tiny_scale() -> StudyScale:
    """The integration-test study scale."""
    return StudyScale.tiny()


@pytest.fixture(autouse=True)
def _clear_study_cache():
    """Isolate tests from both study-cache layers (in-process dict and
    any ambient REPRO_STUDY_CACHE_DIR disk cache)."""
    previous = set_study_cache_dir(None)
    clear_cache()
    yield
    clear_cache()
    set_study_cache_dir(previous)
