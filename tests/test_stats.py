"""Statistical helpers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import stats
from repro.errors import AnalysisError


def test_normal_ppf_median():
    assert stats.normal_ppf(0.5) == pytest.approx(0.0, abs=1e-12)


def test_normal_ppf_symmetry():
    assert stats.normal_ppf(0.1) == pytest.approx(-stats.normal_ppf(0.9))


def test_normal_ppf_rejects_bad_quantiles():
    for q in (0.0, 1.0, -0.5, 2.0):
        with pytest.raises(AnalysisError):
            stats.normal_ppf(q)


def test_normal_cdf_inverse_of_ppf():
    for q in (0.01, 0.3, 0.77, 0.999):
        assert stats.normal_cdf(stats.normal_ppf(q)) == pytest.approx(q)


def test_cv_of_constant_series_is_zero():
    assert stats.coefficient_of_variation([3.0, 3.0, 3.0]) == 0.0


def test_cv_matches_definition():
    values = np.array([1.0, 2.0, 3.0])
    expected = values.std() / values.mean()
    assert stats.coefficient_of_variation(values) == pytest.approx(expected)


def test_cv_rejects_empty():
    with pytest.raises(AnalysisError):
        stats.coefficient_of_variation([])


def test_cv_all_zero_series():
    assert stats.coefficient_of_variation([0.0, 0.0]) == 0.0


def test_confidence_band_contains_mass():
    rng = np.random.default_rng(0)
    values = rng.normal(size=10_000)
    band = stats.confidence_band(values, 0.90)
    inside = np.mean((values >= band.low) & (values <= band.high))
    assert inside == pytest.approx(0.90, abs=0.02)
    assert band.width > 0


def test_confidence_band_validates_level():
    with pytest.raises(AnalysisError):
        stats.confidence_band([1.0], level=1.5)


def test_population_density_normalized():
    rng = np.random.default_rng(1)
    estimate = stats.population_density(rng.normal(size=5000), bins=50)
    mass = np.sum(estimate.density) * estimate.bin_width
    assert mass == pytest.approx(1.0, abs=1e-6)
    assert abs(estimate.mode()) < 0.5


def test_lognormal_minimum_location():
    sigma, count = 0.5, 1000
    median = stats.lognormal_minimum_location(100.0, sigma, count)
    rng = np.random.default_rng(2)
    minima = [
        np.min(median * np.exp(sigma * rng.standard_normal(count)))
        for _ in range(200)
    ]
    # The expected minimum should land near the requested target.
    assert np.median(minima) == pytest.approx(100.0, rel=0.15)


def test_lognormal_sigma_for_tail_roundtrip():
    sigma = stats.lognormal_sigma_for_tail(0.01, 0.5)
    # P(X < median * 0.5) should be ~1% under that sigma.
    z = np.log(0.5) / sigma
    assert stats.normal_cdf(z) == pytest.approx(0.01, rel=1e-6)


def test_geometric_mean():
    assert stats.geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
    with pytest.raises(AnalysisError):
        stats.geometric_mean([1.0, -1.0])
    with pytest.raises(AnalysisError):
        stats.geometric_mean([])


@given(st.lists(st.floats(min_value=0.1, max_value=1e6), min_size=1, max_size=50))
def test_cv_is_scale_invariant(values):
    cv1 = stats.coefficient_of_variation(values)
    cv2 = stats.coefficient_of_variation([v * 7.5 for v in values])
    assert cv1 == pytest.approx(cv2, rel=1e-6, abs=1e-9)
