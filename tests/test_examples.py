"""Smoke tests for the runnable examples.

Each example is a user-facing entry point; it must run to completion
and print its headline claim. Only the fast examples run here (the
full-figure drivers are exercised by the benchmark harness).
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

FAST_EXAMPLES = {
    "examples/reduced_vpp_system.py": "safe with either mitigation",
    "examples/system_level_attack.py": "without a single write",
    "examples/ecc_selective_refresh.py": "corrected at codeword position",
}

# The examples import `repro` from the source tree; the subprocess does
# not inherit pytest's `pythonpath` ini option, so thread it through
# PYTHONPATH explicitly.
_SRC = str(Path(__file__).resolve().parents[1] / "src")


@pytest.mark.parametrize("script,marker", sorted(FAST_EXAMPLES.items()))
def test_example_runs(script, marker):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (_SRC, env.get("PYTHONPATH")) if p
    )
    completed = subprocess.run(
        [sys.executable, script],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert marker in completed.stdout
