"""Smoke tests for the runnable examples.

Each example is a user-facing entry point; it must run to completion
and print its headline claim. Only the fast examples run here (the
full-figure drivers are exercised by the benchmark harness).
"""

import subprocess
import sys

import pytest

FAST_EXAMPLES = {
    "examples/reduced_vpp_system.py": "safe with either mitigation",
    "examples/system_level_attack.py": "without a single write",
    "examples/ecc_selective_refresh.py": "corrected at codeword position",
}


@pytest.mark.parametrize("script,marker", sorted(FAST_EXAMPLES.items()))
def test_example_runs(script, marker):
    completed = subprocess.run(
        [sys.executable, script],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert marker in completed.stdout
