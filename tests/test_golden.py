"""Golden-file determinism test.

The simulated substrate must be bit-stable: the same (seed, scale,
module) always yields the same measurements, across refactors. This
test replays a small campaign and compares it field-by-field against a
committed golden file.

If a change *intentionally* alters device behaviour (model fix,
recalibration), regenerate the golden file and say so in the commit:

    python -c "
    import json
    from repro.core.scale import StudyScale
    from repro.core.serialization import study_to_dict
    from repro.core.study import CharacterizationStudy
    study = CharacterizationStudy(scale=StudyScale.tiny(), seed=12).run(
        modules=['C5'], tests=('rowhammer', 'trcd'))
    json.dump(study_to_dict(study),
              open('tests/golden/c5_tiny_study.json', 'w'),
              indent=1, sort_keys=True)
    "
"""

import json
import pathlib

from repro.core.scale import StudyScale
from repro.core.serialization import study_to_dict
from repro.core.study import CharacterizationStudy

GOLDEN = pathlib.Path(__file__).parent / "golden" / "c5_tiny_study.json"


def test_study_matches_golden_file():
    study = CharacterizationStudy(scale=StudyScale.tiny(), seed=12).run(
        modules=["C5"], tests=("rowhammer", "trcd")
    )
    produced = json.loads(json.dumps(study_to_dict(study), sort_keys=True))
    golden = json.loads(GOLDEN.read_text())
    assert produced == golden, (
        "simulated behaviour drifted from the golden file; if the change "
        "is intentional, regenerate tests/golden/c5_tiny_study.json (see "
        "module docstring)"
    )
