"""Telemetry log/metrics and the ``python -m repro.service`` CLI."""

import json

import pytest

from repro.core.serialization import load_study
from repro.service.__main__ import main
from repro.service.telemetry import (
    CampaignMetrics,
    TelemetryLog,
    UnitMetrics,
    read_events,
)


class TestTelemetryLog:
    def test_events_mirror_memory_and_disk(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with TelemetryLog(path, clock=lambda: 123.0) as log:
            log.emit("campaign_started", units=4)
            log.emit("unit_started", unit="C5/0", attempt=0)
        assert [e["event"] for e in log.events] == [
            "campaign_started", "unit_started",
        ]
        events = read_events(path)
        assert events == log.events
        assert events[0] == {"event": "campaign_started", "ts": 123.0,
                             "units": 4}

    def test_each_line_is_standalone_json(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with TelemetryLog(path) as log:
            for index in range(5):
                log.emit("unit_finished", unit=f"C5/{index}")
        with open(path) as handle:
            lines = [line for line in handle if line.strip()]
        assert len(lines) == 5
        for line in lines:
            json.loads(line)

    def test_resume_appends_instead_of_truncating(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with TelemetryLog(path) as log:
            log.emit("campaign_started")
        with TelemetryLog(path, resume=True) as log:
            log.emit("campaign_finished")
        assert [e["event"] for e in read_events(path)] == [
            "campaign_started", "campaign_finished",
        ]

    def test_memory_only_without_path(self):
        log = TelemetryLog()
        log.emit("unit_started")
        log.close()
        assert log.events[0]["event"] == "unit_started"


class TestMetrics:
    def test_campaign_metrics_roundtrip(self):
        metrics = CampaignMetrics(units_planned=4, units_completed=3,
                                  units_failed=1, retries=2)
        metrics.record_fault("PowerDroopError")
        metrics.record_fault("PowerDroopError")
        metrics.quarantined["B3"] = "unit B3/0 failed 3 attempts"
        payload = metrics.as_dict()
        assert payload["faults"] == {"PowerDroopError": 2}
        assert payload["units_failed"] == 1
        summary = metrics.summary()
        assert "3/4 completed" in summary
        assert "PowerDroopError=2" in summary
        assert "quarantined  B3" in summary

    def test_unit_metrics_as_dict(self):
        record = UnitMetrics(unit_id="C5/0", module="C5")
        assert record.status == "pending"
        record.status = "completed"
        record.wall_seconds = 0.5
        assert record.as_dict()["wall_seconds"] == 0.5


BASE_ARGS = ["--modules", "C5", "--tests", "rowhammer", "--scale", "tiny",
             "--backoff", "0", "--quiet"]


class TestServiceCli:
    def test_happy_path(self, tmp_path, capsys):
        out = str(tmp_path / "study.json")
        code = main(BASE_ARGS + ["--no-checkpoint", "--out", out])
        assert code == 0
        study = load_study(out)
        assert list(study.modules) == ["C5"]
        assert study.modules["C5"].rowhammer
        captured = capsys.readouterr()
        assert "completed" in captured.out

    def test_scripted_fault_retries_and_logs(self, tmp_path, capsys):
        events_path = str(tmp_path / "events.jsonl")
        code = main(BASE_ARGS + [
            "--no-checkpoint",
            "--fault-script", "C5/0:0:power_droop",
            "--events", events_path,
        ])
        assert code == 0
        events = read_events(events_path)
        kinds = [e["event"] for e in events]
        assert "unit_fault" in kinds and "unit_retry" in kinds
        assert kinds[-1] == "campaign_finished"
        captured = capsys.readouterr()
        assert "retries   1" in captured.out

    def test_quarantine_exit_code(self, tmp_path, capsys):
        script = [
            arg
            for attempt in range(2)
            for arg in ("--fault-script", f"C5/0:{attempt}:host_disconnect")
        ]
        code = main(BASE_ARGS + ["--no-checkpoint", "--max-attempts", "2"]
                    + script)
        assert code == 3
        captured = capsys.readouterr()
        assert "quarantined" in captured.err

    def test_malformed_fault_script_is_config_error(self, capsys):
        assert main(BASE_ARGS + ["--fault-script", "nonsense"]) == 2
        assert main(BASE_ARGS + ["--fault-script", "C5/0:x:power_droop"]) == 2
        captured = capsys.readouterr()
        assert "error:" in captured.err

    def test_checkpointed_run_then_resume(self, tmp_path, capsys):
        args = BASE_ARGS + ["--checkpoint-dir", str(tmp_path / "ckpt")]
        assert main(args) == 0
        assert main(args + ["--resume"]) == 0
        captured = capsys.readouterr()
        assert "2 resumed from checkpoint" in captured.out


class TestRunnerIntegration:
    def test_unknown_experiment_id_exits_cleanly(self, capsys):
        from repro.harness.runner import main as runner_main

        code = runner_main(["fig99", "fig3"])
        assert code == 2
        captured = capsys.readouterr()
        assert "unknown experiment id(s): fig99" in captured.err
        assert "known ids:" in captured.err

    def test_parallel_and_orchestrate_are_exclusive(self, capsys):
        from repro.harness.runner import main as runner_main

        code = runner_main(["fig3", "--parallel", "2", "--orchestrate", "2"])
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_orchestrate_skips_campaignless_experiments(self, capsys):
        from repro.harness.runner import main as runner_main

        code = runner_main(["table2", "--orchestrate", "0", "--no-cache"])
        assert code == 0
        captured = capsys.readouterr()
        assert "no shared campaigns needed" in captured.out

    def test_orchestrate_parser_flags(self):
        from repro.harness.runner import build_parser

        args = build_parser().parse_args(
            ["fig3", "--orchestrate", "4", "--resume",
             "--service-dir", "ckpts", "--events", "log.jsonl"]
        )
        assert args.orchestrate == 4
        assert args.resume
        assert args.service_dir == "ckpts"
        assert args.events == "log.jsonl"
