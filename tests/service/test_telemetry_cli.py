"""Telemetry log/metrics and the ``python -m repro.service`` CLI."""

import json

import pytest

from repro.core.serialization import load_study
from repro.service.__main__ import main
from repro.service.telemetry import (
    CampaignMetrics,
    TelemetryLog,
    UnitMetrics,
    read_events,
)


class TestTelemetryLog:
    def test_events_mirror_memory_and_disk(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with TelemetryLog(path, clock=lambda: 123.0,
                          monotonic=lambda: 42.5) as log:
            log.emit("campaign_started", units=4)
            log.emit("unit_started", unit="C5/0", attempt=0)
        assert [e["event"] for e in log.events] == [
            "campaign_started", "unit_started",
        ]
        events = read_events(path)
        assert events == log.events
        assert events[0] == {"event": "campaign_started", "ts": 123.0,
                             "mono": 42.5, "units": 4}

    def test_every_record_carries_wall_and_monotonic_stamps(self):
        # ts is a wall-clock label (can jump under NTP/DST); mono is
        # the duration-safe timestamp documented in docs/SERVICE.md.
        log = TelemetryLog()
        log.emit("unit_started")
        log.emit("unit_finished")
        for record in log.events:
            assert isinstance(record["ts"], float)
            assert isinstance(record["mono"], float)
        assert log.events[1]["mono"] >= log.events[0]["mono"]
        log.close()

    def test_records_publish_on_the_event_bus(self):
        from repro.obs import events as obs_events

        seen = []
        sink = obs_events.subscribe(seen.append)
        try:
            log = TelemetryLog()
            log.emit("campaign_started", units=2)
            log.close()
        finally:
            obs_events.unsubscribe(sink)
        assert [r["event"] for r in seen] == ["campaign_started"]
        assert seen[0]["units"] == 2

    def test_each_line_is_standalone_json(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with TelemetryLog(path) as log:
            for index in range(5):
                log.emit("unit_finished", unit=f"C5/{index}")
        with open(path) as handle:
            lines = [line for line in handle if line.strip()]
        assert len(lines) == 5
        for line in lines:
            json.loads(line)

    def test_resume_appends_instead_of_truncating(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with TelemetryLog(path) as log:
            log.emit("campaign_started")
        with TelemetryLog(path, resume=True) as log:
            log.emit("campaign_finished")
        assert [e["event"] for e in read_events(path)] == [
            "campaign_started", "campaign_finished",
        ]

    def test_memory_only_without_path(self):
        log = TelemetryLog()
        log.emit("unit_started")
        log.close()
        assert log.events[0]["event"] == "unit_started"


class TestMetrics:
    def test_campaign_metrics_roundtrip(self):
        metrics = CampaignMetrics(units_planned=4, units_completed=3,
                                  units_failed=1, retries=2)
        metrics.record_fault("PowerDroopError")
        metrics.record_fault("PowerDroopError")
        metrics.quarantined["B3"] = "unit B3/0 failed 3 attempts"
        payload = metrics.as_dict()
        assert payload["faults"] == {"PowerDroopError": 2}
        assert payload["units_failed"] == 1
        summary = metrics.summary()
        assert "3/4 completed" in summary
        assert "PowerDroopError=2" in summary
        assert "quarantined  B3" in summary

    def test_unit_metrics_as_dict(self):
        record = UnitMetrics(unit_id="C5/0", module="C5")
        assert record.status == "pending"
        record.status = "completed"
        record.wall_seconds = 0.5
        assert record.as_dict()["wall_seconds"] == 0.5


BASE_ARGS = ["--modules", "C5", "--tests", "rowhammer", "--scale", "tiny",
             "--backoff", "0", "--quiet"]


class TestServiceCli:
    def test_happy_path(self, tmp_path, capsys):
        out = str(tmp_path / "study.json")
        code = main(BASE_ARGS + ["--no-checkpoint", "--out", out])
        assert code == 0
        study = load_study(out)
        assert list(study.modules) == ["C5"]
        assert study.modules["C5"].rowhammer
        captured = capsys.readouterr()
        assert "completed" in captured.out

    def test_scripted_fault_retries_and_logs(self, tmp_path, capsys):
        events_path = str(tmp_path / "events.jsonl")
        code = main(BASE_ARGS + [
            "--no-checkpoint",
            "--fault-script", "C5/0:0:power_droop",
            "--events", events_path,
        ])
        assert code == 0
        events = read_events(events_path)
        kinds = [e["event"] for e in events]
        assert "unit_fault" in kinds and "unit_retry" in kinds
        assert kinds[-1] == "campaign_finished"
        captured = capsys.readouterr()
        assert "retries   1" in captured.out

    def test_quarantine_exit_code(self, tmp_path, capsys):
        script = [
            arg
            for attempt in range(2)
            for arg in ("--fault-script", f"C5/0:{attempt}:host_disconnect")
        ]
        code = main(BASE_ARGS + ["--no-checkpoint", "--max-attempts", "2"]
                    + script)
        assert code == 3
        captured = capsys.readouterr()
        assert "quarantined" in captured.err

    def test_malformed_fault_script_is_config_error(self, capsys):
        assert main(BASE_ARGS + ["--fault-script", "nonsense"]) == 2
        assert main(BASE_ARGS + ["--fault-script", "C5/0:x:power_droop"]) == 2
        captured = capsys.readouterr()
        assert "error:" in captured.err

    def test_trace_metrics_and_provenance_flags(self, tmp_path, capsys):
        trace_path = str(tmp_path / "trace.json")
        metrics_path = str(tmp_path / "metrics.prom")
        out = str(tmp_path / "study.json")
        code = main(BASE_ARGS + [
            "--no-checkpoint", "--trace", trace_path,
            "--metrics-out", metrics_path, "--out", out,
        ])
        assert code == 0
        capsys.readouterr()

        with open(trace_path) as handle:
            document = json.load(handle)
        events = document["traceEvents"]
        names = {event["name"] for event in events}
        assert {"campaign", "service.unit", "module"} <= names
        assert all(event["ph"] == "X" for event in events)

        with open(metrics_path) as handle:
            text = handle.read()
        assert "# TYPE repro_probes_hammer_total counter" in text
        assert "# TYPE repro_service_unit_seconds histogram" in text
        assert 'repro_service_unit_seconds_bucket{le="+Inf"}' in text

        from repro.obs.provenance import validate_provenance

        study = load_study(out)
        block = validate_provenance(study.provenance)
        assert block["cache"] == "off"
        assert block["probe_engine"] in ("batch", "fast", "command")
        assert block["modules"] == ["C5"]

    def test_progress_flag_renders_rate_line(self, tmp_path, capsys):
        code = main(BASE_ARGS + ["--no-checkpoint", "--progress"])
        assert code == 0
        captured = capsys.readouterr()
        assert "units/s" in captured.err
        assert "probes/s" in captured.err

    def test_checkpointed_run_then_resume(self, tmp_path, capsys):
        args = BASE_ARGS + ["--checkpoint-dir", str(tmp_path / "ckpt")]
        assert main(args) == 0
        assert main(args + ["--resume"]) == 0
        captured = capsys.readouterr()
        assert "2 resumed from checkpoint" in captured.out


class TestRunnerIntegration:
    def test_unknown_experiment_id_exits_cleanly(self, capsys):
        from repro.harness.runner import main as runner_main

        code = runner_main(["fig99", "fig3"])
        assert code == 2
        captured = capsys.readouterr()
        assert "unknown experiment id(s): fig99" in captured.err
        assert "known ids:" in captured.err

    def test_parallel_and_orchestrate_are_exclusive(self, capsys):
        from repro.harness.runner import main as runner_main

        code = runner_main(["fig3", "--parallel", "2", "--orchestrate", "2"])
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_orchestrate_skips_campaignless_experiments(self, capsys):
        from repro.harness.runner import main as runner_main

        code = runner_main(["table2", "--orchestrate", "0", "--no-cache"])
        assert code == 0
        captured = capsys.readouterr()
        assert "no shared campaigns needed" in captured.out

    def test_orchestrate_parser_flags(self):
        from repro.harness.runner import build_parser

        args = build_parser().parse_args(
            ["fig3", "--orchestrate", "4", "--resume",
             "--service-dir", "ckpts", "--events", "log.jsonl"]
        )
        assert args.orchestrate == 4
        assert args.resume
        assert args.service_dir == "ckpts"
        assert args.events == "log.jsonl"
