"""CampaignService: scheduling, retries, quarantine, checkpoint/resume.

The load-bearing property throughout: an orchestrated campaign --
retried, resumed, or pool-parallel -- merges to ModuleResults
record-identical to a plain sequential ``CharacterizationStudy.run``.
"""

import pytest

from repro.core.scale import StudyScale
from repro.core.study import CharacterizationStudy
from repro.errors import ConfigurationError
from repro.service import CampaignService, FaultPlan
from repro.service.checkpoint import MANIFEST_NAME

TESTS = ("rowhammer",)
#: One module per vendor (Samsung / SK Hynix / Micron in the paper's
#: anonymized A/B/C naming) -- the resume differential must hold across
#: all three device models.
VENDOR_MODULES = ["A0", "B3", "C5"]

_SEQUENTIAL = {}


def sequential(modules, scale):
    """A memoized fault-free sequential reference study."""
    key = tuple(modules)
    if key not in _SEQUENTIAL:
        _SEQUENTIAL[key] = CharacterizationStudy(scale=scale, seed=0).run(
            modules=modules, tests=TESTS
        )
    return _SEQUENTIAL[key]


def assert_record_identical(study, reference, modules):
    for name in modules:
        merged = study.modules[name]
        expected = reference.modules[name]
        assert merged.vpp_levels == expected.vpp_levels
        assert merged.vppmin == expected.vppmin
        assert merged.rowhammer == expected.rowhammer
        assert merged.trcd == expected.trcd
        assert merged.retention == expected.retention


class TestInlineExecution:
    def test_matches_sequential_study(self, tiny_scale):
        outcome = CampaignService(
            modules=["C5"], tests=TESTS, scale=tiny_scale, seed=0
        ).run()
        assert_record_identical(
            outcome.study, sequential(["C5"], tiny_scale), ["C5"]
        )
        metrics = outcome.metrics
        assert metrics.units_completed == metrics.units_planned > 1
        assert metrics.retries == 0 and not metrics.quarantined

    def test_scripted_fault_retries_bit_identically(self, tiny_scale):
        plan = FaultPlan.script({("C5/0", 0): "power_droop"})
        service = CampaignService(
            modules=["C5"], tests=TESTS, scale=tiny_scale, seed=0,
            fault_plan=plan,
        )
        outcome = service.run()
        # The retry rebuilt the bench from the seed: same records.
        assert_record_identical(
            outcome.study, sequential(["C5"], tiny_scale), ["C5"]
        )
        assert outcome.metrics.retries == 1
        assert outcome.metrics.faults == {"PowerDroopError": 1}
        record = outcome.units["C5/0"]
        assert record.attempts == 2 and record.faults == ["PowerDroopError"]
        events = [e["event"] for e in service.telemetry.events]
        assert "unit_fault" in events and "unit_retry" in events

    def test_exhausted_attempts_quarantine_module_not_campaign(
        self, tiny_scale
    ):
        # B3/0 faults on every allowed attempt; C5 is untouched.
        plan = FaultPlan.script({
            ("B3/0", attempt): "host_disconnect" for attempt in range(2)
        })
        service = CampaignService(
            modules=["B3", "C5"], tests=TESTS, scale=tiny_scale, seed=0,
            fault_plan=plan, max_attempts=2,
        )
        outcome = service.run()
        assert set(outcome.study.modules) == {"C5"}
        assert_record_identical(
            outcome.study, sequential(["C5"], tiny_scale), ["C5"]
        )
        assert "B3" in outcome.metrics.quarantined
        assert outcome.units["B3/0"].status == "quarantined"
        # B3's sibling unit was dropped, not executed.
        assert outcome.units["B3/1"].status == "skipped"
        events = [e["event"] for e in service.telemetry.events]
        assert "module_quarantined" in events and "unit_skipped" in events

    def test_random_plan_with_retry_headroom_still_identical(
        self, tiny_scale
    ):
        # Every first attempt faults; retries are fault-free by plan.
        plan = FaultPlan(seed=11, rate=1.0, faulty_attempts=1)
        outcome = CampaignService(
            modules=["C5"], tests=TESTS, scale=tiny_scale, seed=0,
            fault_plan=plan, max_attempts=3,
        ).run()
        assert outcome.metrics.retries == outcome.metrics.units_planned
        assert_record_identical(
            outcome.study, sequential(["C5"], tiny_scale), ["C5"]
        )

    def test_validation(self, tiny_scale):
        with pytest.raises(ConfigurationError):
            CampaignService(["C5"], max_attempts=0)
        with pytest.raises(ConfigurationError):
            CampaignService(["C5"], backoff=-1.0)
        with pytest.raises(ConfigurationError):
            CampaignService(["C5"], checkpoint_dir="a", checkpoint_base="b")
        with pytest.raises(ConfigurationError):
            CampaignService(["C5"], probe_engine="warp")


class _SimulatedKill(Exception):
    """Stands in for SIGKILL mid-campaign in the resume tests."""


class TestCheckpointResume:
    def test_kill_midrun_then_resume_identical_across_vendors(
        self, tiny_scale, tmp_path
    ):
        """Satellite 3: kill after two units, resume, compare to an
        uninterrupted run for one module of each vendor."""
        reference = sequential(VENDOR_MODULES, tiny_scale)

        def kill_after_two(unit_id, done):
            if done == 2:
                raise _SimulatedKill(unit_id)

        service = CampaignService(
            modules=VENDOR_MODULES, tests=TESTS, scale=tiny_scale, seed=0,
            checkpoint_base=str(tmp_path),
        )
        with pytest.raises(_SimulatedKill):
            service.run(on_unit_done=kill_after_two)

        resumed = CampaignService(
            modules=VENDOR_MODULES, tests=TESTS, scale=tiny_scale, seed=0,
            checkpoint_base=str(tmp_path),
        )
        outcome = resumed.run(resume=True)
        assert outcome.metrics.units_resumed == 2
        assert (
            outcome.metrics.units_completed + outcome.metrics.units_resumed
            == outcome.metrics.units_planned
        )
        assert_record_identical(outcome.study, reference, VENDOR_MODULES)
        events = [e["event"] for e in resumed.telemetry.events]
        assert events.count("unit_resumed") == 2

    def test_resume_from_empty_directory_fails_clearly(
        self, tiny_scale, tmp_path
    ):
        service = CampaignService(
            modules=["C5"], tests=TESTS, scale=tiny_scale, seed=0,
            checkpoint_base=str(tmp_path),
        )
        with pytest.raises(ConfigurationError, match="cannot resume"):
            service.run(resume=True)

    def test_resume_refuses_foreign_campaign(self, tiny_scale, tmp_path):
        checkpoint_dir = str(tmp_path / "ckpt")
        CampaignService(
            modules=["C5"], tests=TESTS, scale=tiny_scale, seed=0,
            checkpoint_dir=checkpoint_dir,
        ).run()
        other = CampaignService(
            modules=["C5"], tests=TESTS, scale=tiny_scale, seed=1,
            checkpoint_dir=checkpoint_dir,
        )
        with pytest.raises(ConfigurationError, match="different campaign"):
            other.run(resume=True)

    def test_campaigns_get_distinct_directories_under_one_base(
        self, tiny_scale, tmp_path
    ):
        a = CampaignService(modules=["C5"], tests=TESTS, scale=tiny_scale,
                            seed=0, checkpoint_base=str(tmp_path))
        b = CampaignService(modules=["C5"], tests=TESTS, scale=tiny_scale,
                            seed=1, checkpoint_base=str(tmp_path))
        assert a.checkpoint_dir != b.checkpoint_dir
        a.run()
        # Seed-1's directory was never created; seed-0's holds the
        # manifest plus one file per unit.
        import os

        assert (tmp_path / os.path.basename(a.checkpoint_dir)
                / MANIFEST_NAME).is_file()

    def test_corrupt_unit_checkpoint_is_rerun(self, tiny_scale, tmp_path):
        import os

        checkpoint_dir = str(tmp_path / "ckpt")
        CampaignService(
            modules=["C5"], tests=TESTS, scale=tiny_scale, seed=0,
            checkpoint_dir=checkpoint_dir,
        ).run()
        unit_files = [f for f in os.listdir(checkpoint_dir)
                      if f.startswith("unit-")]
        with open(os.path.join(checkpoint_dir, unit_files[0]), "w") as fh:
            fh.write("{broken")
        outcome = CampaignService(
            modules=["C5"], tests=TESTS, scale=tiny_scale, seed=0,
            checkpoint_dir=checkpoint_dir,
        ).run(resume=True)
        assert outcome.metrics.units_resumed == len(unit_files) - 1
        assert outcome.metrics.units_completed == 1
        assert_record_identical(
            outcome.study, sequential(["C5"], tiny_scale), ["C5"]
        )


class TestPoolExecution:
    def test_pool_matches_sequential(self, tiny_scale):
        outcome = CampaignService(
            modules=["B3", "C5"], tests=TESTS, scale=tiny_scale, seed=0,
            max_workers=2,
        ).run()
        assert_record_identical(
            outcome.study, sequential(["B3", "C5"], tiny_scale),
            ["B3", "C5"],
        )

    def test_pool_fault_crosses_process_boundary(self, tiny_scale):
        # The FaultSpec pickles into the worker; the raised
        # BenchFaultError pickles back and triggers a retry here.
        plan = FaultPlan.script({("C5/1", 0): "fpga_timeout"})
        outcome = CampaignService(
            modules=["C5"], tests=TESTS, scale=tiny_scale, seed=0,
            max_workers=2, fault_plan=plan,
        ).run()
        assert outcome.metrics.retries == 1
        assert outcome.metrics.faults == {"FpgaTimeoutError": 1}
        assert_record_identical(
            outcome.study, sequential(["C5"], tiny_scale), ["C5"]
        )
