"""Work-unit planning and fault injection (repro.service.jobs/faults)."""

import pytest

from repro.core.sampling import sample_rows
from repro.core.scale import StudyScale
from repro.dram.module import DramModule
from repro.dram.profiles import module_profile
from repro.errors import (
    BenchFaultError,
    CommunicationError,
    ConfigurationError,
    FpgaTimeoutError,
    HostDisconnectError,
    PowerDroopError,
    PowerSupplyError,
)
from repro.service.faults import (
    FAULT_KINDS,
    SITE_OF_KIND,
    FaultInjector,
    FaultPlan,
    FaultSpec,
)
from repro.service.jobs import plan_units
from repro.softmc.infrastructure import TestInfrastructure
from repro.softmc.power_supply import DROOP_FLOOR


class TestPlanUnits:
    def test_covers_every_sampled_row_in_order(self, tiny_scale):
        from repro.core.campaign import module_mapping

        units = plan_units(["C5"], tiny_scale, tests=("rowhammer",))
        mapping = module_mapping("C5", tiny_scale)
        expected = sample_rows(
            mapping.num_rows, tiny_scale.rows_per_module,
            tiny_scale.row_chunks,
        )
        covered = [row for unit in units for row in unit.rows]
        assert covered == list(expected)

    def test_unit_ids_stable_and_ordered(self, tiny_scale):
        units = plan_units(["B3", "C5"], tiny_scale, tests=("rowhammer",))
        assert [u.unit_id for u in units] == [
            f"{u.module}/{u.chunk_index}" for u in units
        ]
        modules = [u.module for u in units]
        assert modules == sorted(modules, key=["B3", "C5"].index)
        again = plan_units(["B3", "C5"], tiny_scale, tests=("rowhammer",))
        assert units == again

    def test_unknown_test_rejected(self, tiny_scale):
        with pytest.raises(ConfigurationError):
            plan_units(["C5"], tiny_scale, tests=("voltage",))

    def test_empty_tests_rejected(self, tiny_scale):
        with pytest.raises(ConfigurationError):
            plan_units(["C5"], tiny_scale, tests=())

    def test_duplicate_module_rejected(self, tiny_scale):
        with pytest.raises(ConfigurationError):
            plan_units(["C5", "C5"], tiny_scale, tests=("rowhammer",))

    def test_unknown_module_rejected(self, tiny_scale):
        with pytest.raises(ConfigurationError):
            plan_units(["Z9"], tiny_scale, tests=("rowhammer",))


class TestFaultPlan:
    def test_spec_for_is_deterministic(self):
        plan = FaultPlan(seed=3, rate=0.5)
        decisions = [plan.spec_for("C5/0", 0) for _ in range(3)]
        assert decisions[0] == decisions[1] == decisions[2]
        assert plan.spec_for("C5/0", 0) == FaultPlan(
            seed=3, rate=0.5
        ).spec_for("C5/0", 0)

    def test_zero_rate_never_faults(self):
        plan = FaultPlan(seed=0, rate=0.0)
        assert all(
            plan.spec_for(f"C5/{i}", 0) is None for i in range(20)
        )

    def test_rate_one_faults_first_attempt_only(self):
        plan = FaultPlan(seed=0, rate=1.0, faulty_attempts=1)
        spec = plan.spec_for("B3/1", 0)
        assert spec is not None and spec.kind in FAULT_KINDS
        assert plan.spec_for("B3/1", 1) is None

    def test_scripted_overrides_random(self):
        plan = FaultPlan(
            seed=0, rate=0.0,
            scripted={("C5/0", 2): "host_disconnect"},
        )
        spec = plan.spec_for("C5/0", 2)
        assert spec == FaultSpec(kind="host_disconnect", after=1)
        assert plan.spec_for("C5/0", 0) is None

    def test_script_classmethod(self):
        plan = FaultPlan.script({("A0/0", 0): "fpga_timeout"})
        assert plan.spec_for("A0/0", 0).site == "fpga"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(rate=1.5)
        with pytest.raises(ConfigurationError):
            FaultPlan(kinds=())
        with pytest.raises(ConfigurationError):
            FaultPlan(kinds=("meteor_strike",))
        with pytest.raises(ConfigurationError):
            FaultPlan.script({("C5/0", 0): "meteor_strike"})
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="power_droop", after=0)
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="nope")

    def test_every_kind_has_a_site(self):
        assert set(SITE_OF_KIND) == set(FAULT_KINDS)


def _bench(name="B3", spec=None, seed=7):
    module = DramModule(module_profile(name), seed=seed)
    injector = FaultInjector(spec) if spec is not None else None
    return module, injector


class TestFaultSites:
    def test_power_droop_sags_the_rail(self):
        module, injector = _bench(
            spec=FaultSpec(kind="power_droop", after=1)
        )
        # The bench drives the rail during bring-up; the injected droop
        # strikes the very first setpoint.
        with pytest.raises(PowerDroopError):
            TestInfrastructure(module, fault_injector=injector)
        assert module.env.vpp <= DROOP_FLOOR

    def test_fpga_timeout_strikes_command_execution(self):
        module, injector = _bench(
            spec=FaultSpec(kind="fpga_timeout", after=1)
        )
        infra = TestInfrastructure(module, fault_injector=injector)
        with pytest.raises(FpgaTimeoutError):
            infra.communicates()

    def test_host_disconnect_strikes_program_launch(self):
        module, injector = _bench(
            spec=FaultSpec(kind="host_disconnect", after=1)
        )
        infra = TestInfrastructure(module, fault_injector=injector)
        with pytest.raises(HostDisconnectError):
            infra.communicates()

    def test_injector_counts_only_its_site_and_fires_once(self):
        injector = FaultInjector(FaultSpec(kind="host_disconnect", after=2))
        injector.tick("supply")  # wrong site: no count
        injector.tick("fpga")    # wrong site: no count
        injector.tick("host")    # 1 of 2
        with pytest.raises(HostDisconnectError):
            injector.tick("host")
        assert injector.fired
        injector.tick("host")  # armed at most once per attempt

    def test_none_spec_is_inert(self):
        injector = FaultInjector(None)
        for _ in range(10):
            injector.tick("host")
        assert not injector.fired


class TestErrorLayering:
    def test_faults_are_bench_faults(self):
        for error in (PowerDroopError, FpgaTimeoutError,
                      HostDisconnectError):
            assert issubclass(error, BenchFaultError)

    def test_faults_never_masquerade_as_communication_loss(self):
        # Regression guard: infrastructure.communicates() catches
        # CommunicationError during the V_PPmin search. An injected
        # fault must propagate, not silently shift the V_PP grid.
        for error in (BenchFaultError, PowerDroopError, FpgaTimeoutError,
                      HostDisconnectError):
            assert not issubclass(error, CommunicationError)
            assert not issubclass(error, PowerSupplyError)

    def test_vppmin_search_unaffected_by_late_armed_fault(self):
        # A fault armed far beyond the search's operation count leaves
        # the V_PP grid identical to a fault-free bench.
        clean = TestInfrastructure.for_module("B3", seed=7)
        module, injector = _bench(
            spec=FaultSpec(kind="host_disconnect", after=10_000)
        )
        faulty = TestInfrastructure(module, fault_injector=injector)
        assert faulty.vpp_levels() == clean.vpp_levels()
