"""Hung-worker recovery: the ``unit_timeout`` reaper and outcome dedup.

A stalling bench fault (``FaultSpec.hang_seconds``) makes a pool worker
go quiet instead of failing fast. The coordinator's deadline reaper
must declare the attempt dead, kill the stuck worker processes, charge
the unit a :class:`~repro.errors.WorkerTimeoutError`, and retry -- and
the retried campaign must still merge record-identical to a sequential
fault-free run, with every counter exact (no double counting from a
late duplicate outcome).
"""

import os

import pytest

from repro.core.study import CharacterizationStudy
from repro.errors import ConfigurationError
from repro.obs import clock
from repro.obs.metrics import REGISTRY
from repro.service import CampaignService
from repro.service.faults import FaultSpec
from repro.service.jobs import plan_units
from repro.service.orchestrator import _RunState, _execute_unit
from repro.service.telemetry import CampaignMetrics, UnitMetrics

TESTS = ("rowhammer",)

#: Far longer than the campaign could ever take: the test only passes
#: because the reaper fires, never because the hang runs its course.
HANG_SECONDS = 120.0


class HangOneAttempt:
    """Fault plan whose scripted attempt stalls the bench instead of
    failing fast (duck-typed stand-in for FaultPlan)."""

    def __init__(self, unit_id: str, attempt: int = 0):
        self.unit_id = unit_id
        self.attempt = attempt

    def spec_for(self, unit_id, attempt):
        if (unit_id, attempt) == (self.unit_id, self.attempt):
            return FaultSpec(
                "power_droop", after=1, hang_seconds=HANG_SECONDS
            )
        return None


class TestUnitTimeoutValidation:
    @pytest.mark.parametrize("timeout", [0, -1.5])
    def test_rejects_non_positive_timeout(self, tiny_scale, timeout):
        with pytest.raises(ConfigurationError):
            CampaignService(
                modules=["C5"], scale=tiny_scale, unit_timeout=timeout
            )

    def test_none_disables_reaper(self, tiny_scale):
        service = CampaignService(modules=["C5"], scale=tiny_scale)
        assert service.unit_timeout is None


class TestHungWorkerReaping:
    def test_hung_attempt_is_reaped_and_retried(self, tiny_scale):
        plan = HangOneAttempt("C5/0", attempt=0)
        service = CampaignService(
            modules=["C5"], tests=TESTS, scale=tiny_scale, seed=0,
            max_workers=2, fault_plan=plan, unit_timeout=3.0,
        )
        started = clock.monotonic()
        outcome = service.run()
        wall = clock.monotonic() - started
        # The reaper ended the hang; the campaign never waited it out.
        assert wall < HANG_SECONDS / 2
        assert outcome.metrics.faults == {"WorkerTimeoutError": 1}
        assert outcome.metrics.retries == 1
        assert outcome.metrics.units_completed == (
            outcome.metrics.units_planned
        )
        assert not outcome.metrics.quarantined
        record = outcome.units["C5/0"]
        assert record.status == "completed"
        assert record.faults == ["WorkerTimeoutError"]
        events = [e["event"] for e in service.telemetry.events]
        assert "pool_reaped" in events
        # The retry rebuilt its bench from the campaign seed: the study
        # is record-identical to a sequential fault-free run.
        reference = CharacterizationStudy(scale=tiny_scale, seed=0).run(
            modules=["C5"], tests=TESTS
        )
        merged = outcome.study.modules["C5"]
        expected = reference.modules["C5"]
        assert merged.vppmin == expected.vppmin
        assert merged.rowhammer == expected.rowhammer

    def test_reap_counts_in_registry(self, tiny_scale):
        before = REGISTRY.counter_values().get(
            "repro_service_worker_timeouts_total", 0.0
        )
        CampaignService(
            modules=["C5"], tests=TESTS, scale=tiny_scale, seed=0,
            max_workers=2, fault_plan=HangOneAttempt("C5/0"),
            unit_timeout=3.0,
        ).run()
        after = REGISTRY.counter_values().get(
            "repro_service_worker_timeouts_total", 0.0
        )
        assert after == before + 1


class TestReaperMergeHardening:
    """Regression: pool workers observe the labeled
    ``repro_service_unit_run_seconds{engine}`` histogram inside their
    delta window, and the coordinator never registers that family
    itself -- so a reaped-and-retried campaign exercises
    ``merge_snapshot``'s create-on-merge path for labeled histograms
    through the real timeout machinery."""

    def test_worker_labeled_histogram_survives_the_reap_path(
        self, tiny_scale
    ):
        family = REGISTRY.histogram(
            "repro_service_unit_run_seconds",
            labels=("engine",),
        )
        service = CampaignService(
            modules=["C5"], tests=TESTS, scale=tiny_scale, seed=0,
            max_workers=2, fault_plan=HangOneAttempt("C5/0"),
            unit_timeout=3.0,
        )
        engine = service.probe_engine
        before = family.labels(engine=engine).count
        outcome = service.run()
        completed = outcome.metrics.units_completed
        assert completed == outcome.metrics.units_planned
        # One delta per completed unit arrived (the reaped attempt's
        # never did), and merging created/extended the labeled series.
        assert family.labels(engine=engine).count == before + completed
        assert family.labels(engine=engine).sum > 0

    def test_reap_and_hang_paths_dump_the_flight_recorder(
        self, tiny_scale, tmp_path
    ):
        flight_dir = str(tmp_path / "flightrec")
        CampaignService(
            modules=["C5"], tests=TESTS, scale=tiny_scale, seed=0,
            max_workers=2, fault_plan=HangOneAttempt("C5/0"),
            unit_timeout=3.0, flight_dir=flight_dir,
        ).run()
        names = sorted(os.listdir(flight_dir))
        reasons = {name.rsplit("-", 1)[-1] for name in names}
        # The hung worker flushed before going quiet; the coordinator
        # flushed when the reaper declared the attempt dead.
        assert "hang_injected.json" in reasons
        assert "pool_reaped.json" in reasons
    def _state(self, units):
        return _RunState(
            units=units, pending=list(units), completed={},
            metrics=CampaignMetrics(units_planned=len(units)),
            unit_metrics={
                u.unit_id: UnitMetrics(unit_id=u.unit_id, module=u.module)
                for u in units
            },
            on_unit_done=None, store=None,
        )

    def test_duplicate_outcome_dropped_whole(self, tiny_scale):
        """A late duplicate outcome neither re-finishes the unit nor
        re-merges its metric delta -- counters stay exact."""
        service = CampaignService(
            modules=["C5"], tests=TESTS, scale=tiny_scale, seed=0
        )
        units = plan_units(["C5"], tiny_scale, TESTS, None)
        unit = units[0]
        result, wall, delta, _ = _execute_unit(service._job(unit, 0))
        assert delta["counters"], "the attempt must have moved counters"
        state = self._state(units)
        assert service._deliver_result(
            state, unit, 0, result, wall, delta
        ) is True
        first = REGISTRY.counter_values()
        assert service._deliver_result(
            state, unit, 1, result, wall, delta
        ) is False
        second = REGISTRY.counter_values()
        moved = {
            name: value - first.get(name, 0.0)
            for name, value in second.items()
            if value != first.get(name, 0.0)
        }
        assert moved == {"repro_service_duplicate_results_total": 1.0}
        assert state.metrics.units_completed == 1
        assert state.metrics.duplicates_dropped == 1
        events = [e["event"] for e in service.telemetry.events]
        assert events.count("unit_finished") == 1
        assert "unit_duplicate_dropped" in events

    def test_requeued_attempt_merges_delta_once(self, tiny_scale):
        """A restarted (innocent) unit whose first outcome never arrived
        still merges exactly one delta."""
        service = CampaignService(
            modules=["C5"], tests=TESTS, scale=tiny_scale, seed=0
        )
        units = plan_units(["C5"], tiny_scale, TESTS, None)
        unit = units[0]
        result, wall, delta, _ = _execute_unit(service._job(unit, 0))
        state = self._state(units)
        # Simulate the reap path: the delta was merged for attempt 0,
        # but the outcome never surfaced (worker killed mid-return).
        REGISTRY.merge_snapshot(delta)
        state.merged_units.add(unit.unit_id)
        before = REGISTRY.counter_values()
        assert service._deliver_result(
            state, unit, 1, result, wall, delta
        ) is True
        after = REGISTRY.counter_values()
        # Delivery completed the unit without re-merging the delta.
        assert state.metrics.units_completed == 1
        for name in delta.get("counters", {}):
            assert after.get(name) == before.get(name)
