"""Trace generation, replay, and attack feasibility."""

import pytest

from repro.dram.calibration import ModuleGeometry
from repro.dram.module import DramModule
from repro.dram.profiles import module_profile
from repro.errors import AnalysisError, ConfigurationError
from repro.system import ControllerPolicy, MemoryController
from repro.system.trace import (
    Op,
    TraceEntry,
    attack_feasibility,
    random_trace,
    replay,
    rowhammer_trace,
    sequential_trace,
)
from repro.units import ms, ns

GEOMETRY = ModuleGeometry(rows_per_bank=512, banks=2, row_bits=2048)


def make_controller(name="C5", seed=1):
    module = DramModule(module_profile(name), geometry=GEOMETRY, seed=seed)
    return MemoryController(module, ControllerPolicy.nominal())


class TestGenerators:
    def test_sequential(self):
        trace = sequential_trace(0x100, 4, stride=16)
        assert [e.address for e in trace] == [0x100, 0x110, 0x120, 0x130]
        assert all(e.op is Op.READ for e in trace)

    def test_random_within_capacity(self):
        controller = make_controller()
        trace = random_trace(controller.mapping, 200, seed=3)
        assert len(trace) == 200
        assert all(0 <= e.address < controller.mapping.capacity for e in trace)
        assert all(e.address % 8 == 0 for e in trace)

    def test_random_deterministic(self):
        controller = make_controller()
        a = random_trace(controller.mapping, 50, seed=5)
        b = random_trace(controller.mapping, 50, seed=5)
        assert a == b

    def test_alignment_enforced(self):
        with pytest.raises(ConfigurationError):
            TraceEntry(Op.READ, 3)

    def test_rowhammer_trace_alternates(self):
        controller = make_controller()
        trace = list(
            rowhammer_trace(controller.mapping, 0, [10, 12], hammer_count=3)
        )
        assert len(trace) == 6
        assert trace[0].address != trace[1].address
        assert trace[0].address == trace[2].address


class TestReplay:
    def test_sequential_is_row_buffer_friendly(self):
        controller = make_controller()
        stats = replay(
            controller, sequential_trace(0, 64, stride=8)
        )
        assert stats.row_hit_rate > 0.9

    def test_hammer_trace_forces_activations(self):
        """Every access of the attack loop re-activates (the loop's whole
        point): zero row-buffer hits."""
        controller = make_controller()
        bank = controller.module.bank(0)
        victim = 40
        aggressors = bank.mapping.physical_neighbors(victim)
        stats = replay(
            controller,
            rowhammer_trace(controller.mapping, 0, aggressors, 500),
        )
        assert stats.row_hits == 0
        assert stats.activations == 1000
        # The victim accumulated real hammer damage through the
        # controller path.
        assert bank.row_hammer_damage(victim) > 0

    def test_write_replay(self):
        controller = make_controller()
        trace = sequential_trace(0, 4, op=Op.WRITE)
        replay(controller, trace, write_payload=b"\x77" * 8)
        assert controller.read(0, 8) == b"\x77" * 8

    def test_payload_validated(self):
        controller = make_controller()
        with pytest.raises(ConfigurationError):
            replay(controller, [], write_payload=b"xy")


class TestFeasibility:
    def test_footnote8_numbers(self):
        """4.8K (weakest modern chip) and 140.7K (A5) both fit many times
        over in a 64 ms window -- the paper's system-level feasibility."""
        weakest = attack_feasibility(4_800)
        assert weakest.feasible
        assert weakest.attacks_per_window > 100
        strongest = attack_feasibility(140_700)
        assert strongest.feasible
        assert strongest.attacks_per_window < weakest.attacks_per_window

    def test_reduced_vpp_shrinks_headroom(self):
        # B3: 16.6K -> 21.1K at V_PPmin.
        nominal = attack_feasibility(16_600)
        reduced = attack_feasibility(21_100)
        assert reduced.attacks_per_window < nominal.attacks_per_window

    def test_validation(self):
        with pytest.raises(AnalysisError):
            attack_feasibility(0)
        with pytest.raises(AnalysisError):
            attack_feasibility(1000, trefw=0.0)

    def test_window_math(self):
        report = attack_feasibility(1000, trefw=ms(64.0), trc=ns(64.0))
        assert report.window_activations == 1_000_000
        assert report.attacks_per_window == pytest.approx(500.0)
