"""The V_PP-aware memory controller."""

import numpy as np
import pytest

from repro.dram.calibration import ModuleGeometry
from repro.dram.module import DramModule
from repro.dram.profiles import module_profile
from repro.errors import CommunicationError, ConfigurationError
from repro.system import ControllerPolicy, MemoryController
from repro.units import ms, ns

GEOMETRY = ModuleGeometry(rows_per_bank=512, banks=2, row_bits=2048)


def make_controller(name="B3", policy=None, seed=3):
    module = DramModule(module_profile(name), geometry=GEOMETRY, seed=seed)
    return MemoryController(module, policy or ControllerPolicy.nominal())


class TestPolicy:
    def test_nominal(self):
        policy = ControllerPolicy.nominal()
        assert policy.vpp == 2.5
        assert not policy.ecc_enabled

    def test_builders(self):
        policy = (
            ControllerPolicy.nominal()
            .at_vpp(1.7)
            .with_mitigations(trcd=ns(24.0), ecc=True,
                              selective_refresh_rows=[(0, 5)])
        )
        assert policy.vpp == 1.7
        assert policy.trcd == ns(24.0)
        assert policy.ecc_enabled
        assert (0, 5) in policy.selective_refresh_rows

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ControllerPolicy(vpp=0.0)
        with pytest.raises(ConfigurationError):
            ControllerPolicy(trcd=-1.0)


class TestDataPath:
    def test_write_read_roundtrip(self):
        controller = make_controller()
        payload = bytes(range(64)) * 2
        controller.write(0x1000, payload)
        assert controller.read(0x1000, len(payload)) == payload

    def test_alignment_enforced(self):
        controller = make_controller()
        with pytest.raises(ConfigurationError):
            controller.read(3, 8)
        with pytest.raises(ConfigurationError):
            controller.write(0, b"abc")

    def test_row_buffer_hits(self):
        controller = make_controller()
        controller.write(0, b"\x11" * 8)
        controller.read(0, 8)
        controller.read(8, 8)  # same row
        assert controller.stats.row_hits >= 2
        assert controller.stats.row_misses == 1

    def test_bank_interleaving_misses(self):
        controller = make_controller()
        row_bytes = controller.mapping.row_bytes
        controller.write(0, b"\x11" * 8)            # bank 0, row 0
        controller.write(row_bytes, b"\x22" * 8)    # bank 1, row 0
        assert controller.stats.row_misses == 2
        # Both rows stay open: next touches are hits.
        controller.read(0, 8)
        controller.read(row_bytes, 8)
        assert controller.stats.row_hits == 2

    def test_below_vppmin_rejected(self):
        with pytest.raises(CommunicationError):
            make_controller("B3", ControllerPolicy.nominal().at_vpp(1.4))


class TestEcc:
    def test_single_flip_corrected(self):
        controller = make_controller(
            policy=ControllerPolicy.nominal().with_mitigations(ecc=True)
        )
        controller.write(0x800, b"\xa5" * 8)
        # Corrupt one stored bit behind the controller's back.
        decoded = controller.mapping.decode(0x800)
        bank = controller.module.bank(decoded.bank)
        physical = bank.mapping.to_physical(decoded.row)
        bank._rows[physical].data[decoded.column * 64 + 7] ^= 1
        data = controller.read(0x800, 8)
        assert data == b"\xa5" * 8
        assert controller.stats.ecc_corrected == 1

    def test_double_flip_detected(self):
        controller = make_controller(
            policy=ControllerPolicy.nominal().with_mitigations(ecc=True)
        )
        controller.write(0x800, b"\xa5" * 8)
        decoded = controller.mapping.decode(0x800)
        bank = controller.module.bank(decoded.bank)
        physical = bank.mapping.to_physical(decoded.row)
        bank._rows[physical].data[decoded.column * 64 + 7] ^= 1
        bank._rows[physical].data[decoded.column * 64 + 23] ^= 1
        from repro.errors import UncorrectableError

        with pytest.raises(UncorrectableError):
            controller.read(0x800, 8)
        assert controller.stats.ecc_uncorrectable == 1

    def test_unprotected_word_passes_through(self):
        controller = make_controller(
            policy=ControllerPolicy.nominal().with_mitigations(ecc=True)
        )
        # Read a never-written (powerup) word: no parity, no crash.
        controller.read(0x0, 8)
        assert controller.stats.ecc_corrected == 0


class TestRefresh:
    def test_sweep_runs_when_window_passes(self):
        controller = make_controller()
        controller.write(0, b"\x0f" * 8)
        controller.module.env.advance(ms(70.0))
        controller.read(0, 8)
        assert controller.stats.refresh_sweeps >= 1

    def test_refresh_preserves_data_across_long_idle(self):
        """With refresh catch-up, data survives seconds of idle time that
        would decay an unrefreshed row."""
        controller = make_controller()
        controller.module.env.set_temperature(80.0)
        payload = b"\xff" * controller.mapping.row_bytes
        controller.write(0, payload)
        controller.flush()
        for _ in range(8):
            controller.module.env.advance(0.5)
            controller.flush()  # catch-up refresh keeps charge topped up
        assert controller.read(0, len(payload)) == payload

    def test_idle_is_deadline_accurate(self):
        """idle() performs refresh AT the deadline, not after the jump:
        weak-tier data on an offender module survives only this way."""
        policy = ControllerPolicy.nominal()
        controller = make_controller("B3", policy)
        env = controller.module.env
        start = env.now
        controller.idle(ms(200.0))
        assert env.now - start == pytest.approx(
            ms(200.0), rel=0.05
        )  # sweeps charge some extra simulated time
        assert controller.stats.refresh_sweeps >= 3

    def test_idle_rejects_negative(self):
        controller = make_controller()
        with pytest.raises(ConfigurationError):
            controller.idle(-1.0)

    def test_selective_refresh_counts(self):
        policy = ControllerPolicy.nominal().with_mitigations(
            selective_refresh_rows=[(0, 0)]
        )
        controller = make_controller(policy=policy)
        controller.write(0, b"\x33" * 8)
        controller.module.env.advance(ms(40.0))  # past the half window
        controller.read(0, 8)
        assert controller.stats.selective_refreshes >= 1


class TestPagePolicy:
    def test_closed_page_never_hits(self):
        policy = ControllerPolicy(page_policy="closed")
        controller = make_controller(policy=policy)
        controller.write(0, b"\x11" * 8)
        controller.read(0, 8)
        controller.read(0, 8)
        assert controller.stats.row_hits == 0
        assert controller.stats.row_misses == 3

    def test_closed_page_data_intact(self):
        policy = ControllerPolicy(page_policy="closed")
        controller = make_controller(policy=policy)
        payload = bytes(range(32))
        controller.write(0x40, payload)
        assert controller.read(0x40, len(payload)) == payload

    def test_policy_validated(self):
        with pytest.raises(ConfigurationError):
            ControllerPolicy(page_policy="half-open")


class TestBankIsolation:
    def test_hammering_one_bank_never_touches_another(self):
        controller = make_controller()
        module = controller.module
        bank0, bank1 = module.bank(0), module.bank(1)
        victim = 40
        pattern_bits = np.ones(GEOMETRY.row_bits, dtype=np.uint8)
        for bank in (bank0, bank1):
            bank.activate(victim)
            bank.write_row(pattern_bits)
            bank.precharge()
        aggressors = bank0.mapping.physical_neighbors(victim)
        bank0.hammer(aggressors, 5_000_000)
        # Bank 1's row is untouched: no damage, no flips.
        assert bank1.row_hammer_damage(victim) == 0.0
        bank1.activate(victim)
        assert np.array_equal(bank1.read_row(), pattern_bits)
        bank1.precharge()
