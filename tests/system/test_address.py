"""Physical-address translation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dram.calibration import ModuleGeometry
from repro.errors import DramAddressError
from repro.system.address import AddressMapping

GEOMETRY = ModuleGeometry(rows_per_bank=256, banks=4, row_bits=1024)
MAPPING = AddressMapping(GEOMETRY)


def test_capacity():
    assert MAPPING.capacity == 4 * 256 * (1024 // 8)
    assert MAPPING.row_bytes == 128


def test_decode_layout():
    # First row stripe: bank 0, row 0.
    first = MAPPING.decode(0)
    assert (first.bank, first.row, first.column, first.byte_offset) == (
        0, 0, 0, 0,
    )
    # Next stripe rotates banks before rows (open-page interleaving).
    next_stripe = MAPPING.decode(MAPPING.row_bytes)
    assert (next_stripe.bank, next_stripe.row) == (1, 0)
    wrapped = MAPPING.decode(MAPPING.row_bytes * GEOMETRY.banks)
    assert (wrapped.bank, wrapped.row) == (0, 1)


def test_encode_decode_roundtrip_exhaustive_corners():
    for bank in (0, 3):
        for row in (0, 255):
            for column in (0, 15):
                address = MAPPING.encode(bank, row, column, 5)
                decoded = MAPPING.decode(address)
                assert (decoded.bank, decoded.row, decoded.column,
                        decoded.byte_offset) == (bank, row, column, 5)


def test_out_of_range_rejected():
    with pytest.raises(DramAddressError):
        MAPPING.decode(MAPPING.capacity)
    with pytest.raises(DramAddressError):
        MAPPING.encode(4, 0)
    with pytest.raises(DramAddressError):
        MAPPING.encode(0, 256)


def test_row_base_address():
    base = MAPPING.row_base_address(2, 10)
    decoded = MAPPING.decode(base)
    assert (decoded.bank, decoded.row, decoded.column) == (2, 10, 0)


@given(st.integers(min_value=0, max_value=MAPPING.capacity - 1))
def test_roundtrip_property(address):
    decoded = MAPPING.decode(address)
    assert MAPPING.encode(
        decoded.bank, decoded.row, decoded.column, decoded.byte_offset
    ) == address
