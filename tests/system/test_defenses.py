"""Defense cost models."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.system.defenses import (
    BlockHammerThrottle,
    GrapheneDefense,
    ParaDefense,
    activations_per_window,
)


class TestPara:
    para = ParaDefense(target_failure_probability=1e-15)

    def test_probability_meets_target(self):
        for hcfirst in (4_800, 16_600, 140_700):
            p = self.para.required_probability(hcfirst)
            failure = hcfirst * math.log(1.0 - p)
            assert math.exp(failure) <= 1e-15 * (1 + 1e-9)

    def test_overhead_shrinks_with_hcfirst(self):
        """Section 3's synergy: a higher HC_first (reduced V_PP) needs a
        lower refresh probability."""
        low = self.para.bandwidth_overhead(16_600)
        high = self.para.bandwidth_overhead(21_100)  # B3 at V_PPmin
        assert high < low
        # +27% HC_first -> ~21% overhead reduction (1/HC_first scaling).
        assert high / low == pytest.approx(16_600 / 21_100, rel=0.01)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ParaDefense(target_failure_probability=0.0)
        with pytest.raises(ConfigurationError):
            self.para.required_probability(0)


class TestGraphene:
    graphene = GrapheneDefense()

    def test_threshold_is_half_hcfirst(self):
        assert self.graphene.counter_threshold(16_600) == 8_300

    def test_table_shrinks_with_hcfirst(self):
        small = self.graphene.table_entries(40_000)
        large = self.graphene.table_entries(10_000)
        assert small < large

    def test_table_covers_window(self):
        entries = self.graphene.table_entries(16_600)
        window = activations_per_window()
        assert entries * self.graphene.counter_threshold(16_600) >= window

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            self.graphene.counter_threshold(1)


class TestBlockHammer:
    throttle = BlockHammerThrottle()

    def test_safe_rate_scales_with_hcfirst(self):
        assert self.throttle.max_safe_rate(20_000) == pytest.approx(
            2 * self.throttle.max_safe_rate(10_000)
        )

    def test_throttled_fraction(self):
        safe = self.throttle.max_safe_rate(16_600)
        assert self.throttle.throttled_fraction(16_600, safe / 2) == 0.0
        assert self.throttle.throttled_fraction(16_600, safe * 2) == (
            pytest.approx(0.5)
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BlockHammerThrottle(safety_margin=0.0)
        with pytest.raises(ConfigurationError):
            self.throttle.throttled_fraction(1000, 0.0)


def test_activations_per_window_positive():
    assert activations_per_window() > 1_000_000  # 64 ms / 45 ns
    with pytest.raises(ConfigurationError):
        activations_per_window(trefw=0.0)


def test_defense_synergy_experiment(tiny_scale):
    from repro.harness.registry import run_experiment

    output = run_experiment(
        "defense_synergy", scale=tiny_scale, modules=("B3",)
    )
    costs = output.data["costs"]["B3"]
    vpps = sorted(costs)
    # Overheads never grow as HC_first grows; at any two levels the PARA
    # probability scales inversely with HC_first.
    for vpp in vpps:
        row = costs[vpp]
        assert row["para_probability"] > 0
        assert row["graphene_entries"] >= 1
        assert row["blockhammer_safe_rate"] > 0
    lowest, highest = costs[vpps[0]], costs[vpps[-1]]
    if lowest["hcfirst"] > highest["hcfirst"]:
        assert lowest["para_probability"] < highest["para_probability"]
