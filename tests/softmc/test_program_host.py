"""SoftMC ISA, program builder, and host execution."""

import numpy as np
import pytest

from repro.dram.patterns import STANDARD_PATTERNS
from repro.dram.timing import TimingParameters
from repro.errors import CommunicationError, ProgramError
from repro.softmc.host import SoftMCHost
from repro.softmc.isa import Instruction, Opcode
from repro.softmc.program import Program
from repro.units import ms, ns

PATTERN = STANDARD_PATTERNS[0]


class TestIsa:
    def test_operand_requirements(self):
        with pytest.raises(ProgramError):
            Instruction(Opcode.ACT, bank=0)  # no row
        with pytest.raises(ProgramError):
            Instruction(Opcode.HAMMER, bank=0, rows=(), count=10)
        with pytest.raises(ProgramError):
            Instruction(Opcode.HAMMER, bank=0, rows=(1,), count=-1)
        with pytest.raises(ProgramError):
            Instruction(Opcode.WAIT, duration=-1.0)
        with pytest.raises(ProgramError):
            Instruction(Opcode.WR, bank=0, column=0, data=np.zeros(8))

    def test_produces_data_flag(self):
        read = Instruction(Opcode.RD, bank=0, column=0)
        assert read.produces_data
        assert not Instruction(Opcode.PRE, bank=0).produces_data


class TestProgram:
    def test_builder_records_instructions(self):
        program = Program()
        program.act(0, 5)
        program.rd(0, 1)
        program.pre(0)
        program.ref()
        program.wait(ms(1.0))
        assert len(program) == 5
        kinds = [i.opcode for i in program]
        assert kinds == [
            Opcode.ACT, Opcode.RD, Opcode.PRE, Opcode.REF, Opcode.WAIT,
        ]

    def test_initialize_row_inverse_flag(self):
        program = Program()
        program.initialize_row(0, 5, PATTERN, 128, inverse=True)
        instruction = program.instructions[0]
        assert np.array_equal(instruction.data, PATTERN.inverse_bits(128))

    def test_hammer_requires_aggressors(self):
        with pytest.raises(ProgramError):
            Program().hammer_doublesided(0, [], 100)

    def test_read_column_of_row_returns_rd_index(self):
        program = Program()
        index = program.read_column_of_row(0, 5, 2)
        assert program.instructions[index].opcode is Opcode.RD


class TestHost:
    def test_write_then_read_roundtrip(self, b3_infra, small_geometry):
        program = Program()
        program.initialize_row(0, 7, PATTERN, small_geometry.row_bits)
        index = program.read_row(0, 7)
        result = b3_infra.host.execute(program)
        assert np.array_equal(
            result.data(index), PATTERN.row_bits(small_geometry.row_bits)
        )

    def test_single_column_read(self, b3_infra, small_geometry):
        program = Program()
        program.initialize_row(0, 7, PATTERN, small_geometry.row_bits)
        program.act(0, 7)
        index = program.rd(0, 3)
        program.pre(0)
        result = b3_infra.host.execute(program)
        assert np.array_equal(
            result.data(index), PATTERN.row_bits(small_geometry.row_bits)[192:256]
        )

    def test_time_advances_with_waits(self, b3_infra):
        env = b3_infra.module.env
        before = env.now
        program = Program()
        program.wait(ms(64.0))
        result = b3_infra.host.execute(program)
        assert env.now - before == pytest.approx(ms(64.0))
        assert result.duration == pytest.approx(ms(64.0))

    def test_hammer_duration_matches_unrolled_loop(self, b3_infra):
        """The paper keeps each experiment under 30 ms (Section 4.1);
        a 300K double-sided hammer program must land there."""
        program = Program()
        program.hammer_doublesided(0, [10, 12], 300_000)
        result = b3_infra.host.execute(program)
        assert ms(20.0) < result.duration < ms(30.0)
        assert result.commands_issued == 2 * 2 * 300_000

    def test_trcd_quantized_to_command_clock(self, b3_infra):
        timings = TimingParameters.nominal().with_trcd(ns(13.6))
        program = Program(timings)
        program.act(0, 5)
        program.pre(0)
        start = b3_infra.module.env.now
        b3_infra.host.execute(program)
        elapsed = b3_infra.module.env.now - start
        # 13.6 ns quantizes up to 15 ns; + quantized tRP.
        assert elapsed == pytest.approx(ns(15.0) + ns(13.5), rel=1e-6)

    def test_mute_module_raises(self, b3_infra):
        b3_infra.supply.set_voltage(1.0)  # below B3's V_PPmin of 1.6
        program = Program()
        program.read_row(0, 0)
        with pytest.raises(CommunicationError):
            b3_infra.host.execute(program)

    def test_missing_read_data_raises(self, b3_infra):
        program = Program()
        program.act(0, 5)
        result = b3_infra.host.execute(program)
        with pytest.raises(ProgramError):
            result.data(0)


class TestInfrastructure:
    def test_finds_paper_vppmin(self, b3_infra):
        assert b3_infra.find_vppmin() == pytest.approx(1.6)

    def test_vpp_levels_grid(self, b3_infra):
        levels = b3_infra.vpp_levels()
        assert levels[0] == 2.5
        assert levels[-1] == pytest.approx(1.6)
        assert len(levels) == 10

    def test_communicates_probe(self, b3_infra):
        assert b3_infra.communicates()
        b3_infra.set_vpp(1.2)
        assert not b3_infra.communicates()

    def test_for_module_builder(self, small_geometry):
        from repro.softmc.infrastructure import TestInfrastructure

        infra = TestInfrastructure.for_module(
            "A5", geometry=small_geometry, seed=2
        )
        assert infra.module.name == "A5"
        assert infra.find_vppmin() == pytest.approx(2.4)
