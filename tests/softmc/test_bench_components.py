"""FPGA clock, power supply, temperature controller, interposer."""

import pytest

from repro.dram.environment import ModuleEnvironment
from repro.errors import ConfigurationError, PowerSupplyError
from repro.softmc.fpga import FpgaBoard
from repro.softmc.interposer import Interposer
from repro.softmc.power_supply import PowerSupply
from repro.softmc.temperature import TemperatureController
from repro.units import ns


class TestFpga:
    def test_quantize_rounds_up_to_slots(self):
        fpga = FpgaBoard()
        assert fpga.quantize(ns(13.5)) == pytest.approx(ns(13.5))
        assert fpga.quantize(ns(13.6)) == pytest.approx(ns(15.0))
        assert fpga.quantize(ns(0.2)) == pytest.approx(ns(1.5))
        assert fpga.quantize(0.0) == 0.0

    def test_slots(self):
        fpga = FpgaBoard()
        assert fpga.slots(ns(13.5)) == 9
        assert fpga.slots(ns(1.5)) == 1

    def test_negative_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            FpgaBoard().quantize(-1.0)

    def test_clock_validated(self):
        with pytest.raises(ConfigurationError):
            FpgaBoard(command_clock=0.0)


class TestPowerSupply:
    def test_millivolt_precision(self):
        env = ModuleEnvironment()
        supply = PowerSupply(env)
        applied = supply.set_voltage(1.7004)
        assert applied == pytest.approx(1.700)
        assert env.vpp == pytest.approx(1.700)

    def test_range_enforced(self):
        supply = PowerSupply(ModuleEnvironment())
        with pytest.raises(PowerSupplyError):
            supply.set_voltage(7.0)
        with pytest.raises(PowerSupplyError):
            supply.set_voltage(-0.1)

    def test_output_disable_drops_rail(self):
        env = ModuleEnvironment()
        supply = PowerSupply(env)
        supply.set_voltage(2.5)
        supply.disable_output()
        assert env.vpp < 0.1
        supply.enable_output()
        assert env.vpp == pytest.approx(2.5)

    def test_setpoint_kept_while_disabled(self):
        env = ModuleEnvironment()
        supply = PowerSupply(env)
        supply.disable_output()
        supply.set_voltage(1.8)
        assert env.vpp < 0.1  # rail still off
        assert supply.setpoint == pytest.approx(1.8)


class TestTemperatureController:
    def test_precision_quantization(self):
        env = ModuleEnvironment()
        controller = TemperatureController(env)
        settled = controller.set_target(80.04)
        assert settled == pytest.approx(80.0)
        assert env.temperature == pytest.approx(80.0)

    def test_settling_advances_time(self):
        env = ModuleEnvironment()
        controller = TemperatureController(env)
        before = env.now
        controller.set_target(80.0)  # +30 degC step
        assert env.now > before

    def test_range_enforced(self):
        controller = TemperatureController(ModuleEnvironment())
        with pytest.raises(ConfigurationError):
            controller.set_target(20.0)  # below the bench's 50 degC floor
        with pytest.raises(ConfigurationError):
            controller.set_target(200.0)


class TestInterposer:
    def test_shunt_must_be_removed(self, b3_module):
        interposer = Interposer(b3_module)
        with pytest.raises(ConfigurationError):
            interposer.require_isolated_vpp()
        interposer.remove_shunt()
        interposer.require_isolated_vpp()

    def test_current_tracks_activations(self, b3_module):
        interposer = Interposer(b3_module)
        interposer.measure_vpp_current()  # reset baseline
        b3_module.bank(0).hammer([10], 100_000)
        b3_module.env.advance(0.01)
        current = interposer.measure_vpp_current()
        assert current > 0
        # Second call with no new activity reads ~0.
        b3_module.env.advance(0.01)
        assert interposer.measure_vpp_current() == pytest.approx(0.0)
