"""Bit-exactness of the bulk RNG derivation kernels.

``RngHub.standard_normals`` (the batch probe engine's jitter prefetch)
must reproduce ``RngHub.generator(key).standard_normal()`` for every
key: the vectorized SeedSequence pool mixing and the reused-generator
draw kernel must match numpy's reference implementations bit for bit.
"""

import numpy as np
import pytest

from repro.rng import RngHub, _bulk_pcg64_states, derive_seed


class TestBulkPcg64States:
    @pytest.mark.parametrize(
        "seeds",
        [
            [0],
            [1, 2, 3],
            [0xFFFFFFFF, 0x100000000, 0xFFFFFFFFFFFFFFFF],
            list(range(64)),
            [derive_seed(7, f"row/{i}") for i in range(32)],
        ],
    )
    def test_matches_numpy_seed_sequence(self, seeds):
        states = _bulk_pcg64_states(seeds)
        assert len(states) == len(seeds)
        for seed, (state, inc) in zip(seeds, states):
            reference = np.random.PCG64(seed).state["state"]
            assert state == reference["state"]
            assert inc == reference["inc"]

    def test_empty_batch(self):
        assert _bulk_pcg64_states([]) == []


class TestStandardNormals:
    def test_matches_per_key_generators(self):
        hub = RngHub(123)
        keys = [f"bank/0/row/{row}/measurement_jitter/{session}"
                for row in range(4) for session in range(2, 32, 3)]
        draws = hub.standard_normals(keys)
        assert len(draws) == len(keys)
        for key, draw in zip(keys, draws):
            assert draw == hub.generator(key).standard_normal()

    def test_order_and_repetition_independent(self):
        hub = RngHub(5)
        keys = ["a", "b", "a"]
        first, second, third = hub.standard_normals(keys)
        assert first == third
        assert [second, first] == hub.standard_normals(["b", "a"])

    def test_distinct_roots_give_distinct_streams(self):
        draws_a = RngHub(1).standard_normals(["k"])
        draws_b = RngHub(2).standard_normals(["k"])
        assert draws_a != draws_b
