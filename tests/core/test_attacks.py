"""Attack-pattern abstractions."""

import pytest

from repro.core.attacks import (
    AttackPattern,
    double_sided,
    execute_attack,
    many_sided,
    single_sided,
)
from repro.dram.patterns import STANDARD_PATTERNS
from repro.errors import AnalysisError, ConfigurationError


def _charged_pattern(infra, victim):
    physical = infra.module.bank(0).mapping.to_physical(victim)
    return STANDARD_PATTERNS[1 if physical % 2 else 0]


class TestPatternDefinitions:
    def test_single_sided(self):
        pattern = single_sided()
        assert pattern.aggressor_offsets == (1,)
        assert pattern.total_activations(1000) == 1000

    def test_double_sided(self):
        pattern = double_sided()
        assert tuple(pattern.aggressor_offsets) == (-1, 1)
        assert pattern.total_activations(1000) == 2000

    def test_many_sided_layout(self):
        pattern = many_sided(pairs=4)
        offsets = pattern.aggressor_offsets
        assert -1 in offsets and 1 in offsets
        assert len(offsets) == len(set(offsets))
        assert pattern.name == "8-sided"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AttackPattern(name="bad", aggressor_offsets=())
        with pytest.raises(ConfigurationError):
            AttackPattern(name="bad", aggressor_offsets=(0, 1))
        with pytest.raises(ConfigurationError):
            many_sided(pairs=0)


class TestAggressorResolution:
    def test_double_sided_matches_mapping(self, b3_infra):
        pattern = double_sided()
        victim = 40
        rows = pattern.aggressor_rows(b3_infra, 0, victim)
        assert sorted(rows) == sorted(
            b3_infra.module.bank(0).mapping.physical_neighbors(victim)
        )

    def test_edge_victim_rejected(self, b3_infra):
        with pytest.raises(AnalysisError):
            double_sided().aggressor_rows(b3_infra, 0, 0)


class TestExecution:
    def test_double_beats_single_on_damage(self, b3_infra):
        """At equal per-aggressor HC, double-sided deposits twice the
        damage (Section 4.2's effectiveness claim)."""
        bank = b3_infra.module.bank(0)
        victim = 40
        data_pattern = _charged_pattern(b3_infra, victim)
        execute_attack(b3_infra, victim, single_sided(), 50_000, data_pattern)
        single_damage = bank.row_hammer_damage(victim)
        # Reset the victim then run double-sided.
        execute_attack(b3_infra, victim, double_sided(), 50_000, data_pattern)
        double_damage = bank.row_hammer_damage(victim)
        assert double_damage == pytest.approx(2 * single_damage, rel=0.05)

    def test_enough_hammers_flip(self, b3_infra):
        victim = 40
        data_pattern = _charged_pattern(b3_infra, victim)
        outcome = execute_attack(
            b3_infra, victim, double_sided(), 2_000_000, data_pattern
        )
        assert outcome.bit_flips > 0
        assert outcome.ber == pytest.approx(
            outcome.bit_flips / b3_infra.module.geometry.row_bits
        )
        assert outcome.total_activations == 4_000_000
