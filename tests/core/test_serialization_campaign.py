"""Study persistence and the parallel campaign runner."""

import pytest

from repro.core.campaign import run_parallel
from repro.core.scale import StudyScale
from repro.core.serialization import (
    SCHEMA_VERSION,
    load_study,
    save_study,
    study_from_dict,
    study_to_dict,
)
from repro.core.study import CharacterizationStudy
from repro.errors import AnalysisError


@pytest.fixture(scope="module")
def small_study():
    study = CharacterizationStudy(scale=StudyScale.tiny(), seed=4)
    return study.run(modules=["C5"], tests=("rowhammer", "retention"))


def _records(study):
    module = study.module("C5")
    return (
        [(r.row, r.vpp, r.hcfirst, r.ber, r.ber_iterations)
         for r in module.rowhammer],
        [(r.row, r.vpp, r.trefw, r.ber, tuple(sorted(r.word_flip_histogram.items())))
         for r in module.retention],
    )


class TestSerialization:
    def test_roundtrip_lossless(self, small_study):
        restored = study_from_dict(study_to_dict(small_study))
        assert _records(restored) == _records(small_study)
        assert restored.seed == small_study.seed
        assert restored.scale == small_study.scale

    def test_file_roundtrip(self, small_study, tmp_path):
        path = str(tmp_path / "study.json")
        save_study(small_study, path)
        restored = load_study(path)
        assert _records(restored) == _records(small_study)

    def test_schema_version_checked(self, small_study):
        payload = study_to_dict(small_study)
        payload["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(AnalysisError):
            study_from_dict(payload)

    def test_analyses_work_on_restored_study(self, small_study):
        from repro.core.analysis import normalized_curves

        restored = study_from_dict(study_to_dict(small_study))
        curves = normalized_curves(restored, "ber")
        assert "C5" in curves


class TestParallelCampaign:
    def test_matches_sequential(self):
        scale = StudyScale.tiny()
        sequential = CharacterizationStudy(scale=scale, seed=6).run(
            modules=["B3", "C5"], tests=("rowhammer",)
        )
        parallel = run_parallel(
            ["B3", "C5"], scale=scale, seed=6, tests=("rowhammer",),
            max_workers=2,
        )
        for name in ("B3", "C5"):
            seq = [
                (r.row, r.vpp, r.hcfirst, r.ber)
                for r in sequential.module(name).rowhammer
            ]
            par = [
                (r.row, r.vpp, r.hcfirst, r.ber)
                for r in parallel.module(name).rowhammer
            ]
            assert seq == par

    def test_single_worker_fallback(self):
        scale = StudyScale.tiny()
        result = run_parallel(
            ["C5"], scale=scale, seed=6, tests=("rowhammer",), max_workers=1
        )
        assert "C5" in result.modules
