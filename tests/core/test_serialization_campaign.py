"""Study persistence and the parallel campaign runner."""

import pytest

from repro.core.campaign import (
    CHUNK_GAP,
    _module_mapping,
    plan_row_chunks,
    run_parallel,
)
from repro.core.sampling import sample_rows
from repro.core.scale import StudyScale
from repro.core.serialization import (
    SCHEMA_VERSION,
    load_study,
    save_study,
    study_from_dict,
    study_to_dict,
)
from repro.core.study import CharacterizationStudy
from repro.errors import AnalysisError


@pytest.fixture(scope="module")
def small_study():
    study = CharacterizationStudy(scale=StudyScale.tiny(), seed=4)
    return study.run(modules=["C5"], tests=("rowhammer", "retention"))


def _records(study):
    module = study.module("C5")
    return (
        [(r.row, r.vpp, r.hcfirst, r.ber, r.ber_iterations)
         for r in module.rowhammer],
        [(r.row, r.vpp, r.trefw, r.ber, tuple(sorted(r.word_flip_histogram.items())))
         for r in module.retention],
    )


class TestSerialization:
    def test_roundtrip_lossless(self, small_study):
        restored = study_from_dict(study_to_dict(small_study))
        assert _records(restored) == _records(small_study)
        assert restored.seed == small_study.seed
        assert restored.scale == small_study.scale

    def test_file_roundtrip(self, small_study, tmp_path):
        path = str(tmp_path / "study.json")
        save_study(small_study, path)
        restored = load_study(path)
        assert _records(restored) == _records(small_study)

    def test_schema_version_checked(self, small_study):
        payload = study_to_dict(small_study)
        payload["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(AnalysisError):
            study_from_dict(payload)

    def test_analyses_work_on_restored_study(self, small_study):
        from repro.core.analysis import normalized_curves

        restored = study_from_dict(study_to_dict(small_study))
        curves = normalized_curves(restored, "ber")
        assert "C5" in curves


class TestParallelCampaign:
    def test_matches_sequential(self):
        scale = StudyScale.tiny()
        sequential = CharacterizationStudy(scale=scale, seed=6).run(
            modules=["B3", "C5"], tests=("rowhammer",)
        )
        parallel = run_parallel(
            ["B3", "C5"], scale=scale, seed=6, tests=("rowhammer",),
            max_workers=2,
        )
        for name in ("B3", "C5"):
            seq = [
                (r.row, r.vpp, r.hcfirst, r.ber)
                for r in sequential.module(name).rowhammer
            ]
            par = [
                (r.row, r.vpp, r.hcfirst, r.ber)
                for r in parallel.module(name).rowhammer
            ]
            assert seq == par

    def test_single_worker_fallback(self):
        scale = StudyScale.tiny()
        result = run_parallel(
            ["C5"], scale=scale, seed=6, tests=("rowhammer",), max_workers=1
        )
        assert "C5" in result.modules

    def test_module_granularity_matches_sequential(self):
        scale = StudyScale.tiny()
        sequential = CharacterizationStudy(scale=scale, seed=6).run(
            modules=["B3", "C5"], tests=("rowhammer",)
        )
        parallel = run_parallel(
            ["B3", "C5"], scale=scale, seed=6, tests=("rowhammer",),
            max_workers=2, granularity="module",
        )
        for name in ("B3", "C5"):
            assert (
                parallel.module(name).rowhammer
                == sequential.module(name).rowhammer
            )


class TestChunkGranularity:
    def test_plan_respects_gap_and_balance(self):
        scale = StudyScale.tiny()
        mapping = _module_mapping("C5", scale)
        rows = sample_rows(
            mapping.num_rows, scale.rows_per_module, scale.row_chunks
        )
        chunks = plan_row_chunks(rows, mapping, 4)
        assert sorted(row for chunk in chunks for row in chunk) == rows
        assert 1 < len(chunks) <= 4
        # Rows in different chunks are physically far enough apart that
        # their probes share no session state.
        for first in range(len(chunks)):
            for second in range(first + 1, len(chunks)):
                for a in chunks[first]:
                    for b in chunks[second]:
                        assert abs(
                            mapping.to_physical(a) - mapping.to_physical(b)
                        ) >= CHUNK_GAP

    def test_plan_empty_row_list(self):
        scale = StudyScale.tiny()
        mapping = _module_mapping("C5", scale)
        assert plan_row_chunks([], mapping, 4) == []

    def test_plan_more_chunks_than_rows(self):
        """A chunk budget beyond the row count must not emit empty
        chunks; isolated rows each get their own chunk."""
        scale = StudyScale.tiny()
        mapping = _module_mapping("C5", scale)
        rows = sample_rows(mapping.num_rows, 3, 3)
        chunks = plan_row_chunks(rows, mapping, 64)
        assert all(chunks)
        assert len(chunks) <= len(rows)
        assert sorted(row for chunk in chunks for row in chunk) == sorted(rows)

    def test_plan_single_chunk_when_coupled(self):
        scale = StudyScale.tiny()
        mapping = _module_mapping("C5", scale)
        # Physically contiguous rows can never be split.
        physical = [mapping.to_logical(p) for p in range(10, 18)]
        chunks = plan_row_chunks(physical, mapping, 4)
        assert len(chunks) == 1
        assert chunks[0] == sorted(physical)

    def test_chunk_parallel_matches_sequential(self):
        scale = StudyScale.tiny()
        sequential = CharacterizationStudy(scale=scale, seed=6).run(
            modules=["B3", "C5"], tests=("rowhammer", "retention")
        )
        parallel = run_parallel(
            ["B3", "C5"], scale=scale, seed=6,
            tests=("rowhammer", "retention"), max_workers=4,
            granularity="chunk",
        )
        for name in ("B3", "C5"):
            seq = sequential.module(name)
            par = parallel.module(name)
            assert par.vppmin == seq.vppmin
            assert par.vpp_levels == seq.vpp_levels
            # Frozen-dataclass equality: record-for-record identical, in
            # the sequential emission order.
            assert par.rowhammer == seq.rowhammer
            assert par.retention == seq.retention

    def test_unknown_granularity_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            run_parallel(["C5"], scale=StudyScale.tiny(), granularity="row")
