"""Differential tests: batched probe kernel vs the command-level path.

The fast engine must be *bit-identical* to the validated
``Program``/``SoftMCHost`` reference for every quantity the studies
record -- HC_first, RowHammer BER (including per-iteration values) and
retention BER/histograms -- across modules of all three vendors and
multiple V_PP levels. Any divergence here means the kernel's replay of
the command schedule (session counters, simulated-time offsets, damage
deposit order) has drifted from the host's semantics.
"""

import pytest

from repro.core.context import TestContext
from repro.core.probe import (
    CommandProbeEngine,
    FastProbeEngine,
    make_engine,
)
from repro.core.scale import StudyScale
from repro.core.study import CharacterizationStudy
from repro.dram.patterns import STANDARD_PATTERNS
from repro.errors import ConfigurationError
from repro.softmc.infrastructure import TestInfrastructure

MODULES = ("A0", "B3", "C5")
VPP_LEVELS = (2.5, 2.2)


def _run(name, engine_kind):
    study = CharacterizationStudy(
        scale=StudyScale.tiny(), seed=3, probe_engine=engine_kind
    )
    return study.run_module(
        name, tests=("rowhammer", "retention"), vpp_levels=list(VPP_LEVELS)
    )


@pytest.fixture(scope="module", params=MODULES)
def engine_pair(request):
    name = request.param
    return name, _run(name, "command"), _run(name, "fast")


class TestStudyEquivalence:
    def test_rowhammer_records_identical(self, engine_pair):
        name, command, fast = engine_pair
        assert len(command.rowhammer) == len(fast.rowhammer)
        assert {r.vpp for r in fast.rowhammer} == set(VPP_LEVELS)
        for reference, candidate in zip(command.rowhammer, fast.rowhammer):
            # Frozen dataclasses: equality covers hcfirst, ber and every
            # per-iteration BER value exactly (no tolerance).
            assert candidate == reference

    def test_retention_records_identical(self, engine_pair):
        name, command, fast = engine_pair
        assert len(command.retention) == len(fast.retention)
        for reference, candidate in zip(command.retention, fast.retention):
            assert candidate == reference
            assert (
                candidate.word_flip_histogram == reference.word_flip_histogram
            )

    def test_fast_engine_actually_selected(self):
        study = CharacterizationStudy(scale=StudyScale.tiny(), seed=3)
        ctx = study.build_context("A0")
        assert isinstance(ctx.engine, FastProbeEngine)


class TestDirectProbeEquivalence:
    """Probe-by-probe comparison on fresh, independent benches."""

    def _contexts(self, name):
        contexts = []
        for kind in ("command", "fast"):
            infra = TestInfrastructure.for_module(
                name, geometry=StudyScale.tiny().geometry, seed=11
            )
            contexts.append(TestContext(infra, StudyScale.tiny(),
                                        probe_engine=kind))
        return contexts

    @pytest.mark.parametrize("name", MODULES)
    def test_hammer_ber_sequence(self, name):
        command_ctx, fast_ctx = self._contexts(name)
        pattern = STANDARD_PATTERNS[0]
        for vpp in VPP_LEVELS:
            for ctx in (command_ctx, fast_ctx):
                ctx.infra.set_vpp(vpp)
            for count in (60_000, 120_000, 240_000):
                reference = command_ctx.engine.hammer_ber(
                    command_ctx, 5, pattern, count
                )
                candidate = fast_ctx.engine.hammer_ber(
                    fast_ctx, 5, pattern, count
                )
                assert candidate == reference

    @pytest.mark.parametrize("name", MODULES)
    def test_retention_sequence(self, name):
        command_ctx, fast_ctx = self._contexts(name)
        pattern = STANDARD_PATTERNS[2]
        windows = list(StudyScale.tiny().retention_windows)
        for vpp in VPP_LEVELS:
            for ctx in (command_ctx, fast_ctx):
                ctx.infra.set_vpp(vpp)
                ctx.infra.set_temperature(80.0)
            for trefw in windows:
                reference = command_ctx.engine.retention_probe(
                    command_ctx, 5, pattern, trefw
                )
                candidate = fast_ctx.engine.retention_probe(
                    fast_ctx, 5, pattern, trefw
                )
                assert candidate == reference


class TestEngineSelection:
    def test_env_var_overrides_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROBE_ENGINE", "command")
        study = CharacterizationStudy(scale=StudyScale.tiny(), seed=3)
        ctx = study.build_context("A0")
        assert isinstance(ctx.engine, CommandProbeEngine)

    def test_explicit_kind_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROBE_ENGINE", "command")
        study = CharacterizationStudy(
            scale=StudyScale.tiny(), seed=3, probe_engine="fast"
        )
        ctx = study.build_context("A0")
        assert isinstance(ctx.engine, FastProbeEngine)

    def test_unknown_engine_rejected(self):
        infra = TestInfrastructure.for_module(
            "A0", geometry=StudyScale.tiny().geometry, seed=3
        )
        with pytest.raises(ConfigurationError):
            TestContext(infra, StudyScale.tiny(), probe_engine="warp")

    def test_trr_forces_command_engine(self):
        infra = TestInfrastructure.for_module(
            "A0", geometry=StudyScale.tiny().geometry, seed=3,
            trr_enabled=True,
        )
        ctx = TestContext(infra, StudyScale.tiny())
        assert isinstance(make_engine(ctx), CommandProbeEngine)

    def test_probe_counters_recorded(self):
        study = CharacterizationStudy(scale=StudyScale.tiny(), seed=3)
        ctx = study.build_context("A0")
        from repro.core.rowhammer import measure_ber

        measure_ber(ctx, 5, STANDARD_PATTERNS[0], 10_000)
        assert ctx.engine.counters.hammer_probes == 1
        assert ctx.engine.counters.commands_issued > 0
