"""Differential tests: the kernelized probe engines vs the command path.

The fast, batch and fused engines must be *bit-identical* to the
validated ``Program``/``SoftMCHost`` reference for every quantity the
studies record -- HC_first, RowHammer BER (including per-iteration
values) and retention BER/histograms -- across modules of all three
vendors and multiple V_PP levels. Any divergence here means a kernel's
replay of the command schedule (session counters, simulated-time
offsets, damage deposit order, sorted-threshold reductions) has drifted
from the host's semantics.
"""

import pytest

from repro.core.context import TestContext
from repro.core.fused import FusedProbeEngine
from repro.core.probe import (
    BatchProbeEngine,
    CommandProbeEngine,
    FastProbeEngine,
    make_engine,
    sweep_cache_byte_capacity,
    sweep_cache_capacity,
)
from repro.core.scale import StudyScale
from repro.core.study import CharacterizationStudy
from repro.dram.patterns import STANDARD_PATTERNS
from repro.errors import ConfigurationError
from repro.softmc.infrastructure import TestInfrastructure

MODULES = ("A0", "B3", "C5")
VPP_LEVELS = (2.5, 2.2)


def _row_data(ctx, row):
    """The raw stored bits of a logical row (bypasses the command bus)."""
    bank = ctx.infra.module.bank(0)
    return bank._rows[bank.mapping.to_physical(row)].data


def _run(name, engine_kind):
    study = CharacterizationStudy(
        scale=StudyScale.tiny(), seed=3, probe_engine=engine_kind
    )
    return study.run_module(
        name, tests=("rowhammer", "retention"), vpp_levels=list(VPP_LEVELS)
    )


@pytest.fixture(scope="module", params=MODULES)
def engine_quartet(request):
    name = request.param
    return (
        name,
        _run(name, "command"),
        _run(name, "fast"),
        _run(name, "batch"),
        _run(name, "fused"),
    )


class TestStudyEquivalence:
    def test_rowhammer_records_identical(self, engine_quartet):
        name, command, fast, batch, fused = engine_quartet
        assert len(command.rowhammer) == len(fast.rowhammer)
        assert len(command.rowhammer) == len(batch.rowhammer)
        assert len(command.rowhammer) == len(fused.rowhammer)
        assert {r.vpp for r in fast.rowhammer} == set(VPP_LEVELS)
        for reference, kernel, batched, cross in zip(
            command.rowhammer, fast.rowhammer, batch.rowhammer,
            fused.rowhammer,
        ):
            # Frozen dataclasses: equality covers hcfirst, ber and every
            # per-iteration BER value exactly (no tolerance).
            assert kernel == reference
            assert batched == reference
            assert cross == reference

    def test_retention_records_identical(self, engine_quartet):
        name, command, fast, batch, fused = engine_quartet
        assert len(command.retention) == len(fast.retention)
        assert len(command.retention) == len(batch.retention)
        assert len(command.retention) == len(fused.retention)
        for reference, kernel, batched, cross in zip(
            command.retention, fast.retention, batch.retention,
            fused.retention,
        ):
            assert kernel == reference
            assert batched == reference
            assert cross == reference
            assert (
                batched.word_flip_histogram == reference.word_flip_histogram
            )
            assert cross.word_flip_histogram == reference.word_flip_histogram

    def test_batch_engine_selected_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROBE_ENGINE", raising=False)
        study = CharacterizationStudy(scale=StudyScale.tiny(), seed=3)
        ctx = study.build_context("A0")
        assert isinstance(ctx.engine, BatchProbeEngine)


class TestDirectProbeEquivalence:
    """Probe-by-probe comparison on fresh, independent benches."""

    def _contexts(self, name, kinds=("command", "fast")):
        contexts = []
        for kind in kinds:
            infra = TestInfrastructure.for_module(
                name, geometry=StudyScale.tiny().geometry, seed=11
            )
            contexts.append(TestContext(infra, StudyScale.tiny(),
                                        probe_engine=kind))
        return contexts

    @pytest.mark.parametrize("name", MODULES)
    def test_hammer_ber_sequence(self, name):
        command_ctx, fast_ctx = self._contexts(name)
        pattern = STANDARD_PATTERNS[0]
        for vpp in VPP_LEVELS:
            for ctx in (command_ctx, fast_ctx):
                ctx.infra.set_vpp(vpp)
            for count in (60_000, 120_000, 240_000):
                reference = command_ctx.engine.hammer_ber(
                    command_ctx, 5, pattern, count
                )
                candidate = fast_ctx.engine.hammer_ber(
                    fast_ctx, 5, pattern, count
                )
                assert candidate == reference

    @pytest.mark.parametrize("name", MODULES)
    def test_retention_sequence(self, name):
        command_ctx, fast_ctx = self._contexts(name)
        pattern = STANDARD_PATTERNS[2]
        windows = list(StudyScale.tiny().retention_windows)
        for vpp in VPP_LEVELS:
            for ctx in (command_ctx, fast_ctx):
                ctx.infra.set_vpp(vpp)
                ctx.infra.set_temperature(80.0)
            for trefw in windows:
                reference = command_ctx.engine.retention_probe(
                    command_ctx, 5, pattern, trefw
                )
                candidate = fast_ctx.engine.retention_probe(
                    fast_ctx, 5, pattern, trefw
                )
                assert candidate == reference

    @pytest.mark.parametrize("name", MODULES)
    def test_batch_hammer_session_sequence(self, name):
        """A batch session's per-probe answers (scalar reductions) match
        the fast engine's per-probe vector path, including the deferred
        data materialization at close."""
        fast_ctx, batch_ctx = self._contexts(name, ("fast", "batch"))
        pattern = STANDARD_PATTERNS[0]
        counts = (60_000, 120_000, 240_000, 480_000)
        for vpp in VPP_LEVELS:
            for ctx in (fast_ctx, batch_ctx):
                ctx.infra.set_vpp(vpp)
            with fast_ctx.engine.hammer_session(
                fast_ctx, 5, pattern
            ) as reference, batch_ctx.engine.hammer_session(
                batch_ctx, 5, pattern
            ) as candidate:
                for count in counts:
                    assert candidate.ber(count) == reference.ber(count)
                    assert candidate.any_flip(count) == reference.any_flip(
                        count
                    )
            # The deferred flush must leave identical device state.
            assert (_row_data(fast_ctx, 5) == _row_data(batch_ctx, 5)).all()

    @pytest.mark.parametrize("name", MODULES)
    def test_batch_retention_session_sequence(self, name):
        fast_ctx, batch_ctx = self._contexts(name, ("fast", "batch"))
        pattern = STANDARD_PATTERNS[2]
        windows = list(StudyScale.tiny().retention_windows)
        for vpp in VPP_LEVELS:
            for ctx in (fast_ctx, batch_ctx):
                ctx.infra.set_vpp(vpp)
                ctx.infra.set_temperature(80.0)
            with fast_ctx.engine.retention_session(
                fast_ctx, 5, pattern
            ) as reference, batch_ctx.engine.retention_session(
                batch_ctx, 5, pattern
            ) as candidate:
                for trefw in windows:
                    assert candidate.ber(trefw) == reference.ber(trefw)
                    assert candidate.worst_probe(
                        trefw, 2
                    ) == reference.worst_probe(trefw, 2)
            assert (_row_data(fast_ctx, 5) == _row_data(batch_ctx, 5)).all()


class TestEngineSelection:
    def test_env_var_overrides_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROBE_ENGINE", "command")
        study = CharacterizationStudy(scale=StudyScale.tiny(), seed=3)
        ctx = study.build_context("A0")
        assert isinstance(ctx.engine, CommandProbeEngine)

    def test_explicit_kind_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROBE_ENGINE", "command")
        study = CharacterizationStudy(
            scale=StudyScale.tiny(), seed=3, probe_engine="fast"
        )
        ctx = study.build_context("A0")
        assert isinstance(ctx.engine, FastProbeEngine)
        assert not isinstance(ctx.engine, BatchProbeEngine)

    def test_unknown_engine_rejected(self):
        infra = TestInfrastructure.for_module(
            "A0", geometry=StudyScale.tiny().geometry, seed=3
        )
        with pytest.raises(ConfigurationError, match="batch"):
            TestContext(infra, StudyScale.tiny(), probe_engine="warp")

    def test_fused_engine_selected_explicitly(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROBE_ENGINE", raising=False)
        study = CharacterizationStudy(
            scale=StudyScale.tiny(), seed=3, probe_engine="fused"
        )
        ctx = study.build_context("A0")
        assert isinstance(ctx.engine, FusedProbeEngine)
        assert ctx.engine.name == "fused"

    def test_fused_engine_selected_by_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROBE_ENGINE", "fused")
        study = CharacterizationStudy(scale=StudyScale.tiny(), seed=3)
        ctx = study.build_context("A0")
        assert isinstance(ctx.engine, FusedProbeEngine)

    def test_trr_forces_command_engine(self):
        infra = TestInfrastructure.for_module(
            "A0", geometry=StudyScale.tiny().geometry, seed=3,
            trr_enabled=True,
        )
        ctx = TestContext(infra, StudyScale.tiny())
        assert isinstance(make_engine(ctx), CommandProbeEngine)

    def test_trr_forces_command_even_when_fused_requested(self):
        infra = TestInfrastructure.for_module(
            "A0", geometry=StudyScale.tiny().geometry, seed=3,
            trr_enabled=True,
        )
        ctx = TestContext(infra, StudyScale.tiny())
        assert isinstance(make_engine(ctx, kind="fused"), CommandProbeEngine)

    def test_probe_counters_recorded(self):
        study = CharacterizationStudy(scale=StudyScale.tiny(), seed=3)
        ctx = study.build_context("A0")
        from repro.core.rowhammer import measure_ber

        measure_ber(ctx, 5, STANDARD_PATTERNS[0], 10_000)
        assert ctx.engine.counters.hammer_probes == 1
        assert ctx.engine.counters.commands_issued > 0


class TestSweepCache:
    """The configurable sweep LRU and its traffic counters."""

    def _context(self, sweep_cache=None, probe_engine="fast"):
        infra = TestInfrastructure.for_module(
            "A0", geometry=StudyScale.tiny().geometry, seed=3
        )
        return TestContext(infra, StudyScale.tiny(),
                           probe_engine=probe_engine,
                           sweep_cache=sweep_cache)

    def test_capacity_default_and_override(self, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_CACHE", raising=False)
        assert sweep_cache_capacity() == 1024
        assert sweep_cache_capacity(7) == 7
        monkeypatch.setenv("REPRO_SWEEP_CACHE", "12")
        assert sweep_cache_capacity() == 12
        # An explicit override beats the environment.
        assert sweep_cache_capacity(3) == 3

    def test_capacity_validation(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_CACHE", "zero")
        with pytest.raises(ConfigurationError):
            sweep_cache_capacity()
        monkeypatch.delenv("REPRO_SWEEP_CACHE", raising=False)
        with pytest.raises(ConfigurationError):
            sweep_cache_capacity(0)

    def test_hit_miss_counters(self):
        ctx = self._context()
        pattern = STANDARD_PATTERNS[0]
        ctx.engine.hammer_ber(ctx, 5, pattern, 1_000)
        assert ctx.engine.counters.sweep_misses == 1
        assert ctx.engine.counters.sweep_hits == 0
        ctx.engine.hammer_ber(ctx, 5, pattern, 1_000)
        assert ctx.engine.counters.sweep_hits == 1
        assert ctx.engine.counters.sweep_evictions == 0

    def test_capacity_one_evicts(self):
        ctx = self._context(sweep_cache=1)
        ctx.engine.hammer_ber(ctx, 5, STANDARD_PATTERNS[0], 1_000)
        ctx.engine.hammer_ber(ctx, 9, STANDARD_PATTERNS[0], 1_000)
        ctx.engine.hammer_ber(ctx, 5, STANDARD_PATTERNS[0], 1_000)
        counters = ctx.engine.counters
        assert counters.sweep_misses == 3
        assert counters.sweep_evictions == 2
        assert counters.sweep_hits == 0

    def test_sessions_save_lookups(self):
        """One sweep resolution serves a whole session: repeated probes
        are counted as saved LRU lookups (the ``measure_worst_ber``
        satellite fix)."""
        from repro.core.rowhammer import measure_worst_ber

        ctx = self._context()
        ber, values = measure_worst_ber(
            ctx, 5, STANDARD_PATTERNS[0], 50_000, 4
        )
        counters = ctx.engine.counters
        assert len(values) == 4
        assert ber == max(values)
        assert counters.sweep_misses == 1
        assert counters.sweep_saved_lookups == 3

    def test_counters_flow_into_profile(self):
        ctx = self._context(sweep_cache=1)
        ctx.engine.hammer_ber(ctx, 5, STANDARD_PATTERNS[0], 1_000)
        summary = ctx.engine.counters.as_dict()
        assert summary["sweep_misses"] == 1


class TestSweepCacheByteBudget:
    """The byte-bounded side of the sweep LRU (``REPRO_SWEEP_CACHE_BYTES``)."""

    def _context(self, sweep_cache_bytes=None, probe_engine="fast"):
        infra = TestInfrastructure.for_module(
            "A0", geometry=StudyScale.tiny().geometry, seed=3
        )
        return TestContext(infra, StudyScale.tiny(),
                           probe_engine=probe_engine,
                           sweep_cache_bytes=sweep_cache_bytes)

    def test_byte_capacity_default_and_override(self, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_CACHE_BYTES", raising=False)
        assert sweep_cache_byte_capacity() == 256 * 1024 * 1024
        assert sweep_cache_byte_capacity(4096) == 4096
        monkeypatch.setenv("REPRO_SWEEP_CACHE_BYTES", "65536")
        assert sweep_cache_byte_capacity() == 65536
        assert sweep_cache_byte_capacity(1024) == 1024

    def test_byte_capacity_validation(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_CACHE_BYTES", "plenty")
        with pytest.raises(ConfigurationError):
            sweep_cache_byte_capacity()
        monkeypatch.delenv("REPRO_SWEEP_CACHE_BYTES", raising=False)
        with pytest.raises(ConfigurationError):
            sweep_cache_byte_capacity(0)

    def test_tiny_budget_evicts_but_keeps_newest(self):
        ctx = self._context(sweep_cache_bytes=1)
        pattern = STANDARD_PATTERNS[0]
        ctx.engine.hammer_ber(ctx, 5, pattern, 1_000)
        ctx.engine.hammer_ber(ctx, 9, pattern, 1_000)
        counters = ctx.engine.counters
        # A 1-byte budget can never hold two resident sweeps, but the
        # newest always survives (a session must be able to finish).
        assert counters.sweep_evictions >= 1
        assert len(ctx.engine._sweeps) == 1
        ctx.engine.hammer_ber(ctx, 9, pattern, 1_000)
        assert counters.sweep_hits == 1

    def test_generous_budget_never_evicts(self):
        ctx = self._context(sweep_cache_bytes=1 << 30)
        pattern = STANDARD_PATTERNS[0]
        for row in (5, 9, 13):
            ctx.engine.hammer_ber(ctx, row, pattern, 1_000)
        assert ctx.engine.counters.sweep_evictions == 0
        assert len(ctx.engine._sweeps) == 3

    def test_occupancy_gauge_published(self):
        from repro.obs.metrics import REGISTRY

        ctx = self._context(sweep_cache_bytes=1 << 30)
        # The gauge is refreshed on the miss path, so it reflects the
        # kernel state resident *before* the newest sweep: probe two
        # rows so the first sweep's bytes are visible.
        ctx.engine.hammer_ber(ctx, 5, STANDARD_PATTERNS[0], 1_000)
        ctx.engine.hammer_ber(ctx, 9, STANDARD_PATTERNS[0], 1_000)
        gauges = REGISTRY.snapshot()["gauges"]
        assert gauges.get("repro_sweep_cache_bytes", 0.0) > 0

    def test_fused_residents_are_weightless(self):
        # The fused kernels resolve probes against state-cached base
        # arrays by needle inversion, so resident fused sweeps own no
        # per-operating-point bytes: even a 1-byte budget keeps a whole
        # retention row set resident, where the batch tier's
        # materialized threshold stacks would evict down to one sweep.
        ctx = self._context(sweep_cache_bytes=1, probe_engine="fused")
        pattern = STANDARD_PATTERNS[2]
        ctx.infra.set_temperature(80.0)
        ctx.engine.retention_ber(ctx, 5, pattern, 0.5)
        ctx.engine.retention_ber(ctx, 9, pattern, 0.5)
        assert ctx.engine.counters.sweep_evictions == 0
        assert len(ctx.engine._sweeps) == 2
        batch_ctx = self._context(sweep_cache_bytes=1, probe_engine="batch")
        batch_ctx.infra.set_temperature(80.0)
        batch_ctx.engine.retention_ber(batch_ctx, 5, pattern, 0.5)
        batch_ctx.engine.retention_ber(batch_ctx, 9, pattern, 0.5)
        assert batch_ctx.engine.counters.sweep_evictions >= 1
        assert len(batch_ctx.engine._sweeps) == 1
