"""Retention profiling (REAPER-style weak-row discovery)."""

import pytest

from repro.core.context import TestContext
from repro.core.profiling import profile_for_policy, profile_weak_rows
from repro.core.scale import StudyScale
from repro.dram.calibration import ModuleGeometry
from repro.errors import ConfigurationError
from repro.softmc.infrastructure import TestInfrastructure

GEOMETRY = ModuleGeometry(rows_per_bank=512, banks=1, row_bits=2048)


@pytest.fixture
def b6_ctx():
    scale = StudyScale.tiny()
    infra = TestInfrastructure.for_module("B6", geometry=GEOMETRY, seed=5)
    return TestContext(infra, scale)


@pytest.fixture
def a4_ctx():
    scale = StudyScale.tiny()
    infra = TestInfrastructure.for_module("A4", geometry=GEOMETRY, seed=5)
    return TestContext(infra, scale)


def test_offender_module_yields_weak_rows(b6_ctx):
    rows = list(range(4, 68))
    profile = profile_weak_rows(b6_ctx, rows)
    # B6 carries the Mfr. B 64 ms tier (~15.5% of rows).
    assert 0.02 < profile.weak_fraction < 0.5
    assert all(row in rows for row in profile.weak_rows)
    assert profile.vpp == pytest.approx(1.7)  # defaults to V_PPmin


def test_clean_module_yields_nothing(a4_ctx):
    profile = profile_weak_rows(a4_ctx, list(range(4, 36)))
    assert profile.weak_rows == ()
    assert profile.weak_fraction == 0.0


def test_profiling_at_nominal_vpp_is_clean(b6_ctx):
    profile = profile_weak_rows(b6_ctx, list(range(4, 36)), vpp=2.5)
    # The tier only fails once reduced V_PP erodes the restored charge.
    assert profile.weak_fraction <= 0.05


def test_passes_union_failures(b6_ctx):
    rows = list(range(4, 68))
    single = profile_weak_rows(b6_ctx, rows, passes=1)
    double = profile_weak_rows(b6_ctx, rows, passes=2)
    assert set(single.weak_rows) <= set(double.weak_rows)


def test_policy_packaging(b6_ctx):
    rows = list(range(4, 68))
    pairs = profile_for_policy(b6_ctx, rows)
    assert all(bank == 0 for bank, _ in pairs)
    # Usable directly by the controller policy.
    from repro.system import ControllerPolicy

    policy = ControllerPolicy.nominal().with_mitigations(
        selective_refresh_rows=pairs
    )
    assert policy.selective_refresh_rows == pairs


def test_passes_validated(b6_ctx):
    with pytest.raises(ConfigurationError):
        profile_weak_rows(b6_ctx, [4], passes=0)
