"""Differential and kernel tests for the fused probe-engine tier.

The fused engine resolves every V_PP operating point of a (row,
pattern) pair from one presorted cross-point layout. These tests pin
it bit-identical to the batch tier (and, transitively through
``test_probe_equivalence``, to the fast and command tiers) probe by
probe, assert the explicit ``retention_grid`` kernel agrees with the
per-point counts it fuses, and check the TRR routing and repeat-run
determinism contracts.
"""

import numpy as np
import pytest

from repro.core.context import TestContext
from repro.core.fused import FusedProbeEngine
from repro.core.probe import CommandProbeEngine
from repro.core.scale import StudyScale
from repro.core.study import CharacterizationStudy
from repro.dram.patterns import STANDARD_PATTERNS
from repro.softmc.infrastructure import TestInfrastructure

MODULES = ("A0", "B3", "C5")
VPP_LEVELS = (2.5, 2.2)


def _context(name, engine_kind, seed=11, trr_enabled=False):
    infra = TestInfrastructure.for_module(
        name, geometry=StudyScale.tiny().geometry, seed=seed,
        trr_enabled=trr_enabled,
    )
    return TestContext(infra, StudyScale.tiny(), probe_engine=engine_kind)


def _row_data(ctx, row):
    bank = ctx.infra.module.bank(0)
    return bank._rows[bank.mapping.to_physical(row)].data


class TestFusedSessionEquivalence:
    """Probe-by-probe fused-vs-batch sessions on fresh benches."""

    @pytest.mark.parametrize("name", MODULES)
    def test_hammer_session_sequence(self, name):
        batch_ctx = _context(name, "batch")
        fused_ctx = _context(name, "fused")
        pattern = STANDARD_PATTERNS[0]
        counts = (60_000, 120_000, 240_000, 480_000)
        for vpp in VPP_LEVELS:
            for ctx in (batch_ctx, fused_ctx):
                ctx.infra.set_vpp(vpp)
            with batch_ctx.engine.hammer_session(
                batch_ctx, 5, pattern
            ) as reference, fused_ctx.engine.hammer_session(
                fused_ctx, 5, pattern
            ) as candidate:
                for count in counts:
                    assert candidate.ber(count) == reference.ber(count)
                    assert candidate.any_flip(count) == reference.any_flip(
                        count
                    )
            assert (_row_data(batch_ctx, 5) == _row_data(fused_ctx, 5)).all()

    @pytest.mark.parametrize("name", MODULES)
    def test_retention_session_sequence(self, name):
        batch_ctx = _context(name, "batch")
        fused_ctx = _context(name, "fused")
        pattern = STANDARD_PATTERNS[2]
        windows = list(StudyScale.tiny().retention_windows)
        for vpp in VPP_LEVELS:
            for ctx in (batch_ctx, fused_ctx):
                ctx.infra.set_vpp(vpp)
                ctx.infra.set_temperature(80.0)
            with batch_ctx.engine.retention_session(
                batch_ctx, 5, pattern
            ) as reference, fused_ctx.engine.retention_session(
                fused_ctx, 5, pattern
            ) as candidate:
                for trefw in windows:
                    assert candidate.ber(trefw) == reference.ber(trefw)
                    assert candidate.worst_probe(
                        trefw, 2
                    ) == reference.worst_probe(trefw, 2)
            assert (_row_data(batch_ctx, 5) == _row_data(fused_ctx, 5)).all()

    @pytest.mark.parametrize("name", MODULES)
    def test_one_off_probes_match_command(self, name):
        """The session-routed one-off entry points (``hammer_ber``,
        ``retention_probe``) against the command reference."""
        command_ctx = _context(name, "command")
        fused_ctx = _context(name, "fused")
        hammer_pattern = STANDARD_PATTERNS[0]
        retention_pattern = STANDARD_PATTERNS[2]
        windows = list(StudyScale.tiny().retention_windows)
        for vpp in VPP_LEVELS:
            for ctx in (command_ctx, fused_ctx):
                ctx.infra.set_vpp(vpp)
            for count in (60_000, 120_000, 240_000):
                assert fused_ctx.engine.hammer_ber(
                    fused_ctx, 5, hammer_pattern, count
                ) == command_ctx.engine.hammer_ber(
                    command_ctx, 5, hammer_pattern, count
                )
            for ctx in (command_ctx, fused_ctx):
                ctx.infra.set_temperature(80.0)
            for trefw in windows:
                assert fused_ctx.engine.retention_probe(
                    fused_ctx, 5, retention_pattern, trefw
                ) == command_ctx.engine.retention_probe(
                    command_ctx, 5, retention_pattern, trefw
                )
        assert (_row_data(command_ctx, 5) == _row_data(fused_ctx, 5)).all()


class TestRetentionGrid:
    """The explicit (points x cells) cross-operating-point kernel."""

    def test_grid_matches_per_point_fused_counts(self):
        ctx = _context("A0", "fused", seed=7)
        pattern = STANDARD_PATTERNS[2]
        ctx.infra.set_temperature(80.0)
        levels = (2.5, 2.0, 1.6)
        windows = (0.05, 0.5, 4.0, 30.0)
        grid = ctx.engine.retention_grid(ctx, 5, pattern, levels, windows)
        assert grid.shape == (len(levels), len(windows))
        assert grid.dtype == np.int64
        for i, vpp in enumerate(levels):
            ctx.infra.set_vpp(vpp)
            sweep = ctx.engine._sweep(ctx, "retention", 5, pattern)
            counts = sweep.fused_counts()
            for j, window in enumerate(windows):
                assert grid[i, j] == counts.count(window)

    def test_grid_monotone_in_window_and_vpp(self):
        ctx = _context("A0", "fused", seed=7)
        pattern = STANDARD_PATTERNS[2]
        ctx.infra.set_temperature(80.0)
        grid = ctx.engine.retention_grid(
            ctx, 5, pattern, (2.5, 1.6, 1.4), (0.01, 2.0, 60.0, 600.0)
        )
        # More decays at longer windows ...
        assert (np.diff(grid, axis=1) >= 0).all()
        # ... and at lower V_PP (weaker restore), per the paper's Obs. 9.
        assert (np.diff(grid, axis=0) >= 0).all()
        assert grid[-1, -1] > 0

    def test_grid_does_not_disturb_device_state(self):
        ctx = _context("A0", "fused", seed=7)
        pattern = STANDARD_PATTERNS[2]
        ctx.infra.set_temperature(80.0)
        ctx.infra.set_vpp(2.5)
        before = ctx.infra.module.env.vpp
        ctx.engine.retention_grid(
            ctx, 5, pattern, (2.5, 1.6), (0.1, 10.0)
        )
        assert ctx.infra.module.env.vpp == before
        # A subsequent real probe is unaffected by the grid analysis.
        reference_ctx = _context("A0", "fused", seed=7)
        reference_ctx.infra.set_temperature(80.0)
        reference_ctx.infra.set_vpp(2.5)
        assert ctx.engine.retention_ber(
            ctx, 5, pattern, 1.0
        ) == reference_ctx.engine.retention_ber(
            reference_ctx, 5, pattern, 1.0
        )


class TestFusedRouting:
    def test_trr_module_routes_to_command(self):
        ctx = _context("A0", "fused", trr_enabled=True)
        assert isinstance(ctx.engine, CommandProbeEngine)
        assert not isinstance(ctx.engine, FusedProbeEngine)

    def test_trr_module_results_unchanged_by_fused_request(self):
        """On a TRR bench the fused request degrades to the command
        engine, so the defense model sees the true activation stream
        and results match an explicit command-engine bench."""
        fused_ctx = _context("A0", "fused", trr_enabled=True)
        command_ctx = _context("A0", "command", trr_enabled=True)
        pattern = STANDARD_PATTERNS[0]
        for count in (60_000, 240_000):
            assert fused_ctx.engine.hammer_ber(
                fused_ctx, 5, pattern, count
            ) == command_ctx.engine.hammer_ber(
                command_ctx, 5, pattern, count
            )

    def test_preheat_warms_both_sort_passes(self):
        ctx = _context("A0", "fused")
        rows = [5, 9, 13]
        warmed = ctx.engine.preheat(ctx, rows)
        assert warmed == len(rows)
        # Second preheat finds everything warm.
        assert ctx.engine.preheat(ctx, rows) == 0
        bank = ctx.infra.module.bank(0)
        from repro.dram.bank import _RET_ORDER_KEY, _TOL_ORDER_KEY

        for row in rows:
            physical = bank.mapping.to_physical(row)
            cache = bank._state(physical).cache
            assert _TOL_ORDER_KEY in cache
            assert _RET_ORDER_KEY in cache


class TestFusedDeterminism:
    def test_repeat_study_runs_identical(self):
        """Two fused studies from one seed agree record-for-record:
        the stateless RNG session lattice replays identically under
        the fused schedule."""

        def run():
            study = CharacterizationStudy(
                scale=StudyScale.tiny(), seed=3, probe_engine="fused"
            )
            return study.run_module(
                "B3", tests=("rowhammer", "retention"),
                vpp_levels=list(VPP_LEVELS),
            )

        first, second = run(), run()
        assert first.rowhammer == second.rowhammer
        assert first.retention == second.retention
