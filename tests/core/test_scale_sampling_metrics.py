"""Study scale, row sampling, and measurement metrics."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.metrics import (
    bit_error_rate,
    cv_percentiles,
    flipped_word_counts,
)
from repro.core.sampling import EDGE_MARGIN, sample_rows
from repro.core.scale import SAFE_TRCD, StudyScale, safe_timings
from repro.errors import AnalysisError, ConfigurationError
from repro.units import ns


class TestStudyScale:
    def test_paper_preset_matches_methodology(self):
        scale = StudyScale.paper()
        assert scale.rows_per_module == 4096
        assert scale.iterations == 10
        assert scale.hcfirst_min_step == 100
        assert scale.ber_hammer_count == 300_000

    def test_retention_windows_are_powers_of_two(self):
        windows = StudyScale.bench().retention_windows
        assert windows[0] == pytest.approx(0.016)
        assert windows[-1] == pytest.approx(16.384)
        ratios = [b / a for a, b in zip(windows, windows[1:])]
        assert all(r == pytest.approx(2.0) for r in ratios)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StudyScale(rows_per_module=0)
        with pytest.raises(ConfigurationError):
            StudyScale(rows_per_module=4, row_chunks=8)
        with pytest.raises(ConfigurationError):
            StudyScale(iterations=0)
        with pytest.raises(ConfigurationError):
            StudyScale(vpp_step=0.0)

    def test_safe_timings_relaxed(self):
        timings = safe_timings()
        assert timings.trcd == SAFE_TRCD
        assert timings.trcd > ns(24.0)  # covers the worst offender (A0)


class TestSampling:
    def test_paper_layout(self):
        rows = sample_rows(32768, 4096, 4)
        assert len(rows) == 4096
        assert rows == sorted(set(rows))

    def test_chunks_are_spread(self):
        rows = sample_rows(1024, 40, 4)
        gaps = np.diff(rows)
        assert (gaps > 1).sum() == 3  # three inter-chunk gaps

    def test_edge_margin_respected(self):
        rows = sample_rows(256, 32, 4)
        assert min(rows) >= EDGE_MARGIN
        assert max(rows) < 256 - EDGE_MARGIN

    def test_overfull_request_rejected(self):
        with pytest.raises(ConfigurationError):
            sample_rows(64, 100, 4)

    @given(
        st.integers(min_value=6, max_value=12),  # log2 of bank size
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=1, max_value=4),
    )
    def test_sampling_properties(self, log_rows, count, chunks):
        rows_per_bank = 2**log_rows
        count = min(count, rows_per_bank - 2 * EDGE_MARGIN)
        chunks = min(chunks, count)
        rows = sample_rows(rows_per_bank, count, chunks)
        assert len(rows) == count
        assert len(set(rows)) == count
        assert all(
            EDGE_MARGIN <= r < rows_per_bank - EDGE_MARGIN for r in rows
        )


class TestMetrics:
    def test_ber(self):
        a = np.array([0, 1, 0, 1])
        b = np.array([0, 1, 1, 1])
        assert bit_error_rate(a, b) == 0.25
        assert bit_error_rate(a, a) == 0.0

    def test_ber_shape_mismatch(self):
        with pytest.raises(AnalysisError):
            bit_error_rate(np.zeros(4), np.zeros(5))

    def test_flipped_word_counts(self):
        expected = np.zeros(128, dtype=np.uint8)
        read = expected.copy()
        read[3] = 1  # word 0: one flip
        read[64] = 1  # word 1: two flips
        read[70] = 1
        counts = flipped_word_counts(expected, read)
        assert counts.tolist() == [1, 2]

    def test_flipped_word_counts_divisibility(self):
        with pytest.raises(AnalysisError):
            flipped_word_counts(np.zeros(100), np.zeros(100))

    def test_cv_percentiles(self):
        series = [[1.0, 1.0], [1.0, 2.0], [0.0, 0.0]]
        percentiles = cv_percentiles(series, percentiles=(50.0,))
        assert 0.0 <= percentiles[50.0] <= 0.5

    def test_cv_percentiles_empty(self):
        with pytest.raises(AnalysisError):
            cv_percentiles([])
