"""Tests for the shared-memory struct-of-arrays device state.

Covers the full lifecycle contract of :mod:`repro.core.soa`: plane
bit-identity against fresh RNG derivation, worker attach under both
multiprocessing start methods (fork and spawn), crash hygiene (a dead
worker must never unlink the owner's segment; the owner's cleanup must
leave ``/dev/shm`` empty), install-time identity validation, and the
end-to-end guarantee that a shared-state parallel campaign is
record-identical to a sequential private-state one.
"""

import multiprocessing as mp
import os
import pickle
import time

import numpy as np
import pytest

from repro.core.campaign import run_parallel
from repro.core.scale import StudyScale
from repro.core.soa import (
    FIELDS,
    attach_device_state,
    build_device_state,
)
from repro.core.study import CharacterizationStudy
from repro.dram.module import DramModule
from repro.dram.profiles import module_profile
from repro.errors import ConfigurationError

SEED = 3


def _soa_segments():
    try:
        return [n for n in os.listdir("/dev/shm") if "repro-soa" in n]
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return []


def _segment_alive(name):
    return any(name in segment for segment in _soa_segments())


def _plane_checksums(state):
    return {
        fieldname: float(np.asarray(
            state.plane(fieldname), dtype=np.float64
        ).sum())
        for fieldname, _ in FIELDS
    }


def _attach_worker(handle, queue):
    """Child: attach, report plane checksums, detach cleanly."""
    state = attach_device_state(handle)
    try:
        queue.put(_plane_checksums(state))
    finally:
        state.close()


def _crash_worker(handle):
    """Child: attach, then die without any cleanup at all."""
    attach_device_state(handle)
    os._exit(1)


@pytest.fixture
def device_state():
    state = build_device_state("A0", scale=StudyScale.tiny(), seed=SEED)
    try:
        yield state
    finally:
        state.close(unlink=True)


class TestBuild:
    def test_planes_bit_identical_to_fresh_derivation(self, device_state):
        module = DramModule(
            module_profile("A0"), geometry=StudyScale.tiny().geometry,
            seed=SEED,
        )
        generator = module.bank(0).cells
        for physical in device_state.handle.physical_rows:
            slot = device_state._slots[physical]
            times, sensitivity = generator.retention_structure_pair(physical)
            expected = {
                "cell_tolerances": generator.cell_tolerances(physical),
                "cell_outlier_mask": generator.cell_outlier_mask(physical),
                "cell_retention_times": times,
                "cell_retention_vpp_sensitivity": sensitivity,
                "cell_trcd_factors": generator.cell_trcd_factors(physical),
            }
            for fieldname, vector in expected.items():
                assert np.array_equal(
                    device_state.plane(fieldname)[slot], vector
                ), fieldname

    def test_handle_is_picklable_and_complete(self, device_state):
        handle = pickle.loads(pickle.dumps(device_state.handle))
        assert handle == device_state.handle
        fingerprint = handle.fingerprint()
        assert fingerprint["module"] == "A0"
        assert fingerprint["seed"] == SEED
        assert fingerprint["rows"] == len(handle.physical_rows)
        assert set(fingerprint["fields"]) == {name for name, _ in FIELDS}

    def test_planes_are_read_only(self, device_state):
        attached = attach_device_state(device_state.handle)
        try:
            for fieldname, _ in FIELDS:
                for state in (device_state, attached):
                    with pytest.raises(ValueError):
                        state.plane(fieldname)[0, 0] = 1
        finally:
            attached.close()

    def test_study_seed_mismatch_rejected(self, device_state):
        study = CharacterizationStudy(
            scale=StudyScale.tiny(), seed=SEED + 1,
            device_state=device_state,
        )
        with pytest.raises(ConfigurationError, match="seed"):
            study.build_context("A0")

    def test_module_mismatch_rejected(self, device_state):
        study = CharacterizationStudy(
            scale=StudyScale.tiny(), seed=SEED, device_state=device_state,
        )
        with pytest.raises(ConfigurationError, match="module"):
            study.build_context("B3")

    def test_module_mapping_filters_by_name(self, device_state):
        """The dict form installs only into its matching module."""
        study = CharacterizationStudy(
            scale=StudyScale.tiny(), seed=SEED,
            device_state={"A0": device_state},
        )
        ctx = study.build_context("B3")  # no state for B3: plain context
        assert not ctx.infra.module.bank(0).cells._preload
        ctx = study.build_context("A0")
        assert ctx.infra.module.bank(0).cells._preload


class TestWorkers:
    @pytest.mark.parametrize("method", ("fork", "spawn"))
    def test_attach_matches_owner(self, device_state, method):
        ctx = mp.get_context(method)
        queue = ctx.SimpleQueue()
        worker = ctx.Process(
            target=_attach_worker, args=(device_state.handle, queue)
        )
        worker.start()
        checksums = queue.get()
        worker.join(timeout=60)
        assert worker.exitcode == 0
        assert checksums == _plane_checksums(device_state)
        # The worker's exit (and its resource tracker) must not have
        # unlinked the owner's segment.
        time.sleep(0.2)
        assert _segment_alive(device_state.handle.shm_name)

    @pytest.mark.parametrize("method", ("fork", "spawn"))
    def test_worker_crash_leaves_segment_for_owner(self, device_state,
                                                   method):
        ctx = mp.get_context(method)
        worker = ctx.Process(
            target=_crash_worker, args=(device_state.handle,)
        )
        worker.start()
        worker.join(timeout=60)
        assert worker.exitcode == 1
        time.sleep(0.2)
        assert _segment_alive(device_state.handle.shm_name)

    def test_owner_unlink_reclaims_segment(self):
        state = build_device_state("A0", scale=StudyScale.tiny(), seed=SEED)
        name = state.handle.shm_name
        assert _segment_alive(name)
        state.close(unlink=True)
        assert not _segment_alive(name)
        # Idempotent: double close must not raise.
        state.close(unlink=True)


class TestCampaignEquivalence:
    def test_shared_state_campaign_bit_identical(self):
        """A pool campaign attaching shared device state agrees record
        for record with a sequential, private-state study -- and leaves
        no shared-memory segments behind."""
        modules = ("A0", "B3")
        scale = StudyScale.tiny()
        sequential = CharacterizationStudy(
            scale=scale, seed=SEED, probe_engine="fused"
        )
        baseline = {
            name: sequential.run_module(name) for name in modules
        }
        before = set(_soa_segments())
        parallel = run_parallel(
            modules, scale=scale, seed=SEED, probe_engine="fused",
            max_workers=2, granularity="chunk", shared_state=True,
        )
        assert set(_soa_segments()) == before
        for name in modules:
            merged = parallel.module(name)
            assert merged.rowhammer == baseline[name].rowhammer
            assert merged.trcd == baseline[name].trcd
            assert merged.retention == baseline[name].retention

    def test_shared_state_study_matches_private_study(self):
        state = build_device_state("B3", scale=StudyScale.tiny(), seed=SEED)
        try:
            private = CharacterizationStudy(
                scale=StudyScale.tiny(), seed=SEED, probe_engine="fused"
            ).run_module("B3", tests=("rowhammer", "retention"))
            preloaded = CharacterizationStudy(
                scale=StudyScale.tiny(), seed=SEED, probe_engine="fused",
                device_state=state,
            ).run_module("B3", tests=("rowhammer", "retention"))
        finally:
            state.close(unlink=True)
        assert preloaded.rowhammer == private.rowhammer
        assert preloaded.retention == private.retention
