"""ProbeCounters: field-complete merge/as_dict and registry publish.

Pins the satellite fix for the chunk-merge bug where
``ProbeCounters.merge`` silently dropped ``sweep_saved_lookups``: both
``merge`` and ``as_dict`` are now driven by ``dataclasses.fields``, so
these tests fail loudly if any counter -- present or future -- goes
missing from either path.
"""

from dataclasses import fields

import pytest

from repro.core.perf import PROBE_METRIC_NAMES, ProbeCounters
from repro.obs.metrics import MetricsRegistry

FIELD_NAMES = tuple(spec.name for spec in fields(ProbeCounters))


def _distinct_counters(offset=0):
    """A ProbeCounters with a different non-zero value per field."""
    return ProbeCounters(**{
        name: offset + index + 1 for index, name in enumerate(FIELD_NAMES)
    })


def test_as_dict_covers_every_field():
    counters = _distinct_counters()
    payload = counters.as_dict()
    assert set(payload) == set(FIELD_NAMES)
    assert all(payload[name] == getattr(counters, name)
               for name in FIELD_NAMES)


def test_merge_accumulates_every_field():
    total = _distinct_counters()
    expected = {
        name: 2 * getattr(total, name) + 100 for name in FIELD_NAMES
    }
    total.merge(_distinct_counters(offset=100))
    assert total.as_dict() == expected


def test_merge_roundtrip_preserves_sweep_saved_lookups():
    # The regression: chunk merges once rebuilt counters field-by-field
    # and omitted sweep_saved_lookups.
    left = ProbeCounters(sweep_saved_lookups=7)
    right = ProbeCounters(sweep_saved_lookups=5, hammer_probes=2)
    left.merge(right)
    assert left.sweep_saved_lookups == 12
    assert left.hammer_probes == 2


def test_every_field_has_a_registry_metric_name():
    assert set(PROBE_METRIC_NAMES) == set(FIELD_NAMES)
    assert all(name.startswith("repro_") and name.endswith("_total")
               for name in PROBE_METRIC_NAMES.values())


def test_publish_maps_fields_to_canonical_counters():
    registry = MetricsRegistry()
    counters = _distinct_counters()
    counters.publish(registry=registry)
    values = registry.counter_values()
    for field_name, metric_name in PROBE_METRIC_NAMES.items():
        assert values[metric_name] == getattr(counters, field_name)


def test_publish_skips_zero_fields():
    registry = MetricsRegistry()
    ProbeCounters(hammer_probes=3).publish(registry=registry)
    assert registry.counter_values() == {
        "repro_probes_hammer_total": 3,
    }


def test_publish_accumulates_across_modules():
    registry = MetricsRegistry()
    ProbeCounters(hammer_probes=3).publish(registry=registry)
    ProbeCounters(hammer_probes=4).publish(registry=registry)
    assert registry.counter_values()["repro_probes_hammer_total"] == 7


@pytest.mark.parametrize("field_name", FIELD_NAMES)
def test_fields_default_to_zero(field_name):
    assert getattr(ProbeCounters(), field_name) == 0
