"""Algorithms 1-3 and WCDP determination."""

import math

import pytest

from repro.core import retention as retention_test
from repro.core import rowhammer, trcd
from repro.core.context import TestContext
from repro.core.scale import StudyScale
from repro.core.wcdp import retention_wcdp, rowhammer_wcdp, trcd_wcdp
from repro.dram import constants
from repro.dram.calibration import ModuleGeometry
from repro.dram.patterns import STANDARD_PATTERNS
from repro.softmc.infrastructure import TestInfrastructure
from repro.units import ms, ns


@pytest.fixture
def ctx():
    scale = StudyScale(
        rows_per_module=8,
        row_chunks=2,
        iterations=2,
        hcfirst_min_step=4000,
        retention_windows=(ms(64.0), ms(512.0), 4.096),
        geometry=ModuleGeometry(rows_per_bank=512, banks=1, row_bits=2048),
    )
    infra = TestInfrastructure.for_module("B3", geometry=scale.geometry, seed=9)
    infra.set_temperature(constants.ROWHAMMER_TEST_TEMPERATURE)
    return TestContext(infra, scale)


def _charged_pattern(ctx, row):
    physical = ctx.infra.module.bank(0).mapping.to_physical(row)
    return STANDARD_PATTERNS[1 if physical % 2 else 0]


class TestAlgorithm1:
    def test_measure_ber_zero_at_low_hc(self, ctx):
        pattern = _charged_pattern(ctx, 20)
        assert rowhammer.measure_ber(ctx, 20, pattern, 100) == 0.0

    def test_measure_ber_monotone_in_hc(self, ctx):
        pattern = _charged_pattern(ctx, 20)
        low = rowhammer.measure_ber(ctx, 20, pattern, 50_000)
        high = rowhammer.measure_ber(ctx, 20, pattern, 2_000_000)
        assert high >= low
        assert high > 0

    def test_find_hcfirst_brackets_threshold(self, ctx):
        pattern = _charged_pattern(ctx, 20)
        hcfirst = rowhammer.find_hcfirst(ctx, 20, pattern)
        assert hcfirst is not None
        # No flips below, flips at-or-above (up to measurement jitter).
        assert rowhammer.measure_ber(ctx, 20, pattern, hcfirst // 4) == 0.0
        assert rowhammer.measure_ber(ctx, 20, pattern, hcfirst * 4) > 0.0

    def test_characterize_row_record(self, ctx):
        pattern = _charged_pattern(ctx, 20)
        record = rowhammer.characterize_row(ctx, 20, pattern, vpp=2.5)
        assert record.module == "B3"
        assert record.row == 20
        assert len(record.ber_iterations) == ctx.scale.iterations
        assert record.ber == max(record.ber_iterations)

    def test_uncharged_pattern_censored(self, ctx):
        """Hammering a row whose stored pattern leaves cells uncharged
        produces no flips -> censored HC_first."""
        physical = ctx.infra.module.bank(0).mapping.to_physical(20)
        uncharged = STANDARD_PATTERNS[0 if physical % 2 else 1]
        assert rowhammer.find_hcfirst(ctx, 20, uncharged) is None


class TestBisectionControlFlow:
    """Alg. 1's bisection loop in isolation (shared by every engine)."""

    def test_censored_row_walks_up_and_returns_none(self):
        scale = StudyScale(
            hcfirst_initial=100_000, hcfirst_step=50_000,
            hcfirst_min_step=10_000,
        )
        calls = []

        def probe(hc):
            calls.append(hc)
            return False

        assert rowhammer.bisect_hcfirst(scale, 2, probe) is None
        # No flip ever: every iteration of every round is probed (no
        # short-circuit) and the hammer count only climbs.
        assert calls == [
            100_000, 100_000, 150_000, 150_000, 175_000, 175_000,
        ]

    def test_always_flipping_row_clamps_at_min_step(self):
        """A row that flips at every count drives ``hc`` negative; the
        ``hc <= 0`` branch must reset it to the termination step so the
        probe sequence never goes non-positive."""
        scale = StudyScale(
            hcfirst_initial=1_000, hcfirst_step=100_000,
            hcfirst_min_step=1_000,
        )
        calls = []

        def probe(hc):
            calls.append(hc)
            return True

        assert rowhammer.bisect_hcfirst(scale, 3, probe) == 1_000
        assert all(hc > 0 for hc in calls)
        # Every probed count is the clamped termination step, and the
        # ``any`` short-circuit probes once per round despite 3
        # iterations.
        assert calls == [1_000] * 7

    def test_first_flip_midway_tracks_lowest(self):
        scale = StudyScale(
            hcfirst_initial=100_000, hcfirst_step=50_000,
            hcfirst_min_step=25_000,
        )
        threshold = 140_000
        lowest = rowhammer.bisect_hcfirst(
            scale, 1, lambda hc: hc >= threshold
        )
        assert lowest is not None
        assert lowest >= threshold
        assert lowest - scale.hcfirst_min_step < threshold


class TestAlgorithm2:
    def test_trcd_min_at_nominal_vpp(self, ctx):
        pattern = trcd_wcdp(ctx, 20)
        value = trcd.find_trcd_min(ctx, 20, pattern)
        # B3 is a passing module: below the 13.5 ns nominal, above the
        # physical floor, and on the 1.5 ns command-clock grid.
        assert ns(6.0) <= value <= ns(13.5)
        slots = value / constants.SOFTMC_COMMAND_CLOCK
        assert slots == pytest.approx(round(slots))

    def test_trcd_min_grows_at_vppmin(self, ctx):
        pattern = trcd_wcdp(ctx, 20)
        nominal = trcd.find_trcd_min(ctx, 20, pattern)
        ctx.infra.set_vpp(ctx.infra.module.vppmin)
        reduced = trcd.find_trcd_min(ctx, 20, pattern)
        ctx.infra.set_vpp(2.5)
        assert reduced >= nominal

    def test_per_column_mode_agrees(self, ctx):
        pattern = trcd_wcdp(ctx, 20)
        fused = trcd.find_trcd_min(ctx, 20, pattern, iterations=1)
        per_column = trcd.find_trcd_min(
            ctx, 20, pattern, iterations=1, per_column=True
        )
        assert fused == pytest.approx(per_column)


class TestAlgorithm3:
    def test_no_flips_at_nominal_window(self, ctx):
        ctx.infra.set_temperature(constants.RETENTION_TEST_TEMPERATURE)
        pattern = _charged_pattern(ctx, 30)
        ber, histogram = retention_test.measure_retention(
            ctx, 30, pattern, ms(64.0)
        )
        assert ber == 0.0
        assert histogram == {}

    def test_flips_at_long_window(self, ctx):
        ctx.infra.set_temperature(constants.RETENTION_TEST_TEMPERATURE)
        pattern = _charged_pattern(ctx, 30)
        ber, histogram = retention_test.measure_retention(
            ctx, 30, pattern, 16.0
        )
        assert ber > 0.0
        assert sum(histogram.values()) > 0

    def test_characterize_row_sweeps_windows(self, ctx):
        ctx.infra.set_temperature(constants.RETENTION_TEST_TEMPERATURE)
        pattern = _charged_pattern(ctx, 30)
        records = retention_test.characterize_row(ctx, 30, pattern, vpp=2.5)
        assert [r.trefw for r in records] == list(ctx.scale.retention_windows)
        bers = [r.ber for r in records]
        assert bers == sorted(bers)  # BER monotone in window


class TestWcdp:
    def test_rowhammer_wcdp_is_charged_polarity(self, ctx):
        """The worst-case pattern must charge the row's cells: 0xFF-family
        for true rows, 0x00-family for anti rows."""
        for row in (20, 21):
            physical = ctx.infra.module.bank(0).mapping.to_physical(row)
            wcdp = rowhammer_wcdp(ctx, row)
            charged_value = 0 if physical % 2 else 1
            bit = wcdp.row_bits(8)[0:8]
            # At least half the WCDP's cells must hold the charged value.
            assert (bit == charged_value).mean() >= 0.5

    def test_trcd_wcdp_returns_standard_pattern(self, ctx):
        assert trcd_wcdp(ctx, 20) in STANDARD_PATTERNS

    def test_retention_wcdp_finds_failing_pattern(self, ctx):
        ctx.infra.set_temperature(constants.RETENTION_TEST_TEMPERATURE)
        wcdp = retention_wcdp(ctx, 30)
        ber, _ = retention_test.measure_retention(ctx, 30, wcdp, 16.0)
        assert ber > 0  # the WCDP must actually expose decay
