"""Result containers and analysis aggregation (synthetic data)."""

import pytest

from repro.core.analysis import (
    normalized_curves,
    retention_curves,
    retention_density_at,
    trend_summary,
    vppmin_densities,
)
from repro.core.guardband import analyze_guardband, analyze_module
from repro.core.mitigation import (
    ecc_report,
    recommend_vpp,
    selective_refresh_report,
    smallest_failing_window,
)
from repro.core.results import (
    ModuleResult,
    RetentionRowResult,
    RowHammerRowResult,
    TrcdRowResult,
)
from repro.core.scale import StudyScale
from repro.core.study import StudyResult
from repro.errors import AnalysisError, ConfigurationError
from repro.units import ms, ns


def _rh(module, row, vpp, hcfirst, ber):
    return RowHammerRowResult(
        module=module, bank=0, row=row, vpp=vpp, wcdp_index=0,
        hcfirst=hcfirst, ber=ber, ber_iterations=(ber,),
    )


def _trcd(module, row, vpp, value_ns):
    return TrcdRowResult(
        module=module, bank=0, row=row, vpp=vpp, wcdp_index=0,
        trcd_min=ns(value_ns),
    )


def _ret(module, row, vpp, trefw, ber, histogram=None):
    return RetentionRowResult(
        module=module, bank=0, row=row, vpp=vpp, trefw=trefw,
        wcdp_index=0, ber=ber, word_flip_histogram=histogram or {},
    )


@pytest.fixture
def synthetic_study():
    """Two modules with hand-built, fully known results."""
    m1 = ModuleResult(module="X1", vendor="A", vppmin=1.6,
                      vpp_levels=[2.5, 1.6])
    # Row 1 improves (HC up, BER down); row 2 worsens.
    m1.rowhammer += [
        _rh("X1", 1, 2.5, 10_000, 0.010),
        _rh("X1", 2, 2.5, 20_000, 0.020),
        _rh("X1", 1, 1.6, 15_000, 0.005),
        _rh("X1", 2, 1.6, 18_000, 0.024),
    ]
    m1.trcd += [
        _trcd("X1", 1, 2.5, 10.5), _trcd("X1", 2, 2.5, 12.0),
        _trcd("X1", 1, 1.6, 12.0), _trcd("X1", 2, 1.6, 13.5),
    ]
    m1.retention += [
        _ret("X1", 1, 2.5, ms(64.0), 0.0),
        _ret("X1", 1, 2.5, 4.0, 0.001, {1: 2}),
        _ret("X1", 1, 1.6, ms(64.0), 0.0005, {1: 1}),
        _ret("X1", 1, 1.6, 4.0, 0.002, {1: 3, 2: 0}),
    ]
    m2 = ModuleResult(module="Y1", vendor="B", vppmin=2.0,
                      vpp_levels=[2.5, 2.0])
    m2.rowhammer += [
        _rh("Y1", 5, 2.5, 8_000, 0.10),
        _rh("Y1", 5, 2.0, 9_000, 0.09),
    ]
    m2.trcd += [
        _trcd("Y1", 5, 2.5, 12.0), _trcd("Y1", 5, 2.0, 15.0),
    ]
    study = StudyResult(scale=StudyScale.tiny(), seed=0)
    study.modules = {"X1": m1, "Y1": m2}
    return study


class TestModuleResult:
    def test_accessors(self, synthetic_study):
        module = synthetic_study.module("X1")
        assert module.min_hcfirst(2.5) == 10_000
        assert module.max_ber(2.5) == 0.020
        assert module.max_trcd_min(2.5) == pytest.approx(ns(12.0))
        assert module.mean_retention_ber(2.5, 4.0) == pytest.approx(0.001)

    def test_missing_data_raises(self, synthetic_study):
        module = synthetic_study.module("X1")
        with pytest.raises(AnalysisError):
            module.max_ber(9.9)
        with pytest.raises(ConfigurationError):
            synthetic_study.module("nope")

    def test_word_properties(self):
        record = _ret("X1", 1, 2.5, 4.0, 0.01, {1: 4, 2: 1, 3: 2})
        assert record.words_with_one_flip == 4
        assert record.words_uncorrectable == 3

    def test_by_vendor(self, synthetic_study):
        assert [m.module for m in synthetic_study.by_vendor("A")] == ["X1"]


class TestAnalysis:
    def test_normalized_curves(self, synthetic_study):
        curves = normalized_curves(synthetic_study, "ber")
        x1 = curves["X1"]
        # Mean of (0.005/0.010, 0.024/0.020) at 1.6 V.
        assert x1.at(1.6) == pytest.approx((0.5 + 1.2) / 2)
        assert x1.at(2.5) == pytest.approx(1.0)

    def test_normalized_hcfirst(self, synthetic_study):
        curves = normalized_curves(synthetic_study, "hcfirst")
        assert curves["X1"].at(1.6) == pytest.approx((1.5 + 0.9) / 2)

    def test_unknown_metric(self, synthetic_study):
        with pytest.raises(AnalysisError):
            normalized_curves(synthetic_study, "zebra")

    def test_vppmin_densities_per_vendor(self, synthetic_study):
        densities = vppmin_densities(synthetic_study, "ber")
        assert set(densities) == {"A", "B"}
        assert densities["A"]["min"] == pytest.approx(0.5)
        assert densities["A"]["max"] == pytest.approx(1.2)

    def test_trend_summary(self, synthetic_study):
        summary = trend_summary(synthetic_study, "hcfirst")
        # Three rows total at V_PPmin: +50%, -10%, +12.5%.
        assert summary.fraction_increasing == pytest.approx(2 / 3)
        assert summary.fraction_decreasing == pytest.approx(1 / 3)
        assert summary.max_increase == pytest.approx(0.5)
        assert summary.max_decrease == pytest.approx(0.1)

    def test_retention_curves(self, synthetic_study):
        curves = retention_curves(synthetic_study)
        by_vpp = {c.vpp: c for c in curves}
        assert by_vpp[2.5].mean_ber[-1] == pytest.approx(0.001)
        assert by_vpp[1.6].windows == [ms(64.0), 4.0]

    def test_retention_density_at(self, synthetic_study):
        density = retention_density_at(synthetic_study, 4.0)
        assert density["A"]["mean_by_vpp"][1.6] == pytest.approx(0.002)


class TestGuardband:
    def test_module_report(self, synthetic_study):
        report = analyze_module(synthetic_study.module("X1"))
        assert report.meets_nominal_trcd
        assert report.guardband_nominal == pytest.approx(
            (13.5 - 12.0) / 13.5
        )
        assert report.guardband_vppmin == pytest.approx(0.0)
        assert report.guardband_reduction == pytest.approx(1.0)

    def test_failing_module_required_trcd(self, synthetic_study):
        report = analyze_module(synthetic_study.module("Y1"))
        assert not report.meets_nominal_trcd
        assert report.required_trcd == pytest.approx(ns(15.0))

    def test_summary(self, synthetic_study):
        summary = analyze_guardband(synthetic_study)
        assert summary.passing_modules == ["X1"]
        assert summary.failing_modules == ["Y1"]
        assert "1 of 2" in summary.passing_chip_statement


class TestMitigation:
    def test_smallest_failing_window(self, synthetic_study):
        module = synthetic_study.module("X1")
        assert smallest_failing_window(module, 1.6) == pytest.approx(ms(64.0))
        assert smallest_failing_window(module, 2.5) == pytest.approx(4.0)

    def test_ecc_report(self, synthetic_study):
        module = synthetic_study.module("X1")
        report = ecc_report(module, 1.6)
        assert report.trefw == pytest.approx(ms(64.0))
        assert report.words_correctable == 1
        assert report.all_correctable

    def test_ecc_report_none_when_clean(self):
        module = ModuleResult(module="Z", vendor="C", vppmin=1.5,
                              vpp_levels=[2.5, 1.5])
        module.retention.append(_ret("Z", 1, 1.5, ms(64.0), 0.0))
        assert ecc_report(module, 1.5) is None

    def test_selective_refresh(self, synthetic_study):
        module = synthetic_study.module("X1")
        report = selective_refresh_report(module, 1.6, 4.0)
        # Row 1 already failed at 64 ms, so nothing *newly* fails at 4 s.
        assert report.newly_failing_rows == 0
        report64 = selective_refresh_report(module, 1.6, ms(64.0))
        assert report64.newly_failing_rows == 1
        assert report64.row_fraction == 1.0

    def test_recommendation_prefers_lowest_good_vpp(self, synthetic_study):
        module = synthetic_study.module("Y1")
        recommendation = recommend_vpp(module)
        # Y1's only reduced level fails nominal tRCD -> stay at 2.5.
        assert recommendation.vpp == 2.5

    def test_recommendation_accepts_clean_improvement(self):
        module = ModuleResult(module="Z", vendor="C", vppmin=1.5,
                              vpp_levels=[2.5, 1.5])
        module.rowhammer += [
            _rh("Z", 1, 2.5, 10_000, 0.02),
            _rh("Z", 1, 1.5, 12_000, 0.01),
        ]
        recommendation = recommend_vpp(module)
        assert recommendation.vpp == 1.5
        assert recommendation.hcfirst == 12_000


class TestVendorTrendDetails:
    def test_ber_improvement_statistics(self, synthetic_study):
        from repro.core.analysis import vendor_trend_details

        details = vendor_trend_details(
            synthetic_study, "ber", improvement_sign=-1.0
        )
        # Vendor A: row 1 improved 50% (>5%), row 2 worsened 20%.
        a = details["A"]
        assert a.rows == 2
        assert a.fraction_improved_over_5pct == pytest.approx(0.5)
        assert a.fraction_flat_within_2pct == 0.0
        assert a.fraction_increasing == pytest.approx(0.5)
        # Vendor B: one row improved 10%.
        b = details["B"]
        assert b.fraction_improved_over_5pct == pytest.approx(1.0)

    def test_hcfirst_sign_convention(self, synthetic_study):
        from repro.core.analysis import vendor_trend_details

        details = vendor_trend_details(
            synthetic_study, "hcfirst", improvement_sign=1.0
        )
        # Vendor A rows: +50% and -10% -> one improvement over 5%.
        assert details["A"].fraction_improved_over_5pct == pytest.approx(0.5)

    def test_sign_validated(self, synthetic_study):
        from repro.core.analysis import vendor_trend_details
        from repro.errors import AnalysisError

        with pytest.raises(AnalysisError):
            vendor_trend_details(synthetic_study, "ber", improvement_sign=2.0)
