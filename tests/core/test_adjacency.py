"""Physical-adjacency discovery."""

import pytest

from repro.core.adjacency import MappingAdjacency, ReverseEngineeredAdjacency
from repro.dram.calibration import ModuleGeometry
from repro.errors import AnalysisError
from repro.softmc.infrastructure import TestInfrastructure

GEOMETRY = ModuleGeometry(rows_per_bank=512, banks=1, row_bits=2048)

#: One module per vendor => one module per mapping family.
MODULES = ("A4", "B3", "C5")


@pytest.mark.parametrize("name", MODULES)
def test_reverse_engineering_matches_oracle(name):
    """The hammering experiment must discover the same neighbors the
    internal mapping defines -- for every vendor's mapping family."""
    infra = TestInfrastructure.for_module(name, geometry=GEOMETRY, seed=4)
    oracle = MappingAdjacency(infra)
    discovered = ReverseEngineeredAdjacency(infra, hammer_count=2_000_000)
    for row in (16, 17, 50, 101):
        assert sorted(discovered.neighbors(0, row)) == sorted(
            oracle.neighbors(0, row)
        )


def test_reverse_engineering_caches(b3_infra):
    engineered = ReverseEngineeredAdjacency(b3_infra, hammer_count=2_000_000)
    first = engineered.neighbors(0, 30)
    # Second call must not re-run the experiment: same object, instant.
    activations_before = b3_infra.module.activation_count()
    second = engineered.neighbors(0, 30)
    assert first == second
    assert b3_infra.module.activation_count() == activations_before


def test_search_radius_validated(b3_infra):
    with pytest.raises(AnalysisError):
        ReverseEngineeredAdjacency(b3_infra, scan_radius=0)


def test_mapping_adjacency_delegates(b3_infra):
    oracle = MappingAdjacency(b3_infra)
    mapping = b3_infra.module.bank(0).mapping
    assert oracle.neighbors(0, 40) == mapping.physical_neighbors(40)
