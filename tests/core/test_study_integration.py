"""End-to-end campaign integration tests (tiny scale)."""

import pytest

from repro.core.study import CharacterizationStudy
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def b3_study():
    from repro.core.scale import StudyScale

    study = CharacterizationStudy(scale=StudyScale.tiny(), seed=2)
    return study.run(modules=["B3"], tests=("rowhammer", "trcd", "retention"))


def test_vpp_grid_reaches_paper_vppmin(b3_study):
    module = b3_study.module("B3")
    assert module.vpp_levels[0] == 2.5
    assert module.vppmin == pytest.approx(1.6)  # Table 3


def test_every_row_measured_at_every_level(b3_study):
    module = b3_study.module("B3")
    scale = b3_study.scale
    for vpp in module.vpp_levels:
        assert len(module.rowhammer_at(vpp)) == scale.rows_per_module
        assert len(module.trcd_at(vpp)) == scale.rows_per_module
        assert len(module.retention_at(vpp)) == (
            scale.rows_per_module * len(scale.retention_windows)
        )


def test_rowhammer_records_well_formed(b3_study):
    module = b3_study.module("B3")
    for record in module.rowhammer:
        assert 0.0 <= record.ber <= 1.0
        assert record.ber == max(record.ber_iterations)
        assert 0 <= record.wcdp_index < 6
        if record.hcfirst is not None:
            assert record.hcfirst > 0


def test_trcd_on_command_clock_grid(b3_study):
    from repro.dram.constants import SOFTMC_COMMAND_CLOCK

    module = b3_study.module("B3")
    for record in module.trcd:
        slots = record.trcd_min / SOFTMC_COMMAND_CLOCK
        assert slots == pytest.approx(round(slots))


def test_retention_ber_monotone_in_window(b3_study):
    module = b3_study.module("B3")
    for vpp in module.vpp_levels:
        by_row = {}
        for record in module.retention_at(vpp):
            by_row.setdefault(record.row, []).append(
                (record.trefw, record.ber)
            )
        for series in by_row.values():
            bers = [b for _, b in sorted(series)]
            assert bers == sorted(bers)


def test_study_is_deterministic():
    from repro.core.scale import StudyScale

    scale = StudyScale.tiny()
    a = CharacterizationStudy(scale=scale, seed=5).run(
        modules=["C5"], tests=("rowhammer",)
    )
    b = CharacterizationStudy(scale=scale, seed=5).run(
        modules=["C5"], tests=("rowhammer",)
    )
    records_a = [(r.row, r.vpp, r.hcfirst, r.ber) for r in a.module("C5").rowhammer]
    records_b = [(r.row, r.vpp, r.hcfirst, r.ber) for r in b.module("C5").rowhammer]
    assert records_a == records_b


def test_unknown_test_type_rejected(tiny_scale):
    study = CharacterizationStudy(scale=tiny_scale)
    with pytest.raises(ConfigurationError):
        study.run_module("B3", tests=("zebra",))


def test_reverse_engineered_adjacency_study(tiny_scale):
    """A (small) study can run entirely on discovered adjacency."""
    from repro.core.scale import StudyScale
    from repro.dram.calibration import ModuleGeometry
    from repro.units import ms

    scale = StudyScale(
        rows_per_module=4, row_chunks=2, iterations=1,
        hcfirst_min_step=16_000,
        retention_windows=(ms(64.0),),
        geometry=ModuleGeometry(rows_per_bank=256, banks=1, row_bits=1024),
    )
    study = CharacterizationStudy(
        scale=scale, seed=1, reverse_engineer_adjacency=True
    )
    result = study.run_module("C5", tests=("rowhammer",), vpp_levels=[2.5])
    assert len(result.rowhammer) == 4
