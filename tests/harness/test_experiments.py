"""Experiment modules produce well-formed, paper-shaped output.

Study-based experiments run at tiny scale on a one-per-vendor module
subset; the shared-cache fixture keeps the campaign to one run per test
session scope.
"""

import pytest

from repro.core.scale import StudyScale
from repro.harness.registry import run_experiment

MODULES = ("A4", "B3", "C5")


@pytest.fixture(scope="module")
def tiny():
    return StudyScale.tiny()


class TestStaticExperiments:
    def test_table1_population(self):
        output = run_experiment("table1")
        assert output.data["total_chips"] == 272
        assert output.data["total_dimms"] == 30

    def test_table2_parameters(self):
        output = run_experiment("table2")
        assert output.data["parameters"]["c_cell_fF"] == pytest.approx(16.8)
        assert output.data["parameters"]["r_bitline_ohm"] == pytest.approx(6980)

    def test_ablation_reversals(self):
        output = run_experiment("ablation", modules=("B3", "B9"))
        b3 = output.data["results"]["B3"]
        # Removing per-row heterogeneity kills B3's reversal population.
        assert b3["no gamma spread"]["reversing_fraction"] == 0.0
        assert b3["full model"]["reversing_fraction"] > 0.0
        # Amplifying the margin term strengthens reversals.
        assert (
            b3["strong margin (beta=1.5)"]["reversing_fraction"]
            >= b3["full model"]["reversing_fraction"]
        )

    def test_trr_demo_contrast(self, tiny):
        output = run_experiment("trr_demo", scale=tiny, modules=("B3",))
        flips = output.data["flips"]
        assert flips["withheld"] > 0
        assert flips["interleaved"] == 0


class TestStudyExperiments:
    def test_fig3_curves_and_stats(self, tiny):
        output = run_experiment("fig3", scale=tiny, modules=MODULES)
        assert set(output.data["curves"]) == set(MODULES)
        for curve in output.data["curves"].values():
            assert curve["vpp"][0] == 2.5
            assert curve["mean"][0] == pytest.approx(1.0)
        summary = output.data["summary"]
        assert 0.0 <= summary["fraction_decreasing"] <= 1.0

    def test_fig4_vendor_ranges(self, tiny):
        output = run_experiment("fig4", scale=tiny, modules=MODULES)
        densities = output.data["densities"]
        assert set(densities) == {"A", "B", "C"}
        for info in densities.values():
            assert info["min"] <= info["max"]

    def test_fig5_hcfirst_direction(self, tiny):
        output = run_experiment("fig5", scale=tiny, modules=MODULES)
        # B3's curve must end above 1 (the paper's strongest riser).
        curve = output.data["curves"]["B3"]
        assert curve["mean"][-1] > 0.95

    def test_fig6_densities(self, tiny):
        output = run_experiment("fig6", scale=tiny, modules=MODULES)
        assert set(output.data["densities"]) == {"A", "B", "C"}

    def test_fig7_guardband(self, tiny):
        output = run_experiment(
            "fig7", scale=tiny, modules=("A0", "A4", "B2", "C5")
        )
        assert set(output.data["failing_modules"]) == {"A0", "B2"}
        assert set(output.data["passing_modules"]) == {"A4", "C5"}
        for curve in output.data["curves"].values():
            # tRCD_min never improves as V_PP drops.
            values = curve["trcd_min_ns"]
            assert values[-1] >= values[0]

    def test_fig10_retention(self, tiny):
        output = run_experiment("fig10", scale=tiny, modules=MODULES)
        curves = output.data["curves"]
        assert curves
        for curve in curves:
            bers = curve["mean_ber"]
            assert bers == sorted(bers)  # BER grows with the window
        assert "A4" in output.data["clean_at_64ms"]

    def test_fig11_ecc(self, tiny):
        output = run_experiment("fig11", scale=tiny, modules=("B6", "A4"))
        verdicts = output.data["ecc_all_correctable"]
        assert verdicts.get("B6") is True  # tier flips: single per word

    def test_significance_cv(self, tiny):
        output = run_experiment("significance", scale=tiny, modules=MODULES)
        percentiles = output.data["cv_percentiles"]
        assert percentiles[90.0] <= percentiles[95.0] <= percentiles[99.0]
        assert percentiles[90.0] < 0.3  # paper: 0.08

    def test_pareto_frontier(self, tiny):
        output = run_experiment("pareto", scale=tiny, modules=("B3",))
        frontier = output.data["frontiers"]["B3"]
        assert frontier
        # Frontier points sorted by V_PP trade HC gain against guardband.
        gains = [p["hcfirst_gain"] for p in frontier]
        guardbands = [p["guardband"] for p in frontier]
        assert all(a >= b for a, b in zip(gains, gains[1:]))
        assert all(a <= b for a, b in zip(guardbands, guardbands[1:]))

    def test_table3_anchors_direction(self, tiny):
        output = run_experiment("table3", scale=tiny, modules=("B3", "C5"))
        b3 = output.data["modules"]["B3"]
        assert b3["vppmin"] == pytest.approx(1.6)
        assert b3["vpp_rec"] <= 2.5
        assert b3["hcfirst_nominal"] > 0

    def test_wcdp_sensitivity_small(self):
        scale = StudyScale(
            rows_per_module=8, row_chunks=2, iterations=1,
            hcfirst_min_step=16_000,
            geometry=StudyScale.tiny().geometry,
            retention_windows=StudyScale.tiny().retention_windows,
        )
        output = run_experiment(
            "wcdp_sensitivity", scale=scale, modules=("B3",)
        )
        info = output.data["modules"]["B3"]
        # Footnote 9: the WCDP rarely changes with V_PP.
        assert info["fraction"] <= 0.5
