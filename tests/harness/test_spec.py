"""Declarative experiment specs: the drift guard, plan derivation, the
runner's spec-driven surface, and the get_study lint."""

import pytest

from repro.errors import ConfigurationError
from repro.harness import cache
from repro.harness.lint import (
    check_clocks,
    check_experiments,
    check_source,
    check_timing_source,
)
from repro.harness.lint import main as lint_main
from repro.harness.plan import build_plan
from repro.harness.registry import (
    EXPERIMENT_IDS,
    all_specs,
    campaign_tests,
    get_spec,
)
from repro.harness.runner import main
from repro.harness.spec import StudyRequest

MODULES = ("A4", "B3", "C5")

#: Knob overrides that keep the drift guard fast at tiny scale.
TINY_KNOBS = {
    "fig8": {"samples": 8},
    "fig9": {"samples": 8},
    "ablation": {"rows": 64},
    "blast_radius": {"victims_per_distance": 2},
    "power": {"activations": 2_000},
    "system_mitigations": {"row_count": 8},
    "wcdp_distribution": {"rows_per_module": 4},
}


def test_declared_studies_match_actual_fetches(monkeypatch, tiny_scale):
    """The drift guard: for every experiment, the studies its SPEC
    declares are exactly the studies it fetches -- the bug class the old
    hand-maintained CAMPAIGN_TESTS dict allowed (its preload routing for
    pareto covered the wrong module set, for example)."""
    fetched = []
    real_get_study = cache.get_study

    def recorder(tests, modules=cache.BENCH_MODULES, scale=None, seed=0,
                 use_disk=None, program=None):
        fetched.append(
            (tuple(sorted(tests)), tuple(sorted(modules)), scale, seed,
             cache._program_key(program))
        )
        return real_get_study(tests, modules=modules, scale=scale,
                              seed=seed, use_disk=use_disk, program=program)

    monkeypatch.setattr(cache, "get_study", recorder)
    for spec in all_specs().values():
        # Shrink the module set where the spec leaves it open; respect
        # pinned defaults (they are part of the declaration under test).
        modules = (
            MODULES
            if spec.module_scoped and spec.default_modules is None
            else None
        )
        fetched.clear()
        spec.run(modules=modules, scale=tiny_scale,
                 **TINY_KNOBS.get(spec.id, {}))
        declared = [
            resolved.cache_key()
            for resolved in spec.resolved_studies(modules, tiny_scale, 0)
        ]
        assert fetched == declared, (
            f"{spec.id}: declared studies {declared} != fetched {fetched}"
        )


def test_registry_is_derived_not_hand_maintained():
    from repro.harness import registry

    assert not hasattr(registry, "CAMPAIGN_TESTS")
    assert EXPERIMENT_IDS == list(all_specs())
    # Report order: paper artifacts first, extensions after.
    assert EXPERIMENT_IDS[:3] == ["table1", "table2", "table3"]
    assert EXPERIMENT_IDS.index("significance") < EXPERIMENT_IDS.index(
        "ablation"
    )


def test_every_spec_is_well_formed():
    for spec in all_specs().values():
        assert spec.id and spec.title
        assert callable(spec.analyze)
        assert spec.describe(), spec.id
        for request in spec.studies:
            assert request.tests, spec.id


def test_campaign_tests_derived_from_specs():
    assert campaign_tests(["fig3", "fig4"]) == [("rowhammer",)]
    assert campaign_tests(["pareto"]) == [("rowhammer", "trcd")]
    assert campaign_tests(["fig8", "table1"]) == []


def test_unknown_knob_rejected():
    with pytest.raises(TypeError, match="sample"):
        get_spec("fig8").run(sample=3)  # typo for "samples"
    with pytest.raises(TypeError, match="fig3"):
        get_spec("fig3").run(samples=3)  # fig3 declares no knobs


def test_module_scoped_flags():
    for experiment_id in ("table1", "table2", "fig8", "fig9"):
        assert not get_spec(experiment_id).module_scoped, experiment_id
    for experiment_id in ("fig3", "pareto", "vppmin_survey"):
        assert get_spec(experiment_id).module_scoped, experiment_id


def test_dynamic_description_resolves_knobs_and_modules():
    power = get_spec("power")
    assert "200000 activations" in power.describe()
    assert "500 activations" in power.describe(knobs={"activations": 500})
    mitigations = get_spec("system_mitigations")
    assert "module B6" in mitigations.describe()
    assert "module C5" in mitigations.describe(modules=("C5",))


def test_study_request_resolution_precedence(tiny_scale):
    open_request = StudyRequest(tests=("rowhammer",))
    resolved = open_request.resolve(modules=None, scale=tiny_scale, seed=3)
    assert resolved.modules == cache.BENCH_MODULES
    assert resolved.scale is tiny_scale
    assert resolved.seed == 3
    pinned = StudyRequest(tests=("trcd",), modules=("B3",), seed=9)
    resolved = pinned.resolve(modules=("C5",), scale=tiny_scale, seed=3)
    assert resolved.modules == ("B3",)  # the pin wins over the override
    assert resolved.seed == 9


def test_build_plan_dedupes_on_cache_key():
    plan = build_plan(["fig3", "fig4", "significance"])
    assert len(plan.requests) == 1
    assert plan.requests[0].tests == ("rowhammer",)
    assert plan.requests[0].modules == cache.BENCH_MODULES


def test_build_plan_tracks_per_experiment_module_needs():
    plan = build_plan(["pareto", "defense_synergy"])
    by_tests = {request.tests: request.modules for request in plan.requests}
    assert by_tests[("rowhammer", "trcd")] == ("B3", "A0")
    assert by_tests[("rowhammer",)] == ("B3", "C9")


def test_build_plan_respects_modules_override():
    plan = build_plan(["fig3"], modules=("B3",), seed=5)
    assert plan.requests == (
        plan.requests[0].__class__(
            tests=("rowhammer",), modules=("B3",), scale=None, seed=5
        ),
    )


def test_empty_plan_is_falsy():
    assert not build_plan(["table1", "fig8"])
    assert build_plan(["fig3"])


def test_plan_preload_primes_the_cache(tiny_scale):
    plan = build_plan(["fig3"], modules=("C5",), scale=tiny_scale)
    plan.preload_parallel(max_workers=1)
    key = cache._key(("rowhammer",), ("C5",), tiny_scale, 0)
    assert key in cache._CACHE


def test_runner_list_flag(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    for experiment_id in EXPERIMENT_IDS:
        assert experiment_id in out
    assert "rowhammer+trcd" in out  # pareto's derived needs
    assert "Table 1" in out


def test_runner_warns_when_modules_passed_to_unscoped_experiment(capsys):
    assert main(["table2", "--modules", "B3", "--no-cache"]) == 0
    err = capsys.readouterr().err
    assert "table2 is not module-scoped" in err


def test_runner_does_not_warn_for_scoped_experiments(capsys, tmp_path):
    assert main(["table2", "--no-cache"]) == 0
    assert "not module-scoped" not in capsys.readouterr().err


def test_lint_current_tree_is_clean():
    assert check_experiments() == []


def test_lint_flags_get_study_import_and_call():
    source = (
        "from repro.harness.cache import get_study\n"
        "def run():\n"
        "    return get_study(('rowhammer',))\n"
    )
    violations = check_source("fake.py", source)
    assert len(violations) == 2
    assert violations[0][1] == 1
    assert "StudyRequest" in violations[0][2]


def test_lint_flags_attribute_calls():
    source = (
        "from repro.harness import cache\n"
        "study = cache.get_study(('trcd',))\n"
    )
    assert len(check_source("fake.py", source)) == 1


def test_lint_allows_declarative_specs():
    source = (
        "from repro.harness.spec import ExperimentSpec, StudyRequest\n"
        "SPEC = ExperimentSpec(id='x', title='t', description='d',\n"
        "                      analyze=print,\n"
        "                      studies=(StudyRequest(tests=('trcd',)),))\n"
    )
    assert check_source("fake.py", source) == []


def test_clock_lint_current_tree_is_clean():
    # repro.core and repro.service take timestamps through
    # repro.obs.clock only (the sanctioned-clock contract).
    assert check_clocks() == []


def test_clock_lint_flags_direct_calls():
    source = (
        "import time\n"
        "started = time.monotonic()\n"
        "stamp = time.time()\n"
        "precise = time.perf_counter_ns()\n"
    )
    violations = check_timing_source("fake.py", source)
    assert [line for _, line, _ in violations] == [2, 3, 4]
    assert all("repro.obs.clock" in message for _, _, message in violations)


def test_clock_lint_flags_from_imports():
    source = "from time import monotonic, perf_counter\n"
    violations = check_timing_source("fake.py", source)
    assert len(violations) == 1
    assert "monotonic, perf_counter" in violations[0][2]


def test_clock_lint_allows_sleep_and_sanctioned_clock():
    source = (
        "import time\n"
        "from repro.obs import clock\n"
        "time.sleep(0.1)\n"
        "started = clock.monotonic()\n"
    )
    assert check_timing_source("fake.py", source) == []


def test_clock_lint_scoped_to_given_directories(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nnow = time.time()\n")
    violations = check_clocks([str(tmp_path)])
    assert len(violations) == 1
    assert violations[0][0] == str(bad)


def test_lint_cli_reports_ok(capsys):
    assert lint_main([]) == 0
    assert "harness lint: ok" in capsys.readouterr().out


def test_lint_cli_reports_violations(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("from repro.harness.cache import get_study\n")
    assert lint_main([str(tmp_path)]) == 1
    assert "bad.py:1" in capsys.readouterr().err


def test_unknown_spec_rejected():
    with pytest.raises(ConfigurationError):
        get_spec("fig99")
