"""Extension experiments beyond the paper's artifacts."""

import pytest

from repro.core.scale import StudyScale
from repro.dram.calibration import ModuleGeometry
from repro.harness.registry import run_experiment
from repro.units import ms


@pytest.fixture(scope="module")
def tiny():
    return StudyScale.tiny()


def test_attack_comparison(tiny):
    output = run_experiment(
        "attack_comparison", scale=tiny, modules=("B3",),
        hc_per_aggressor=600_000,
    )
    flips = output.data["flips"]
    # No defense: double-sided at least matches single-sided.
    assert flips["none"]["double-sided"] >= flips["none"]["single-sided"]
    assert flips["none"]["double-sided"] > 0
    # TRR catches single/double; the many-sided pattern thrashes the
    # tracker and keeps flipping bits.
    assert flips["TRR"]["double-sided"] == 0
    assert flips["TRR"]["single-sided"] == 0
    assert flips["TRR"]["8-sided"] > 0


def test_temperature_sweep(tiny):
    output = run_experiment("temperature_sweep", scale=tiny, modules=("C5",))
    sweep = output.data["sweep"]
    for vpp, by_temperature in sweep.items():
        retention = [
            by_temperature[t]["retention_ber"]
            for t in sorted(by_temperature)
        ]
        # Retention BER grows strongly with temperature.
        assert retention[-1] > retention[0]
    # The V_PP benefit direction at the retention side: lower V_PP makes
    # retention worse at every temperature.
    low_vpp = min(sweep)
    high_vpp = max(sweep)
    for temperature in sweep[high_vpp]:
        assert (
            sweep[low_vpp][temperature]["retention_ber"]
            >= sweep[high_vpp][temperature]["retention_ber"]
        )


def test_finer_refresh_bisection():
    scale = StudyScale(
        rows_per_module=24, iterations=1, hcfirst_min_step=8000,
        retention_windows=(ms(16.0), ms(32.0), ms(64.0), ms(128.0)),
        geometry=ModuleGeometry(rows_per_bank=1024, banks=1, row_bits=4096),
    )
    output = run_experiment("finer_refresh", scale=scale, modules=("B6",))
    info = output.data["modules"]["B6"]
    assert info is not None
    # The exact window sits at or below the power-of-two estimate and
    # above the previous (passing) power of two.
    assert info["exact_ms"] <= info["coarse_ms"]
    assert info["exact_ms"] > info["coarse_ms"] / 2
    assert info["rate_increase"] >= 1.0 or info["exact_ms"] >= 64.0


def test_trcd_stability(tiny):
    output = run_experiment("trcd_stability", scale=tiny, modules=("B3",))
    # Footnote 11: activation latency is a stable per-row property.
    assert output.data["changed"] <= max(1, output.data["rows"] // 10)
    assert output.data["max_delta_ns"] <= 1.5 + 1e-9


def test_power_scales_linearly(tiny):
    output = run_experiment("power", scale=tiny, modules=("B3",))
    levels = output.data["levels"]
    vpps = sorted(levels)
    powers = [levels[v]["power_w"] for v in vpps]
    currents = [levels[v]["current_a"] for v in vpps]
    # Fixed activation rate -> flat current, linear power in V_PP.
    assert max(currents) == pytest.approx(min(currents), rel=1e-6)
    assert powers == sorted(powers)
    assert powers[0] / powers[-1] == pytest.approx(
        vpps[0] / vpps[-1], rel=1e-6
    )


def test_system_mitigations(tiny):
    output = run_experiment(
        "system_mitigations", scale=tiny, modules=("B6",), row_count=24
    )
    results = output.data["results"]
    assert results["nominal V_PP"]["corrupted_words"] == 0
    assert results["V_PPmin, no mitigation"]["corrupted_words"] > 0
    assert results["V_PPmin + SECDED"]["corrupted_words"] == 0
    assert results["V_PPmin + SECDED"]["ecc_corrected"] > 0
    assert results["V_PPmin + selective refresh"]["corrupted_words"] == 0
    assert 0.0 < output.data["weak_row_fraction"] <= 0.5


def test_vppmin_survey_matches_table3():
    output = run_experiment("vppmin_survey")
    assert output.data["all_match"]
    discovered = output.data["discovered"]
    assert len(discovered) == 30
    assert discovered["A0"] == 1.4  # Section 7's lowest
    assert discovered["A5"] == 2.4  # Section 7's highest


def test_blast_radius_decays_with_distance(tiny_scale):
    output = run_experiment(
        "blast_radius", scale=tiny_scale, modules=("C5",),
        victims_per_distance=4,
    )
    totals = output.data["totals"]
    # Distance-1 dominates; distance-2 is a small fraction; distance-3
    # is quiet.
    assert totals[1] > 20 * max(1, totals[2])
    assert totals[3] == 0


def test_wcdp_distribution(tiny_scale):
    output = run_experiment(
        "wcdp_distribution", scale=tiny_scale, modules=("B3",),
        rows_per_module=8,
    )
    distributions = output.data["distributions"]["B3"]
    for test in ("rowhammer", "trcd", "retention"):
        assert sum(distributions[test].values()) == 8
    # Retention WCDPs are predominantly the charged stripes.
    retention = distributions["retention"]
    stripes = retention.get("rowstripe-1", 0) + retention.get(
        "rowstripe-0", 0
    )
    assert stripes >= sum(retention.values()) / 2
