"""Experiment registry and the CLI runner."""

import pytest

from repro.errors import ConfigurationError
from repro.harness.registry import (
    EXPERIMENT_IDS,
    get_experiment,
    run_experiment,
)
from repro.harness.runner import build_parser, main


def test_registry_covers_every_paper_artifact():
    for artifact in ("table1", "table2", "table3", "fig3", "fig4", "fig5",
                     "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
                     "significance"):
        assert artifact in EXPERIMENT_IDS
        assert callable(get_experiment(artifact))


def test_registry_includes_extensions():
    for extension in ("ablation", "wcdp_sensitivity", "trr_demo", "pareto"):
        assert extension in EXPERIMENT_IDS


def test_unknown_id_rejected():
    with pytest.raises(ConfigurationError):
        get_experiment("fig99")


def test_run_experiment_static():
    output = run_experiment("table1")
    assert output.experiment_id == "table1"
    assert output.data["total_chips"] == 272


def test_parser_defaults():
    args = build_parser().parse_args(["fig3", "--seed", "7"])
    assert args.experiments == ["fig3"]
    assert args.seed == 7
    assert not args.all


def test_main_runs_and_exports(tmp_path, capsys):
    code = main(["table2", "--out", str(tmp_path)])
    assert code == 0
    captured = capsys.readouterr()
    assert "table2" in captured.out
    assert any(p.suffix == ".json" for p in tmp_path.iterdir())


def test_main_without_ids_shows_help(capsys):
    assert main([]) == 2


def test_cache_preload_is_used(tiny_scale):
    """A preloaded study short-circuits the campaign in get_study."""
    from repro.core.study import CharacterizationStudy
    from repro.harness.cache import get_study, preload_study

    study = CharacterizationStudy(scale=tiny_scale, seed=1).run(
        modules=["C5"], tests=("rowhammer",)
    )
    preload_study(study, ("rowhammer",), ("C5",), seed=1)
    fetched = get_study(("rowhammer",), modules=("C5",), scale=tiny_scale,
                        seed=1)
    assert fetched is study


def test_parser_parallel_flag():
    args = build_parser().parse_args(["fig3", "--parallel", "4"])
    assert args.parallel == 4


def test_main_observability_flags(tmp_path, capsys):
    import json

    trace_path = tmp_path / "trace.json"
    metrics_path = tmp_path / "metrics.prom"
    code = main([
        "table2", "--no-cache", "--out", str(tmp_path / "out"),
        "--trace", str(trace_path), "--metrics-out", str(metrics_path),
    ])
    assert code == 0
    capsys.readouterr()

    from repro.obs.trace import TRACER

    assert not TRACER.enabled  # main() cleans the global tracer up
    document = json.loads(trace_path.read_text())
    names = {event["name"] for event in document["traceEvents"]}
    assert "experiment" in names
    assert metrics_path.read_text().endswith("\n") or (
        metrics_path.read_text() == ""
    )

    (export,) = (tmp_path / "out").glob("*.json")
    payload = json.loads(export.read_text())
    from repro.obs.provenance import validate_provenance

    block = validate_provenance(payload["provenance"])
    assert block["cache"] == "off"


def test_profile_prints_span_table_when_tracing(tmp_path, capsys):
    code = main([
        "table2", "--no-cache", "--profile",
        "--trace", str(tmp_path / "trace.json"),
    ])
    assert code == 0
    captured = capsys.readouterr()
    assert "-- profile" in captured.out
    assert "-- spans" in captured.out
