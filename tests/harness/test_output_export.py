"""Output containers, rendering, and export."""

import csv
import json
import os

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.harness.export import export_output
from repro.harness.output import ExperimentOutput, ExperimentTable, format_value


class TestFormatting:
    def test_small_floats_scientific(self):
        assert format_value(1.24e-3) == "1.24e-03"

    def test_medium_floats_fixed(self):
        assert format_value(13.5) == "13.5"

    def test_zero(self):
        assert format_value(0.0) == "0"

    def test_passthrough(self):
        assert format_value("B3") == "B3"
        assert format_value(42) == "42"
        assert format_value(None) == "None"
        assert format_value(True) == "True"


class TestTable:
    def test_row_width_enforced(self):
        table = ExperimentTable("t", ["a", "b"])
        with pytest.raises(ConfigurationError):
            table.add_row(1)

    def test_render_aligns_columns(self):
        table = ExperimentTable("Demo", ["Module", "BER"])
        table.add_row("B3", 2.73e-3)
        text = table.render()
        assert "Demo" in text
        assert "Module" in text
        assert "2.73e-03" in text


class TestOutput:
    def test_render_includes_notes(self):
        output = ExperimentOutput("fig0", "Title", "Description")
        output.note("paper vs measured")
        table = output.add_table(ExperimentTable("t", ["x"]))
        table.add_row(1)
        text = output.render()
        assert "fig0" in text and "paper vs measured" in text

    def test_export_writes_csv_and_json(self, tmp_path):
        output = ExperimentOutput("figX", "T", "D")
        table = output.add_table(ExperimentTable("My Table", ["a", "b"]))
        table.add_row(1, 2.5)
        output.data["series"] = {"x": np.array([1.0, 2.0])}
        written = export_output(output, str(tmp_path))
        csv_files = [p for p in written if p.endswith(".csv")]
        json_files = [p for p in written if p.endswith(".json")]
        assert len(csv_files) == 1 and len(json_files) == 1
        with open(csv_files[0]) as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["a", "b"]
        with open(json_files[0]) as handle:
            payload = json.load(handle)
        assert payload["data"]["series"]["x"] == [1.0, 2.0]
        assert payload["experiment_id"] == "figX"

    def test_export_creates_directory(self, tmp_path):
        output = ExperimentOutput("figY", "T", "D")
        target = os.path.join(str(tmp_path), "nested", "dir")
        export_output(output, target)
        assert os.path.isdir(target)
