"""ASCII figure rendering."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.harness.figures import line_plot, sparkline


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_monotone_series_uses_rising_blocks(self):
        text = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert text[0] < text[-1]

    def test_constant_series(self):
        text = sparkline([5.0, 5.0, 5.0])
        assert len(set(text)) == 1

    def test_nan_marked(self):
        assert sparkline([1.0, float("nan"), 2.0])[1] == "·"

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            sparkline([])


class TestLinePlot:
    def test_renders_axes_and_legend(self):
        x = np.linspace(0, 10, 20)
        text = line_plot(
            x, {"rising": x, "falling": 10 - x},
            title="Demo", x_label="t", y_label="v",
        )
        assert "Demo" in text
        assert "rising" in text and "falling" in text
        assert "x: t" in text and "y: v" in text
        assert "+" + "-" * 10 in text  # axis line

    def test_marker_placement_extremes(self):
        x = [0.0, 1.0]
        text = line_plot(x, {"s": [0.0, 1.0]}, width=20, height=5)
        rows = [line for line in text.splitlines() if "|" in line]
        # Highest value renders in the top grid row, lowest in the bottom.
        assert "#" in rows[0]
        assert "#" in rows[-1]

    def test_mismatched_series_rejected(self):
        with pytest.raises(AnalysisError):
            line_plot([1, 2, 3], {"s": [1, 2]})

    def test_empty_series_rejected(self):
        with pytest.raises(AnalysisError):
            line_plot([1, 2], {})

    def test_nan_values_skipped(self):
        text = line_plot([0, 1, 2], {"s": [1.0, float("nan"), 3.0]})
        assert text  # renders without error
