"""Persistent (disk) study cache: hits, invalidation, key hygiene."""

import json
import os

import pytest

from repro.core.scale import StudyScale
from repro.harness import cache
from repro.harness.cache import (
    clear_cache,
    clear_disk_cache,
    get_study,
    invalidate_study,
    set_study_cache_dir,
    study_cache_dir,
    study_fingerprint,
)
from repro.obs.provenance import validate_provenance

TESTS = ("rowhammer",)
MODULES = ("C5",)


@pytest.fixture
def cache_dir(tmp_path):
    previous = set_study_cache_dir(str(tmp_path))
    yield str(tmp_path)
    set_study_cache_dir(previous)


def _entries(directory):
    return sorted(
        entry for entry in os.listdir(directory)
        if entry.startswith("study-") and entry.endswith(".json")
    )


def _count_runs(monkeypatch):
    """Count actual campaign executions behind get_study."""
    from repro.core.study import CharacterizationStudy

    calls = []
    original = CharacterizationStudy.run

    def counting_run(self, *args, **kwargs):
        calls.append(1)
        return original(self, *args, **kwargs)

    monkeypatch.setattr(CharacterizationStudy, "run", counting_run)
    return calls


class TestDiskCache:
    def test_write_through_and_cross_process_style_hit(
        self, cache_dir, tiny_scale, monkeypatch
    ):
        calls = _count_runs(monkeypatch)
        first = get_study(TESTS, MODULES, scale=tiny_scale, seed=2)
        assert len(_entries(cache_dir)) == 1
        # A fresh process is simulated by dropping the in-memory layer.
        clear_cache()
        second = get_study(TESTS, MODULES, scale=tiny_scale, seed=2)
        assert len(calls) == 1
        assert second is not first
        assert [
            (r.row, r.vpp, r.hcfirst, r.ber)
            for r in second.module("C5").rowhammer
        ] == [
            (r.row, r.vpp, r.hcfirst, r.ber)
            for r in first.module("C5").rowhammer
        ]

    def test_memory_layer_still_first(self, cache_dir, tiny_scale,
                                      monkeypatch):
        calls = _count_runs(monkeypatch)
        first = get_study(TESTS, MODULES, scale=tiny_scale, seed=2)
        assert get_study(TESTS, MODULES, scale=tiny_scale, seed=2) is first
        assert len(calls) == 1

    def test_use_disk_false_bypasses(self, cache_dir, tiny_scale):
        get_study(TESTS, MODULES, scale=tiny_scale, seed=2, use_disk=False)
        assert _entries(cache_dir) == []

    def test_disabled_by_default_in_tests(self, tiny_scale):
        # The conftest fixture turns the disk layer off for isolation.
        assert study_cache_dir() is None

    def test_corrupt_entry_recomputed(self, cache_dir, tiny_scale,
                                      monkeypatch):
        calls = _count_runs(monkeypatch)
        get_study(TESTS, MODULES, scale=tiny_scale, seed=2)
        (entry,) = _entries(cache_dir)
        path = os.path.join(cache_dir, entry)
        with open(path, "w") as handle:
            handle.write("{not json")
        clear_cache()
        study = get_study(TESTS, MODULES, scale=tiny_scale, seed=2)
        assert len(calls) == 2
        assert "C5" in study.modules
        # The corrupt file was replaced by the fresh result.
        with open(path) as handle:
            json.load(handle)

    def test_invalidate_study_drops_both_layers(self, cache_dir, tiny_scale,
                                                monkeypatch):
        calls = _count_runs(monkeypatch)
        get_study(TESTS, MODULES, scale=tiny_scale, seed=2)
        assert invalidate_study(TESTS, MODULES, scale=tiny_scale, seed=2)
        assert _entries(cache_dir) == []
        get_study(TESTS, MODULES, scale=tiny_scale, seed=2)
        assert len(calls) == 2
        assert not invalidate_study(("trcd",), MODULES, scale=tiny_scale,
                                    seed=2)

    def test_clear_disk_cache(self, cache_dir, tiny_scale):
        get_study(TESTS, MODULES, scale=tiny_scale, seed=2)
        removed = clear_disk_cache()
        assert len(removed) == 1
        assert _entries(cache_dir) == []

    def test_env_var_configures_directory(self, tmp_path, monkeypatch):
        set_study_cache_dir(None)
        monkeypatch.setenv(cache.CACHE_DIR_ENV_VAR, str(tmp_path))
        # Explicit None (set by the conftest fixture) wins over the env
        # var; clearing the explicit setting exposes it.
        assert study_cache_dir() is None
        previous = cache._disk_dir
        cache._disk_dir = cache._UNSET
        try:
            assert study_cache_dir() == str(tmp_path)
        finally:
            cache._disk_dir = previous


class TestFingerprint:
    def test_module_order_normalized(self, tiny_scale):
        assert study_fingerprint(
            TESTS, ("A0", "B3"), tiny_scale, 0
        ) == study_fingerprint(TESTS, ("B3", "A0"), tiny_scale, 0)

    def test_test_order_normalized(self, tiny_scale):
        assert study_fingerprint(
            ("trcd", "rowhammer"), MODULES, tiny_scale, 0
        ) == study_fingerprint(("rowhammer", "trcd"), MODULES, tiny_scale, 0)

    def test_scope_changes_fingerprint(self, tiny_scale):
        base = study_fingerprint(TESTS, MODULES, tiny_scale, 0)
        assert study_fingerprint(TESTS, MODULES, tiny_scale, 1) != base
        assert study_fingerprint(TESTS, ("A0",), tiny_scale, 0) != base
        assert study_fingerprint(
            TESTS, MODULES, StudyScale.bench(), 0
        ) != base

    def test_memory_key_module_order_normalized(self, tiny_scale,
                                                monkeypatch):
        # The satellite fix: ("A0","B3") and ("B3","A0") must share one
        # in-memory entry too.
        calls = _count_runs(monkeypatch)
        first = get_study(TESTS, ("B3", "C5"), scale=tiny_scale, seed=2,
                          use_disk=False)
        second = get_study(TESTS, ("C5", "B3"), scale=tiny_scale, seed=2,
                           use_disk=False)
        assert second is first
        assert len(calls) == 1


class TestProvenance:
    """Every cached study carries a schema-valid provenance block that
    survives the disk round trip (a tentpole acceptance criterion)."""

    def test_fresh_run_is_stamped_as_a_miss(self, cache_dir, tiny_scale):
        study = get_study(TESTS, MODULES, scale=tiny_scale, seed=2)
        block = study.provenance
        validate_provenance(block)
        assert block["cache"] == "miss"
        assert block["fingerprint"] == study_fingerprint(
            TESTS, MODULES, tiny_scale, 2
        )
        assert block["seed"] == 2
        assert block["tests"] == ["rowhammer"]
        assert block["modules"] == ["C5"]
        assert block["wall_seconds"] > 0

    def test_counters_are_the_run_delta_not_process_totals(
        self, cache_dir, tiny_scale
    ):
        from repro.obs.metrics import REGISTRY

        # Pre-existing registry state must not leak into the block.
        REGISTRY.counter("repro_probes_hammer_total").inc(1_000_000)
        study = get_study(TESTS, MODULES, scale=tiny_scale, seed=2)
        hammers = study.provenance["counters"]["repro_probes_hammer_total"]
        assert 0 < hammers < 1_000_000

    def test_block_survives_disk_round_trip(self, cache_dir, tiny_scale):
        fresh = get_study(TESTS, MODULES, scale=tiny_scale, seed=2)
        clear_cache()  # drop the memory layer; force the disk entry
        reloaded = get_study(TESTS, MODULES, scale=tiny_scale, seed=2)
        validate_provenance(reloaded.provenance)
        assert reloaded.provenance == fresh.provenance

    def test_block_lands_in_the_json_entry(self, cache_dir, tiny_scale):
        get_study(TESTS, MODULES, scale=tiny_scale, seed=2)
        (entry,) = _entries(cache_dir)
        with open(os.path.join(cache_dir, entry)) as handle:
            payload = json.load(handle)
        validate_provenance(payload["provenance"])

    def test_corrupt_provenance_treated_as_corrupt_entry(
        self, cache_dir, tiny_scale, monkeypatch
    ):
        calls = _count_runs(monkeypatch)
        get_study(TESTS, MODULES, scale=tiny_scale, seed=2)
        (entry,) = _entries(cache_dir)
        path = os.path.join(cache_dir, entry)
        with open(path) as handle:
            payload = json.load(handle)
        payload["provenance"]["cache"] = "warm"  # not a valid state
        with open(path, "w") as handle:
            json.dump(payload, handle)
        clear_cache()
        study = get_study(TESTS, MODULES, scale=tiny_scale, seed=2)
        assert len(calls) == 2  # recomputed, not served corrupt
        validate_provenance(study.provenance)

    def test_preloaded_study_is_stamped(self, cache_dir, tiny_scale):
        from repro.core.study import CharacterizationStudy
        from repro.harness.cache import preload_study

        result = CharacterizationStudy(scale=tiny_scale, seed=2).run(
            modules=MODULES, tests=TESTS
        )
        assert result.provenance is None
        preload_study(result, TESTS, MODULES, seed=2, wall_seconds=1.25)
        validate_provenance(result.provenance)
        assert result.provenance["wall_seconds"] == 1.25

    def test_cache_traffic_counters(self, cache_dir, tiny_scale):
        from repro.obs.metrics import REGISTRY

        def deltas(before):
            return {
                name: value - before.get(name, 0.0)
                for name, value in REGISTRY.counter_values().items()
            }

        before = REGISTRY.counter_values()
        get_study(TESTS, MODULES, scale=tiny_scale, seed=2)
        after_miss = deltas(before)
        assert after_miss["repro_study_cache_misses_total"] == 1
        assert after_miss["repro_study_cache_write_bytes_total"] > 0

        before = REGISTRY.counter_values()
        get_study(TESTS, MODULES, scale=tiny_scale, seed=2)
        assert deltas(before)["repro_study_cache_memory_hits_total"] == 1

        clear_cache()
        before = REGISTRY.counter_values()
        get_study(TESTS, MODULES, scale=tiny_scale, seed=2)
        after_disk = deltas(before)
        assert after_disk["repro_study_cache_disk_hits_total"] == 1
        assert after_disk["repro_study_cache_read_bytes_total"] > 0


class TestProbeEngineKeying:
    """The resolved probe-engine selection is part of both cache keys:
    command-engine and fast-engine runs are bit-identical by design, but
    entries must never mask each other when the engines are compared."""

    def test_engine_changes_fingerprint(self, tiny_scale):
        fast = study_fingerprint(TESTS, MODULES, tiny_scale, 0,
                                 probe_engine="fast")
        command = study_fingerprint(TESTS, MODULES, tiny_scale, 0,
                                    probe_engine="command")
        assert fast != command

    def test_default_resolves_to_batch(self, tiny_scale, monkeypatch):
        monkeypatch.delenv("REPRO_PROBE_ENGINE", raising=False)
        assert study_fingerprint(
            TESTS, MODULES, tiny_scale, 0
        ) == study_fingerprint(TESTS, MODULES, tiny_scale, 0,
                               probe_engine="batch")

    def test_env_var_participates(self, tiny_scale, monkeypatch):
        monkeypatch.delenv("REPRO_PROBE_ENGINE", raising=False)
        default = study_fingerprint(TESTS, MODULES, tiny_scale, 0)
        monkeypatch.setenv("REPRO_PROBE_ENGINE", "command")
        assert study_fingerprint(TESTS, MODULES, tiny_scale, 0) != default

    def test_engines_get_distinct_entries_and_runs(
        self, cache_dir, tiny_scale, monkeypatch
    ):
        calls = _count_runs(monkeypatch)
        monkeypatch.delenv("REPRO_PROBE_ENGINE", raising=False)
        get_study(TESTS, MODULES, scale=tiny_scale, seed=2)
        monkeypatch.setenv("REPRO_PROBE_ENGINE", "command")
        get_study(TESTS, MODULES, scale=tiny_scale, seed=2)
        # Neither layer served the fast-engine entry to the command run.
        assert len(calls) == 2
        assert len(_entries(cache_dir)) == 2
