"""Deterministic RNG stream properties."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.rng import RngHub, derive_seed


def test_same_key_same_stream():
    hub = RngHub(42)
    a = hub.generator("x/y").random(16)
    b = hub.generator("x/y").random(16)
    assert np.array_equal(a, b)


def test_different_keys_differ():
    hub = RngHub(42)
    a = hub.generator("x/y").random(16)
    b = hub.generator("x/z").random(16)
    assert not np.array_equal(a, b)


def test_different_root_seeds_differ():
    a = RngHub(1).generator("k").random(16)
    b = RngHub(2).generator("k").random(16)
    assert not np.array_equal(a, b)


def test_spawn_creates_namespaced_child():
    hub = RngHub(7)
    child = hub.spawn("module/B3")
    direct = RngHub(derive_seed(7, "module/B3"))
    assert np.array_equal(
        child.generator("row/1").random(8), direct.generator("row/1").random(8)
    )


def test_root_seed_type_checked():
    with pytest.raises(TypeError):
        RngHub("not-an-int")


def test_repr_mentions_seed():
    assert "42" in repr(RngHub(42))


@given(st.integers(min_value=0, max_value=2**32), st.text(max_size=50))
def test_derive_seed_is_64_bit(seed, key):
    value = derive_seed(seed, key)
    assert 0 <= value < 2**64


@given(st.text(max_size=30), st.text(max_size=30))
def test_derive_seed_key_sensitivity(key_a, key_b):
    if key_a != key_b:
        # Not a guarantee (hash collisions exist) but astronomically
        # likely; a failure here indicates broken key derivation.
        assert derive_seed(0, key_a) != derive_seed(0, key_b)
