"""Exception hierarchy contract."""

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in dir(errors):
        obj = getattr(errors, name)
        if isinstance(obj, type) and issubclass(obj, Exception):
            assert issubclass(obj, errors.ReproError) or obj is errors.ReproError


def test_subsystem_grouping():
    assert issubclass(errors.DramCommandError, errors.DramError)
    assert issubclass(errors.DramTimingError, errors.DramError)
    assert issubclass(errors.DramAddressError, errors.DramError)
    assert issubclass(errors.CommunicationError, errors.SoftMCError)
    assert issubclass(errors.PowerSupplyError, errors.SoftMCError)
    assert issubclass(errors.ProgramError, errors.SoftMCError)
    assert issubclass(errors.NetlistError, errors.SpiceError)
    assert issubclass(errors.ConvergenceError, errors.SpiceError)
    assert issubclass(errors.UncorrectableError, errors.EccError)


def test_catching_base_catches_subsystem():
    with pytest.raises(errors.ReproError):
        raise errors.CommunicationError("module mute")
