"""Cross-tier bit-identity of compiled DSL programs.

Every registered program must produce the same probe answers on all
four engine tiers -- the command engine executing the emitted
instruction stream is the reference; the fast/batch/fused kernels
replay the program against presorted threshold reductions and must
agree bit for bit. A structurally-default program must additionally be
indistinguishable -- results *and* probe/command counters -- from the
pre-DSL code path it normalizes to.
"""

import pytest

from repro.core.context import TestContext
from repro.core.probe import open_hammer_session, one_shot_hammer_ber
from repro.core.scale import StudyScale
from repro.core.study import CharacterizationStudy
from repro.dram.patterns import STANDARD_PATTERNS
from repro.progdsl import compile_program
from repro.softmc.infrastructure import TestInfrastructure

ENGINES = ("command", "fast", "batch", "fused")
MODULE = "B3"
SEED = 11
ROW = 64
HAMMER_COUNTS = (60_000, 120_000, 240_000)


def _context(kind, program=None, module=MODULE):
    scale = StudyScale.tiny()
    infra = TestInfrastructure.for_module(
        module, geometry=scale.geometry, seed=SEED
    )
    return TestContext(infra, scale, probe_engine=kind, program=program)


def _session_answers(ctx, pattern):
    with open_hammer_session(ctx, ROW, pattern) as probe:
        return (
            [probe.ber(hc) for hc in HAMMER_COUNTS],
            probe.any_flip(90_000),
        )


class TestProgramBitIdentity:
    @pytest.mark.parametrize("name", [
        "single-sided", "double-sided", "quad-sided", "four-sided-decoy",
    ])
    def test_compiled_programs_agree_across_tiers(self, name):
        program = compile_program(name)
        pattern = STANDARD_PATTERNS[0]
        answers = {
            kind: _session_answers(_context(kind, program), pattern)
            for kind in ENGINES
        }
        for kind in ENGINES[1:]:
            assert answers[kind] == answers["command"], (
                f"{name}: {kind} diverges from the command reference"
            )

    def test_refresh_fallback_agrees_across_tiers(self):
        # Refresh interleaving is data-dependent: every tier must route
        # to the emitted-stream fallback and still agree exactly.
        program = compile_program("double-sided-refresh")
        pattern = STANDARD_PATTERNS[0]
        answers = {
            kind: one_shot_hammer_ber(
                _context(kind, program), ROW, pattern, 120_001
            )
            for kind in ENGINES
        }
        assert len(set(answers.values())) == 1, answers

    def test_one_shot_matches_session(self):
        program = compile_program("quad-sided")
        pattern = STANDARD_PATTERNS[1]
        one_shot = one_shot_hammer_ber(
            _context("batch", program), ROW, pattern, 90_000
        )
        ctx = _context("batch", program)
        with open_hammer_session(ctx, ROW, pattern) as probe:
            in_session = probe.ber(90_000)
        assert one_shot == in_session


class TestDefaultProgramIsTheLegacyPath:
    @pytest.mark.parametrize("kind", ENGINES)
    def test_results_and_counters_match_legacy(self, kind):
        pattern = STANDARD_PATTERNS[0]
        legacy_ctx = _context(kind)
        legacy = _session_answers(legacy_ctx, pattern)
        program_ctx = _context(kind, compile_program("double-sided"))
        programmed = _session_answers(program_ctx, pattern)
        assert programmed == legacy
        assert (
            program_ctx.engine.counters.as_dict()
            == legacy_ctx.engine.counters.as_dict()
        )


class TestStudyLevelEquivalence:
    def test_default_program_study_is_bit_identical(self, tiny_scale):
        """The acceptance pin: a study run through the compiled
        ``double-sided`` program matches the pre-DSL schedule's study
        exactly -- records and fingerprint."""
        baseline = CharacterizationStudy(
            scale=tiny_scale, seed=3
        ).run_module(MODULE, tests=("rowhammer",), vpp_levels=[2.5, 2.2])
        programmed = CharacterizationStudy(
            scale=tiny_scale, seed=3, program="double-sided"
        ).run_module(MODULE, tests=("rowhammer",), vpp_levels=[2.5, 2.2])
        assert programmed.rowhammer == baseline.rowhammer
        assert programmed.vpp_levels == baseline.vpp_levels

    def test_non_default_program_changes_the_records(self, tiny_scale):
        baseline = CharacterizationStudy(
            scale=tiny_scale, seed=3
        ).run_module(MODULE, tests=("rowhammer",), vpp_levels=[2.5])
        programmed = CharacterizationStudy(
            scale=tiny_scale, seed=3, program="quad-sided"
        ).run_module(MODULE, tests=("rowhammer",), vpp_levels=[2.5])
        assert programmed.rowhammer != baseline.rowhammer
