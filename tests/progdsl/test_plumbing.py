"""Program plumbing: validation contracts, fingerprints, lint, e2e.

Every front end -- runner CLI, service CLI, HTTP API -- must reject an
unknown program name with the same uniform contract (exit 2 on the
CLIs, HTTP 400 on the API) and the same error text, and a non-trivial
program must flow through each front end to a finished study with no
engine-layer special-casing. Fingerprints follow the schedule, not the
name: the default program leaves cache keys byte-identical to a
pre-DSL request, renamed-identical programs share entries, and any
other schedule gets its own.
"""

import pytest

from repro.core.scale import StudyScale
from repro.errors import ConfigurationError
from repro.harness.cache import study_fingerprint
from repro.harness.lint import check_program_source, check_programs
from repro.harness.registry import run_experiment
from repro.harness.runner import main as runner_main
from repro.harness.store import StudyStore
from repro.harness.validation import validate_program
from repro.progdsl import get_program, register_program
from repro.service.checkpoint import campaign_fingerprint
from repro.service.orchestrator import CampaignService
from repro.service.__main__ import main as service_main


class TestValidation:
    def test_none_and_known_names_pass_through(self):
        assert validate_program(None) is None
        assert validate_program("quad-sided") == "quad-sided"

    def test_unknown_name_lists_the_available_programs(self):
        with pytest.raises(ConfigurationError) as exc:
            validate_program("nope")
        message = str(exc.value)
        assert "unknown program id(s): nope" in message
        assert "available:" in message
        assert "double-sided" in message


class TestExitCodeContract:
    def test_runner_rejects_unknown_program_with_exit_2(self, capsys):
        assert runner_main(["fig3", "--no-cache", "--program", "nope"]) == 2
        assert "unknown program id(s): nope" in capsys.readouterr().err

    def test_service_rejects_unknown_program_with_exit_2(self, capsys):
        code = service_main([
            "--modules", "C5", "--tests", "rowhammer", "--scale", "tiny",
            "--no-checkpoint", "--quiet", "--program", "nope",
        ])
        assert code == 2
        assert "unknown program id(s): nope" in capsys.readouterr().err

    def test_api_rejects_unknown_program_with_400(self, tmp_path):
        from repro.api import ApiServer

        api = ApiServer(
            str(tmp_path / "store"), str(tmp_path / "state"), workers=1
        )
        status, document = api.handle(
            "POST", "/v1/jobs", {},
            {"modules": ["C5"], "tests": ["rowhammer"], "scale": "tiny",
             "seed": 0, "program": "nope"},
            "default",
        )
        assert status == 400
        assert "unknown program id(s): nope" in document["error"]

    def test_api_accepts_known_program_with_202(self, tmp_path):
        from repro.api import ApiServer

        api = ApiServer(
            str(tmp_path / "store"), str(tmp_path / "state"), workers=1
        )
        status, document = api.handle(
            "POST", "/v1/jobs", {},
            {"modules": ["C5"], "tests": ["rowhammer"], "scale": "tiny",
             "seed": 0, "program": "four-sided-decoy"},
            "default",
        )
        assert status == 202
        assert document["job"]["state"] == "queued"


class TestFingerprints:
    def test_default_program_keeps_the_pre_dsl_fingerprint(self, tiny_scale):
        base = study_fingerprint(("rowhammer",), ("C5",), tiny_scale, 0)
        assert study_fingerprint(
            ("rowhammer",), ("C5",), tiny_scale, 0, program="double-sided"
        ) == base

    def test_non_default_program_changes_the_fingerprint(self, tiny_scale):
        base = study_fingerprint(("rowhammer",), ("C5",), tiny_scale, 0)
        quad = study_fingerprint(
            ("rowhammer",), ("C5",), tiny_scale, 0, program="quad-sided"
        )
        assert quad != base

    def test_renamed_identical_programs_share_a_fingerprint(self, tiny_scale):
        register_program(get_program("quad-sided").renamed("qs-alias"))
        assert study_fingerprint(
            ("rowhammer",), ("C5",), tiny_scale, 0, program="qs-alias"
        ) == study_fingerprint(
            ("rowhammer",), ("C5",), tiny_scale, 0, program="quad-sided"
        )

    def test_campaign_fingerprint_follows_the_same_normalization(
        self, tiny_scale
    ):
        def fp(program):
            return campaign_fingerprint(
                ("rowhammer",), ("C5",), tiny_scale, 0, "batch", None,
                program=program,
            )

        assert fp("double-sided") == fp(None)
        assert fp("quad-sided") != fp(None)


class TestLintContract:
    def test_raw_act_streams_are_flagged(self):
        source = (
            "def attack(program, bank):\n"
            "    for _ in range(100):\n"
            "        program.act(bank, 12)\n"
        )
        violations = check_program_source("x.py", source)
        assert any(".act(" in message for _, _, message in violations)

    def test_hammer_ref_loops_are_flagged(self):
        source = (
            "def schedule(program, bank, rows):\n"
            "    for chunk in chunks:\n"
            "        program.hammer(bank, rows, chunk)\n"
            "        program.ref()\n"
        )
        violations = check_program_source("x.py", source)
        assert any(
            "hand-rolls" in message for _, _, message in violations
        )

    def test_sanctioned_builders_pass(self):
        source = (
            "def schedule(program, bank, rows, counts):\n"
            "    program.hammer_rounds(bank, rows, counts, refresh=True)\n"
            "    for row in rows:\n"
            "        program.hammer(bank, [row], 1000)\n"
        )
        assert check_program_source("x.py", source) == []

    def test_the_tree_is_clean(self):
        assert check_programs() == []


class TestEndToEnd:
    """A 4-sided+decoy program through every front end, engine untouched."""

    def test_runner_layer(self, tiny_scale):
        output = run_experiment(
            "fig3", scale=tiny_scale, modules=("C5",),
            program="four-sided-decoy",
        )
        assert output.tables

    def test_orchestrator_layer(self, tiny_scale):
        outcome = CampaignService(
            modules=["C5"], tests=("rowhammer",), scale=tiny_scale, seed=0,
            program="four-sided-decoy", checkpoint_base=None,
        ).run()
        study = outcome.study
        assert study.modules["C5"].rowhammer

    def test_api_layer(self, tmp_path):
        from repro.api.jobs import Job, JobSpec, run_job

        spec = JobSpec.from_payload({
            "modules": ["C5"], "tests": ["rowhammer"], "scale": "tiny",
            "seed": 0, "program": "four-sided-decoy",
        })
        job = Job.create(spec, "default")
        store = StudyStore(str(tmp_path))
        run_job(job, store)
        assert job.state == "completed", job.error
        assert store.contains(job.fingerprint)

    def test_program_changes_the_study_it_produces(self, tmp_path):
        from repro.api.jobs import Job, JobSpec

        plain = JobSpec.from_payload({
            "modules": ["C5"], "tests": ["rowhammer"], "scale": "tiny",
            "seed": 0,
        })
        programmed = JobSpec.from_payload({
            "modules": ["C5"], "tests": ["rowhammer"], "scale": "tiny",
            "seed": 0, "program": "four-sided-decoy",
        })
        assert Job.create(plain, "t").fingerprint != (
            Job.create(programmed, "t").fingerprint
        )
