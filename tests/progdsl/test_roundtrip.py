"""Program-DSL spec/parse/unroll round-trip properties.

The canonical text form is the identity the fingerprint layer hashes
(via ``schedule_key``), so ``spec -> canonical() -> parse_program`` must
be the identity -- and the unrolled burst schedule, being a pure
function of the spec, must survive the trip bit for bit.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.progdsl import (
    ProgramSpec,
    parse_program,
    program_names,
    get_program,
    round_counts,
    unroll_schedule,
)

_offsets = st.lists(
    st.integers(min_value=-4, max_value=4).filter(lambda o: o != 0),
    min_size=1, max_size=5, unique=True,
)


@st.composite
def hammer_specs(draw):
    offsets = draw(
        st.lists(
            st.integers(min_value=-5, max_value=5).filter(lambda o: o != 0),
            min_size=1, max_size=8, unique=True,
        )
    )
    split = draw(st.integers(min_value=1, max_value=len(offsets)))
    aggressors, decoys = tuple(offsets[:split]), tuple(offsets[split:])
    return ProgramSpec(
        name=draw(st.sampled_from(("p", "my-program", "p2.x"))),
        aggressors=aggressors,
        decoys=decoys,
        rounds=draw(st.integers(min_value=1, max_value=64)),
        refresh=draw(st.booleans()),
        aggressor_data=draw(st.sampled_from(("victim", "inverse"))),
        decoy_data=draw(st.sampled_from(("victim", "inverse"))),
    )


@st.composite
def retention_specs(draw):
    windows = draw(
        st.none() | st.lists(
            st.floats(min_value=0.001, max_value=10.0,
                      allow_nan=False, allow_infinity=False),
            min_size=1, max_size=6, unique=True,
        ).map(lambda ws: tuple(sorted(ws)))
    )
    return ProgramSpec(
        name="ladder-x",
        kind="retention",
        windows=windows,
        iterations=draw(st.none() | st.integers(min_value=1, max_value=9)),
    )


class TestRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(spec=hammer_specs(), hc=st.integers(min_value=0, max_value=500_000))
    def test_hammer_spec_round_trips(self, spec, hc):
        parsed = parse_program(spec.canonical())
        assert parsed == spec
        assert parsed.schedule_key() == spec.schedule_key()
        assert unroll_schedule(parsed, hc) == unroll_schedule(spec, hc)

    @settings(max_examples=100, deadline=None)
    @given(spec=retention_specs())
    def test_retention_spec_round_trips(self, spec):
        parsed = parse_program(spec.canonical())
        assert parsed == spec
        assert parsed.schedule_key() == spec.schedule_key()

    def test_registered_programs_round_trip(self):
        for name in program_names():
            spec = get_program(name)
            assert parse_program(spec.canonical()) == spec


class TestRoundCounts:
    @settings(max_examples=200, deadline=None)
    @given(hc=st.integers(min_value=0, max_value=1_000_000),
           rounds=st.integers(min_value=1, max_value=128))
    def test_counts_partition_the_total(self, hc, rounds):
        counts = round_counts(hc, rounds)
        assert len(counts) == rounds
        assert sum(counts) == hc
        assert max(counts) - min(counts) <= 1
        assert sorted(counts, reverse=True) == list(counts)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ConfigurationError):
            round_counts(-1, 4)
        with pytest.raises(ConfigurationError):
            round_counts(100, 0)


class TestUnroll:
    def test_refresh_program_refs_after_every_burst(self):
        spec = ProgramSpec(name="r", rounds=3, refresh=True)
        assert unroll_schedule(spec, 7) == (
            ("hammer", 3), ("ref",),
            ("hammer", 2), ("ref",),
            ("hammer", 2), ("ref",),
        )

    def test_plain_program_is_one_burst(self):
        spec = ProgramSpec(name="p")
        assert unroll_schedule(spec, 300_000) == (("hammer", 300_000),)

    def test_retention_specs_do_not_unroll(self):
        spec = ProgramSpec(name="l", kind="retention")
        with pytest.raises(ConfigurationError):
            unroll_schedule(spec, 100)


class TestParseErrors:
    @pytest.mark.parametrize("text", [
        "",
        "kind hammer\nprogram late\n",           # header not first
        "program p\nprogram q\n",                # duplicate statement
        "program p\nwobble 3\n",                 # unknown statement
        "program p\nwindows 0.064\n",            # retention key on hammer
        "program p\nkind retention\nrounds 2\n",  # hammer key on retention
        "program p\naggressors one two\n",       # non-integer offsets
        "program p\nrefresh maybe\n",            # bad flag
        "program p\nrounds 1 2\n",               # operand arity
        "program two words\n",                   # name arity
    ])
    def test_malformed_text_is_a_configuration_error(self, text):
        with pytest.raises(ConfigurationError):
            parse_program(text)

    def test_comments_and_blank_lines_are_ignored(self):
        text = (
            "# a four-sided pattern\n"
            "program commented\n"
            "\n"
            "aggressors -2 -1 +1 +2   # distance 1 and 2\n"
        )
        spec = parse_program(text)
        assert spec.aggressors == (-2, -1, 1, 2)


class TestSpecValidation:
    @pytest.mark.parametrize("kwargs", [
        {"aggressors": ()},
        {"aggressors": (0,)},
        {"aggressors": (1, 1)},
        {"aggressors": (1,), "decoys": (1,)},
        {"rounds": 0},
        {"aggressor_data": "random"},
        {"kind": "anneal"},
        {"name": "has space"},
        {"name": ""},
        {"windows": (0.1,)},                      # retention-only field
        {"kind": "retention", "rounds": 2},
        {"kind": "retention", "windows": ()},
        {"kind": "retention", "windows": (0.2, 0.1)},
        {"kind": "retention", "iterations": 0},
    ])
    def test_invalid_specs_rejected(self, kwargs):
        base = {"name": "x"}
        base.update(kwargs)
        with pytest.raises(ConfigurationError):
            ProgramSpec(**base)

    def test_schedule_key_excludes_the_name(self):
        spec = get_program("quad-sided")
        assert spec.renamed("other").schedule_key() == spec.schedule_key()

    def test_default_schedule_detection(self):
        assert get_program("double-sided").is_default_schedule()
        assert not get_program("single-sided").is_default_schedule()
        assert not ProgramSpec(name="d", rounds=2).is_default_schedule()
