"""Netlist construction and the transient solver, validated against
closed-form circuit theory."""

import numpy as np
import pytest

from repro.errors import NetlistError
from repro.spice.components import Mosfet, MosType
from repro.spice.netlist import GROUND, Circuit
from repro.spice.transient import TransientSolver


class TestNetlist:
    def test_duplicate_names_rejected(self):
        circuit = Circuit()
        circuit.add_resistor("a", "0", 1e3, name="R1")
        with pytest.raises(NetlistError):
            circuit.add_resistor("b", "0", 1e3, name="R1")

    def test_auto_names_unique(self):
        circuit = Circuit()
        r1 = circuit.add_resistor("a", "0", 1e3)
        r2 = circuit.add_resistor("b", "0", 1e3)
        assert r1.name != r2.name

    def test_two_sources_one_node_rejected(self):
        circuit = Circuit()
        circuit.add_source("n", [(0.0, 1.0)])
        circuit.add_source("n", [(0.0, 2.0)])
        circuit.add_resistor("n", "0", 1.0)
        with pytest.raises(NetlistError):
            circuit.source_nodes()

    def test_cannot_drive_ground(self):
        circuit = Circuit()
        circuit.add_source(GROUND, [(0.0, 1.0)])
        with pytest.raises(NetlistError):
            circuit.source_nodes()

    def test_unknown_nodes_exclude_pinned(self):
        circuit = Circuit()
        circuit.add_source("in", [(0.0, 1.0)])
        circuit.add_resistor("in", "out", 1e3)
        circuit.add_capacitor("out", "0", 1e-9)
        assert circuit.unknown_nodes() == ["out"]

    def test_validate_needs_unknowns(self):
        circuit = Circuit()
        circuit.add_source("a", [(0.0, 1.0)])
        with pytest.raises(NetlistError):
            circuit.validate()


class TestTransientAgainstTheory:
    def test_rc_discharge_matches_analytic(self):
        circuit = Circuit()
        circuit.add_resistor("a", "0", 1e3)
        circuit.add_capacitor("a", "0", 1e-9, initial_voltage=1.0)
        result = TransientSolver(circuit).solve(
            t_stop=3e-6, dt=5e-9, initial={"a": 1.0}
        )
        tau = 1e-6
        analytic = np.exp(-result.times / tau)
        assert np.max(np.abs(result.node("a") - analytic)) < 2e-3

    def test_rc_charging_from_source(self):
        circuit = Circuit()
        circuit.add_source("in", [(0.0, 1.0)])
        circuit.add_resistor("in", "out", 1e3)
        circuit.add_capacitor("out", "0", 1e-9)
        result = TransientSolver(circuit).solve(t_stop=8e-6, dt=5e-9)
        assert float(result.final("out")) == pytest.approx(1.0, abs=2e-3)
        # Value at one time constant.
        index = np.argmin(np.abs(result.times - 1e-6))
        assert float(result.node("out")[index]) == pytest.approx(
            1 - np.exp(-1), abs=5e-3
        )

    def test_resistive_divider(self):
        circuit = Circuit()
        circuit.add_source("in", [(0.0, 2.0)])
        circuit.add_resistor("in", "mid", 1e3)
        circuit.add_resistor("mid", "0", 3e3)
        circuit.add_capacitor("mid", "0", 1e-15)  # parasitics
        result = TransientSolver(circuit).solve(t_stop=1e-9, dt=1e-12)
        assert float(result.final("mid")) == pytest.approx(1.5, abs=1e-3)

    def test_charge_sharing_between_capacitors(self):
        """Two capacitors through a resistor settle at the
        charge-weighted average voltage."""
        circuit = Circuit()
        circuit.add_capacitor("a", "0", 2e-9, initial_voltage=1.0)
        circuit.add_resistor("a", "b", 1e3)
        circuit.add_capacitor("b", "0", 1e-9)
        result = TransientSolver(circuit).solve(
            t_stop=2e-5, dt=2e-8, initial={"a": 1.0, "b": 0.0}
        )
        expected = 2e-9 * 1.0 / (2e-9 + 1e-9)
        assert float(result.final("a")) == pytest.approx(expected, abs=2e-3)
        assert float(result.final("b")) == pytest.approx(expected, abs=2e-3)

    def test_nmos_source_follower_saturates_at_vg_minus_vth(self):
        circuit = Circuit()
        circuit.add_source("g", [(0.0, 1.7)])
        circuit.add_source("d", [(0.0, 1.2)])
        circuit.add_mosfet(Mosfet(
            gate="g", drain="d", source="cell", mos_type=MosType.NMOS,
            width=55e-9, length=85e-9, kp=3e-4, vth=0.72,
        ))
        circuit.add_capacitor("cell", "0", 16.8e-15)
        result = TransientSolver(circuit).solve(
            t_stop=60e-9, dt=5e-11, initial={"cell": 0.0}
        )
        # Observation 10's mechanism: the follower cuts off at Vg - Vth.
        assert float(result.final("cell")) == pytest.approx(0.98, abs=0.01)

    def test_batched_parameters_solve_together(self):
        circuit = Circuit()
        circuit.add_resistor("a", "0", np.array([1e3, 2e3]))
        circuit.add_capacitor("a", "0", 1e-9, initial_voltage=1.0)
        solver = TransientSolver(circuit)
        assert solver.batch_size == 2
        result = solver.solve(t_stop=2e-6, dt=1e-8, initial={"a": 1.0})
        final = result.final("a")
        assert final.shape == (2,)
        assert final[1] > final[0]  # larger tau decays slower

    def test_inconsistent_batch_rejected(self):
        circuit = Circuit()
        circuit.add_resistor("a", "0", np.array([1e3, 2e3]))
        circuit.add_capacitor("a", "0", np.array([1e-9, 1e-9, 1e-9]))
        with pytest.raises(NetlistError):
            TransientSolver(circuit)

    def test_bad_time_grid_rejected(self):
        circuit = Circuit()
        circuit.add_resistor("a", "0", 1e3)
        circuit.add_capacitor("a", "0", 1e-9)
        solver = TransientSolver(circuit)
        with pytest.raises(NetlistError):
            solver.solve(t_stop=1e-9, dt=1e-8)

    def test_initial_condition_on_pinned_node_rejected(self):
        circuit = Circuit()
        circuit.add_source("in", [(0.0, 1.0)])
        circuit.add_resistor("in", "out", 1e3)
        circuit.add_capacitor("out", "0", 1e-9)
        solver = TransientSolver(circuit)
        with pytest.raises(NetlistError):
            solver.solve(t_stop=1e-6, dt=1e-8, initial={"in": 0.5})

    def test_first_crossing_measurement(self):
        circuit = Circuit()
        circuit.add_source("in", [(0.0, 1.0)])
        circuit.add_resistor("in", "out", 1e3)
        circuit.add_capacitor("out", "0", 1e-9)
        result = TransientSolver(circuit).solve(t_stop=5e-6, dt=5e-9)
        crossing = float(np.atleast_1d(result.first_crossing("out", 0.5))[0])
        assert crossing == pytest.approx(np.log(2) * 1e-6, rel=0.02)

    def test_first_crossing_nan_when_never(self):
        circuit = Circuit()
        circuit.add_source("in", [(0.0, 1.0)])
        circuit.add_resistor("in", "out", 1e3)
        circuit.add_capacitor("out", "0", 1e-9)
        result = TransientSolver(circuit).solve(t_stop=1e-7, dt=1e-9)
        crossing = np.atleast_1d(result.first_crossing("out", 0.99))
        assert np.isnan(crossing[0])

    def test_unrecorded_node_raises(self):
        circuit = Circuit()
        circuit.add_resistor("a", "0", 1e3)
        circuit.add_capacitor("a", "0", 1e-9)
        result = TransientSolver(circuit).solve(
            t_stop=1e-6, dt=1e-8, record=["a"]
        )
        with pytest.raises(NetlistError):
            result.node("zebra")
