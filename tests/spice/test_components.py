"""Circuit components: PWL sources and the level-1 MOSFET."""

import numpy as np
import pytest

from repro.errors import NetlistError
from repro.spice.components import (
    Capacitor,
    Mosfet,
    MosType,
    PiecewiseLinearSource,
    Resistor,
)


class TestPassives:
    def test_resistor_rejects_nonpositive(self):
        with pytest.raises(NetlistError):
            Resistor("a", "b", 0.0)

    def test_capacitor_rejects_nonpositive(self):
        with pytest.raises(NetlistError):
            Capacitor("a", "b", -1e-15)


class TestPwlSource:
    def test_interpolation(self):
        source = PiecewiseLinearSource("n", [(0.0, 0.0), (1.0, 2.0)])
        assert source.voltage(-1.0) == 0.0
        assert source.voltage(0.5) == pytest.approx(1.0)
        assert source.voltage(5.0) == 2.0

    def test_multi_segment(self):
        source = PiecewiseLinearSource(
            "n", [(0.0, 0.6), (1.0, 0.6), (2.0, 0.0)]
        )
        assert source.voltage(0.9) == pytest.approx(0.6)
        assert source.voltage(1.5) == pytest.approx(0.3)

    def test_times_must_increase(self):
        with pytest.raises(NetlistError):
            PiecewiseLinearSource("n", [(1.0, 0.0), (0.5, 1.0)])

    def test_empty_waveform_rejected(self):
        with pytest.raises(NetlistError):
            PiecewiseLinearSource("n", [])


class TestMosfet:
    nmos = Mosfet(
        gate="g", drain="d", source="s", mos_type=MosType.NMOS,
        width=1e-6, length=1e-7, kp=1e-4, vth=0.5,
    )

    def test_cutoff(self):
        assert float(self.nmos.current(0.4, 1.0, 0.0)) == 0.0

    def test_saturation_quadratic_in_overdrive(self):
        i1 = float(self.nmos.current(1.0, 2.0, 0.0))
        i2 = float(self.nmos.current(1.5, 2.0, 0.0))
        # lambda adds a small CLM correction, so compare loosely.
        assert i2 / i1 == pytest.approx((1.0 / 0.5) ** 2, rel=0.05)

    def test_triode_linear_at_small_vds(self):
        i1 = float(self.nmos.current(1.5, 0.01, 0.0))
        i2 = float(self.nmos.current(1.5, 0.02, 0.0))
        assert i2 / i1 == pytest.approx(2.0, rel=0.02)

    def test_bidirectional_conduction(self):
        forward = float(self.nmos.current(1.5, 1.0, 0.0))
        backward = float(self.nmos.current(2.5, 0.0, 1.0))
        assert forward > 0
        assert backward < 0  # current flows source->drain

    def test_pmos_mirror(self):
        pmos = Mosfet(
            gate="g", drain="d", source="s", mos_type=MosType.PMOS,
            width=1e-6, length=1e-7, kp=1e-4, vth=0.5,
        )
        # Source at 1.2 V, gate low: PMOS conducts, current flows INTO
        # the drain node (negative drain->source current).
        i = float(pmos.current(0.0, 0.6, 1.2))
        assert i < 0

    def test_batched_values(self):
        batched = Mosfet(
            gate="g", drain="d", source="s", mos_type=MosType.NMOS,
            width=np.array([1e-6, 2e-6]), length=1e-7, kp=1e-4, vth=0.5,
        )
        i = batched.current(1.5, 1.0, 0.0)
        assert i.shape == (2,)
        assert i[1] == pytest.approx(2 * i[0])

    def test_geometry_validated(self):
        with pytest.raises(NetlistError):
            Mosfet(gate="g", drain="d", source="s", mos_type=MosType.NMOS,
                   width=0.0, length=1e-7)
