"""The Table 2 DRAM circuit and the Figure 8/9 experiments."""

import numpy as np
import pytest

from repro.spice.dram_cell import (
    DramCircuitParams,
    build_activation_circuit,
    initial_conditions,
)
from repro.spice.experiments import (
    activation_waveforms,
    restoration_saturation,
    tras_distribution,
    trcd_distribution,
)
from repro.spice.montecarlo import VARIED_FIELDS, vary_params
from repro.spice.transient import TransientSolver
from repro.errors import ConfigurationError
from repro.units import ns


class TestDramCircuit:
    def test_table2_values(self):
        params = DramCircuitParams()
        assert params.c_cell == pytest.approx(16.8e-15)
        assert params.r_cell == pytest.approx(698.0)
        assert params.c_bitline == pytest.approx(100.5e-15)
        assert params.r_bitline == pytest.approx(6980.0)
        assert params.w_access == pytest.approx(55e-9)
        assert params.l_access == pytest.approx(85e-9)
        assert params.w_sense_n == pytest.approx(1.3e-6)
        assert params.w_sense_p == pytest.approx(0.9e-6)

    def test_restored_voltage_knee(self):
        params = DramCircuitParams()
        assert float(params.with_vpp(2.5).restored_cell_voltage()) == 1.2
        assert float(
            params.with_vpp(1.7).restored_cell_voltage()
        ) == pytest.approx(0.98)

    def test_sense_amp_latches_charged_cell(self):
        params = DramCircuitParams()
        circuit = build_activation_circuit(params)
        result = TransientSolver(circuit).solve(
            t_stop=ns(30), dt=ns(0.1), initial=initial_conditions(params)
        )
        assert float(result.final("sbl")) == pytest.approx(1.2, abs=0.02)
        assert float(result.final("sblb")) == pytest.approx(0.0, abs=0.02)

    def test_sense_amp_latches_discharged_cell_low(self):
        params = DramCircuitParams()
        circuit = build_activation_circuit(params)
        result = TransientSolver(circuit).solve(
            t_stop=ns(30), dt=ns(0.1),
            initial=initial_conditions(params, cell_charged=False),
        )
        assert float(result.final("sbl")) == pytest.approx(0.0, abs=0.02)
        assert float(result.final("sblb")) == pytest.approx(1.2, abs=0.02)

    def test_vpp_validated(self):
        with pytest.raises(ConfigurationError):
            DramCircuitParams(vpp=-1.0)


class TestMonteCarlo:
    def test_variation_within_bounds(self):
        base = DramCircuitParams()
        varied = vary_params(base, samples=500, seed=1, fraction=0.05)
        for field_name in VARIED_FIELDS:
            values = np.asarray(getattr(varied, field_name))
            nominal = np.asarray(getattr(base, field_name))
            ratios = values / nominal
            assert ratios.shape == (500,)
            assert np.all((ratios >= 0.95) & (ratios <= 1.05))

    def test_deterministic_per_seed(self):
        base = DramCircuitParams()
        a = vary_params(base, 16, seed=9)
        b = vary_params(base, 16, seed=9)
        assert np.array_equal(np.asarray(a.c_cell), np.asarray(b.c_cell))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            vary_params(DramCircuitParams(), samples=0)
        with pytest.raises(ConfigurationError):
            vary_params(DramCircuitParams(), samples=10, fraction=0.9)


class TestExperiments:
    def test_observation_8_mean_shift(self):
        """Mean tRCD_min grows ~11.6 -> ~13.6 ns from 2.5 to 1.7 V."""
        nominal = trcd_distribution(2.5, samples=60, seed=3)
        reduced = trcd_distribution(1.7, samples=60, seed=3)
        assert np.nanmean(nominal) == pytest.approx(ns(11.6), rel=0.05)
        assert np.nanmean(reduced) == pytest.approx(ns(13.6), rel=0.05)

    def test_observation_9_distribution_widens(self):
        nominal = trcd_distribution(2.5, samples=80, seed=3)
        reduced = trcd_distribution(1.8, samples=80, seed=3)
        assert np.nanstd(reduced) > np.nanstd(nominal)
        assert np.nanmax(reduced) > np.nanmax(nominal)

    def test_observation_10_saturation(self):
        saturation = restoration_saturation((2.5, 1.9, 1.8, 1.7))
        assert saturation[2.5]["deficit_fraction"] == pytest.approx(0.0, abs=0.01)
        deficits = [
            saturation[v]["deficit_fraction"] for v in (1.9, 1.8, 1.7)
        ]
        assert deficits == sorted(deficits)
        # Paper: 4.1% / 11.0% / 18.1%; ours tracks within a few points.
        assert deficits[0] == pytest.approx(0.041, abs=0.06)
        assert deficits[2] == pytest.approx(0.181, abs=0.08)

    def test_observation_11_tras_shifts_and_widens(self):
        nominal = tras_distribution(2.5, samples=30, seed=3, dt=ns(0.2))
        reduced = tras_distribution(1.9, samples=30, seed=3, dt=ns(0.2))
        assert np.nanmean(reduced) > np.nanmean(nominal)
        assert np.nanstd(reduced) > np.nanstd(nominal)

    def test_footnote_13_restoration_fails_at_1_6(self):
        values = tras_distribution(1.6, samples=10, seed=3, dt=ns(0.4))
        assert np.isnan(values).all()

    def test_waveforms_have_expected_shape(self):
        waves = activation_waveforms((2.5, 1.8), t_stop=ns(30))
        assert set(waves) == {2.5, 1.8}
        wave = waves[2.5]
        assert wave.times.shape == wave.bitline.shape == wave.cell.shape
        # Bitline starts precharged at VDD/2 and ends latched high.
        assert wave.bitline[0] == pytest.approx(0.6, abs=0.01)
        assert wave.bitline[-1] == pytest.approx(1.2, abs=0.02)
