"""DC operating-point analysis."""

import numpy as np
import pytest

from repro.spice.components import Mosfet, MosType
from repro.spice.dc import solve_dc
from repro.spice.dram_cell import (
    DramCircuitParams,
    build_activation_circuit,
)
from repro.spice.netlist import Circuit


def test_resistive_divider_exact():
    circuit = Circuit()
    circuit.add_source("in", [(0.0, 3.0)])
    circuit.add_resistor("in", "mid", 1e3)
    circuit.add_resistor("mid", "0", 2e3)
    solution = solve_dc(circuit)
    assert float(solution["mid"][0]) == pytest.approx(2.0, abs=1e-6)


def test_capacitors_are_open_at_dc():
    circuit = Circuit()
    circuit.add_source("in", [(0.0, 1.0)])
    circuit.add_resistor("in", "out", 1e3)
    circuit.add_capacitor("out", "0", 1e-9)
    solution = solve_dc(circuit)
    # No DC path to ground except gmin: the node sits at the source.
    assert float(solution["out"][0]) == pytest.approx(1.0, abs=1e-3)


def test_source_follower_cutoff_voltage():
    """The DC solution of an NMOS follower charging a floating node is
    the cutoff boundary Vg - Vth (Observation 10's mechanism, exact)."""
    circuit = Circuit()
    circuit.add_source("g", [(0.0, 1.7)])
    circuit.add_source("d", [(0.0, 1.2)])
    circuit.add_mosfet(Mosfet(
        gate="g", drain="d", source="cell", mos_type=MosType.NMOS,
        width=55e-9, length=85e-9, kp=6e-6, vth=0.72,
    ))
    circuit.add_capacitor("cell", "0", 16.8e-15)
    solution = solve_dc(circuit, initial={"cell": 0.9})
    assert float(solution["cell"][0]) == pytest.approx(0.98, abs=0.005)


def test_sources_evaluated_at_time():
    circuit = Circuit()
    circuit.add_source("in", [(0.0, 0.0), (1.0, 2.0)])
    circuit.add_resistor("in", "out", 1e3)
    circuit.add_resistor("out", "0", 1e3)
    early = solve_dc(circuit, at_time=0.0)
    late = solve_dc(circuit, at_time=5.0)
    assert float(early["out"][0]) == pytest.approx(0.0, abs=1e-6)
    assert float(late["out"][0]) == pytest.approx(1.0, abs=1e-6)


def test_activation_circuit_saturation_matches_theory():
    """DC on the full Table 2 circuit reproduces V_sat = min(V_DD,
    V_PP - V_TH) exactly (Observation 10)."""
    latched = {"cell": 1.0, "cap": 1.0, "bl": 1.1, "sbl": 1.2, "sblb": 0.0}
    for vpp in (2.5, 1.8, 1.7):
        params = DramCircuitParams(vpp=vpp)
        solution = solve_dc(
            build_activation_circuit(params), at_time=1.0, initial=latched
        )
        expected = min(1.2, vpp - 0.72)
        assert float(solution["cap"][0]) == pytest.approx(expected, abs=0.01)


def test_batched_dc():
    circuit = Circuit()
    circuit.add_source("in", [(0.0, 2.0)])
    circuit.add_resistor("in", "mid", np.array([1e3, 3e3]))
    circuit.add_resistor("mid", "0", 1e3)
    solution = solve_dc(circuit)
    assert solution["mid"].shape == (2,)
    assert solution["mid"][0] == pytest.approx(1.0, abs=1e-6)
    assert solution["mid"][1] == pytest.approx(0.5, abs=1e-6)
