"""JobQueue scheduling contract: priority, FIFO, quotas, cancellation."""

import pytest

from repro.api.jobs import (
    CANCELLED,
    COMPLETED,
    QUEUED,
    RUNNING,
    Job,
    JobSpec,
)
from repro.api.queue import JobQueue
from repro.errors import QuotaExceededError


def make_job(priority: int = 0, tenant: str = "default") -> Job:
    spec = JobSpec.from_payload({
        "modules": ["C5"], "tests": ["rowhammer"], "scale": "tiny",
        "priority": priority,
    })
    return Job.create(spec, tenant)


class TestScheduling:
    def test_higher_priority_first(self):
        queue = JobQueue()
        low = queue.submit(make_job(priority=0))
        high = queue.submit(make_job(priority=5))
        mid = queue.submit(make_job(priority=3))
        order = [queue.pop(timeout=0.1).id for _ in range(3)]
        assert order == [high.id, mid.id, low.id]

    def test_fifo_within_priority(self):
        queue = JobQueue()
        submitted = [queue.submit(make_job(priority=2)) for _ in range(4)]
        popped = [queue.pop(timeout=0.1).id for _ in range(4)]
        assert popped == [job.id for job in submitted]

    def test_pop_marks_running(self):
        queue = JobQueue()
        queue.submit(make_job())
        job = queue.pop(timeout=0.1)
        assert job.state == RUNNING
        assert queue.depth() == 0

    def test_pop_times_out_empty(self):
        assert JobQueue().pop(timeout=0.05) is None

    def test_close_wakes_consumers(self):
        queue = JobQueue()
        queue.close()
        assert queue.pop(timeout=5.0) is None
        with pytest.raises(RuntimeError):
            queue.submit(make_job())


class TestTenantQuota:
    def test_quota_rejects_submission(self):
        queue = JobQueue(tenant_quota=2)
        queue.submit(make_job(tenant="alice"))
        queue.submit(make_job(tenant="alice"))
        with pytest.raises(QuotaExceededError):
            queue.submit(make_job(tenant="alice"))

    def test_quota_is_per_tenant(self):
        queue = JobQueue(tenant_quota=1)
        queue.submit(make_job(tenant="alice"))
        queue.submit(make_job(tenant="bob"))  # must not raise
        with pytest.raises(QuotaExceededError):
            queue.submit(make_job(tenant="bob"))

    def test_terminal_jobs_release_quota(self):
        queue = JobQueue(tenant_quota=1)
        queue.submit(make_job(tenant="alice"))
        job = queue.pop(timeout=0.1)
        job.state = COMPLETED
        queue.submit(make_job(tenant="alice"))  # must not raise

    def test_running_jobs_count_toward_quota(self):
        queue = JobQueue(tenant_quota=1)
        queue.submit(make_job(tenant="alice"))
        queue.pop(timeout=0.1)  # now running, still active
        with pytest.raises(QuotaExceededError):
            queue.submit(make_job(tenant="alice"))

    def test_rejects_silly_quota(self):
        with pytest.raises(ValueError):
            JobQueue(tenant_quota=0)


class TestCancellation:
    def test_cancel_queued_is_immediate_and_skipped(self):
        queue = JobQueue()
        doomed = queue.submit(make_job())
        survivor = queue.submit(make_job())
        cancelled = queue.cancel(doomed.id)
        assert cancelled.state == CANCELLED
        assert queue.pop(timeout=0.1).id == survivor.id
        assert queue.pop(timeout=0.05) is None

    def test_cancel_running_sets_flag(self):
        queue = JobQueue()
        queue.submit(make_job())
        job = queue.pop(timeout=0.1)
        returned = queue.cancel(job.id)
        assert returned.state == RUNNING
        assert returned.cancel_requested

    def test_cancel_unknown_returns_none(self):
        assert JobQueue().cancel("job-nope") is None


class TestAdoption:
    def test_adopt_requeues_interrupted_jobs(self):
        queue = JobQueue()
        job = make_job()
        job.state = RUNNING  # persisted mid-run before a crash
        job.cancel_requested = True
        queue.adopt(job)
        recovered = queue.pop(timeout=0.1)
        assert recovered.id == job.id
        assert not recovered.cancel_requested

    def test_adopt_keeps_terminal_jobs_queryable(self):
        queue = JobQueue()
        job = make_job()
        job.state = COMPLETED
        queue.adopt(job)
        assert queue.get(job.id).state == COMPLETED
        assert queue.pop(timeout=0.05) is None

    def test_jobs_listing_filters_by_tenant(self):
        queue = JobQueue()
        queue.submit(make_job(tenant="alice"))
        queue.submit(make_job(tenant="bob"))
        assert {job.tenant for job in queue.jobs()} == {"alice", "bob"}
        assert all(j.tenant == "bob" for j in queue.jobs("bob"))
        assert queue.jobs("bob")

    def test_depth_counts_only_queued(self):
        queue = JobQueue()
        queue.submit(make_job())
        queue.submit(make_job())
        assert queue.depth() == 2
        queue.pop(timeout=0.1)
        assert queue.depth() == 1
