"""StudyStore: content addressing, atomic publish, cross-process races.

The multi-process tests pin the store's two guarantees -- readers never
observe a torn entry, and two writers racing on one fingerprint
serialize on the lockfile (the late one adopting the published entry)
-- by actually racing OS processes on one directory.
"""

import json
import multiprocessing
import os
import time

import pytest

from repro.core.scale import StudyScale
from repro.core.study import CharacterizationStudy
from repro.harness.cache import attach_provenance, study_fingerprint
from repro.harness.store import StudyStore, entry_name

TESTS = ("rowhammer",)
MODULE = "C5"


def build_study(scale):
    study = CharacterizationStudy(scale=scale, seed=0).run(
        modules=[MODULE], tests=TESTS
    )
    attach_provenance(study, TESTS, [MODULE], 0, wall_seconds=0.1)
    return study


@pytest.fixture(scope="module")
def tiny_study():
    return build_study(StudyScale.tiny())


@pytest.fixture
def fingerprint():
    return study_fingerprint(TESTS, [MODULE], StudyScale.tiny(), 0)


class TestBasics:
    def test_round_trip(self, tmp_path, tiny_study, fingerprint):
        store = StudyStore(str(tmp_path))
        path = store.store(tiny_study, fingerprint)
        assert os.path.basename(path) == entry_name(fingerprint)
        assert store.contains(fingerprint)
        assert store.fingerprints() == [fingerprint]
        loaded = store.load(fingerprint)
        assert loaded.modules[MODULE].rowhammer == (
            tiny_study.modules[MODULE].rowhammer
        )

    def test_load_dict_serves_raw_document(
        self, tmp_path, tiny_study, fingerprint
    ):
        store = StudyStore(str(tmp_path))
        store.store(tiny_study, fingerprint)
        document = store.load_dict(fingerprint)
        assert document["provenance"]["fingerprint"] == fingerprint
        assert MODULE in document["modules"]

    def test_missing_entry_is_none(self, tmp_path):
        store = StudyStore(str(tmp_path))
        assert store.load("f" * 32) is None
        assert store.load_dict("f" * 32) is None

    def test_corrupt_entry_dropped(self, tmp_path, fingerprint):
        store = StudyStore(str(tmp_path))
        os.makedirs(str(tmp_path), exist_ok=True)
        with open(store.path(fingerprint), "w") as handle:
            handle.write('{"schema_version": 1, "trunca')
        assert store.load(fingerprint) is None
        assert not store.contains(fingerprint)  # unlinked, recomputable

    def test_delete_and_clear(self, tmp_path, tiny_study, fingerprint):
        store = StudyStore(str(tmp_path))
        store.store(tiny_study, fingerprint)
        assert store.delete(fingerprint)
        assert not store.delete(fingerprint)
        store.store(tiny_study, fingerprint)
        assert store.clear() == [store.path(fingerprint)]
        assert store.fingerprints() == []


class TestLockfile:
    def test_held_lock_times_out(self, tmp_path, tiny_study, fingerprint):
        store = StudyStore(
            str(tmp_path), lock_timeout=0.15, stale_lock_seconds=3600
        )
        os.makedirs(str(tmp_path), exist_ok=True)
        with open(store._lock_path(fingerprint), "w") as handle:
            handle.write("someone-else")
        with pytest.raises(TimeoutError):
            store.store(tiny_study, fingerprint)

    def test_stale_lock_broken(self, tmp_path, tiny_study, fingerprint):
        store = StudyStore(
            str(tmp_path), lock_timeout=5.0, stale_lock_seconds=0.01
        )
        os.makedirs(str(tmp_path), exist_ok=True)
        lock = store._lock_path(fingerprint)
        with open(lock, "w") as handle:
            handle.write("dead-writer")
        os.utime(lock, (time.time() - 60, time.time() - 60))
        store.store(tiny_study, fingerprint)  # breaks the lock, publishes
        assert store.contains(fingerprint)
        assert not os.path.exists(lock)

    def test_waiter_adopts_published_entry(
        self, tmp_path, tiny_study, fingerprint
    ):
        """A writer that finds the entry already published while waiting
        on the lock returns without re-serializing."""
        store = StudyStore(str(tmp_path), lock_timeout=2.0)
        store.store(tiny_study, fingerprint)
        published = os.path.getmtime(store.path(fingerprint))
        os.makedirs(str(tmp_path), exist_ok=True)
        with open(store._lock_path(fingerprint), "w") as handle:
            handle.write("racing-writer")
        try:
            path = store.store(tiny_study, fingerprint)
        finally:
            os.unlink(store._lock_path(fingerprint))
        assert path == store.path(fingerprint)
        assert os.path.getmtime(path) == published  # not rewritten


def _race_writer(directory, barrier, failures):
    """Child process: build the study independently, then race the
    sibling writer on the shared fingerprint."""
    try:
        scale = StudyScale.tiny()
        study = build_study(scale)
        fingerprint = study_fingerprint(TESTS, [MODULE], scale, 0)
        store = StudyStore(directory, lock_timeout=30.0)
        barrier.wait(timeout=120)
        store.store(study, fingerprint)
    except Exception as error:  # pragma: no cover - failure reporting
        failures.put(f"writer: {type(error).__name__}: {error}")


def _race_reader(directory, fingerprint, stop, failures):
    """Child process: hammer reads during the race; every observed
    entry must be complete and schema-valid (no torn reads)."""
    try:
        store = StudyStore(directory)
        path = store.path(fingerprint)
        while not stop.is_set():
            if os.path.isfile(path):
                with open(path) as handle:
                    raw = handle.read()
                if not raw:
                    failures.put("reader: observed an empty entry")
                    return
                document = json.loads(raw)  # torn JSON raises here
                if "modules" not in document:
                    failures.put("reader: entry missing modules")
                    return
            time.sleep(0.001)
    except Exception as error:  # pragma: no cover - failure reporting
        failures.put(f"reader: {type(error).__name__}: {error}")


class TestCrossProcessRace:
    def test_two_writers_one_reader_race_free(self, tmp_path):
        """Two processes publish the same fingerprint concurrently while
        a third reads: no torn reads, one valid entry, no leaked state."""
        directory = str(tmp_path)
        scale = StudyScale.tiny()
        fingerprint = study_fingerprint(TESTS, [MODULE], scale, 0)
        barrier = multiprocessing.Barrier(2)
        stop = multiprocessing.Event()
        failures = multiprocessing.Queue()
        writers = [
            multiprocessing.Process(
                target=_race_writer, args=(directory, barrier, failures)
            )
            for _ in range(2)
        ]
        reader = multiprocessing.Process(
            target=_race_reader,
            args=(directory, fingerprint, stop, failures),
        )
        reader.start()
        for writer in writers:
            writer.start()
        for writer in writers:
            writer.join(timeout=300)
            assert writer.exitcode == 0
        stop.set()
        reader.join(timeout=30)
        assert reader.exitcode == 0
        assert failures.empty(), failures.get()
        # Exactly one complete, loadable entry; no lock or temp debris.
        store = StudyStore(directory)
        assert store.fingerprints() == [fingerprint]
        loaded = store.load(fingerprint)
        assert loaded is not None
        assert loaded.provenance["fingerprint"] == fingerprint
        debris = [
            entry for entry in os.listdir(directory)
            if entry.startswith((".lock-", ".tmp-"))
        ]
        assert debris == []

    def test_race_is_bit_identical_to_solo_write(
        self, tmp_path, tiny_study
    ):
        """The entry surviving a race carries exactly the bytes a lone
        writer would have produced (content addressing is honest)."""
        scale = StudyScale.tiny()
        fingerprint = study_fingerprint(TESTS, [MODULE], scale, 0)
        solo = StudyStore(str(tmp_path / "solo"))
        solo.store(tiny_study, fingerprint)
        raced = StudyStore(str(tmp_path / "raced"))
        barrier = multiprocessing.Barrier(2)
        failures = multiprocessing.Queue()
        writers = [
            multiprocessing.Process(
                target=_race_writer,
                args=(str(tmp_path / "raced"), barrier, failures),
            )
            for _ in range(2)
        ]
        for writer in writers:
            writer.start()
        for writer in writers:
            writer.join(timeout=300)
            assert writer.exitcode == 0
        assert failures.empty(), failures.get()
        solo_doc = solo.load_dict(fingerprint)
        raced_doc = raced.load_dict(fingerprint)
        strip = lambda doc: {
            key: value for key, value in doc.items() if key != "provenance"
        }
        assert strip(solo_doc) == strip(raced_doc)
        assert (
            solo_doc["provenance"]["fingerprint"]
            == raced_doc["provenance"]["fingerprint"]
        )
