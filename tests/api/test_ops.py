"""Observability surface of the API: trace propagation at admission,
the ``/v1/ops`` rollup, per-tenant SLO metrics, and the stitched
cross-process trace served by ``GET /v1/jobs/<id>/trace``.
"""

import json

import pytest

from repro.api.jobs import Job, JobSpec, run_job
from repro.api.server import ApiServer
from repro.obs import context as obs_context
from repro.obs.flightrec import FlightRecorder
from repro.obs.metrics import REGISTRY
from repro.obs.trace import TRACER

PAYLOAD = {
    "modules": ["C5"], "tests": ["rowhammer"], "scale": "tiny", "seed": 0,
}


@pytest.fixture(autouse=True)
def _clean_tracer():
    """API tests drive the process-global tracer; keep it isolated."""
    TRACER.disable()
    TRACER.reset()
    obs_context.clear_fragments()
    yield
    TRACER.disable()
    TRACER.reset()
    obs_context.clear_fragments()


@pytest.fixture
def api(tmp_path):
    return ApiServer(
        str(tmp_path / "store"), str(tmp_path / "state"), workers=1
    )


def submit(api, payload=None, tenant="default"):
    return api.handle(
        "POST", "/v1/jobs", {}, payload or dict(PAYLOAD), tenant
    )


class TestAdmissionTrace:
    def test_every_admitted_job_gets_a_trace_context(self, api):
        status, document = submit(api)
        assert status == 202
        trace = document["job"]["trace"]
        assert len(trace["trace_id"]) == 32

    def test_trace_ids_are_distinct_per_job(self, api):
        first = submit(api)[1]["job"]["trace"]["trace_id"]
        second = submit(api)[1]["job"]["trace"]["trace_id"]
        assert first != second

    def test_enabled_tracer_records_the_admission_span(self, api):
        TRACER.enable()
        _, document = submit(api, tenant="acme")
        job = document["job"]
        (span,) = [s for s in TRACER.spans if s.name == "api.admission"]
        assert span.attrs["tenant"] == "acme"
        assert span.attrs["job"] == job["id"]
        # The job's context re-parents downstream spans under the
        # admission span, inside the admission's own trace.
        assert job["trace"]["span_id"] == span.span_id
        assert job["trace"]["trace_id"] == span.trace_id

    def test_trace_context_survives_persistence(self, api):
        _, document = submit(api)
        job_id = document["job"]["id"]
        (loaded,) = [
            job for job in api.state.load_all() if job.id == job_id
        ]
        assert loaded.trace == document["job"]["trace"]

    def test_disabled_tracer_leaves_span_id_unset(self, api):
        _, document = submit(api)
        assert document["job"]["trace"]["span_id"] is None


class TestOpsEndpoint:
    def test_ops_rollup_shape(self, api):
        submit(api, tenant="acme")
        status, document = api.handle("GET", "/v1/ops", {}, None, "x")
        assert status == 200
        assert document["queue"]["depth"] == 1
        assert document["queue"]["jobs_by_state"] == {"queued": 1}
        acme = document["tenants"]["acme"]
        assert acme["active"] == 1 and acme["queued"] == 1
        assert acme["quota"] == api.queue.tenant_quota
        assert document["workers"]["configured"] == 1
        assert document["workers"]["alive"] == 0  # not started
        assert document["tracing"]["enabled"] is False
        assert document["flight_recorder"]["recent"] == []
        assert "cache" in document and "studies" in document

    def test_ops_lists_recent_flight_recorder_dumps(self, api):
        recorder = FlightRecorder()
        recorder.configure(f"{api.flight_base}/job-x")
        recorder.record("fault", {"kind": "power_droop"})
        recorder.dump("hang_injected")
        _, document = api.handle("GET", "/v1/ops", {}, None, "x")
        (dump,) = document["flight_recorder"]["recent"]
        assert dump["reason"] == "hang_injected"
        assert dump["entries"] == 1

    def test_ops_is_method_checked(self, api):
        status, _ = api.handle("POST", "/v1/ops", {}, None, "x")
        assert status == 405

    def test_ops_html_renders_tenants_and_escapes(self, api):
        submit(api, tenant="a<b")
        page = api._ops_html()
        assert page.startswith("<!doctype html>")
        assert "a&lt;b" in page
        assert "queue depth 1" in page

    def test_ops_document_is_json_serializable(self, api):
        submit(api)
        _, document = api.handle("GET", "/v1/ops", {}, None, "x")
        assert json.loads(json.dumps(document)) == document


class TestQueueWaitMetric:
    def test_pop_observes_per_tenant_queue_wait(self, api):
        family = REGISTRY.histogram(
            "repro_api_queue_wait_seconds", labels=("tenant",)
        )
        before = family.labels(tenant="acme").count
        submit(api, tenant="acme")
        job = api.queue.pop(timeout=1.0)
        assert job is not None
        assert family.labels(tenant="acme").count == before + 1


class TestJobTraceEndpoint:
    def test_unknown_job_is_404(self, api):
        status, document = api.handle(
            "GET", "/v1/jobs/nope/trace", {}, None, "x"
        )
        assert status == 404
        assert "nope" in document["error"]

    def test_job_without_context_is_404(self, api):
        job = Job.create(JobSpec.from_payload(dict(PAYLOAD)), "t")
        job.trace = None
        api.queue.adopt(job)
        status, document = api.handle(
            "GET", f"/v1/jobs/{job.id}/trace", {}, None, "x"
        )
        assert status == 404
        assert "trace" in document["error"]

    def test_stitched_trace_spans_api_to_orchestrator(self, api):
        TRACER.enable()
        _, document = submit(api)
        job_id = document["job"]["id"]
        job = api.queue.pop(timeout=1.0)
        run_job(job, api.store, api.checkpoint_base,
                flight_base=api.flight_base)
        assert job.state == "completed"
        status, payload = api.handle(
            "GET", f"/v1/jobs/{job_id}/trace", {}, None, "x"
        )
        assert status == 200
        assert payload["trace_id"] == document["job"]["trace"]["trace_id"]
        events = payload["trace"]["traceEvents"]
        names = {e["name"] for e in events if e["ph"] == "X"}
        # HTTP admission, the worker-thread job span, and the
        # orchestrator's campaign all stitched into one trace.
        assert {"api.admission", "api.job", "campaign"} <= names
        traces = {
            e["args"]["trace"] for e in events if e["ph"] == "X"
        }
        assert traces == {payload["trace_id"]}
        # api.job parents under the admission span recorded earlier
        # on another thread.
        by_name = {
            e["name"]: e for e in events if e["ph"] == "X"
        }
        assert by_name["api.job"]["args"]["parent_id"] == (
            document["job"]["trace"]["span_id"]
        )

    def test_second_jobs_trace_excludes_the_first(self, api):
        TRACER.enable()
        first = submit(api)[1]["job"]
        second = submit(api, {**PAYLOAD, "seed": 1})[1]["job"]
        for _ in range(2):
            job = api.queue.pop(timeout=1.0)
            run_job(job, api.store, api.checkpoint_base)
        _, payload = api.handle(
            "GET", f"/v1/jobs/{second['id']}/trace", {}, None, "x"
        )
        job_spans = [
            e for e in payload["trace"]["traceEvents"]
            if e["ph"] == "X" and e["name"] == "api.job"
        ]
        assert [s["args"]["job"] for s in job_spans] == [second["id"]]
        assert first["trace"]["trace_id"] != second["trace"]["trace_id"]


class TestPooledJobStitching:
    def test_pooled_job_yields_one_trace_across_processes(self, api):
        """The acceptance path: an API-submitted ``workers: 2`` job
        produces a single stitched trace -- one trace id from HTTP
        admission through the pool workers' work-unit spans, with
        cross-process flow events over the queue hop."""
        TRACER.enable()
        _, document = submit(api, {**PAYLOAD, "workers": 2})
        job_id = document["job"]["id"]
        trace_id = document["job"]["trace"]["trace_id"]
        job = api.queue.pop(timeout=1.0)
        run_job(job, api.store, api.checkpoint_base,
                flight_base=api.flight_base)
        assert job.state == "completed", job.error
        _, payload = api.handle(
            "GET", f"/v1/jobs/{job_id}/trace", {}, None, "x"
        )
        events = payload["trace"]["traceEvents"]
        slices = [e for e in events if e["ph"] == "X"]
        names = {e["name"] for e in slices}
        assert {
            "api.admission", "api.job", "campaign", "work-unit",
        } <= names
        assert {e["args"]["trace"] for e in slices} == {trace_id}
        # Worker spans were recorded in other processes.
        pids = {e["pid"] for e in slices}
        assert len(pids) >= 2
        # The queue hop renders as flow pairs into the worker lanes.
        flows = [e for e in events if e.get("cat") == "repro.flow"]
        assert flows and {f["ph"] for f in flows} == {"s", "f"}
        # Worker lanes are labeled.
        labels = {
            e["args"]["name"] for e in events if e["ph"] == "M"
        }
        assert any("worker" in label for label in labels)
