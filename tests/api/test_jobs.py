"""JobSpec parsing/validation and job persistence."""

import pytest

from repro.api.jobs import Job, JobSpec, JobStateDir
from repro.errors import ConfigurationError


class TestJobSpecParsing:
    def test_defaults(self):
        spec = JobSpec.from_payload({})
        assert spec.scale == "tiny" and spec.seed == 0
        assert spec.priority == 0 and spec.workers == 0
        assert len(spec.modules) > 0 and len(spec.tests) > 0

    def test_explicit_campaign(self):
        spec = JobSpec.from_payload({
            "modules": ["C5", "A0"], "tests": ["rowhammer"],
            "scale": "bench", "seed": 7, "priority": 3,
            "unit_timeout": 2.5, "workers": 2,
        })
        assert spec.modules == ("C5", "A0")
        assert spec.scale == "bench" and spec.seed == 7
        assert spec.unit_timeout == 2.5

    @pytest.mark.parametrize("payload", [
        {"modules": ["ZZ9"]},
        {"tests": ["not-a-test"]},
        {"scale": "galactic"},
        {"probe_engine": "quantum"},
        {"priority": -1},
        {"priority": 99},
        {"priority": "high"},
        {"seed": "zero"},
        {"workers": -1},
        {"unit_timeout": 0},
        {"max_attempts": 0},
        {"experiment": "not-registered"},
    ])
    def test_rejects_bad_payloads(self, payload):
        with pytest.raises(ConfigurationError):
            JobSpec.from_payload(payload)

    def test_rejects_non_object_payload(self):
        with pytest.raises(ConfigurationError):
            JobSpec.from_payload(["not", "an", "object"])

    def test_allowlists_enforced(self):
        with pytest.raises(ConfigurationError):
            JobSpec.from_payload(
                {"modules": ["C5"]}, allowed_modules=("A0",)
            )
        with pytest.raises(ConfigurationError):
            JobSpec.from_payload(
                {"experiment": "fig3"}, allowed_experiments=("fig5",)
            )

    def test_experiment_expansion_matches_registry(self):
        from repro.harness.registry import get_spec

        spec = JobSpec.from_payload({"experiment": "fig3"})
        declared = get_spec("fig3").resolved_studies(seed=0)[0]
        assert spec.tests == tuple(declared.tests)
        assert spec.modules == tuple(declared.modules)
        assert spec.experiment == "fig3"

    def test_round_trips_through_dict(self):
        spec = JobSpec.from_payload({
            "modules": ["C5"], "tests": ["rowhammer"], "seed": 3,
            "priority": 2, "unit_timeout": 1.5,
        })
        assert JobSpec.from_dict(spec.as_dict()) == spec

    def test_fingerprint_is_request_content_hash(self):
        one = JobSpec.from_payload({"modules": ["C5", "A0"]})
        two = JobSpec.from_payload({"modules": ["A0", "C5"]})
        assert one.fingerprint() == two.fingerprint()  # order-normalized
        other = JobSpec.from_payload({"modules": ["C5"], "seed": 1})
        assert other.fingerprint() != one.fingerprint()


class TestJobPersistence:
    def test_save_load_round_trip(self, tmp_path):
        state = JobStateDir(str(tmp_path))
        job = Job.create(JobSpec.from_payload({"modules": ["C5"]}), "t1")
        job.state = "completed"
        job.metrics = {"units_completed": 2}
        state.save(job)
        loaded = state.load_all()
        assert len(loaded) == 1
        assert loaded[0].id == job.id
        assert loaded[0].state == "completed"
        assert loaded[0].spec == job.spec
        assert loaded[0].metrics == {"units_completed": 2}

    def test_corrupt_job_file_skipped(self, tmp_path):
        state = JobStateDir(str(tmp_path))
        job = Job.create(JobSpec.from_payload({"modules": ["C5"]}), "t1")
        state.save(job)
        with open(state.path("job-corrupt"), "w") as handle:
            handle.write("{not json")
        loaded = state.load_all()
        assert [j.id for j in loaded] == [job.id]
