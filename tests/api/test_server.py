"""API server: routes, round trips, SSE, restart recovery, determinism.

Route semantics are tested through :meth:`ApiServer.handle` (no socket
needed); the full HTTP/SSE path and the differential gate -- the job
the API serves must be bit-identical to a direct study run -- go over
a real socket via :class:`BackgroundServer` + :class:`ApiClient`.
"""

import os

import pytest

from repro.api import ApiClient, ApiError, ApiServer, BackgroundServer
from repro.core.scale import StudyScale
from repro.core.serialization import study_to_dict
from repro.core.study import CharacterizationStudy
from repro.harness.cache import attach_provenance

PAYLOAD = {
    "modules": ["C5"], "tests": ["rowhammer"], "scale": "tiny", "seed": 0,
}


@pytest.fixture
def api(tmp_path):
    """An ApiServer with no workers started (sync route testing)."""
    return ApiServer(
        str(tmp_path / "store"), str(tmp_path / "state"), workers=1
    )


def submit(api, payload=None, tenant="default"):
    status, document = api.handle(
        "POST", "/v1/jobs", {}, payload or dict(PAYLOAD), tenant
    )
    return status, document


class TestRoutes:
    def test_submit_accepts_with_202(self, api):
        status, document = submit(api)
        assert status == 202
        job = document["job"]
        assert job["state"] == "queued"
        assert job["fingerprint"]
        # persisted for restart recovery
        assert os.path.isfile(api.state.path(job["id"]))

    def test_submit_unknown_module_is_400(self, api):
        status, document = submit(api, {"modules": ["ZZ9"]})
        assert status == 400
        assert "ZZ9" in document["error"]

    def test_submit_over_quota_is_429(self, tmp_path):
        api = ApiServer(
            str(tmp_path / "s"), str(tmp_path / "st"), tenant_quota=1
        )
        assert submit(api, tenant="alice")[0] == 202
        status, document = submit(api, tenant="alice")
        assert status == 429
        assert "quota" in document["error"]
        assert submit(api, tenant="bob")[0] == 202  # per-tenant

    def test_poll_unknown_job_is_404(self, api):
        status, _ = api.handle("GET", "/v1/jobs/job-nope", {}, None, "t")
        assert status == 404

    def test_unknown_study_is_404(self, api):
        status, _ = api.handle(
            "GET", f"/v1/studies/{'0' * 32}", {}, None, "t"
        )
        assert status == 404

    def test_unknown_route_is_404(self, api):
        assert api.handle("GET", "/v2/nope", {}, None, "t")[0] == 404

    def test_wrong_method_is_405(self, api):
        assert api.handle("PUT", "/v1/jobs", {}, {}, "t")[0] == 405

    def test_job_listing_filters_by_tenant(self, api):
        submit(api, tenant="alice")
        submit(api, tenant="bob")
        status, document = api.handle(
            "GET", "/v1/jobs", {"tenant": "bob"}, None, "t"
        )
        assert status == 200
        assert [job["tenant"] for job in document["jobs"]] == ["bob"]

    def test_cancel_queued_job(self, api):
        _, document = submit(api)
        job_id = document["job"]["id"]
        status, document = api.handle(
            "POST", f"/v1/jobs/{job_id}/cancel", {}, None, "t"
        )
        assert status == 200
        assert document["job"]["state"] == "cancelled"
        # cancelling again is idempotent
        status, _ = api.handle(
            "POST", f"/v1/jobs/{job_id}/cancel", {}, None, "t"
        )
        assert status == 200

    def test_healthz_reports_config(self, api):
        status, document = api.handle("GET", "/v1/healthz", {}, None, "t")
        assert status == 200
        assert document["status"] == "ok"
        assert document["workers"] == 1


class TestRestartRecovery:
    def test_interrupted_jobs_resume_after_restart(self, tmp_path):
        store_dir = str(tmp_path / "store")
        state_dir = str(tmp_path / "state")
        first = ApiServer(store_dir, state_dir)  # workers never started
        _, document = submit(first)
        job_id = document["job"]["id"]
        fingerprint = document["job"]["fingerprint"]
        # "Restart": a new server over the same state recovers the job.
        second = ApiServer(store_dir, state_dir)
        assert second._recovered == 1
        recovered = second.queue.get(job_id)
        assert recovered is not None and recovered.state == "queued"
        second.start_workers()
        try:
            client_side = _wait_terminal(second, job_id)
        finally:
            second.stop_workers()
        assert client_side.state == "completed"
        assert second.store.contains(fingerprint)

    def test_terminal_jobs_stay_queryable_after_restart(self, tmp_path):
        store_dir = str(tmp_path / "store")
        state_dir = str(tmp_path / "state")
        first = ApiServer(store_dir, state_dir)
        _, document = submit(first)
        job_id = document["job"]["id"]
        first.queue.cancel(job_id)
        first.state.save(first.queue.get(job_id))
        second = ApiServer(store_dir, state_dir)
        assert second._recovered == 0  # nothing to re-queue
        status, document = second.handle(
            "GET", f"/v1/jobs/{job_id}", {}, None, "t"
        )
        assert status == 200
        assert document["job"]["state"] == "cancelled"


def _wait_terminal(api, job_id, timeout=300.0):
    import time

    from repro.obs import clock

    deadline = clock.monotonic() + timeout
    while True:
        job = api.queue.get(job_id)
        if job.terminal:
            return job
        if clock.monotonic() >= deadline:
            raise TimeoutError(f"job {job_id} still {job.state}")
        time.sleep(0.02)


class TestHttpRoundTrip:
    @pytest.fixture(scope="class")
    def server(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("api-http")
        with BackgroundServer(
            str(tmp / "store"), str(tmp / "state"), workers=2
        ) as background:
            yield background

    @pytest.fixture(scope="class")
    def client(self, server):
        return ApiClient(port=server.port)

    @pytest.fixture(scope="class")
    def finished_job(self, client):
        job = client.submit_job(dict(PAYLOAD))
        return client.wait_job(job["id"])

    def test_job_completes_over_http(self, finished_job):
        assert finished_job["state"] == "completed"
        assert finished_job["metrics"]["units_completed"] > 0

    def test_served_study_bit_identical_to_direct_run(
        self, client, finished_job
    ):
        """The acceptance differential: same request -> the API serves
        exactly the study a direct runner invocation produces."""
        served = client.get_study(finished_job["fingerprint"])
        direct = CharacterizationStudy(
            scale=StudyScale.tiny(), seed=PAYLOAD["seed"]
        ).run(modules=PAYLOAD["modules"], tests=tuple(PAYLOAD["tests"]))
        attach_provenance(
            direct, PAYLOAD["tests"], PAYLOAD["modules"],
            PAYLOAD["seed"], wall_seconds=0.0,
        )
        direct_doc = study_to_dict(direct)
        assert (
            served["provenance"]["fingerprint"]
            == direct_doc["provenance"]["fingerprint"]
            == finished_job["fingerprint"]
        )
        strip = lambda doc: {
            key: value for key, value in doc.items()
            if key != "provenance"
        }
        assert strip(served) == strip(direct_doc)

    def test_sse_replays_full_history(self, client, finished_job):
        """A subscriber arriving after completion still sees the whole
        campaign story, every record stamped with the job id."""
        records = list(client.events(finished_job["id"]))
        kinds = [record["event"] for record in records]
        assert kinds[0] == "campaign_started"
        assert "unit_finished" in kinds
        assert kinds[-1] == "job_finished"
        assert all(r["job"] == finished_job["id"] for r in records)

    def test_resubmission_hits_store(self, client, finished_job):
        job = client.wait_job(client.submit_job(dict(PAYLOAD))["id"])
        assert job["state"] == "completed"
        assert job["cache"] == "hit"
        assert job["fingerprint"] == finished_job["fingerprint"]

    def test_error_statuses_over_http(self, client):
        with pytest.raises(ApiError) as excinfo:
            client.submit_job({"modules": ["ZZ9"]})
        assert excinfo.value.status == 400
        with pytest.raises(ApiError) as excinfo:
            client.get_job("job-nope")
        assert excinfo.value.status == 404

    def test_metrics_exposition(self, client):
        text = client.metrics_text()
        assert "repro_api_requests_total" in text
        assert "repro_api_request_seconds" in text

    def test_health_over_http(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["studies"] >= 1
