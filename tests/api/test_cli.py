"""Shared CLI contract: unknown identifiers exit 2 on every front end.

``python -m repro.api``, ``python -m repro.service``, and the harness
runner all validate module/experiment ids through
:mod:`repro.harness.validation`, so a typo fails fast with exit code 2
and a diagnostic on stderr -- before any socket binds or bench builds.
"""

import os
import subprocess
import sys

import pytest

REPO = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))


def run_cli(*argv):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    return subprocess.run(
        [sys.executable, *argv],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO,
        timeout=120,
    )


@pytest.mark.parametrize("argv", [
    ("-m", "repro.api", "--modules", "ZZ9"),
    ("-m", "repro.api", "--experiments", "not-registered"),
    ("-m", "repro.api", "--tenant-quota", "0"),
    ("-m", "repro.service", "--modules", "ZZ9"),
    ("-m", "repro.harness.runner", "not-an-experiment"),
])
def test_unknown_ids_exit_2(argv):
    result = run_cli(*argv)
    assert result.returncode == 2, result.stderr
    assert result.stderr.strip()  # a diagnostic, not a silent failure


def test_service_rejects_non_positive_timeout():
    result = run_cli(
        "-m", "repro.service", "--modules", "C5", "--scale", "tiny",
        "--timeout", "0",
    )
    assert result.returncode == 2, result.stderr
    assert "timeout" in result.stderr.lower()


def test_service_help_mentions_timeout():
    result = run_cli("-m", "repro.service", "--help")
    assert result.returncode == 0
    assert "--timeout" in result.stdout


def test_api_help_mentions_tenancy():
    result = run_cli("-m", "repro.api", "--help")
    assert result.returncode == 0
    assert "--tenant-quota" in result.stdout
