"""Cross-cutting coverage: cache keying, ECC batch/scalar equivalence,
solver failure paths, host timing details."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scale import StudyScale
from repro.dram.calibration import ModuleGeometry
from repro.dram.ecc import CODE_BITS, BatchSecdedCodec, SecdedCodec
from repro.errors import ConvergenceError, UncorrectableError
from repro.harness.cache import get_study
from repro.softmc.infrastructure import TestInfrastructure
from repro.softmc.program import Program
from repro.spice.netlist import Circuit
from repro.spice.transient import TransientSolver
from repro.units import ms, ns


class TestCacheKeys:
    def test_different_scales_do_not_collide(self, tiny_scale):
        other = StudyScale(
            rows_per_module=8,
            row_chunks=2,
            iterations=1,
            hcfirst_min_step=16_000,
            retention_windows=(ms(64.0),),
            geometry=ModuleGeometry(rows_per_bank=512, banks=1,
                                    row_bits=2048),
        )
        a = get_study(("rowhammer",), modules=("C5",), scale=tiny_scale,
                      seed=0)
        b = get_study(("rowhammer",), modules=("C5",), scale=other, seed=0)
        assert a is not b
        assert len(a.module("C5").rowhammer) != len(
            b.module("C5").rowhammer
        )

    def test_different_seeds_do_not_collide(self, tiny_scale):
        a = get_study(("rowhammer",), modules=("C5",), scale=tiny_scale,
                      seed=0)
        b = get_study(("rowhammer",), modules=("C5",), scale=tiny_scale,
                      seed=1)
        assert a is not b


class TestBatchScalarEquivalence:
    scalar = SecdedCodec()
    batch = BatchSecdedCodec()

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=0, max_value=(1 << 64) - 1),
        st.integers(min_value=0, max_value=CODE_BITS - 1),
    )
    def test_single_error_decisions_agree(self, value, position):
        data = self.scalar.bits_from_int(value)
        codeword = self.scalar.encode(data)
        codeword[position] ^= 1
        scalar_result = self.scalar.decode(codeword.copy())
        out, corrected, uncorrectable = self.batch.decode_many(
            codeword[None, :]
        )
        assert corrected[0] and not uncorrectable[0]
        assert np.array_equal(out[0], scalar_result.data)

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=0, max_value=(1 << 64) - 1),
        st.integers(min_value=0, max_value=CODE_BITS - 1),
        st.integers(min_value=0, max_value=CODE_BITS - 1),
    )
    def test_double_error_decisions_agree(self, value, pos_a, pos_b):
        if pos_a == pos_b:
            return
        codeword = self.scalar.encode(self.scalar.bits_from_int(value))
        codeword[pos_a] ^= 1
        codeword[pos_b] ^= 1
        with pytest.raises(UncorrectableError):
            self.scalar.decode(codeword.copy())
        _, corrected, uncorrectable = self.batch.decode_many(
            codeword[None, :]
        )
        assert uncorrectable[0] and not corrected[0]


class TestSolverFailurePath:
    def test_newton_reports_convergence_failure(self):
        # A pathological circuit (huge capacitor feedback with an
        # absurdly tight iteration limit) must raise, not loop.
        circuit = Circuit()
        circuit.add_source("in", [(0.0, 0.0), (1e-9, 5.0)])
        circuit.add_resistor("in", "a", 1.0)
        circuit.add_capacitor("a", "0", 1e-6)
        solver = TransientSolver(circuit, max_newton=1, tolerance=1e-15)
        with pytest.raises(ConvergenceError):
            solver.solve(t_stop=1e-8, dt=1e-9)


class TestHostTimingDetails:
    def test_write_row_charges_column_time(self, tiny_scale):
        infra = TestInfrastructure.for_module(
            "A4", geometry=tiny_scale.geometry, seed=0
        )
        columns = infra.module.geometry.columns
        program = Program()
        from repro.dram.patterns import STANDARD_PATTERNS

        program.initialize_row(
            0, 5, STANDARD_PATTERNS[0], infra.module.geometry.row_bits
        )
        result = infra.host.execute(program)
        # ACT + columns * column latency + PRE, all quantized to 1.5 ns.
        expected = ns(13.5) + columns * ns(15.0) + ns(13.5)
        assert result.duration == pytest.approx(expected, rel=1e-6)
        assert result.commands_issued == 2 + columns

    def test_ref_advances_refresh_latency(self, tiny_scale):
        infra = TestInfrastructure.for_module(
            "A4", geometry=tiny_scale.geometry, seed=0
        )
        program = Program()
        program.ref()
        result = infra.host.execute(program)
        assert result.duration == pytest.approx(ns(350.0 + 1.0), abs=ns(2.0))
