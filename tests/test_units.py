"""Unit-conversion helpers."""

import pytest

from repro import units


def test_time_conversions_roundtrip():
    assert units.ns(13.5) == pytest.approx(13.5e-9)
    assert units.seconds_to_ns(units.ns(13.5)) == pytest.approx(13.5)
    assert units.ms(64.0) == pytest.approx(0.064)
    assert units.seconds_to_ms(units.ms(64.0)) == pytest.approx(64.0)
    assert units.us(1.5) == pytest.approx(1.5e-6)


def test_voltage_and_passives():
    assert units.mv(1.0) == pytest.approx(1e-3)
    assert units.ff(16.8) == pytest.approx(16.8e-15)
    assert units.pf(1.0) == pytest.approx(1e-12)
    assert units.kohm(6.98) == pytest.approx(6980.0)


def test_clamp_within_range():
    assert units.clamp(0.5, 0.0, 1.0) == 0.5


def test_clamp_at_bounds():
    assert units.clamp(-1.0, 0.0, 1.0) == 0.0
    assert units.clamp(2.0, 0.0, 1.0) == 1.0


def test_clamp_rejects_empty_range():
    with pytest.raises(ValueError):
        units.clamp(0.5, 1.0, 0.0)
