"""Observability cost contracts.

Two guarantees the tentpole PR makes:

* with the tracer disabled (the default) a campaign records no spans
  and the span call sites cost well under 5% of the campaign's wall
  clock (the disabled path is one boolean check returning a shared
  no-op singleton);
* turning every observability surface on (tracer, profiler, progress
  reporter on the event bus) changes no study result bit-for-bit --
  observation never perturbs the physics.
"""

import io
import json

from repro.core.perf import PROFILER
from repro.core.scale import StudyScale
from repro.core.serialization import study_to_dict
from repro.core.study import CharacterizationStudy
from repro.obs import clock
from repro.obs.progress import ProgressReporter
from repro.obs.trace import TRACER

MODULES = ["C5"]
TESTS = ("rowhammer",)
SEED = 3


def _run_campaign():
    study = CharacterizationStudy(scale=StudyScale.tiny(), seed=SEED)
    return study.run(modules=MODULES, tests=TESTS)


def test_disabled_tracer_records_no_spans():
    assert not TRACER.enabled
    _run_campaign()
    assert TRACER.spans == []


def test_disabled_span_sites_cost_under_five_percent():
    # Wall clock of the campaign with tracing off (span sites still
    # execute their disabled fast path).
    started = clock.monotonic()
    _run_campaign()
    campaign_seconds = clock.monotonic() - started

    # How many span sites does that campaign actually pass through?
    TRACER.enable()
    _run_campaign()
    span_calls = len(TRACER.spans)
    TRACER.disable()
    TRACER.reset()
    assert span_calls > 0

    # Per-call cost of the disabled fast path, amortized over a tight
    # loop so timer resolution does not dominate.
    loops = 200_000
    started = clock.monotonic()
    for _ in range(loops):
        TRACER.span("probe-batch")
    per_call = (clock.monotonic() - started) / loops

    overhead = span_calls * per_call
    assert overhead < 0.05 * campaign_seconds, (
        f"{span_calls} disabled span sites cost {overhead:.6f}s "
        f"of a {campaign_seconds:.3f}s campaign"
    )


def test_full_observability_changes_no_result_bits():
    baseline = study_to_dict(_run_campaign())

    TRACER.enable()
    PROFILER.enable()
    try:
        with ProgressReporter(stream=io.StringIO(), min_interval=0.0):
            observed = study_to_dict(_run_campaign())
    finally:
        TRACER.disable()
        TRACER.reset()
        PROFILER.disable()
        PROFILER.reset()

    assert json.dumps(baseline, sort_keys=True) == json.dumps(
        observed, sort_keys=True
    )


def test_enabled_run_actually_records():
    TRACER.enable()
    PROFILER.enable()
    try:
        _run_campaign()
        names = {span.name for span in TRACER.spans}
        assert {"campaign", "module", "operating-point"} <= names
        assert PROFILER.counters.get("hammer_probes", 0) > 0
    finally:
        TRACER.disable()
        TRACER.reset()
        PROFILER.disable()
        PROFILER.reset()
