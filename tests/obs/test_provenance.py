"""Provenance manifests: construction and schema validation."""

import pytest

from repro.errors import AnalysisError
from repro.obs.provenance import (
    PROVENANCE_SCHEMA,
    build_provenance,
    code_version,
    validate_provenance,
)


def _block(**overrides):
    block = build_provenance(
        fingerprint="abc123",
        probe_engine="batch",
        seed=7,
        cache="miss",
        wall_seconds=1.5,
        counters={"repro_probes_hammer_total": 10},
    )
    block.update(overrides)
    return block


class TestBuild:
    def test_required_fields_present_and_valid(self):
        block = _block()
        assert block["schema"] == PROVENANCE_SCHEMA
        assert block["fingerprint"] == "abc123"
        assert block["probe_engine"] == "batch"
        assert block["seed"] == 7
        assert block["cache"] == "miss"
        assert block["wall_seconds"] == 1.5
        assert block["created"] > 0
        assert validate_provenance(block) is block

    def test_extra_keys_pass_through(self):
        block = build_provenance(
            fingerprint="abc", probe_engine="fast", seed=0, cache="off",
            wall_seconds=0.0, counters={},
            tests=["rowhammer"], modules=["C5"], scale="tiny",
        )
        assert block["tests"] == ["rowhammer"]
        assert block["modules"] == ["C5"]
        assert block["scale"] == "tiny"
        validate_provenance(block)

    def test_counters_sorted_and_stringified(self):
        block = build_provenance(
            fingerprint="abc", probe_engine="batch", seed=0, cache="hit",
            wall_seconds=0.0, counters={"b": 2, "a": 1},
        )
        assert list(block["counters"]) == ["a", "b"]

    def test_code_version_mentions_package(self):
        version = code_version()
        assert version.startswith("repro-")
        assert code_version() is version  # cached per process


class TestValidate:
    def test_non_dict_rejected(self):
        with pytest.raises(AnalysisError, match="must be a dict"):
            validate_provenance(["not", "a", "dict"])

    def test_missing_key_named(self):
        block = _block()
        del block["fingerprint"]
        with pytest.raises(AnalysisError, match="fingerprint"):
            validate_provenance(block)

    def test_wrong_type_named(self):
        with pytest.raises(AnalysisError, match="seed"):
            validate_provenance(_block(seed="seven"))

    def test_bool_not_accepted_as_number(self):
        with pytest.raises(AnalysisError, match="wall_seconds"):
            validate_provenance(_block(wall_seconds=True))

    def test_unknown_schema_rejected(self):
        with pytest.raises(AnalysisError, match="schema"):
            validate_provenance(_block(schema="repro.obs/provenance/v0"))

    def test_cache_state_restricted(self):
        for state in ("hit", "miss", "off"):
            validate_provenance(_block(cache=state))
        with pytest.raises(AnalysisError, match="cache"):
            validate_provenance(_block(cache="warm"))

    def test_non_numeric_counter_rejected(self):
        with pytest.raises(AnalysisError, match="not numeric"):
            validate_provenance(_block(counters={"x": "many"}))

    def test_negative_wall_clock_rejected(self):
        with pytest.raises(AnalysisError, match="negative"):
            validate_provenance(_block(wall_seconds=-1.0))

    def test_all_problems_reported_together(self):
        block = _block()
        del block["seed"]
        del block["cache"]
        with pytest.raises(AnalysisError, match="seed.*cache"):
            validate_provenance(block)
