"""Isolation for the process-global observability singletons."""

from __future__ import annotations

import pytest

from repro.obs import events
from repro.obs.trace import TRACER


@pytest.fixture(autouse=True)
def _isolated_tracer():
    """Every test starts with a disabled, empty tracer and leaves no
    spans or subscribers behind for the rest of the suite."""
    TRACER.disable()
    TRACER.reset()
    before = events.subscribers()
    yield
    TRACER.disable()
    TRACER.reset()
    for sink in events.subscribers():
        if sink not in before:
            events.unsubscribe(sink)
