"""Isolation for the process-global observability singletons."""

from __future__ import annotations

import pytest

from repro.obs import context as obs_context
from repro.obs import events
from repro.obs.flightrec import RECORDER
from repro.obs.trace import TRACER


@pytest.fixture(autouse=True)
def _isolated_tracer():
    """Every test starts with a disabled, empty tracer and leaves no
    spans, fragments, recorder state or subscribers behind for the
    rest of the suite."""
    TRACER.disable()
    TRACER.reset()
    obs_context.clear_fragments()
    before = events.subscribers()
    yield
    TRACER.disable()
    TRACER.reset()
    obs_context.clear_fragments()
    RECORDER.detach()
    RECORDER.configure(None)
    RECORDER.clear()
    for sink in events.subscribers():
        if sink not in before:
            events.unsubscribe(sink)
