"""Flight recorder: ring bounds, hooks, dumps, and the ops listing."""

from __future__ import annotations

import json
import os

from repro.obs import events as obs_events
from repro.obs.flightrec import (
    DEFAULT_CAPACITY,
    SCHEMA,
    FlightRecorder,
    recent_dumps,
)
from repro.obs.metrics import REGISTRY
from repro.obs.trace import TRACER


class TestRing:
    def test_ring_is_bounded(self):
        recorder = FlightRecorder(capacity=4)
        for index in range(10):
            recorder.record("event", {"index": index})
        entries = recorder.entries()
        assert len(entries) == 4
        assert [e["payload"]["index"] for e in entries] == [6, 7, 8, 9]

    def test_entries_carry_kind_and_clocks(self):
        recorder = FlightRecorder()
        recorder.record("fault", {"kind": "power_droop"})
        (entry,) = recorder.entries()
        assert entry["kind"] == "fault"
        assert entry["ts"] > 0 and entry["mono"] > 0

    def test_default_capacity(self):
        assert FlightRecorder()._ring.maxlen == DEFAULT_CAPACITY

    def test_clear_empties_the_ring(self):
        recorder = FlightRecorder()
        recorder.record("event", {})
        recorder.clear()
        assert recorder.entries() == []


class TestAttachment:
    def test_attach_follows_the_event_bus(self):
        recorder = FlightRecorder()
        recorder.attach()
        try:
            obs_events.emit("unit_finished", unit="C5/0")
        finally:
            recorder.detach()
        kinds = [e["kind"] for e in recorder.entries()]
        assert kinds == ["event"]
        (entry,) = recorder.entries()
        assert entry["payload"]["event"] == "unit_finished"

    def test_attach_follows_finished_spans(self):
        TRACER.enable()
        recorder = FlightRecorder()
        recorder.attach()
        try:
            with TRACER.span("probe-batch", rows=8):
                pass
        finally:
            recorder.detach()
        (entry,) = [
            e for e in recorder.entries() if e["kind"] == "span"
        ]
        assert entry["payload"]["name"] == "probe-batch"
        assert entry["payload"]["attrs"] == {"rows": 8}
        assert entry["payload"]["span_id"]

    def test_detach_stops_following(self):
        recorder = FlightRecorder()
        recorder.attach()
        recorder.detach()
        obs_events.emit("late_event")
        assert recorder.entries() == []
        assert TRACER.on_record is None

    def test_attach_is_idempotent(self):
        recorder = FlightRecorder()
        before = len(obs_events.subscribers())
        recorder.attach()
        recorder.attach()
        assert len(obs_events.subscribers()) == before + 1
        recorder.detach()

    def test_detach_leaves_a_foreign_span_hook_alone(self):
        sentinel = lambda span: None  # noqa: E731
        recorder = FlightRecorder()
        recorder.attach()
        TRACER.on_record = sentinel
        recorder.detach()
        assert TRACER.on_record is sentinel
        TRACER.on_record = None


class TestDump:
    def test_dump_without_a_directory_returns_none(self):
        recorder = FlightRecorder()
        recorder.record("event", {})
        assert recorder.dump("no_sink") is None

    def test_dump_writes_schema_reason_and_entries(self, tmp_path):
        recorder = FlightRecorder()
        recorder.configure(str(tmp_path))
        recorder.record("fault", {"kind": "power_droop"})
        path = recorder.dump("hang_injected", extra={"unit": "C5/0"})
        assert path is not None and os.path.exists(path)
        with open(path) as handle:
            document = json.load(handle)
        assert document["schema"] == SCHEMA
        assert document["reason"] == "hang_injected"
        assert document["extra"] == {"unit": "C5/0"}
        assert document["pid"] == os.getpid()
        assert len(document["entries"]) == 1

    def test_dump_counts_in_the_registry(self, tmp_path):
        recorder = FlightRecorder()
        recorder.configure(str(tmp_path))
        before = REGISTRY.counter_values().get(
            "repro_flightrec_dumps_total", 0.0
        )
        recorder.dump("why")
        after = REGISTRY.counter_values().get(
            "repro_flightrec_dumps_total", 0.0
        )
        assert after == before + 1

    def test_reasons_are_sanitized_into_filenames(self, tmp_path):
        recorder = FlightRecorder()
        recorder.configure(str(tmp_path))
        path = recorder.dump("fault injected: power/droop!")
        name = os.path.basename(path)
        assert name.startswith(f"flightrec-{os.getpid()}-001-")
        assert "/" not in name[len("flightrec-"):]
        assert " " not in name

    def test_sequential_dumps_never_collide(self, tmp_path):
        recorder = FlightRecorder()
        recorder.configure(str(tmp_path))
        paths = {recorder.dump("again") for _ in range(3)}
        assert len(paths) == 3


class TestRecentDumps:
    def test_missing_directory_is_empty(self, tmp_path):
        assert recent_dumps(str(tmp_path / "nope")) == []
        assert recent_dumps("") == []

    def test_lists_summaries_newest_first(self, tmp_path):
        recorder = FlightRecorder()
        for job in ("job-a", "job-b"):
            recorder.configure(str(tmp_path / job))
            recorder.record("event", {"job": job})
            recorder.dump(f"reason-{job}")
        dumps = recent_dumps(str(tmp_path))
        assert len(dumps) == 2
        assert dumps[0]["ts"] >= dumps[1]["ts"]
        assert {d["reason"] for d in dumps} == {
            "reason-job-a", "reason-job-b"
        }
        assert all(d["entries"] >= 1 for d in dumps)

    def test_limit_and_torn_files_are_tolerated(self, tmp_path):
        recorder = FlightRecorder()
        recorder.configure(str(tmp_path))
        for _ in range(4):
            recorder.dump("r")
        (tmp_path / "flightrec-0-999-torn.json").write_text("{not json")
        dumps = recent_dumps(str(tmp_path), limit=2)
        assert len(dumps) == 2
