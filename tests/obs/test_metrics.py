"""Metrics registry: semantics, exposition, cross-process transport."""

import multiprocessing
import re
import threading
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.errors import ConfigurationError
from repro.obs.metrics import (
    REGISTRY,
    MetricsRegistry,
    snapshot_delta,
)

_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [0-9+.eE-]+(Inf)?$"
)


class TestCounter:
    def test_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_x_total", "help")
        counter.inc()
        counter.inc(41)
        assert counter.value == 42
        assert registry.counter("repro_x_total") is counter

    def test_cannot_decrease(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().counter("repro_x_total").inc(-1)

    def test_invalid_name_rejected(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().counter("0bad name")

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total")
        with pytest.raises(ConfigurationError):
            registry.gauge("repro_x_total")

    def test_counter_values_view(self):
        registry = MetricsRegistry()
        registry.counter("repro_a_total").inc(3)
        registry.gauge("repro_g").set(9)
        assert registry.counter_values() == {"repro_a_total": 3}

    def test_thread_safe_increments(self):
        counter = MetricsRegistry().counter("repro_x_total")

        def bump():
            for _ in range(10_000):
                counter.inc()

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 40_000


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("repro_inflight")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value == 6


class TestHistogram:
    def test_observations_land_in_cumulative_buckets(self):
        histogram = MetricsRegistry().histogram(
            "repro_probes", buckets=(1, 4, 16)
        )
        for value in (0.5, 3, 3, 20):
            histogram.observe(value)
        lines = histogram.expose()
        assert 'repro_probes_bucket{le="1"} 1' in lines
        assert 'repro_probes_bucket{le="4"} 3' in lines
        assert 'repro_probes_bucket{le="16"} 3' in lines
        assert 'repro_probes_bucket{le="+Inf"} 4' in lines
        assert "repro_probes_count 4" in lines
        assert histogram.sum == pytest.approx(26.5)

    def test_needs_buckets(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().histogram("repro_h", buckets=())


class TestPrometheusText:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter("repro_b_total", "a counter").inc(2)
        registry.gauge("repro_a_gauge", "a gauge").set(1.5)
        registry.histogram(
            "repro_c_seconds", "a histogram", buckets=(0.1, 1.0)
        ).observe(0.05)
        return registry

    def test_exposition_parses_line_by_line(self):
        text = self._registry().prometheus_text()
        assert text.endswith("\n")
        for line in text.splitlines():
            if line.startswith("#"):
                assert line.startswith(("# HELP ", "# TYPE "))
            else:
                assert _SAMPLE_RE.match(line), line

    def test_metrics_sorted_with_help_and_type(self):
        text = self._registry().prometheus_text()
        assert text.index("repro_a_gauge") < text.index("repro_b_total")
        assert "# HELP repro_b_total a counter" in text
        assert "# TYPE repro_c_seconds histogram" in text

    def test_empty_registry_exposes_empty_document(self):
        assert MetricsRegistry().prometheus_text() == ""

    def test_write_prometheus(self, tmp_path):
        path = str(tmp_path / "metrics.prom")
        assert self._registry().write_prometheus(path) == path
        with open(path) as handle:
            assert "repro_b_total 2" in handle.read()


class TestSnapshotTransport:
    def _populated(self):
        registry = MetricsRegistry()
        registry.counter("repro_a_total").inc(10)
        registry.gauge("repro_peak").set(3)
        registry.histogram("repro_h", buckets=(1, 2)).observe(1.5)
        return registry

    def test_snapshot_roundtrips_through_merge(self):
        source = self._populated()
        target = MetricsRegistry()
        target.merge_snapshot(source.snapshot())
        assert target.counter("repro_a_total").value == 10
        assert target.gauge("repro_peak").value == 3
        assert target.histogram("repro_h", buckets=(1, 2)).count == 1

    def test_merge_accumulates_counters_and_histograms(self):
        target = self._populated()
        target.merge_snapshot(self._populated().snapshot())
        assert target.counter("repro_a_total").value == 20
        histogram = target.histogram("repro_h", buckets=(1, 2))
        assert histogram.count == 2
        assert histogram.sum == pytest.approx(3.0)

    def test_merge_takes_gauge_maximum(self):
        target = self._populated()
        other = MetricsRegistry()
        other.gauge("repro_peak").set(7)
        target.merge_snapshot(other.snapshot())
        assert target.gauge("repro_peak").value == 7
        low = MetricsRegistry()
        low.gauge("repro_peak").set(1)
        target.merge_snapshot(low.snapshot())
        assert target.gauge("repro_peak").value == 7

    def test_merge_empty_snapshot_is_noop(self):
        target = self._populated()
        target.merge_snapshot(None)
        target.merge_snapshot({})
        assert target.counter("repro_a_total").value == 10

    def test_bucket_layout_mismatch_rejected(self):
        target = MetricsRegistry()
        target.histogram("repro_h", buckets=(1, 2))
        snap = self._populated().snapshot()
        snap["histograms"]["repro_h"]["buckets"] = [5, 6]
        with pytest.raises(ConfigurationError):
            target.merge_snapshot(snap)

    def test_delta_excludes_baseline_state(self):
        registry = self._populated()
        baseline = registry.snapshot()
        registry.counter("repro_a_total").inc(5)
        registry.counter("repro_new_total").inc(2)
        registry.histogram("repro_h", buckets=(1, 2)).observe(0.5)
        delta = snapshot_delta(baseline, registry.snapshot())
        assert delta["counters"] == {
            "repro_a_total": 5, "repro_new_total": 2,
        }
        assert delta["histograms"]["repro_h"]["count"] == 1
        assert delta["histograms"]["repro_h"]["sum"] == pytest.approx(0.5)

    def test_delta_of_identical_snapshots_is_empty(self):
        registry = self._populated()
        delta = snapshot_delta(registry.snapshot(), registry.snapshot())
        assert delta["counters"] == {} and delta["histograms"] == {}


class TestLabeledMetrics:
    def test_labels_create_children_on_first_use(self):
        registry = MetricsRegistry()
        family = registry.counter("repro_l_total", labels=("tenant",))
        family.labels(tenant="a").inc(2)
        family.labels(tenant="b").inc(3)
        assert family.value == 5
        assert registry.counter_values()["repro_l_total"] == 5

    def test_direct_mutation_of_a_family_is_rejected(self):
        family = MetricsRegistry().counter(
            "repro_l_total", labels=("tenant",)
        )
        with pytest.raises(ConfigurationError):
            family.inc()

    def test_label_set_must_match_declaration(self):
        family = MetricsRegistry().histogram(
            "repro_l_seconds", labels=("tenant", "engine")
        )
        with pytest.raises(ConfigurationError):
            family.labels(tenant="a")
        with pytest.raises(ConfigurationError):
            family.labels(tenant="a", engine="x", extra="y")

    def test_labeled_plain_redeclaration_conflicts(self):
        registry = MetricsRegistry()
        registry.counter("repro_l_total", labels=("tenant",))
        with pytest.raises(ConfigurationError):
            registry.counter("repro_l_total")
        registry.counter("repro_plain_total")
        with pytest.raises(ConfigurationError):
            registry.counter("repro_plain_total", labels=("tenant",))

    def test_labelname_mismatch_conflicts(self):
        registry = MetricsRegistry()
        registry.gauge("repro_l", labels=("tenant",))
        with pytest.raises(ConfigurationError):
            registry.gauge("repro_l", labels=("engine",))


class TestLabeledTransport:
    def _worker_like(self):
        """A registry shaped like a pool worker's: labeled families the
        coordinator has never registered."""
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "repro_unit_run_seconds", "per-engine unit wall",
            labels=("engine",), buckets=(1.0, 10.0),
        )
        histogram.labels(engine="batch").observe(0.5)
        histogram.labels(engine="batch").observe(20.0)
        histogram.labels(engine="command").observe(2.0)
        registry.counter(
            "repro_unit_probes_total", labels=("engine",)
        ).labels(engine="batch").inc(7)
        registry.gauge(
            "repro_unit_peak", labels=("engine",)
        ).labels(engine="batch").set(4)
        return registry

    def test_merge_creates_absent_labeled_families(self):
        """The coordinator-side hazard: a worker observes a labeled
        histogram the coordinator never registered; merging its delta
        must create the family instead of crashing or dropping it."""
        target = MetricsRegistry()
        target.merge_snapshot(self._worker_like().snapshot())
        histogram = target.histogram(
            "repro_unit_run_seconds", labels=("engine",),
            buckets=(1.0, 10.0),
        )
        assert histogram.labels(engine="batch").count == 2
        assert histogram.labels(engine="command").count == 1
        assert target.counter_values()["repro_unit_probes_total"] == 7

    def test_merge_accumulates_per_series(self):
        target = self._worker_like()
        target.merge_snapshot(self._worker_like().snapshot())
        histogram = target.histogram(
            "repro_unit_run_seconds", labels=("engine",),
            buckets=(1.0, 10.0),
        )
        assert histogram.labels(engine="batch").count == 4
        assert histogram.labels(engine="batch").sum == pytest.approx(41.0)

    def test_merge_takes_gauge_maximum_per_series(self):
        target = self._worker_like()
        other = MetricsRegistry()
        family = other.gauge("repro_unit_peak", labels=("engine",))
        family.labels(engine="batch").set(9)
        family.labels(engine="fused").set(1)
        target.merge_snapshot(other.snapshot())
        merged = target.gauge("repro_unit_peak", labels=("engine",))
        assert merged.labels(engine="batch").value == 9
        assert merged.labels(engine="fused").value == 1

    def test_labeled_bucket_mismatch_rejected(self):
        target = MetricsRegistry()
        target.histogram(
            "repro_unit_run_seconds", labels=("engine",),
            buckets=(5.0, 50.0),
        )
        with pytest.raises(ConfigurationError):
            target.merge_snapshot(self._worker_like().snapshot())

    def test_delta_keeps_only_changed_series(self):
        registry = self._worker_like()
        baseline = registry.snapshot()
        registry.histogram(
            "repro_unit_run_seconds", labels=("engine",),
            buckets=(1.0, 10.0),
        ).labels(engine="fused").observe(0.1)
        delta = snapshot_delta(baseline, registry.snapshot())
        series = delta["histograms"]["repro_unit_run_seconds"]["series"]
        assert list(series) == ["fused"]
        assert series["fused"]["count"] == 1
        assert delta["counters"] == {}

    def test_delta_of_identical_labeled_snapshots_is_empty(self):
        registry = self._worker_like()
        delta = snapshot_delta(registry.snapshot(), registry.snapshot())
        assert delta["counters"] == {}
        assert delta["histograms"] == {}

    def test_labeled_delta_merges_into_fresh_registry(self):
        """End-to-end transport shape: worker baseline -> observe ->
        delta -> coordinator merge, labeled family absent on both ends
        until the merge creates it."""
        worker = MetricsRegistry()
        baseline = worker.snapshot()
        worker.histogram(
            "repro_unit_run_seconds", labels=("engine",),
            buckets=(1.0, 10.0),
        ).labels(engine="batch").observe(3.0)
        delta = snapshot_delta(baseline, worker.snapshot())
        coordinator = MetricsRegistry()
        coordinator.merge_snapshot(delta)
        merged = coordinator.histogram(
            "repro_unit_run_seconds", labels=("engine",),
            buckets=(1.0, 10.0),
        )
        assert merged.labels(engine="batch").count == 1
        assert merged.labels(engine="batch").sum == pytest.approx(3.0)


def _pool_unit(amount):
    """One pool work unit: mutate the inherited global registry and
    return only the delta this unit produced."""
    baseline = REGISTRY.snapshot()
    REGISTRY.counter("repro_pooltest_total").inc(amount)
    REGISTRY.histogram(
        "repro_pooltest_seconds", buckets=(1.0, 10.0)
    ).observe(amount)
    return snapshot_delta(baseline, REGISTRY.snapshot())


class TestProcessPoolMerge:
    def test_worker_deltas_merge_without_double_counting(self):
        # Forked workers inherit whatever the parent registry already
        # held -- exactly the long-lived-worker hazard the delta
        # protocol exists for. Pre-populate the parent so any
        # inherited-state leak would be visible in the merged totals.
        REGISTRY.counter("repro_pooltest_total").inc(1000)
        amounts = [1, 2, 3, 4]
        context = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(
            max_workers=2, mp_context=context
        ) as pool:
            deltas = list(pool.map(_pool_unit, amounts))
        merged = MetricsRegistry()
        for delta in deltas:
            merged.merge_snapshot(delta)
        assert merged.counter("repro_pooltest_total").value == sum(amounts)
        histogram = merged.histogram(
            "repro_pooltest_seconds", buckets=(1.0, 10.0)
        )
        assert histogram.count == len(amounts)
        assert histogram.sum == pytest.approx(sum(amounts))
