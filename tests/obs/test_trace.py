"""Hierarchical span tracer: nesting, attrs, Chrome-trace export."""

import json
import threading

from repro.obs.trace import _NULL_SPAN, TRACER, Tracer


class TestDisabled:
    def test_disabled_span_is_shared_noop_singleton(self):
        # The disabled fast path allocates nothing: every call hands out
        # the same no-op context manager.
        assert TRACER.span("a") is TRACER.span("b") is _NULL_SPAN

    def test_disabled_span_records_nothing(self):
        with TRACER.span("campaign", units=3) as span:
            span.set(extra=1)
        assert TRACER.spans == []

    def test_disable_keeps_recorded_spans(self):
        TRACER.enable()
        with TRACER.span("kept"):
            pass
        TRACER.disable()
        with TRACER.span("dropped"):
            pass
        assert [s.name for s in TRACER.spans] == ["kept"]


class TestNesting:
    def test_parent_and_depth_tracked(self):
        TRACER.enable()
        with TRACER.span("campaign"):
            with TRACER.span("module", module="B3"):
                with TRACER.span("operating-point", vpp=2.5):
                    pass
        by_name = {s.name: s for s in TRACER.spans}
        assert by_name["campaign"].depth == 0
        assert by_name["campaign"].parent is None
        assert by_name["module"].parent == "campaign"
        assert by_name["module"].depth == 1
        assert by_name["operating-point"].parent == "module"
        assert by_name["operating-point"].depth == 2

    def test_children_recorded_before_parents_but_contained(self):
        TRACER.enable()
        with TRACER.span("outer"):
            with TRACER.span("inner"):
                pass
        inner, outer = TRACER.spans
        assert (inner.name, outer.name) == ("inner", "outer")
        assert inner.start >= outer.start
        assert inner.start + inner.duration <= (
            outer.start + outer.duration + 1e-9
        )

    def test_set_attaches_attrs_to_open_span(self):
        TRACER.enable()
        with TRACER.span("bisection", row=7) as span:
            span.set(probes=12, hcfirst=48000)
        (span,) = TRACER.spans
        assert span.attrs == {"row": 7, "probes": 12, "hcfirst": 48000}

    def test_sibling_spans_share_parent(self):
        TRACER.enable()
        with TRACER.span("module"):
            for vpp in (2.5, 2.0):
                with TRACER.span("operating-point", vpp=vpp):
                    pass
        points = [s for s in TRACER.spans if s.name == "operating-point"]
        assert [s.parent for s in points] == ["module", "module"]

    def test_threads_nest_independently(self):
        TRACER.enable()

        def worker():
            with TRACER.span("worker-root"):
                pass

        with TRACER.span("main-root"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        by_name = {s.name: s for s in TRACER.spans}
        # The worker's span is a root on its own thread, not a child of
        # the span open on the main thread.
        assert by_name["worker-root"].depth == 0
        assert by_name["worker-root"].parent is None
        assert by_name["worker-root"].tid != by_name["main-root"].tid

    def test_reset_drops_spans(self):
        TRACER.enable()
        with TRACER.span("x"):
            pass
        TRACER.reset()
        assert TRACER.spans == []


class TestChromeTrace:
    def _trace(self):
        TRACER.enable()
        with TRACER.span("campaign", units=1):
            with TRACER.span("module", module="C5"):
                pass
        return TRACER.chrome_trace()

    def test_document_shape(self):
        document = self._trace()
        assert set(document) == {
            "traceEvents", "displayTimeUnit", "otherData",
        }
        assert document["otherData"]["source"] == "repro.obs"

    def test_events_are_complete_events_in_microseconds(self):
        events = self._trace()["traceEvents"]
        assert len(events) == 2
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0 and event["dur"] >= 0
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
        campaign, module = events  # sorted by start time
        assert campaign["name"] == "campaign"
        assert module["args"]["parent"] == "campaign"
        assert module["args"]["depth"] == 1
        assert module["args"]["module"] == "C5"

    def test_write_chrome_trace_roundtrips(self, tmp_path):
        self._trace()
        path = str(tmp_path / "trace.json")
        assert TRACER.write_chrome_trace(path) == path
        with open(path) as handle:
            document = json.load(handle)
        assert [e["name"] for e in document["traceEvents"]] == [
            "campaign", "module",
        ]


class TestAggregate:
    def test_aggregate_counts_and_totals(self):
        tracer = Tracer()
        tracer.enable()
        for _ in range(3):
            with tracer.span("probe-batch"):
                pass
        with tracer.span("module"):
            pass
        totals = tracer.aggregate()
        assert totals["probe-batch"][0] == 3
        assert totals["module"][0] == 1
        assert all(seconds >= 0 for _, seconds in totals.values())

    def test_report_lists_every_name(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("bisection"):
            pass
        report = tracer.report()
        assert "-- spans" in report
        assert "bisection" in report and "(1 spans)" in report

    def test_empty_report(self):
        assert "no spans recorded" in Tracer().report()
