"""Prometheus text-format (version 0.0.4) conformance.

A scrape target that bends the exposition rules poisons every
dashboard downstream, so this suite checks the output against the
format spec itself: HELP-before-TYPE ordering, one metadata block per
family, cumulative histogram buckets ending in ``+Inf`` == ``_count``,
and label-value escaping.
"""

from __future__ import annotations

import re

from repro.obs.metrics import MetricsRegistry

#: ``metric_name{labels} value`` -- the sample-line grammar. Metric
#: names per the spec; the label block (if any) is non-greedy so
#: escaped quotes inside label values cannot end it early.
_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\")*\})?"
    r" (?:[+-]?(?:\d+(?:\.\d+)?(?:e[+-]?\d+)?|Inf)|NaN)$"
)


def _registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("repro_jobs_total", "jobs admitted").inc(3)
    registry.gauge("repro_queue_depth", "jobs waiting").set(2.5)
    histogram = registry.histogram(
        "repro_wait_seconds", "queue wait", buckets=(0.1, 1.0, 10.0)
    )
    for value in (0.05, 0.5, 0.5, 5.0, 50.0):
        histogram.observe(value)
    labeled = registry.histogram(
        "repro_tenant_wait_seconds", "per-tenant queue wait",
        labels=("tenant",), buckets=(1.0, 10.0),
    )
    labeled.labels(tenant="acme").observe(0.5)
    labeled.labels(tenant="acme").observe(20.0)
    registry.counter(
        "repro_escapes_total", "label escaping", labels=("path",),
    ).labels(path='C:\\dir\n"quoted"').inc()
    return registry


class TestExpositionStructure:
    def test_every_line_is_metadata_or_a_valid_sample(self):
        text = _registry().prometheus_text()
        assert text.endswith("\n")
        for line in text.splitlines():
            if line.startswith("# HELP ") or line.startswith("# TYPE "):
                continue
            assert _SAMPLE_RE.match(line), f"malformed sample: {line!r}"

    def test_help_precedes_type_precedes_samples_once_per_family(self):
        text = _registry().prometheus_text()
        lines = text.splitlines()
        seen_types = {}
        for index, line in enumerate(lines):
            if line.startswith("# TYPE "):
                _, _, name, kind = line.split(" ", 3)
                assert name not in seen_types, f"duplicate TYPE for {name}"
                seen_types[name] = kind
                assert lines[index - 1] == (
                    f"# HELP {name} " + lines[index - 1].split(" ", 3)[3]
                )
        assert seen_types == {
            "repro_escapes_total": "counter",
            "repro_jobs_total": "counter",
            "repro_queue_depth": "gauge",
            "repro_tenant_wait_seconds": "histogram",
            "repro_wait_seconds": "histogram",
        }

    def test_samples_sit_under_their_own_family_metadata(self):
        lines = _registry().prometheus_text().splitlines()
        current_family = None
        for line in lines:
            if line.startswith("# TYPE "):
                current_family = line.split(" ", 3)[2]
                continue
            if line.startswith("#"):
                continue
            name = re.split(r"[{ ]", line, maxsplit=1)[0]
            base = re.sub(r"_(bucket|sum|count)$", "", name)
            assert current_family in (name, base), (
                f"sample {line!r} outside its family block"
            )


class TestHistogramConformance:
    def test_buckets_are_cumulative_and_end_at_inf(self):
        text = _registry().prometheus_text()
        buckets = re.findall(
            r'repro_wait_seconds_bucket\{le="([^"]+)"\} (\d+)', text
        )
        assert [le for le, _ in buckets] == ["0.1", "1", "10", "+Inf"]
        counts = [int(count) for _, count in buckets]
        assert counts == sorted(counts), "buckets must be cumulative"
        assert counts == [1, 3, 4, 5]

    def test_inf_bucket_equals_count(self):
        text = _registry().prometheus_text()
        inf = int(re.search(
            r'repro_wait_seconds_bucket\{le="\+Inf"\} (\d+)', text
        ).group(1))
        count = int(re.search(
            r"^repro_wait_seconds_count (\d+)$", text, re.M
        ).group(1))
        assert inf == count == 5

    def test_sum_is_exposed(self):
        text = _registry().prometheus_text()
        total = float(re.search(
            r"^repro_wait_seconds_sum (\S+)$", text, re.M
        ).group(1))
        assert total == 0.05 + 0.5 + 0.5 + 5.0 + 50.0

    def test_labeled_histogram_keeps_le_last(self):
        text = _registry().prometheus_text()
        buckets = re.findall(
            r"repro_tenant_wait_seconds_bucket\{([^}]*)\} \d+", text
        )
        assert buckets == [
            'tenant="acme",le="1"',
            'tenant="acme",le="10"',
            'tenant="acme",le="+Inf"',
        ]
        assert 'repro_tenant_wait_seconds_sum{tenant="acme"}' in text
        assert (
            'repro_tenant_wait_seconds_count{tenant="acme"} 2' in text
        )

    def test_labeled_inf_bucket_equals_labeled_count(self):
        text = _registry().prometheus_text()
        inf = int(re.search(
            r'repro_tenant_wait_seconds_bucket'
            r'\{tenant="acme",le="\+Inf"\} (\d+)', text
        ).group(1))
        assert inf == 2


class TestLabelEscaping:
    def test_backslash_quote_and_newline_are_escaped(self):
        text = _registry().prometheus_text()
        (line,) = [
            l for l in text.splitlines()
            if l.startswith("repro_escapes_total{")
        ]
        assert line == (
            'repro_escapes_total{path="C:\\\\dir\\n\\"quoted\\""} 1'
        )
        # The exposition itself must stay one physical line.
        assert "\n" not in line
