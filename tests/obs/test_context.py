"""Trace-context propagation and cross-process trace stitching."""

from __future__ import annotations

import json

from repro.obs import context as obs_context
from repro.obs.context import TraceContext, new_context, stitch_traces
from repro.obs.trace import TRACER


class TestTraceContext:
    def test_new_context_mints_distinct_trace_ids(self):
        first, second = new_context(), new_context()
        assert first.trace_id != second.trace_id
        assert len(first.trace_id) == 32  # 128-bit hex
        assert first.span_id is None

    def test_round_trips_through_dict(self):
        context = TraceContext(trace_id="ab" * 16, span_id="1-2-abc")
        assert TraceContext.from_dict(context.to_dict()) == context

    def test_from_dict_tolerates_missing_payloads(self):
        assert TraceContext.from_dict(None) is None
        assert TraceContext.from_dict({}) is None
        assert TraceContext.from_dict({"span_id": "x"}) is None

    def test_child_reparents_same_trace(self):
        context = new_context()
        child = context.child("7-1-fff")
        assert child.trace_id == context.trace_id
        assert child.span_id == "7-1-fff"

    def test_span_ids_are_pid_salted_and_unique(self):
        ids = {obs_context.new_span_id() for _ in range(100)}
        assert len(ids) == 100


class TestAmbientActivation:
    def test_activate_scopes_the_context_to_the_with_block(self):
        context = new_context()
        assert obs_context.current() is None
        with obs_context.activate(context):
            assert obs_context.current() == context
        assert obs_context.current() is None

    def test_activating_none_preserves_the_outer_context(self):
        outer = new_context()
        with obs_context.activate(outer):
            with obs_context.activate(None):
                assert obs_context.current() == outer

    def test_root_span_adopts_the_ambient_context(self):
        TRACER.enable()
        context = TraceContext(trace_id="cd" * 16, span_id="1-9-aaa")
        with obs_context.activate(context):
            with TRACER.span("work-unit"):
                pass
        (span,) = TRACER.spans
        assert span.trace_id == context.trace_id
        assert span.parent_id == context.span_id

    def test_nested_spans_inherit_the_adopted_trace(self):
        TRACER.enable()
        context = TraceContext(trace_id="ef" * 16, span_id="1-9-bbb")
        with obs_context.activate(context):
            with TRACER.span("outer") as outer:
                with TRACER.span("inner"):
                    pass
        inner, recorded_outer = TRACER.spans
        assert inner.trace_id == context.trace_id
        assert inner.parent_id == outer.span_id
        assert recorded_outer.parent_id == context.span_id

    def test_root_span_without_context_uses_tracer_default(self):
        TRACER.enable()
        with TRACER.span("alone"):
            pass
        (span,) = TRACER.spans
        assert span.trace_id == TRACER.trace_id
        assert span.parent_id is None

    def test_live_span_exports_its_own_context(self):
        TRACER.enable()
        with TRACER.span("campaign") as campaign:
            context = campaign.context()
        assert context.span_id == campaign.span_id
        assert context.trace_id == TRACER.trace_id

    def test_disabled_span_has_no_context(self):
        with TRACER.span("noop") as span:
            assert span.context() is None
            assert span.span_id is None


def _fragment(pid, epoch, spans):
    """A minimal per-process Chrome-trace document."""
    return {
        "traceEvents": [
            {
                "name": name, "cat": "repro", "ph": "X",
                "ts": ts, "dur": dur, "pid": pid, "tid": 1,
                "args": {
                    "id": span_id, "parent_id": parent_id,
                    "trace": trace,
                },
            }
            for name, ts, dur, span_id, parent_id, trace in spans
        ],
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro.obs",
            "epoch_unix_seconds": epoch,
            "process_label": f"proc-{pid}",
        },
    }


class TestStitchTraces:
    def test_empty_input_yields_an_empty_document(self):
        document = stitch_traces([])
        assert document["traceEvents"] == []
        assert document["otherData"]["stitched"] == 0

    def test_fragments_are_reanchored_onto_one_timebase(self):
        trace = "aa" * 16
        coordinator = _fragment(100, 1000.0, [
            ("campaign", 0.0, 5_000_000.0, "64-1-aaa", None, trace),
        ])
        worker = _fragment(200, 1002.0, [
            ("work-unit", 0.0, 1_000_000.0, "c8-1-bbb", "64-1-aaa", trace),
        ])
        document = stitch_traces([coordinator, worker])
        events = [e for e in document["traceEvents"] if e["ph"] == "X"]
        by_name = {e["name"]: e for e in events}
        # The worker's epoch is 2 s later: its span shifts by 2e6 us.
        assert by_name["campaign"]["ts"] == 0.0
        assert by_name["work-unit"]["ts"] == 2_000_000.0
        assert document["otherData"]["stitched"] == 2
        assert document["otherData"]["pids"] == [100, 200]

    def test_process_lanes_are_labeled(self):
        document = stitch_traces([
            _fragment(7, 0.0, [("a", 0, 1, "7-1-a", None, "t" * 32)]),
        ])
        (metadata,) = [
            e for e in document["traceEvents"] if e["ph"] == "M"
        ]
        assert metadata["name"] == "process_name"
        assert metadata["args"]["name"] == "proc-7"

    def test_cross_process_parent_emits_a_flow_pair(self):
        trace = "bb" * 16
        document = stitch_traces([
            _fragment(1, 0.0, [
                ("campaign", 0.0, 9e6, "1-1-aaa", None, trace),
            ]),
            _fragment(2, 0.0, [
                ("work-unit", 1e6, 2e6, "2-1-bbb", "1-1-aaa", trace),
            ]),
        ])
        flows = [
            e for e in document["traceEvents"]
            if e.get("cat") == "repro.flow"
        ]
        assert [f["ph"] for f in flows] == ["s", "f"]
        start, finish = flows
        assert start["pid"] == 1 and finish["pid"] == 2
        assert start["id"] == finish["id"]
        # The flow start is clamped into the parent slice.
        assert 0.0 <= start["ts"] <= 9e6

    def test_same_process_parents_draw_no_flows(self):
        trace = "cc" * 16
        document = stitch_traces([
            _fragment(5, 0.0, [
                ("outer", 0.0, 5e6, "5-1-a", None, trace),
                ("inner", 1e6, 1e6, "5-2-b", "5-1-a", trace),
            ]),
        ])
        assert not [
            e for e in document["traceEvents"]
            if e.get("cat") == "repro.flow"
        ]

    def test_trace_id_filter_drops_other_traces(self):
        keep, drop = "dd" * 16, "ee" * 16
        document = stitch_traces([
            _fragment(1, 0.0, [
                ("mine", 0.0, 1e6, "1-1-a", None, keep),
                ("other", 0.0, 1e6, "1-2-b", None, drop),
            ]),
        ], trace_id=keep)
        names = [
            e["name"] for e in document["traceEvents"] if e["ph"] == "X"
        ]
        assert names == ["mine"]

    def test_stitched_document_is_json_serializable(self):
        document = stitch_traces([
            _fragment(1, 0.0, [("a", 0, 1, "1-1-a", None, "f" * 32)]),
        ])
        assert json.loads(json.dumps(document)) == document


class TestFragmentCollector:
    def test_fragments_round_trip_and_clear(self):
        doc = _fragment(9, 0.0, [("x", 0, 1, "9-1-a", None, "0" * 32)])
        obs_context.add_fragment(doc)
        assert obs_context.fragments() == [doc]
        obs_context.clear_fragments()
        assert obs_context.fragments() == []

    def test_empty_documents_are_ignored(self):
        obs_context.add_fragment({})
        obs_context.add_fragment({"traceEvents": []})
        assert obs_context.fragments() == []

    def test_stitched_trace_merges_local_spans_with_fragments(self):
        TRACER.enable()
        context = new_context()
        with obs_context.activate(context):
            with TRACER.span("campaign"):
                pass
        (campaign,) = TRACER.spans
        obs_context.add_fragment(_fragment(999999, 0.0, [
            ("work-unit", 0.0, 1e6, "f423f-1-a",
             campaign.span_id, context.trace_id),
        ]))
        document = obs_context.stitched_trace(trace_id=context.trace_id)
        names = {
            e["name"] for e in document["traceEvents"] if e["ph"] == "X"
        }
        assert names == {"campaign", "work-unit"}
        assert document["otherData"]["stitched"] == 2
