"""Event bus and the live progress reporter."""

import io

from repro.obs import events
from repro.obs.metrics import REGISTRY
from repro.obs.progress import ProgressReporter, _format_eta


class TestEventBus:
    def test_emit_adds_standard_timestamps(self):
        record = events.emit("campaign_started", units=4)
        assert record["event"] == "campaign_started"
        assert record["units"] == 4
        assert isinstance(record["ts"], float)
        assert isinstance(record["mono"], float)

    def test_publish_fans_out_in_subscription_order(self):
        seen = []
        first = events.subscribe(lambda r: seen.append(("first", r["event"])))
        second = events.subscribe(
            lambda r: seen.append(("second", r["event"]))
        )
        try:
            events.emit("unit_finished", unit="C5")
        finally:
            events.unsubscribe(first)
            events.unsubscribe(second)
        assert seen == [
            ("first", "unit_finished"), ("second", "unit_finished"),
        ]

    def test_unsubscribe_stops_delivery(self):
        seen = []
        sink = events.subscribe(seen.append)
        events.unsubscribe(sink)
        events.emit("unit_finished")
        assert seen == []

    def test_unsubscribe_unknown_sink_ignored(self):
        events.unsubscribe(lambda record: None)

    def test_duplicate_subscribe_registers_once(self):
        seen = []
        sink = seen.append
        events.subscribe(sink)
        events.subscribe(sink)
        try:
            events.emit("unit_finished")
        finally:
            events.unsubscribe(sink)
        assert len(seen) == 1


class _Stream(io.StringIO):
    def __init__(self, tty=False):
        super().__init__()
        self._tty = tty

    def isatty(self):
        return self._tty


class TestProgressReporter:
    def _reporter(self, tty=False):
        stream = _Stream(tty=tty)
        return ProgressReporter(stream=stream, min_interval=0.0), stream

    def test_counts_units_from_event_stream(self):
        reporter, _ = self._reporter()
        reporter.handle({"event": "campaign_started", "units": 3})
        reporter.handle({"event": "unit_finished", "unit": "C5#0"})
        reporter.handle({"event": "unit_resumed", "unit": "C5#1"})
        reporter.handle({"event": "unit_skipped", "unit": "C5#2"})
        assert (reporter.total, reporter.done) == (3, 3)
        assert "[3/3] units" in reporter.render()

    def test_quarantine_shown(self):
        reporter, _ = self._reporter()
        reporter.handle({"event": "campaign_started", "units": 2})
        reporter.handle({"event": "module_quarantined", "module": "B3"})
        assert "1 quarantined" in reporter.render()

    def test_eta_states(self):
        reporter, _ = self._reporter()
        assert "eta --:--" in reporter.render()  # nothing finished yet
        reporter.total = 4
        reporter.done = 2
        assert "eta " in reporter.render()
        reporter.done = 4
        assert "done" in reporter.render()

    def test_probe_rate_uses_registry_baseline(self):
        reporter, _ = self._reporter()
        REGISTRY.counter("repro_probes_hammer_total").inc(500)
        line = reporter.render()
        assert "probes/s" in line

    def test_attach_detach_wires_the_bus(self):
        reporter, stream = self._reporter()
        with reporter:
            assert reporter.handle in events.subscribers()
            events.publish({"event": "campaign_started", "units": 1})
            events.publish({"event": "unit_finished"})
        assert reporter.handle not in events.subscribers()
        assert "[1/1] units" in stream.getvalue()

    def test_non_tty_appends_lines(self):
        reporter, stream = self._reporter(tty=False)
        reporter.handle({"event": "campaign_started", "units": 1})
        reporter.handle({"event": "campaign_finished"})
        output = stream.getvalue()
        assert "\r" not in output
        assert output.count("\n") >= 1

    def test_tty_rewrites_in_place_and_terminates(self):
        reporter, stream = self._reporter(tty=True)
        reporter.handle({"event": "campaign_started", "units": 1})
        reporter.handle({"event": "unit_finished"})
        reporter.detach()
        output = stream.getvalue()
        assert output.count("\r") >= 2
        assert output.endswith("\n")

    def test_format_eta(self):
        assert _format_eta(59) == "0:59"
        assert _format_eta(61) == "1:01"
        assert _format_eta(3_725) == "1:02:05"


class TestProgressExceptionPath:
    """detach() must clean up even when the stream died mid-campaign."""

    def _reporter(self, tty=False):
        stream = _Stream(tty=tty)
        return ProgressReporter(stream=stream, min_interval=0.0), stream

    def test_detach_on_closed_stream_does_not_raise(self):
        reporter, stream = self._reporter(tty=True)
        reporter.attach()
        reporter.handle({"event": "campaign_started", "units": 2})
        stream.close()
        reporter.handle({"event": "unit_finished"})  # paint swallowed
        reporter.detach()
        assert reporter.handle not in events.subscribers()

    def test_detach_unsubscribes_before_any_terminal_io(self):
        class _Exploding(_Stream):
            def write(self, text):
                raise OSError("broken pipe")

        stream = _Exploding(tty=True)
        reporter = ProgressReporter(stream=stream, min_interval=0.0)
        reporter.attach()
        reporter.handle({"event": "campaign_started", "units": 1})
        reporter.detach()  # must not raise, must unsubscribe
        assert reporter.handle not in events.subscribers()

    def test_non_tty_skips_live_repaints(self):
        reporter, stream = self._reporter(tty=False)
        reporter.handle({"event": "campaign_started", "units": 3})
        for _ in range(3):
            reporter.handle({"event": "unit_finished"})
        # No campaign_finished yet: nothing has been painted.
        assert stream.getvalue() == ""

    def test_non_tty_detach_flushes_one_final_state_line(self):
        reporter, stream = self._reporter(tty=False)
        reporter.attach()
        reporter.handle({"event": "campaign_started", "units": 2})
        reporter.handle({"event": "unit_finished"})
        reporter.detach()  # exception path: no campaign_finished seen
        output = stream.getvalue()
        assert output.count("\n") == 1
        assert "[1/2] units" in output

    def test_non_tty_detach_after_finish_adds_nothing(self):
        reporter, stream = self._reporter(tty=False)
        reporter.attach()
        reporter.handle({"event": "campaign_started", "units": 1})
        reporter.handle({"event": "unit_finished"})
        reporter.handle({"event": "campaign_finished"})
        painted = stream.getvalue()
        reporter.detach()
        assert stream.getvalue() == painted

    def test_isatty_raising_counts_as_not_a_tty(self):
        class _Hostile(_Stream):
            def isatty(self):
                raise ValueError("operation on closed file")

        reporter = ProgressReporter(stream=_Hostile(), min_interval=0.0)
        assert reporter._tty is False
