"""The paper-expectations registry (repro.paper).

Two invariants keep the registry honest: every registered expectation
is actually consumed by the experiment it belongs to, and every cell an
experiment prints in a "paper" column resolves back to a registry
entry -- no stray inline literals.
"""

import importlib
import inspect

import pytest

from repro import paper
from repro.errors import ConfigurationError
from repro.harness.registry import run_experiment

MODULES = ("A4", "B3", "C5")


def test_every_expectation_is_referenced_by_its_experiment():
    for key, expectation in paper.EXPECTATIONS.items():
        module = importlib.import_module(
            f"repro.harness.experiments.{expectation.experiment}"
        )
        source = inspect.getsource(module)
        assert f'"{key}"' in source or f"'{key}'" in source, (
            f"{key} is registered but never referenced by "
            f"{expectation.experiment}"
        )


def test_expectation_keys_name_their_experiment():
    for key, expectation in paper.EXPECTATIONS.items():
        assert key == expectation.key
        assert key.startswith(expectation.experiment + ".")


def test_unknown_key_rejected_with_catalog():
    with pytest.raises(ConfigurationError, match="fig3.fraction_decreasing"):
        paper.expectation("fig3.no_such_quantity")


def test_cell_prefers_display_over_value():
    assert paper.cell("fig5.mean_change") == "+0.074"
    assert paper.value("fig5.mean_change") == 0.074
    # No display registered: the raw value is the cell.
    assert paper.cell("fig7.mean_guardband_reduction") == 0.219


def _registry_atoms():
    """Every scalar a "paper" column could legitimately print."""
    atoms = []
    for expectation in paper.EXPECTATIONS.values():
        if expectation.display is not None:
            atoms.append(expectation.display)
        values = expectation.value
        if not isinstance(values, dict):
            values = {None: values}
        for leaf in values.values():
            if isinstance(leaf, tuple):
                atoms.extend(leaf)
            else:
                atoms.append(leaf)
    return atoms


def test_paper_columns_resolve_to_registry_entries(tiny_scale):
    """Every non-empty cell under a "paper" header comes from the
    registry (table3's per-module paper values come from the module
    profiles and print under non-"paper" headers)."""
    runs = {
        "fig3": {"modules": MODULES},
        "fig4": {"modules": MODULES},
        "fig5": {"modules": MODULES},
        "fig6": {"modules": MODULES},
        "fig8": {"samples": 8},
        "fig9": {"samples": 8},
        "fig10": {"modules": MODULES},
        "significance": {"modules": MODULES},
    }
    atoms = _registry_atoms()
    for experiment_id, kwargs in runs.items():
        if "modules" in kwargs:
            kwargs = dict(kwargs, scale=tiny_scale)
        output = run_experiment(experiment_id, **kwargs)
        checked = 0
        for table in output.tables:
            for column, header in enumerate(table.headers):
                if "paper" not in header.lower():
                    continue
                for row in table.rows:
                    value = row[column]
                    if value is None:
                        continue
                    assert value in atoms, (
                        f"{experiment_id}: cell {value!r} under "
                        f"{header!r} is not a registered expectation"
                    )
                    checked += 1
        assert checked > 0, f"{experiment_id} printed no paper cells"
