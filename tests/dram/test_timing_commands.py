"""Timing parameter sets and the DDR4 command vocabulary."""

import numpy as np
import pytest

from repro.dram import constants
from repro.dram.commands import Command, CommandKind
from repro.dram.timing import TimingParameters, quantize_to_command_clock
from repro.errors import ConfigurationError
from repro.units import ns


class TestTimingParameters:
    def test_nominal_values(self):
        timings = TimingParameters.nominal()
        assert timings.trcd == pytest.approx(ns(13.5))
        assert timings.tras == pytest.approx(ns(32.0))
        assert timings.trefw == pytest.approx(0.064)
        assert timings.trc == pytest.approx(timings.tras + timings.trp)

    def test_with_trcd_stretches_tras(self):
        timings = TimingParameters.nominal().with_trcd(ns(36.0))
        assert timings.trcd == pytest.approx(ns(36.0))
        assert timings.tras >= timings.trcd

    def test_with_trefw(self):
        timings = TimingParameters.nominal().with_trefw(0.128)
        assert timings.trefw == 0.128

    def test_positive_values_enforced(self):
        with pytest.raises(ConfigurationError):
            TimingParameters(trcd=0.0)

    def test_tras_must_cover_trcd(self):
        with pytest.raises(ConfigurationError):
            TimingParameters(trcd=ns(40.0), tras=ns(32.0))

    def test_quantization_rounds_up(self):
        assert quantize_to_command_clock(ns(13.5)) == pytest.approx(ns(13.5))
        assert quantize_to_command_clock(ns(13.6)) == pytest.approx(ns(15.0))
        assert quantize_to_command_clock(ns(0.1)) == pytest.approx(ns(1.5))

    def test_quantization_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            quantize_to_command_clock(0.0)


class TestCommands:
    def test_constructors(self):
        assert Command.act(1, 5).kind is CommandKind.ACT
        assert Command.pre(0).bank == 0
        assert Command.rd(0, 3).column == 3
        assert Command.ref().kind is CommandKind.REF
        assert Command.nop().kind is CommandKind.NOP
        wr = Command.wr(0, 1, np.zeros(64, dtype=np.uint8))
        assert wr.data is not None

    def test_operand_validation(self):
        with pytest.raises(ConfigurationError):
            Command(CommandKind.ACT, bank=0)  # missing row
        with pytest.raises(ConfigurationError):
            Command(CommandKind.RD, bank=0)  # missing column
        with pytest.raises(ConfigurationError):
            Command(CommandKind.WR, bank=0, column=0)  # missing data
        with pytest.raises(ConfigurationError):
            Command(CommandKind.PRE)  # missing bank


def test_paper_constants():
    """Key methodology constants straight from the paper."""
    assert constants.NOMINAL_VPP == 2.5
    assert constants.VPP_STEP == 0.1
    assert constants.NOMINAL_TRCD == pytest.approx(ns(13.5))
    assert constants.SOFTMC_COMMAND_CLOCK == pytest.approx(ns(1.5))
    assert constants.BER_HAMMER_COUNT == 300_000
    assert constants.HCFIRST_INITIAL_STEP == 150_000
    assert constants.PAPER_NUM_ITERATIONS == 10
    assert constants.PAPER_ROWS_PER_MODULE == 4096
    assert constants.ROWHAMMER_TEST_TEMPERATURE == 50.0
    assert constants.RETENTION_TEST_TEMPERATURE == 80.0
    assert constants.RETENTION_TREFW_MIN == pytest.approx(0.016)
    assert constants.RETENTION_TREFW_MAX == pytest.approx(16.384)
