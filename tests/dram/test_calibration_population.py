"""Population-wide calibration invariants: every one of the thirty
module profiles must produce a physically coherent device."""

import math

import pytest

from repro.dram.calibration import calibrate
from repro.dram.profiles import MODULE_PROFILES, module_profile
from repro.units import ns

ALL_MODULES = sorted(MODULE_PROFILES)


@pytest.fixture(scope="module")
def calibrations():
    return {name: calibrate(module_profile(name)) for name in ALL_MODULES}


def test_activation_monotone_for_every_module(calibrations):
    for name, calibration in calibrations.items():
        values = [
            calibration.activation.trcd_min(vpp)
            for vpp in (2.5, 2.2, 1.9, 1.6)
        ]
        finite = [v for v in values if math.isfinite(v)]
        assert finite == sorted(finite), name


def test_retention_margin_monotone_for_every_module(calibrations):
    for name, calibration in calibrations.items():
        factors = [
            calibration.retention.margin_factor(vpp)
            for vpp in (2.5, 2.2, 1.9, 1.6)
        ]
        assert all(a >= b - 1e-12 for a, b in zip(factors, factors[1:])), name
        assert factors[0] == pytest.approx(1.0)


def test_outlier_gamma_reproduces_every_hc_anchor(calibrations):
    for name, calibration in calibrations.items():
        profile = calibration.profile
        scale = float(
            calibration.disturbance.tolerance_scale(
                profile.vppmin, calibration.gamma_outlier_mean
            )
        )
        assert scale == pytest.approx(
            profile.hcfirst_at_vppmin / profile.hcfirst_nominal, rel=1e-6
        ), name


def test_trcd_anchor_recovered_for_every_module(calibrations):
    from repro.stats import normal_ppf

    for name, calibration in calibrations.items():
        profile = calibration.profile
        worst = math.exp(
            calibration.trcd_row_sigma * normal_ppf(4096 / 4097)
        )
        measured = calibration.activation.trcd_min(profile.vppmin) * worst
        assert measured == pytest.approx(
            ns(profile.trcd_at_vppmin_ns), rel=0.10
        ), name


def test_operating_floor_below_vppmin_for_every_module(calibrations):
    """The behavioral transistor must still conduct at the module's
    V_PPmin (the communication limit, not a physics cliff)."""
    for name, calibration in calibrations.items():
        profile = calibration.profile
        assert math.isfinite(
            calibration.activation.trcd_min(profile.vppmin)
        ), name
        assert calibration.restoration.saturation_voltage(
            profile.vppmin
        ) > 0.6, name


def test_bulk_population_below_300k_matches_ber_order(calibrations):
    """Modules with larger BER anchors must have weaker bulk populations
    (lower log-weakness), vendor by vendor."""
    from collections import defaultdict

    by_vendor = defaultdict(list)
    for name, calibration in calibrations.items():
        by_vendor[calibration.profile.vendor].append(
            (calibration.profile.ber_nominal, calibration.bulk_log_weakness)
        )
    for vendor, pairs in by_vendor.items():
        pairs.sort()
        weaknesses = [w for _, w in pairs]
        assert weaknesses == sorted(weaknesses, reverse=True), vendor.value
