"""Bank command state machine and fault physics."""

import numpy as np
import pytest

from repro.dram.patterns import STANDARD_PATTERNS
from repro.errors import DramAddressError, DramCommandError
from repro.units import ns

PATTERN = STANDARD_PATTERNS[0]  # 0xFF: charges true (even-physical) rows


@pytest.fixture
def bank(b3_module):
    return b3_module.bank(0)


def _fill(bank, row, bits):
    bank.activate(row)
    bank.write_row(bits)
    bank.precharge()


def _read(bank, row, trcd=None):
    bank.activate(row, trcd=trcd)
    bits = bank.read_row()
    bank.precharge()
    return bits


class TestStateMachine:
    def test_act_while_open_rejected(self, bank):
        bank.activate(5)
        with pytest.raises(DramCommandError):
            bank.activate(6)

    def test_read_requires_open_row(self, bank):
        with pytest.raises(DramCommandError):
            bank.read_column(0)

    def test_write_requires_open_row(self, bank):
        with pytest.raises(DramCommandError):
            bank.write_column(0, np.zeros(64, dtype=np.uint8))

    def test_precharge_is_idempotent(self, bank):
        bank.precharge()
        bank.activate(5)
        bank.precharge()
        bank.precharge()
        assert bank.open_row is None

    def test_hammer_requires_closed_bank(self, bank):
        bank.activate(5)
        with pytest.raises(DramCommandError):
            bank.hammer([6], 100)

    def test_address_bounds(self, bank):
        with pytest.raises(DramAddressError):
            bank.activate(10**6)
        bank.activate(5)
        with pytest.raises(DramAddressError):
            bank.read_column(10**6)

    def test_write_payload_validated(self, bank):
        bank.activate(5)
        with pytest.raises(DramCommandError):
            bank.write_column(0, np.zeros(63, dtype=np.uint8))
        with pytest.raises(DramCommandError):
            bank.write_row(np.zeros(17, dtype=np.uint8))


class TestDataPath:
    def test_write_read_roundtrip(self, bank, small_geometry):
        bits = PATTERN.row_bits(small_geometry.row_bits)
        _fill(bank, 8, bits)
        assert np.array_equal(_read(bank, 8), bits)

    def test_column_write_read(self, bank):
        payload = np.ones(64, dtype=np.uint8)
        bank.activate(9)
        bank.write_column(3, payload)
        assert np.array_equal(bank.read_column(3), payload)
        bank.precharge()

    def test_unwritten_row_reads_powerup_noise(self, bank):
        bits = _read(bank, 100)
        assert 0 < bits.mean() < 1  # pseudo-random mix of 0s and 1s


class TestHammering:
    def test_damage_accumulates_and_clears_on_rewrite(
        self, bank, small_geometry
    ):
        row_bits = small_geometry.row_bits
        victim = 50
        aggressors = bank.mapping.physical_neighbors(victim)
        _fill(bank, victim, PATTERN.row_bits(row_bits))
        bank.hammer(aggressors, 10_000)
        assert bank.row_hammer_damage(victim) > 0
        _fill(bank, victim, PATTERN.row_bits(row_bits))
        assert bank.row_hammer_damage(victim) == 0.0

    @staticmethod
    def _charged_pattern(bank, victim):
        """The stripe polarity that charges the victim's cells."""
        physical = bank.mapping.to_physical(victim)
        return STANDARD_PATTERNS[1 if physical % 2 else 0]

    def test_enough_hammers_flip_bits(self, bank, small_geometry):
        row_bits = small_geometry.row_bits
        victim = 50
        pattern = self._charged_pattern(bank, victim)
        aggressors = bank.mapping.physical_neighbors(victim)
        for aggressor in aggressors:
            _fill(bank, aggressor, pattern.inverse_bits(row_bits))
        _fill(bank, victim, pattern.row_bits(row_bits))
        bank.hammer(aggressors, 2_000_000)
        flips = np.sum(_read(bank, victim) != pattern.row_bits(row_bits))
        assert flips > 0

    def test_flips_are_repeatable_locations(self, bank, small_geometry):
        """RowHammer flips land at consistently predictable locations
        (Section 1)."""
        row_bits = small_geometry.row_bits
        victim = 50
        pattern = self._charged_pattern(bank, victim)
        aggressors = bank.mapping.physical_neighbors(victim)

        def attack():
            _fill(bank, victim, pattern.row_bits(row_bits))
            bank.hammer(aggressors, 1_000_000)
            return frozenset(
                np.flatnonzero(
                    _read(bank, victim) != pattern.row_bits(row_bits)
                ).tolist()
            )

        first, second = attack(), attack()
        # Identical up to measurement jitter on marginal cells.
        assert len(first & second) >= 0.7 * max(len(first), len(second), 1)

    def test_double_sided_beats_single_sided(self, bank, small_geometry):
        """Section 4.2: double-sided attacks are the most effective."""
        row_bits = small_geometry.row_bits
        victim = 60
        aggressors = bank.mapping.physical_neighbors(victim)

        pattern = self._charged_pattern(bank, victim)

        def flips(rows, count):
            for aggressor in rows:
                _fill(bank, aggressor, pattern.inverse_bits(row_bits))
            _fill(bank, victim, pattern.row_bits(row_bits))
            bank.hammer(rows, count)
            return int(
                np.sum(_read(bank, victim) != pattern.row_bits(row_bits))
            )

        count = 1_500_000
        assert flips(aggressors, count) >= flips(aggressors[:1], count)

    def test_uncharged_cells_never_flip(self, bank, small_geometry):
        """The 0x00 stripe leaves a true-cell row uncharged: no flips."""
        row_bits = small_geometry.row_bits
        victim = 50  # physical 50 (direct parity via mirrored %4 -> 50)
        physical = bank.mapping.to_physical(victim)
        pattern = STANDARD_PATTERNS[1]  # 0x00
        if physical % 2 == 1:
            pattern = STANDARD_PATTERNS[0]  # discharged for anti rows
        aggressors = bank.mapping.physical_neighbors(victim)
        _fill(bank, victim, pattern.row_bits(row_bits))
        bank.hammer(aggressors, 3_000_000)
        assert np.array_equal(
            _read(bank, victim), pattern.row_bits(row_bits)
        )


class TestRetention:
    def test_decay_after_long_wait(self, b3_module, small_geometry):
        bank = b3_module.bank(0)
        b3_module.env.set_temperature(80.0)
        row_bits = small_geometry.row_bits
        row = 30
        physical = bank.mapping.to_physical(row)
        pattern = STANDARD_PATTERNS[1 if physical % 2 else 0]
        _fill(bank, row, pattern.row_bits(row_bits))
        b3_module.env.advance(16.0)  # 16 s ≫ many cells' retention
        flips = np.sum(_read(bank, row) != pattern.row_bits(row_bits))
        assert flips > 0

    def test_no_decay_within_nominal_window(self, b3_module, small_geometry):
        bank = b3_module.bank(0)
        b3_module.env.set_temperature(80.0)
        row_bits = small_geometry.row_bits
        row = 30
        physical = bank.mapping.to_physical(row)
        pattern = STANDARD_PATTERNS[1 if physical % 2 else 0]
        _fill(bank, row, pattern.row_bits(row_bits))
        b3_module.env.advance(0.064)
        assert np.array_equal(
            _read(bank, row), pattern.row_bits(row_bits)
        )


class TestActivationLatency:
    def test_short_trcd_corrupts_reads(self, bank, small_geometry):
        row_bits = small_geometry.row_bits
        row = 40
        physical = bank.mapping.to_physical(row)
        pattern = STANDARD_PATTERNS[1 if physical % 2 else 0]
        _fill(bank, row, pattern.row_bits(row_bits))
        corrupted = _read(bank, row, trcd=ns(3.0))
        assert np.any(corrupted != pattern.row_bits(row_bits))

    def test_corruption_not_persistent(self, bank, small_geometry):
        row_bits = small_geometry.row_bits
        row = 40
        physical = bank.mapping.to_physical(row)
        pattern = STANDARD_PATTERNS[1 if physical % 2 else 0]
        _fill(bank, row, pattern.row_bits(row_bits))
        _read(bank, row, trcd=ns(3.0))  # corrupted sensing pass
        clean = _read(bank, row, trcd=ns(36.0))
        assert np.array_equal(clean, pattern.row_bits(row_bits))

    def test_nominal_trcd_clean_at_nominal_vpp(self, bank, small_geometry):
        row_bits = small_geometry.row_bits
        row = 40
        physical = bank.mapping.to_physical(row)
        pattern = STANDARD_PATTERNS[1 if physical % 2 else 0]
        _fill(bank, row, pattern.row_bits(row_bits))
        assert np.array_equal(
            _read(bank, row, trcd=ns(13.5)), pattern.row_bits(row_bits)
        )


class TestRefresh:
    def test_refresh_restores_hammer_damage(self, bank, small_geometry):
        victim = 70
        aggressors = bank.mapping.physical_neighbors(victim)
        _fill(bank, victim, PATTERN.row_bits(small_geometry.row_bits))
        bank.hammer(aggressors, 10_000)
        assert bank.row_hammer_damage(victim) > 0
        # March REF through the whole bank.
        for _ in range(8192):
            bank.refresh()
        assert bank.row_hammer_damage(victim) == 0.0

    def test_refresh_rejected_while_row_open(self, bank):
        bank.activate(5)
        with pytest.raises(DramCommandError):
            bank.refresh()
