"""Analytic device-physics models (transistor, restoration, activation,
disturbance, retention)."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dram.physics.activation import ActivationModel
from repro.dram.physics.disturbance import DisturbanceModel
from repro.dram.physics.restoration import RestorationModel
from repro.dram.physics.retention_model import RetentionModel
from repro.dram.physics.transistor import AccessTransistorModel
from repro.errors import ConfigurationError
from repro.units import ns

SPICE_RESTORATION = RestorationModel(transistor=AccessTransistorModel.spice())


class TestTransistor:
    def test_overdrive_positive_above_threshold(self):
        model = AccessTransistorModel(vth=0.72, smoothing=0.0)
        assert model.overdrive(2.5, 0.6) == pytest.approx(1.18)

    def test_overdrive_clamps_below_threshold(self):
        model = AccessTransistorModel(vth=0.72, smoothing=0.0)
        assert model.overdrive(1.0, 0.6) == 0.0

    def test_smoothing_approximates_hard_max(self):
        soft = AccessTransistorModel(vth=0.72, smoothing=0.02)
        assert soft.overdrive(2.5, 0.6) == pytest.approx(1.18, abs=1e-3)

    def test_conducts(self):
        model = AccessTransistorModel(vth=0.72)
        assert model.conducts(2.5, 0.6)
        assert not model.conducts(1.3, 0.6)

    def test_saturation_is_min_of_vdd_and_overdrive(self):
        model = AccessTransistorModel.spice()
        assert model.max_restorable_voltage(2.5, 1.2) == pytest.approx(1.2)
        # Observation 10: V_sat = V_PP - V_TH below the knee.
        assert model.max_restorable_voltage(1.7, 1.2) == pytest.approx(0.98)

    def test_vth_range_validated(self):
        with pytest.raises(ConfigurationError):
            AccessTransistorModel(vth=3.0)


class TestRestoration:
    def test_observation_10_deficits(self):
        # 4.1% / 11.0% / 18.1% below V_DD at 1.9 / 1.8 / 1.7 V: our hard
        # min() model gives 1.7% / 10% / 18.3% -- same knee, same scale.
        assert SPICE_RESTORATION.saturation_deficit(2.5) == 0.0
        assert SPICE_RESTORATION.saturation_deficit(1.8) == pytest.approx(
            0.10, abs=0.02
        )
        assert SPICE_RESTORATION.saturation_deficit(1.7) == pytest.approx(
            0.181, abs=0.02
        )

    def test_margin_ratio_monotone_in_vpp(self):
        ratios = [SPICE_RESTORATION.margin_ratio(v) for v in (2.5, 2.0, 1.8, 1.6)]
        assert all(a >= b for a, b in zip(ratios, ratios[1:]))
        assert ratios[0] == pytest.approx(1.0)

    def test_restored_voltage_approaches_saturation(self):
        v = SPICE_RESTORATION.restored_voltage(2.5, duration=ns(200))
        assert v == pytest.approx(SPICE_RESTORATION.saturation_voltage(2.5), abs=1e-3)

    def test_restoration_latency_grows_at_reduced_vpp(self):
        fast = SPICE_RESTORATION.restoration_latency(2.5)
        slow = SPICE_RESTORATION.restoration_latency(1.9)
        assert slow > fast

    def test_below_conduction_saturation_collapses(self):
        # Below V_TH + V_start the cell cannot even hold the charge-shared
        # level: the saturation voltage sits at/below the start point and
        # the "restoration" degenerates (latency 0, nothing to restore).
        assert SPICE_RESTORATION.saturation_voltage(0.8) <= 0.6
        assert SPICE_RESTORATION.restoration_latency(0.8) == 0.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            SPICE_RESTORATION.restored_voltage(2.5, duration=-1.0)


class TestActivation:
    model = ActivationModel(restoration=SPICE_RESTORATION)

    def test_observation_8_calibration(self):
        # Paper: mean tRCD_min 11.6 ns at 2.5 V, ~13.6 ns at 1.7 V.
        assert self.model.trcd_min(2.5) == pytest.approx(ns(11.6), rel=0.02)
        assert self.model.trcd_min(1.7) == pytest.approx(ns(13.6), rel=0.02)

    def test_trcd_monotone_decreasing_in_vpp(self):
        values = [self.model.trcd_min(v) for v in (2.5, 2.2, 1.9, 1.7, 1.5)]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_footnote_13_unreliable_below_1_6(self):
        # SPICE-level model crosses the 13.5 ns nominal just below 1.7 V.
        assert self.model.trcd_min(1.6) > ns(13.5)

    def test_infinite_below_conduction(self):
        assert math.isinf(self.model.trcd_min(0.5))

    def test_ratio_is_one_at_nominal(self):
        assert self.model.trcd_ratio(2.5) == pytest.approx(1.0)


class TestDisturbance:
    model = DisturbanceModel(restoration=SPICE_RESTORATION)

    def test_coupling_decreases_with_vpp_for_positive_gamma(self):
        assert self.model.coupling_ratio(1.6, 1.0) < 1.0
        assert self.model.coupling_ratio(2.5, 1.0) == pytest.approx(1.0)

    def test_zero_gamma_is_vpp_insensitive(self):
        assert self.model.coupling_ratio(1.5, 0.0) == pytest.approx(1.0)

    def test_tolerance_scale_above_one_for_strong_coupling(self):
        assert float(self.model.tolerance_scale(1.6, 1.5)) > 1.0

    def test_negative_gamma_produces_reversal(self):
        # Observation 5: some rows' HC_first *drops* at reduced V_PP.
        assert float(self.model.tolerance_scale(1.6, -0.5)) < 1.0

    def test_solve_gamma_roundtrip(self):
        for target in (0.9, 1.0, 1.27, 1.86):
            gamma = self.model.solve_gamma(1.6, target)
            assert float(
                self.model.tolerance_scale(1.6, gamma)
            ) == pytest.approx(target, rel=1e-9)

    def test_solve_gamma_validates_inputs(self):
        with pytest.raises(ConfigurationError):
            self.model.solve_gamma(2.5, 1.1)
        with pytest.raises(ConfigurationError):
            self.model.solve_gamma(1.6, -1.0)

    def test_vectorized_gamma(self):
        gammas = np.array([0.0, 0.5, 1.0])
        scales = np.asarray(self.model.tolerance_scale(1.6, gammas))
        assert scales.shape == (3,)
        assert scales[2] > scales[1] > scales[0] * 0.999

    @given(st.floats(min_value=1.0, max_value=2.4),
           st.floats(min_value=0.5, max_value=2.0))
    def test_solve_gamma_roundtrip_property(self, vpp, target):
        gamma = self.model.solve_gamma(vpp, target)
        assert float(self.model.tolerance_scale(vpp, gamma)) == pytest.approx(
            target, rel=1e-6
        )


class TestRetentionModel:
    model = RetentionModel(restoration=SPICE_RESTORATION)

    def test_margin_factor_one_at_nominal(self):
        assert self.model.margin_factor(2.5) == pytest.approx(1.0)

    def test_margin_factor_decreases_gradually(self):
        factors = [self.model.margin_factor(v) for v in (2.5, 2.2, 2.0, 1.8)]
        assert all(a > b for a, b in zip(factors, factors[1:]))

    def test_temperature_halves_per_10c(self):
        assert self.model.temperature_factor(90.0) == pytest.approx(0.5)
        assert self.model.temperature_factor(70.0) == pytest.approx(2.0)
        assert self.model.temperature_factor(80.0) == pytest.approx(1.0)

    def test_retention_time_combines_factors(self):
        nominal = np.array([1.0, 2.0])
        scaled = self.model.retention_time(nominal, vpp=2.5, temperature=70.0)
        assert np.allclose(scaled, nominal * 2.0)

    def test_partial_restoration_shortens_retention(self):
        full = self.model.retention_time(1.0, vpp=2.5, restored_fraction=1.0)
        partial = self.model.retention_time(1.0, vpp=2.5, restored_fraction=0.5)
        assert partial < full

    def test_restored_fraction_validated(self):
        with pytest.raises(ConfigurationError):
            self.model.retention_time(1.0, vpp=2.5, restored_fraction=0.0)
