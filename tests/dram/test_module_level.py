"""Module, chip view, SPD, environment, and TRR substrates."""

import numpy as np
import pytest

from repro.dram.chip import Chip
from repro.dram.commands import Command
from repro.dram.environment import ModuleEnvironment
from repro.dram.mapping import DirectMapping
from repro.dram.module import DramModule
from repro.dram.profiles import module_profile
from repro.dram.spd import SpdRecord
from repro.dram.trr import TargetRowRefresh, TrrConfig
from repro.errors import (
    CommunicationError,
    ConfigurationError,
    DramAddressError,
)


class TestChip:
    def test_x8_rank_has_8_chips(self):
        chip = Chip(0, 8)
        assert chip.rank_width // chip.width == 8

    def test_bit_positions_partition_the_row(self):
        chips = [Chip(i, 8) for i in range(8)]
        covered = np.concatenate([c.bit_positions(512) for c in chips])
        assert sorted(covered.tolist()) == list(range(512))

    def test_slice_row(self):
        chip = Chip(1, 8)
        row = np.arange(128)
        sliced = chip.slice_row(row)
        assert sliced.size == 16
        assert sliced[0] == 8  # beat 0, chip 1 owns bits 8..15

    def test_invalid_width_rejected(self):
        with pytest.raises(ConfigurationError):
            Chip(0, 5)

    def test_index_range_checked(self):
        with pytest.raises(ConfigurationError):
            Chip(8, 8)


class TestEnvironment:
    def test_advance_monotone(self):
        env = ModuleEnvironment()
        env.advance(1.5)
        assert env.now == 1.5
        with pytest.raises(ConfigurationError):
            env.advance(-1.0)

    def test_setters_validate(self):
        env = ModuleEnvironment()
        with pytest.raises(ConfigurationError):
            env.set_vpp(0.0)
        with pytest.raises(ConfigurationError):
            env.set_temperature(400.0)


class TestModule:
    def test_identity(self, b3_module):
        assert b3_module.name == "B3"
        assert b3_module.vppmin == 1.6
        assert len(b3_module.chips) == 8  # x8 part

    def test_communication_gate(self, b3_module):
        b3_module.env.set_vpp(1.6)
        assert b3_module.responsive
        b3_module.check_communication()
        b3_module.env.set_vpp(1.5)
        assert not b3_module.responsive
        with pytest.raises(CommunicationError):
            b3_module.check_communication()

    def test_execute_command_api(self, b3_module):
        b3_module.execute(Command.act(0, 5))
        payload = np.ones(64, dtype=np.uint8)
        b3_module.execute(Command.wr(0, 2, payload))
        read = b3_module.execute(Command.rd(0, 2))
        assert np.array_equal(read, payload)
        b3_module.execute(Command.pre(0))
        b3_module.execute(Command.ref())
        b3_module.execute(Command.nop())

    def test_execute_refuses_when_mute(self, b3_module):
        b3_module.env.set_vpp(1.0)
        with pytest.raises(CommunicationError):
            b3_module.execute(Command.act(0, 5))

    def test_bank_index_checked(self, b3_module):
        with pytest.raises(DramAddressError):
            b3_module.bank(99)

    def test_seed_determinism(self, small_geometry):
        profile = module_profile("C5")
        a = DramModule(profile, geometry=small_geometry, seed=5)
        b = DramModule(profile, geometry=small_geometry, seed=5)
        bits_a = a.bank(0)._cells.cell_tolerances(10)
        bits_b = b.bank(0)._cells.cell_tolerances(10)
        assert np.array_equal(bits_a, bits_b)

    def test_spd_reflects_profile(self, b3_module):
        spd = b3_module.spd
        assert isinstance(spd, SpdRecord)
        assert spd.dimm_model == "M393A1K43BB1-CTD6Y"
        assert spd.die_revision == "B"
        assert "Samsung" in spd.manufacturer

    def test_spd_blank_fields_become_none(self):
        spd = SpdRecord.from_profile(module_profile("A7"))
        assert spd.die_revision is None
        assert spd.manufacturing_date is None

    def test_activation_count_tracks_hammers(self, b3_module):
        before = b3_module.activation_count()
        b3_module.bank(0).hammer([10], 1000)
        assert b3_module.activation_count() == before + 1000


class TestTrr:
    def test_tracker_counts_heavy_hitters(self):
        trr = TargetRowRefresh(DirectMapping(128), TrrConfig(table_size=2))
        trr.observe_activation(10, count=100)
        trr.observe_activation(20, count=50)
        trr.observe_activation(30, count=10)  # evicts via decrement
        tracked = trr.tracked_rows()
        assert tracked.get(10, 0) > tracked.get(30, 0)

    def test_victims_released_above_threshold(self):
        trr = TargetRowRefresh(
            DirectMapping(128), TrrConfig(action_threshold=50)
        )
        trr.observe_activation(10, count=49)
        assert trr.victims_to_refresh() == []
        trr.observe_activation(10, count=1)
        assert sorted(trr.victims_to_refresh()) == [9, 11]
        # Counter reset after acting.
        assert trr.victims_to_refresh() == []

    def test_no_observations_no_victims(self):
        trr = TargetRowRefresh(DirectMapping(128))
        assert trr.victims_to_refresh() == []

    def test_config_validated(self):
        with pytest.raises(ConfigurationError):
            TrrConfig(table_size=0)
        with pytest.raises(ConfigurationError):
            TrrConfig(action_threshold=0)

    def test_trr_defeated_by_withholding_ref(self, small_geometry):
        """Section 4.1: all TRR defenses require REF commands to act."""
        module = DramModule(
            module_profile("B3"), geometry=small_geometry, seed=1,
            trr_enabled=True, trr_config=TrrConfig(action_threshold=1000),
        )
        bank = module.bank(0)
        victim = 40
        aggressors = bank.mapping.physical_neighbors(victim)
        bank.hammer(aggressors, 50_000)
        # Without REF the tracker never fires: damage stays.
        assert bank.row_hammer_damage(victim) > 0
        bank.refresh()  # first REF lets TRR refresh the victims
        assert bank.row_hammer_damage(victim) == 0.0
