"""Hamming SECDED (72, 64) codec."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dram.ecc import (
    CODE_BITS,
    DATA_BITS,
    DecodeStatus,
    SecdedCodec,
    count_correctable_words,
)
from repro.errors import ConfigurationError, UncorrectableError

codec = SecdedCodec()


def _random_word(seed):
    return np.random.default_rng(seed).integers(0, 2, DATA_BITS).astype(np.uint8)


def test_codeword_length():
    assert codec.encode(_random_word(0)).shape == (CODE_BITS,)


def test_clean_roundtrip():
    data = _random_word(1)
    result = codec.decode(codec.encode(data))
    assert result.status is DecodeStatus.CLEAN
    assert np.array_equal(result.data, data)


@pytest.mark.parametrize("position", [0, 1, 2, 3, 17, 36, 64, 71])
def test_single_error_corrected_at_any_position(position):
    data = _random_word(2)
    codeword = codec.encode(data)
    codeword[position] ^= 1
    result = codec.decode(codeword)
    assert result.status is DecodeStatus.CORRECTED
    assert result.corrected_position == position
    assert np.array_equal(result.data, data)


def test_double_error_detected_not_corrected():
    data = _random_word(3)
    codeword = codec.encode(data)
    codeword[5] ^= 1
    codeword[40] ^= 1
    with pytest.raises(UncorrectableError):
        codec.decode(codeword)


def test_int_conversion_roundtrip():
    value = 0xDEAD_BEEF_CAFE_F00D
    assert codec.int_from_bits(codec.bits_from_int(value)) == value


def test_int_conversion_range_checked():
    with pytest.raises(ConfigurationError):
        codec.bits_from_int(1 << 64)
    with pytest.raises(ConfigurationError):
        codec.bits_from_int(-1)


def test_bit_vector_validation():
    with pytest.raises(ConfigurationError):
        codec.encode(np.zeros(63, dtype=np.uint8))
    with pytest.raises(ConfigurationError):
        codec.decode(np.full(CODE_BITS, 2, dtype=np.uint8))


def test_count_correctable_words():
    verdict = count_correctable_words(np.array([0, 1, 1, 2, 0, 3]))
    assert verdict == {"clean": 2, "correctable": 2, "uncorrectable": 2}


def test_count_correctable_words_requires_1d():
    with pytest.raises(ConfigurationError):
        count_correctable_words(np.zeros((2, 2)))


@given(st.integers(min_value=0, max_value=(1 << 64) - 1))
def test_roundtrip_property(value):
    data = codec.bits_from_int(value)
    result = codec.decode(codec.encode(data))
    assert result.status is DecodeStatus.CLEAN
    assert codec.int_from_bits(result.data) == value


@given(
    st.integers(min_value=0, max_value=(1 << 64) - 1),
    st.integers(min_value=0, max_value=CODE_BITS - 1),
)
def test_any_single_flip_is_corrected_property(value, position):
    data = codec.bits_from_int(value)
    codeword = codec.encode(data)
    codeword[position] ^= 1
    result = codec.decode(codeword)
    assert result.status is DecodeStatus.CORRECTED
    assert codec.int_from_bits(result.data) == value


@given(
    st.integers(min_value=0, max_value=(1 << 64) - 1),
    st.integers(min_value=0, max_value=CODE_BITS - 1),
    st.integers(min_value=0, max_value=CODE_BITS - 1),
)
def test_any_double_flip_is_detected_property(value, pos_a, pos_b):
    if pos_a == pos_b:
        return
    codeword = codec.encode(codec.bits_from_int(value))
    codeword[pos_a] ^= 1
    codeword[pos_b] ^= 1
    with pytest.raises(UncorrectableError):
        codec.decode(codeword)


class TestBatchCodec:
    from repro.dram.ecc import BatchSecdedCodec

    batch = BatchSecdedCodec()

    def _random_words(self, count, seed=0):
        rng = np.random.default_rng(seed)
        return rng.integers(0, 2, (count, DATA_BITS)).astype(np.uint8)

    def test_matches_scalar_encoder(self):
        data = self._random_words(32)
        codes = self.batch.encode_many(data)
        for i in range(32):
            assert np.array_equal(codes[i], codec.encode(data[i]))

    def test_clean_roundtrip(self):
        data = self._random_words(16, seed=1)
        out, corrected, uncorrectable = self.batch.decode_many(
            self.batch.encode_many(data)
        )
        assert np.array_equal(out, data)
        assert not corrected.any()
        assert not uncorrectable.any()

    def test_single_errors_corrected_per_row(self):
        data = self._random_words(8, seed=2)
        codes = self.batch.encode_many(data)
        positions = [0, 1, 17, 36, 64, 71, 5, 23]
        for row, position in enumerate(positions):
            codes[row, position] ^= 1
        out, corrected, uncorrectable = self.batch.decode_many(codes)
        assert corrected.all()
        assert not uncorrectable.any()
        assert np.array_equal(out, data)

    def test_double_errors_flagged(self):
        data = self._random_words(4, seed=3)
        codes = self.batch.encode_many(data)
        codes[2, 5] ^= 1
        codes[2, 40] ^= 1
        out, corrected, uncorrectable = self.batch.decode_many(codes)
        assert uncorrectable[2]
        assert not corrected[2]
        assert not uncorrectable[[0, 1, 3]].any()

    def test_shape_validation(self):
        with pytest.raises(ConfigurationError):
            self.batch.encode_many(np.zeros((4, 63), dtype=np.uint8))
        with pytest.raises(ConfigurationError):
            self.batch.decode_many(np.zeros((4, 71), dtype=np.uint8))
