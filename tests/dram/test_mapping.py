"""Logical-to-physical row mapping schemes."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dram.mapping import (
    DirectMapping,
    MirroredMapping,
    ScrambledMapping,
    ScrambleSpec,
    make_mapping,
)
from repro.errors import ConfigurationError, DramAddressError

ALL_KINDS = ("direct", "mirrored", "scrambled")


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_mapping_is_a_bijection(kind):
    mapping = make_mapping(kind, 256)
    physical = {mapping.to_physical(r) for r in range(256)}
    assert physical == set(range(256))


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_roundtrip(kind):
    mapping = make_mapping(kind, 128)
    for row in range(128):
        assert mapping.to_logical(mapping.to_physical(row)) == row
        assert mapping.to_physical(mapping.to_logical(row)) == row


def test_direct_is_identity():
    mapping = DirectMapping(64)
    assert all(mapping.to_physical(r) == r for r in range(64))


def test_mirrored_swaps_expected_pairs():
    mapping = MirroredMapping(16)
    assert mapping.to_physical(0) == 0
    assert mapping.to_physical(1) == 1
    assert mapping.to_physical(2) == 3
    assert mapping.to_physical(3) == 2
    assert mapping.to_physical(6) == 7


def test_scrambled_applies_xor_and_swaps():
    mapping = ScrambledMapping(64, ScrambleSpec(xor_mask=0b1, bit_swaps=((0, 2),)))
    # 0b000 -> xor -> 0b001 -> swap bits 0,2 -> 0b100
    assert mapping.to_physical(0) == 4
    assert mapping.to_logical(4) == 0


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_physical_neighbors_are_physically_adjacent(kind):
    mapping = make_mapping(kind, 128)
    for row in range(128):
        neighbors = mapping.physical_neighbors(row)
        physical = mapping.to_physical(row)
        expected = [
            p for p in (physical - 1, physical + 1) if 0 <= p < 128
        ]
        assert sorted(mapping.to_physical(n) for n in neighbors) == expected


def test_edge_rows_have_one_neighbor():
    mapping = DirectMapping(64)
    assert mapping.physical_neighbors(0) == [1]
    assert mapping.physical_neighbors(63) == [62]


def test_distance_two_neighbors():
    mapping = DirectMapping(64)
    assert mapping.physical_neighbors(10, distance=2) == [8, 12]


def test_address_range_checked():
    mapping = DirectMapping(64)
    with pytest.raises(DramAddressError):
        mapping.to_physical(64)
    with pytest.raises(DramAddressError):
        mapping.physical_neighbors(-1)


def test_scrambled_requires_power_of_two():
    with pytest.raises(ConfigurationError):
        ScrambledMapping(100, ScrambleSpec())


def test_scramble_mask_must_fit_width():
    with pytest.raises(ConfigurationError):
        ScrambledMapping(64, ScrambleSpec(xor_mask=64))
    with pytest.raises(ConfigurationError):
        ScrambledMapping(64, ScrambleSpec(bit_swaps=((0, 6),)))


def test_unknown_kind_rejected():
    with pytest.raises(ConfigurationError):
        make_mapping("zigzag", 64)


@given(
    st.integers(min_value=0, max_value=255),
    st.integers(min_value=0, max_value=7),
    st.integers(min_value=0, max_value=7),
)
def test_scramble_roundtrip_property(row, bit_a, bit_b):
    mapping = ScrambledMapping(
        256, ScrambleSpec(xor_mask=0b101, bit_swaps=((bit_a, bit_b),))
    )
    assert mapping.to_logical(mapping.to_physical(row)) == row
