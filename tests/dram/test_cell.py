"""Per-row cell parameter generation."""

import numpy as np
import pytest

from repro.dram.calibration import ModuleGeometry, calibrate
from repro.dram.cell import (
    OTHER_PATTERN_INDEX,
    PATTERN_SLOTS,
    CellParameterGenerator,
)
from repro.dram.profiles import module_profile
from repro.rng import RngHub


@pytest.fixture
def generator():
    calibration = calibrate(
        module_profile("B6"),
        ModuleGeometry(rows_per_bank=512, banks=1, row_bits=2048),
    )
    return CellParameterGenerator(calibration, RngHub(3), bank_index=0)


def test_deterministic_generation(generator):
    a = generator.cell_tolerances(42)
    b = generator.cell_tolerances(42)
    assert np.array_equal(a, b)
    assert not np.array_equal(a, generator.cell_tolerances(43))


def test_outlier_mask_marks_replaced_cells(generator):
    for row in range(40):
        tolerances = generator.cell_tolerances(row)
        mask = generator.cell_outlier_mask(row)
        if not mask.any():
            continue
        # Outlier cells must be far weaker than the bulk median.
        assert tolerances[mask].max() < np.median(tolerances)


def test_outlier_rate_roughly_poisson(generator):
    counts = [int(generator.cell_outlier_mask(r).sum()) for r in range(200)]
    assert 0.4 <= np.mean(counts) <= 2.5  # rate is 1.0 per row


def test_pattern_factors_shape_and_floor(generator):
    factors = generator.pattern_factors(10)
    assert factors.shape == (PATTERN_SLOTS,)
    assert factors.min() == 1.0  # the WCDP slot
    assert np.argmin(factors[:6]) < 6
    assert np.all(factors >= 1.0)


def test_retention_pattern_factors_floor(generator):
    factors = generator.retention_pattern_factors(10)
    assert factors.min() == 1.0
    assert np.all(factors >= 1.0)


def test_trcd_pattern_factors_ceiling(generator):
    factors = generator.trcd_pattern_factors(10)
    assert factors.max() == 1.0
    assert np.all(factors <= 1.0)


def test_row_gammas_two_populations(generator):
    bulk, outlier = generator.row_gammas(5)
    assert isinstance(bulk, float) and isinstance(outlier, float)
    # Deterministic per row.
    assert generator.row_gammas(5) == (bulk, outlier)


def test_anti_row_parity(generator):
    assert not generator.is_anti_row(0)
    assert generator.is_anti_row(1)
    assert not generator.is_anti_row(2)


def test_retention_weak_cells_in_distinct_words(generator):
    """Tier weak cells land in distinct 64-bit words (the structural
    reason Observation 14 finds everything SECDED-correctable)."""
    found_tier_row = False
    for row in range(300):
        sensitivity = generator.cell_retention_vpp_sensitivity(row)
        weak_positions = np.flatnonzero(sensitivity > 1.0)
        if weak_positions.size < 2:
            continue
        found_tier_row = True
        words = weak_positions // 64
        assert len(set(words.tolist())) == weak_positions.size
    assert found_tier_row  # B6 has a 15.5% tier; 300 rows must hit it


def test_retention_structure_consistency(generator):
    times = generator.cell_retention_times(7)
    sensitivity = generator.cell_retention_vpp_sensitivity(7)
    assert times.shape == sensitivity.shape
    # Weak-tier cells are far below the bulk retention population.
    weak = sensitivity > 1.0
    if weak.any():
        assert times[weak].max() < np.median(times)


def test_measurement_jitter_close_to_one(generator):
    jitters = [generator.measurement_jitter(9, s) for s in range(50)]
    assert 0.9 < np.mean(jitters) < 1.1
    assert np.std(jitters) < 0.1


def test_powerup_bits_are_bits(generator):
    bits = generator.powerup_bits(3)
    assert bits.shape == (2048,)
    assert set(np.unique(bits)) <= {0, 1}
