"""The six standard data patterns."""

import numpy as np
import pytest

from repro.dram.patterns import (
    STANDARD_PATTERNS,
    classify_row_bits,
    pattern_by_name,
)
from repro.errors import ConfigurationError


def test_six_patterns_with_paper_bytes():
    # Section 4.1: row stripe (0xFF/0x00), checkerboard (0xAA/0x55),
    # thick checker (0xCC/0x33).
    fills = [p.fill_byte for p in STANDARD_PATTERNS]
    assert fills == [0xFF, 0x00, 0xAA, 0x55, 0xCC, 0x33]
    assert [p.index for p in STANDARD_PATTERNS] == list(range(6))


def test_inverse_bytes():
    for pattern in STANDARD_PATTERNS:
        assert pattern.inverse_byte == pattern.fill_byte ^ 0xFF


def test_row_bits_expand_fill():
    pattern = pattern_by_name("checkerboard-a")
    bits = pattern.row_bits(64)
    packed = np.packbits(bits, bitorder="little")
    assert np.all(packed == 0xAA)


def test_inverse_bits_complement():
    pattern = STANDARD_PATTERNS[0]
    assert np.all(pattern.row_bits(128) + pattern.inverse_bits(128) == 1)


def test_classification_roundtrip():
    for pattern in STANDARD_PATTERNS:
        found = classify_row_bits(pattern.row_bits(256))
        assert found is pattern


def test_classification_rejects_mixed_content():
    bits = STANDARD_PATTERNS[0].row_bits(256)
    bits[3] ^= 1
    assert classify_row_bits(bits) is None


def test_classification_rejects_unknown_fill():
    bits = np.unpackbits(
        np.full(32, 0x0F, dtype=np.uint8), bitorder="little"
    )
    assert classify_row_bits(bits) is None


def test_unknown_name_rejected():
    with pytest.raises(ConfigurationError):
        pattern_by_name("zebra")
