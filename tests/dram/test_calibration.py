"""Anchor-to-parameter calibration."""

import math

import pytest

from repro.dram.calibration import (
    BULK_SIGMA,
    ModuleGeometry,
    calibrate,
)
from repro.dram.profiles import MODULE_PROFILES, module_profile
from repro.errors import ConfigurationError
from repro.stats import normal_cdf
from repro.units import ns


def test_geometry_validation():
    with pytest.raises(ConfigurationError):
        ModuleGeometry(rows_per_bank=100)  # not a power of two
    with pytest.raises(ConfigurationError):
        ModuleGeometry(row_bits=100)  # not a multiple of 64
    with pytest.raises(ConfigurationError):
        ModuleGeometry(banks=0)


def test_geometry_derived_sizes():
    geometry = ModuleGeometry(rows_per_bank=1024, banks=2, row_bits=4096)
    assert geometry.row_bytes == 512
    assert geometry.columns == 64


def test_all_profiles_calibrate():
    for name in MODULE_PROFILES:
        calibration = calibrate(module_profile(name))
        assert calibration.bulk_sigma == BULK_SIGMA
        assert calibration.outlier_rate > 0
        assert calibration.retention_sigma > 0


def test_outlier_anchor_places_minimum_at_hcfirst():
    """The expected minimum outlier tolerance over the paper's row count
    should land on the HC_first anchor."""
    calibration = calibrate(module_profile("B3"))
    profile = calibration.profile
    # quantile of the minimum over ~4096 outliers
    from repro.stats import normal_ppf

    z_min = normal_ppf(1.0 / (4096 * calibration.outlier_rate + 1.0))
    expected_min = math.exp(
        calibration.outlier_log_median + calibration.outlier_sigma * z_min
    )
    assert expected_min == pytest.approx(profile.hcfirst_nominal, rel=0.01)


def test_bulk_anchor_reproduces_ber():
    """A row at the 10% weakness quantile must show the Table 3 BER at
    300K hammers."""
    calibration = calibrate(module_profile("C5"))
    profile = calibration.profile
    from repro.stats import normal_ppf

    log_w_anchor = (
        calibration.bulk_log_weakness
        + calibration.vendor.row_sigma * normal_ppf(0.10)
    )
    ber = normal_cdf(
        (math.log(300_000) - log_w_anchor) / calibration.bulk_sigma
    )
    assert float(ber) == pytest.approx(profile.ber_nominal, rel=0.01)


def test_gamma_outlier_reproduces_hcfirst_ratio():
    calibration = calibrate(module_profile("B3"))
    profile = calibration.profile
    scale = float(
        calibration.disturbance.tolerance_scale(
            profile.vppmin, calibration.gamma_outlier_mean
        )
    )
    assert scale == pytest.approx(
        profile.hcfirst_at_vppmin / profile.hcfirst_nominal, rel=1e-6
    )


def test_reversal_module_gets_negative_outlier_gamma():
    # B9's HC_first *drops* at V_PPmin (8.8K from 11.8K).
    calibration = calibrate(module_profile("B9"))
    assert calibration.gamma_outlier_mean < 0


def test_activation_anchors():
    """The activation model must hit the module's tRCD anchors at the
    worst-row level."""
    for name in ("A0", "B2", "C5"):
        calibration = calibrate(module_profile(name))
        profile = calibration.profile
        worst_factor = math.exp(
            calibration.trcd_row_sigma * 3.53  # ~ppf(4096/4097)
        )
        nominal = calibration.activation.trcd_min(2.5) * worst_factor
        at_vppmin = calibration.activation.trcd_min(profile.vppmin) * worst_factor
        assert nominal == pytest.approx(ns(profile.trcd_nominal_ns), rel=0.05)
        assert at_vppmin == pytest.approx(
            ns(profile.trcd_at_vppmin_ns), rel=0.08
        )


def test_retention_beta_reproduces_vendor_anchor_shift():
    calibration = calibrate(module_profile("C5"))
    vendor = calibration.vendor
    # At 1.5 V the 4 s BER must move from the nominal anchor to the
    # low-V_PP anchor: Phi(z_nom - ln(margin)/sigma) == ber_lowvpp.
    margin = calibration.retention.margin_factor(1.5)
    from repro.stats import normal_ppf

    z_nom = normal_ppf(vendor.retention_ber_4s_nominal)
    shifted = normal_cdf(z_nom - math.log(margin) / -vendor.retention_sigma * -1.0)
    # margin < 1 shifts retention down; predicted BER at 1.5 V:
    predicted = normal_cdf(z_nom + math.log(1.0 / margin) / vendor.retention_sigma)
    assert float(predicted) == pytest.approx(
        vendor.retention_ber_4s_lowvpp, rel=0.05
    )


def test_calibration_deterministic():
    a = calibrate(module_profile("A4"))
    b = calibrate(module_profile("A4"))
    assert a.gamma_bulk_mean == b.gamma_bulk_mean
    assert a.bulk_log_weakness == b.bulk_log_weakness
