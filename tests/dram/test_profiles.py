"""Table 3 module profiles and vendor parameters."""

import pytest

from repro.dram.profiles import (
    MODULE_PROFILES,
    build_module,
    module_profile,
    profiles_by_vendor,
    total_chip_count,
)
from repro.dram.vendor import VENDOR_PROFILES, Vendor
from repro.errors import ConfigurationError


def test_paper_population():
    # Table 1 / Section 1: 272 chips across 30 DIMMs, 10 per vendor.
    assert total_chip_count() == 272
    assert len(MODULE_PROFILES) == 30
    for vendor in Vendor:
        assert len(profiles_by_vendor(vendor)) == 10


def test_module_names_follow_vendor_letter():
    for name, profile in MODULE_PROFILES.items():
        assert name[0] == profile.vendor.value


def test_chip_counts_match_rank_width():
    for profile in MODULE_PROFILES.values():
        width = int(profile.chip_org.lstrip("x"))
        assert profile.num_chips * width == 64


def test_trcd_offenders_match_paper():
    # Observation 7: A0-A2 need 24 ns, B2/B5 need 15 ns.
    offenders = {
        name for name, p in MODULE_PROFILES.items() if p.fails_nominal_trcd
    }
    assert offenders == {"A0", "A1", "A2", "B2", "B5"}
    for name in ("A0", "A1", "A2"):
        assert 21.0 <= MODULE_PROFILES[name].trcd_at_vppmin_ns <= 24.0
    for name in ("B2", "B5"):
        assert 13.5 < MODULE_PROFILES[name].trcd_at_vppmin_ns <= 15.0


def test_offending_chip_count_is_64():
    # Observation 7: 208 of 272 chips work at nominal tRCD; 48 need 24 ns
    # and 16 need 15 ns.
    failing = [p for p in MODULE_PROFILES.values() if p.fails_nominal_trcd]
    assert sum(p.num_chips for p in failing) == 64


def test_retention_offenders_match_paper():
    # Observation 13: B6/B8/B9 and C1/C3/C5/C9 flip at 64 ms at V_PPmin.
    offenders = {
        name
        for name, p in MODULE_PROFILES.items()
        if p.fails_retention_at_64ms
    }
    assert offenders == {"B6", "B8", "B9", "C1", "C3", "C5", "C9"}


def test_vppmin_extremes_match_paper():
    # Section 7: lowest V_PPmin 1.4 V (A0), highest 2.4 V (A5).
    assert MODULE_PROFILES["A0"].vppmin == 1.4
    assert MODULE_PROFILES["A5"].vppmin == 2.4
    assert min(p.vppmin for p in MODULE_PROFILES.values()) == 1.4
    assert max(p.vppmin for p in MODULE_PROFILES.values()) == 2.4


def test_b3_anchor_values():
    profile = module_profile("B3")
    assert profile.hcfirst_nominal == 16_600
    assert profile.ber_nominal == pytest.approx(2.73e-3)
    assert profile.vppmin == 1.6
    assert profile.hcfirst_at_vppmin == 21_100


def test_recommended_vpp_within_range():
    for profile in MODULE_PROFILES.values():
        assert profile.vppmin <= profile.vpp_recommended <= 2.5


def test_unknown_module_rejected():
    with pytest.raises(ConfigurationError):
        module_profile("Z9")


def test_vendor_profiles_cover_all_vendors():
    assert set(VENDOR_PROFILES) == set(Vendor)
    mapping_kinds = {v.mapping_kind for v in VENDOR_PROFILES.values()}
    assert mapping_kinds == {"direct", "mirrored", "scrambled"}


def test_build_module_constructs_device():
    module = build_module("A5")
    assert module.name == "A5"
    assert module.vppmin == 2.4
