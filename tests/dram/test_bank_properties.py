"""Property-based robustness tests on the bank state machine.

Random command sequences must never corrupt the bank's invariants:
legal-state errors are raised cleanly, stored data only changes through
writes or physical fault mechanisms, and the open-row bookkeeping stays
consistent.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.calibration import ModuleGeometry
from repro.dram.module import DramModule
from repro.dram.profiles import module_profile
from repro.errors import DramCommandError

GEOMETRY = ModuleGeometry(rows_per_bank=64, banks=1, row_bits=512)

# Command alphabet: (kind, operand)
commands = st.lists(
    st.one_of(
        st.tuples(st.just("act"), st.integers(0, 63)),
        st.tuples(st.just("pre"), st.just(0)),
        st.tuples(st.just("read"), st.integers(0, 7)),
        st.tuples(st.just("write"), st.integers(0, 7)),
        st.tuples(st.just("hammer"), st.integers(0, 63)),
        st.tuples(st.just("refresh"), st.just(0)),
        st.tuples(st.just("advance"), st.integers(1, 50)),  # microseconds
    ),
    min_size=1,
    max_size=40,
)


@settings(max_examples=60, deadline=None)
@given(commands)
def test_random_command_sequences_preserve_invariants(sequence):
    module = DramModule(module_profile("C5"), geometry=GEOMETRY, seed=1)
    bank = module.bank(0)
    payload = np.ones(64, dtype=np.uint8)
    for kind, operand in sequence:
        try:
            if kind == "act":
                bank.activate(operand)
            elif kind == "pre":
                bank.precharge()
            elif kind == "read":
                data = bank.read_column(operand)
                assert data.shape == (64,)
                assert set(np.unique(data)) <= {0, 1}
            elif kind == "write":
                bank.write_column(operand, payload)
            elif kind == "hammer":
                bank.hammer([operand], 100)
            elif kind == "refresh":
                bank.refresh()
            elif kind == "advance":
                module.env.advance(operand * 1e-6)
        except DramCommandError:
            # Illegal-state commands must fail cleanly, leaving the bank
            # usable.
            pass
        # Invariant: the open row, when set, is in range.
        if bank.open_row is not None:
            assert 0 <= bank.open_row < GEOMETRY.rows_per_bank
    # The bank must still be fully operational afterwards.
    bank.precharge()
    bank.activate(5)
    bank.write_column(0, payload)
    assert np.array_equal(bank.read_column(0), payload)
    bank.precharge()


@settings(max_examples=30, deadline=None)
@given(
    st.integers(2, 61),
    st.integers(0, 2**31),
)
def test_write_then_immediate_read_is_identity(row, content_seed):
    """Whatever is written reads back verbatim when no time passes and no
    hammering occurred (no physical mechanism may corrupt it)."""
    module = DramModule(module_profile("A4"), geometry=GEOMETRY, seed=2)
    bank = module.bank(0)
    rng = np.random.default_rng(content_seed)
    bits = rng.integers(0, 2, GEOMETRY.row_bits).astype(np.uint8)
    bank.activate(row)
    bank.write_row(bits)
    bank.precharge()
    bank.activate(row)
    assert np.array_equal(bank.read_row(), bits)
    bank.precharge()


@settings(max_examples=20, deadline=None)
@given(st.integers(2, 61), st.integers(1, 3))
def test_refresh_idempotent_on_fresh_rows(row, sweeps):
    """Refreshing a freshly-written row any number of times changes
    nothing."""
    module = DramModule(module_profile("A4"), geometry=GEOMETRY, seed=3)
    bank = module.bank(0)
    bits = np.zeros(GEOMETRY.row_bits, dtype=np.uint8)
    bank.activate(row)
    bank.write_row(bits)
    bank.precharge()
    for _ in range(sweeps):
        bank.refresh_all()
    bank.activate(row)
    assert np.array_equal(bank.read_row(), bits)
    bank.precharge()
