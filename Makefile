# Convenience targets for the reproduction repository.

PYTHON ?= python3

.PHONY: install test bench artifacts examples clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Regenerate every paper table/figure into results/ (parallel campaigns).
artifacts:
	$(PYTHON) examples/full_paper_run.py --parallel 6 --out results/

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/spice_waveforms.py
	$(PYTHON) examples/ecc_selective_refresh.py
	$(PYTHON) examples/reduced_vpp_system.py
	$(PYTHON) examples/system_level_attack.py

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
