# Convenience targets for the reproduction repository.

PYTHON ?= python3

.PHONY: install lint test bench bench-check bench-smoke bench-all service-smoke service-load api-smoke obs-smoke dsl-smoke artifacts examples clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

# AST-based contract checks: experiment modules must declare campaign
# needs on their SPEC instead of calling get_study directly, code
# under repro.core / repro.service must take timestamps through
# repro.obs.clock rather than time.time()/time.monotonic(), and
# hammer schedules must come from repro.progdsl / the Program builder
# macros rather than hand-rolled ACT or hammer/REF loops.
lint:
	PYTHONPATH=src $(PYTHON) -m repro.harness.lint

# Compiles and runs every registered DRAM-program DSL program on a
# small module: canonical-text round trips, cross-engine bit-identity,
# fingerprint stability (see docs/PROGRAMS.md).
dsl-smoke:
	PYTHONPATH=src $(PYTHON) benchmarks/dsl_smoke.py

test: lint
	PYTHONPATH=src $(PYTHON) -m pytest tests/

# Where bench-smoke writes the API load-smoke record (CI points this
# into its artifact directory so the run uploads as a workflow artifact).
BENCH_SMOKE_OUT ?= /tmp/BENCH_service_smoke.json

# Perf trajectory: hot-primitive micro-benchmarks plus the probe-kernel
# benchmark, which writes benchmarks/BENCH_probe.json (probes/sec and
# campaign wall-clock for the batched and command engines), plus the
# orchestration-service smoke run (benchmarks/BENCH_service.json).
bench: service-smoke
	$(PYTHON) -m pytest benchmarks/test_microbenchmarks.py --benchmark-only
	$(PYTHON) benchmarks/bench_probe.py

# Perf-regression guard: re-measures probe throughput and both
# acceptance campaigns, fails when any metric drops below the
# committed benchmarks/BENCH_probe.json by more than the tolerance
# band (REPRO_BENCH_TOLERANCE to widen on noisy machines).
bench-check:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_check.py

# Machine-speed-independent subset of bench-check for CI: asserts the
# committed baseline's acceptance gates (fused >= 3x batch on the
# V_PP ladder, fused hammer rate > fast) and the fused-vs-batch
# bit-identity differential, without timing re-measurement. The API
# load smoke rides along: a reduced-job concurrent run with the
# deterministic served-study-vs-direct-run gate.
bench-smoke:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_check.py --smoke
	mkdir -p $(dir $(BENCH_SMOKE_OUT))
	PYTHONPATH=src $(PYTHON) benchmarks/bench_service_load.py --smoke \
		--out $(BENCH_SMOKE_OUT)

# One-module orchestrated campaign with one injected bench fault:
# asserts the retry succeeds, the JSON-lines event log parses, and the
# merged study matches the sequential reference bit-for-bit.
service-smoke:
	$(PYTHON) benchmarks/service_smoke.py

# API load benchmark: >= 1000 concurrent tiny-campaign jobs against an
# in-process server; records p50/p99 request latency and jobs/sec into
# the "load" section of benchmarks/BENCH_service.json and gates on the
# served study being bit-identical to a direct run.
service-load:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_service_load.py

# Full HTTP round trip of the characterization API (submit/SSE/poll/
# fetch), the determinism gate, the store short-circuit, the HTTP error
# mapping, and the shared CLI exit-code contract.
api-smoke:
	PYTHONPATH=src $(PYTHON) benchmarks/api_smoke.py

# Tiny traced campaign validating every observability surface against
# the schemas in docs/OBSERVABILITY.md: Chrome-trace JSON (nested
# spans), Prometheus text exposition, ts+mono telemetry events, the
# study provenance disk round trip, and the stitched cross-process
# trace of an API-submitted pooled job. Set OBS_SMOKE_ARTIFACTS to a
# directory to also write the traces + metrics text for CI upload.
obs-smoke:
	$(PYTHON) benchmarks/obs_smoke.py \
		$(if $(OBS_SMOKE_ARTIFACTS),--artifacts $(OBS_SMOKE_ARTIFACTS))

# Every artifact-regeneration benchmark (slow).
bench-all:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Regenerate every paper table/figure into results/ (parallel campaigns).
artifacts:
	$(PYTHON) examples/full_paper_run.py --parallel 6 --out results/

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/spice_waveforms.py
	$(PYTHON) examples/ecc_selective_refresh.py
	$(PYTHON) examples/reduced_vpp_system.py
	$(PYTHON) examples/system_level_attack.py

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
