"""Unit helpers.

The library stores all physical quantities in SI base units:

* time in **seconds**
* voltage in **volts**
* capacitance in **farads**
* resistance in **ohms**
* temperature in **degrees Celsius** (DRAM datasheets use Celsius)

These helpers exist so that call sites can say ``ns(13.5)`` instead of
``13.5e-9`` -- the paper quotes timings in nanoseconds and milliseconds and
voltages in volts and millivolts, and keeping the paper's notation visible
at call sites makes cross-checking against the paper trivial.
"""

from __future__ import annotations

# -- time -------------------------------------------------------------------


def ns(value: float) -> float:
    """Nanoseconds to seconds."""
    return value * 1e-9


def us(value: float) -> float:
    """Microseconds to seconds."""
    return value * 1e-6


def ms(value: float) -> float:
    """Milliseconds to seconds."""
    return value * 1e-3


def seconds_to_ns(value: float) -> float:
    """Seconds to nanoseconds."""
    return value * 1e9


def seconds_to_ms(value: float) -> float:
    """Seconds to milliseconds."""
    return value * 1e3


# -- voltage ----------------------------------------------------------------


def mv(value: float) -> float:
    """Millivolts to volts."""
    return value * 1e-3


# -- capacitance / resistance ------------------------------------------------


def ff(value: float) -> float:
    """Femtofarads to farads."""
    return value * 1e-15


def pf(value: float) -> float:
    """Picofarads to farads."""
    return value * 1e-12


def kohm(value: float) -> float:
    """Kiloohms to ohms."""
    return value * 1e3


# -- convenience ------------------------------------------------------------


def clamp(value: float, low: float, high: float) -> float:
    """Clamp ``value`` to the inclusive range [low, high]."""
    if low > high:
        raise ValueError(f"clamp range is empty: [{low}, {high}]")
    return max(low, min(high, value))
