"""Registry of the paper's expected values.

The experiment tables print a "paper" column next to every measured
quantity so a reader can compare the reproduction against the source
study at a glance. Those expectations used to live as string literals
scattered through the experiment modules -- impossible to audit and
easy to let drift. This module is the single source of truth: one
:class:`PaperExpectation` per reported quantity, keyed
``"<experiment>.<quantity>"``, carrying

* ``value`` -- the canonical numeric value (or mapping of values, e.g.
  per-vendor ranges),
* ``display`` -- the exact table-cell string, when the paper column
  renders text rather than a bare number (signs, fixed precision),
* ``source`` -- where in the paper the number comes from.

Experiments fetch cells with :func:`cell` and compose notes from
:func:`value`; ``tests/test_paper.py`` asserts every registered
expectation is referenced by its owning experiment and that every
"paper" column cell in the generated outputs resolves back to this
registry (no stray inline literals).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PaperExpectation:
    """One expected quantity reported by the paper."""

    key: str
    experiment: str
    value: Any
    display: Optional[str] = None
    source: str = ""


def _expect(key: str, value: Any, display: str = None,
            source: str = "") -> PaperExpectation:
    experiment = key.split(".", 1)[0]
    return PaperExpectation(
        key=key, experiment=experiment, value=value, display=display,
        source=source,
    )


#: Every paper expectation the experiment tables consume, keyed
#: ``"<experiment>.<quantity>"``.
EXPECTATIONS: Dict[str, PaperExpectation] = {
    expectation.key: expectation
    for expectation in (
        # Table 1 -- the tested-chip population.
        _expect("table1.population", {"chips": 272, "dimms": 30},
                source="Table 1"),
        # Figure 3 / Observations 1-2 -- normalized BER at V_PPmin.
        _expect("fig3.fraction_decreasing", 0.812, display="0.812",
                source="Observation 1"),
        _expect("fig3.fraction_increasing", 0.154, display="0.154",
                source="Observation 2"),
        _expect("fig3.mean_change", -0.152, display="-0.152",
                source="Observation 1"),
        _expect("fig3.max_decrease", 0.669, display="0.669",
                source="Observation 1"),
        _expect("fig3.max_increase", 0.117, display="0.117",
                source="Observation 2"),
        # Figure 4 / Observation 3 -- per-vendor normalized-BER ranges.
        _expect("fig4.normalized_ber_range",
                {"A": (0.43, 1.11), "B": (0.33, 1.03), "C": (0.74, 0.94)},
                source="Observation 3"),
        # Figure 5 / Observations 4-5 -- normalized HC_first at V_PPmin.
        _expect("fig5.fraction_increasing", 0.693, display="0.693",
                source="Observation 4"),
        _expect("fig5.fraction_decreasing", 0.142, display="0.142",
                source="Observation 5"),
        _expect("fig5.mean_change", 0.074, display="+0.074",
                source="Observation 4"),
        _expect("fig5.max_increase", 0.858, display="0.858",
                source="Observation 4"),
        _expect("fig5.max_decrease", 0.091, display="0.091",
                source="Observation 5"),
        # Figure 6 / Observation 6 -- per-vendor HC_first ranges.
        _expect("fig6.normalized_hcfirst_range",
                {"A": (0.94, 1.52), "B": (0.92, 1.86), "C": (0.91, 1.35)},
                source="Observation 6"),
        # Figure 7 / Observation 7 -- tRCD guardband.
        _expect("fig7.mean_guardband_reduction", 0.219,
                source="Observation 7"),
        # Figure 8 / Observations 8-9 -- SPICE tRCD_min worst cases.
        _expect("fig8.worst_case_trcd_ns",
                {2.5: 12.9, 1.9: 13.3, 1.8: 14.2, 1.7: 16.9},
                source="Observations 8-9"),
        # Figure 9 / Observation 10 -- restoration saturation deficit.
        _expect("fig9.saturation_deficit",
                {1.9: 0.041, 1.8: 0.110, 1.7: 0.181},
                source="Observation 10"),
        # Figure 10 / Observation 12 -- retention BER at the 4 s window
        # per vendor, (nominal V_PP, 1.5 V) anchors.
        _expect("fig10.retention_ber_4s",
                {"A": (0.003, 0.008), "B": (0.002, 0.005),
                 "C": (0.014, 0.025)},
                source="Observation 12"),
        # Section 4.6 -- coefficient-of-variation percentiles.
        _expect("significance.cv_percentiles",
                {90.0: 0.08, 95.0: 0.13, 99.0: 0.24},
                source="Section 4.6"),
    )
}


def expectation(key: str) -> PaperExpectation:
    """Resolve one expectation by key."""
    try:
        return EXPECTATIONS[key]
    except KeyError:
        raise ConfigurationError(
            f"unknown paper expectation {key!r}; registered: "
            f"{sorted(EXPECTATIONS)}"
        ) from None


def value(key: str) -> Any:
    """The canonical numeric value (or mapping) of an expectation."""
    return expectation(key).value


def cell(key: str) -> Any:
    """What a table's "paper" column prints for an expectation: the
    exact display string when one is registered, else the value."""
    found = expectation(key)
    return found.display if found.display is not None else found.value
