"""Exception hierarchy for the repro package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An object was constructed or configured with invalid parameters."""


class DramError(ReproError):
    """Base class for errors raised by the DRAM device model."""


class DramCommandError(DramError):
    """A DRAM command was issued in an illegal state.

    For example: activating a row in a bank that already has an open row,
    or reading from a precharged bank.
    """


class DramTimingError(DramError):
    """A DRAM command violated a timing constraint of the device model."""


class DramAddressError(DramError):
    """An address (row, column, bank) is out of range for the device."""


class SoftMCError(ReproError):
    """Base class for errors raised by the SoftMC infrastructure model."""


class ProgramError(SoftMCError):
    """A SoftMC program is malformed (bad operands, missing labels, ...)."""


class CommunicationError(SoftMCError):
    """The DRAM module cannot communicate with the FPGA.

    Raised when the module is operated below its minimum wordline voltage
    (``V_PPmin``) -- the condition that defines ``V_PPmin`` in the paper's
    methodology (Section 4.1).
    """


class PowerSupplyError(SoftMCError):
    """The external power supply was driven outside its supported range."""


class BenchFaultError(SoftMCError):
    """Transient bench-infrastructure fault (injected or real).

    Deliberately *not* a :class:`CommunicationError`: the V_PPmin search
    interprets ``CommunicationError`` as "the module stopped responding
    at this voltage", and a transient bench fault must never be mistaken
    for that. The campaign orchestration service retries work units that
    fail with this class of error.
    """


class PowerDroopError(BenchFaultError):
    """The external V_PP supply's output transiently drooped.

    The rail sags below the module's brown-out voltage before the supply
    recovers; the module resets and the measurement in flight is lost.
    """


class FpgaTimeoutError(BenchFaultError):
    """The FPGA failed to acknowledge a command within its watchdog."""


class HostDisconnectError(BenchFaultError):
    """The host lost its link to the FPGA board mid-program."""


class WorkerTimeoutError(BenchFaultError):
    """A pool worker exceeded its per-unit wall-clock deadline.

    Raised *by the coordinator*, not the worker: the orchestrator's
    ``unit_timeout`` reaper declares an attempt dead when its deadline
    passes (e.g. the worker's host link hung instead of failing fast),
    kills the stuck worker process, and retries the unit like any other
    transient bench fault.
    """


class QuotaExceededError(ReproError):
    """A tenant tried to exceed its admission quota on the job queue."""


class JobCancelledError(ReproError):
    """A queued or running API job was cancelled by its owner.

    For running jobs the cancellation takes effect at the next work-unit
    boundary (after the unit's checkpoint is durable), so a cancelled
    job can later be resubmitted and resume from its checkpoints.
    """


class SpiceError(ReproError):
    """Base class for errors raised by the SPICE-class circuit simulator."""


class NetlistError(SpiceError):
    """A circuit netlist is malformed (dangling node, duplicate name, ...)."""


class ConvergenceError(SpiceError):
    """The Newton iteration of the transient solver failed to converge."""


class AnalysisError(ReproError):
    """An analysis step received inconsistent or insufficient result data."""


class EccError(ReproError):
    """Base class for ECC codec errors."""


class UncorrectableError(EccError):
    """A codeword contained more errors than the code can correct."""
