"""repro: reproduction of "Understanding RowHammer Under Reduced
Wordline Voltage" (DSN 2022).

Public API tour:

* :mod:`repro.dram` -- the behavioral DDR4 device model (30 Table 3
  module profiles, V_PP-dependent physics).
* :mod:`repro.softmc` -- the SoftMC-style test bench (FPGA command
  clock, V_PP supply, temperature control).
* :mod:`repro.core` -- the paper's characterization methodology
  (Algorithms 1-3, WCDP determination, campaign orchestration,
  analyses).
* :mod:`repro.spice` -- a from-scratch nonlinear transient circuit
  simulator and the Table 2 DRAM circuit (Figures 8-9).
* :mod:`repro.system` -- a V_PP-aware memory controller implementing
  the paper's Section 8 policies (programmed tRCD, rank-level SECDED,
  selective refresh), trace replay, and defense cost models.
* :mod:`repro.harness` -- one runnable experiment per paper table and
  figure (``python -m repro.harness.runner --all``).

Quickstart::

    from repro import CharacterizationStudy, StudyScale

    study = CharacterizationStudy(scale=StudyScale.tiny(), seed=0)
    result = study.run(modules=["B3"], tests=("rowhammer",))
    module = result.module("B3")
    print(module.min_hcfirst(2.5), module.min_hcfirst(module.vppmin))
"""

from repro.core import CharacterizationStudy, StudyResult, StudyScale
from repro.dram import DramModule, build_module, module_profile
from repro.errors import ReproError
from repro.harness import run_experiment
from repro.softmc import TestInfrastructure

__version__ = "1.0.0"

__all__ = [
    "CharacterizationStudy",
    "DramModule",
    "ReproError",
    "StudyResult",
    "StudyScale",
    "TestInfrastructure",
    "build_module",
    "module_profile",
    "run_experiment",
    "__version__",
]
