"""Structured telemetry for orchestrated campaigns.

Three layers, smallest first:

* :class:`TelemetryLog` -- an append-only JSON-lines event sink. Every
  event is one line: ``{"event": <name>, "ts": <unix seconds>, ...}``.
  Events are also mirrored in memory (``log.events``) so tests and the
  in-process progress summary never re-parse the file.
* :class:`UnitMetrics` / :class:`CampaignMetrics` -- per-unit and
  campaign-level counters (attempts, retries, faults by kind, wall
  clock) accumulated by the orchestrator and rendered by
  :meth:`CampaignMetrics.summary`.
* the :data:`repro.core.perf.PROFILER` integration -- the orchestrator
  times its phases (``service.unit``, ``service.merge``,
  ``service.checkpoint``) and bumps ``service.*`` counters through the
  existing campaign profiler, so ``--profile`` output covers
  orchestrated runs too.

Event vocabulary (all emitted by
:class:`~repro.service.orchestrator.CampaignService`):

``campaign_started``
    fingerprint, modules, tests, seed, units, resume flag.
``unit_resumed``
    unit restored from a checkpoint instead of re-run.
``unit_started`` / ``unit_finished``
    one execution attempt; ``unit_finished`` carries ``wall_seconds``
    (in-worker) and ``attempt``.
``unit_fault`` / ``unit_retry``
    a BenchFaultError and the scheduled retry (with backoff seconds).
``module_quarantined``
    a unit exhausted its attempts; the module is dropped, not fatal.
``unit_skipped``
    sibling unit dropped because its module was quarantined.
``pool_reaped`` / ``unit_restarted``
    the ``unit_timeout`` reaper killed a pool with hung workers; the
    overdue units were charged a ``WorkerTimeoutError`` fault, the
    innocent in-flight units restart at the same attempt.
``unit_duplicate_dropped``
    a late duplicate outcome for an already-completed unit was dropped
    whole (its metric delta never merged -- no double counting).
``checkpoint_written``
    one unit's results persisted (atomic).
``campaign_finished``
    final counters.

``docs/SERVICE.md`` documents the full schema.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs import clock as obs_clock
from repro.obs import events as obs_events
from repro.obs.metrics import REGISTRY


class TelemetryLog:
    """JSON-lines event log with an in-memory mirror.

    Since the unified observability layer landed, the log is a thin
    sink over :mod:`repro.obs.events`: every record it writes is also
    published on the global event bus (so the live progress reporter
    sees orchestrated campaigns for free), and every record carries two
    timestamps -- ``ts`` (wall clock; a human-readable label that can
    jump under NTP/DST adjustments) and ``mono`` (monotonic seconds;
    the one to subtract when computing durations). ``docs/SERVICE.md``
    documents both.

    Parameters
    ----------
    path:
        File to append events to; None keeps events in memory only.
    resume:
        Append to an existing file instead of truncating it (used by
        ``--resume`` so one campaign's history stays in one log).
    clock:
        Wall-timestamp source (injectable for tests); defaults to
        :func:`repro.obs.clock.wall`.
    monotonic:
        Duration-safe timestamp source; defaults to
        :func:`repro.obs.clock.monotonic`.
    """

    def __init__(self, path: Optional[str] = None, resume: bool = False,
                 clock=obs_clock.wall, monotonic=obs_clock.monotonic):
        self.path = path
        self.events: List[Dict[str, Any]] = []
        self._clock = clock
        self._monotonic = monotonic
        self._handle = None
        if path:
            self._handle = open(path, "a" if resume else "w")

    def emit(self, event: str, **fields) -> Dict[str, Any]:
        """Record one event; returns the record that was written."""
        record = {
            "event": event,
            "ts": round(self._clock(), 6),
            "mono": round(self._monotonic(), 6),
        }
        record.update(fields)
        self.events.append(record)
        if self._handle is not None:
            json.dump(record, self._handle, sort_keys=True)
            self._handle.write("\n")
            self._handle.flush()
        obs_events.publish(record)
        return record

    def close(self) -> None:
        """Flush and close the underlying file (no-op when in-memory)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "TelemetryLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_events(path: str) -> List[Dict[str, Any]]:
    """Parse a JSON-lines telemetry log back into event records."""
    events = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


@dataclass
class UnitMetrics:
    """Execution record of one work unit."""

    unit_id: str
    module: str
    #: pending -> completed | resumed | quarantined | skipped
    status: str = "pending"
    attempts: int = 0
    retries: int = 0
    faults: List[str] = field(default_factory=list)
    #: In-worker wall clock of the successful attempt (seconds).
    wall_seconds: float = 0.0

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict view (JSON exports)."""
        return {
            "unit_id": self.unit_id,
            "module": self.module,
            "status": self.status,
            "attempts": self.attempts,
            "retries": self.retries,
            "faults": list(self.faults),
            "wall_seconds": round(self.wall_seconds, 6),
        }


@dataclass
class CampaignMetrics:
    """Campaign-level counters the orchestrator accumulates."""

    units_planned: int = 0
    units_completed: int = 0
    units_resumed: int = 0
    units_failed: int = 0
    retries: int = 0
    #: Late duplicate unit outcomes dropped by the coordinator (the
    #: delta-merge dedup; see ``CampaignService._deliver_result``).
    duplicates_dropped: int = 0
    faults: Dict[str, int] = field(default_factory=dict)
    quarantined: Dict[str, str] = field(default_factory=dict)
    wall_seconds: float = 0.0

    def record_fault(self, kind: str) -> None:
        """Count one injected/observed fault by kind."""
        self.faults[kind] = self.faults.get(kind, 0) + 1

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict view (JSON exports, the smoke benchmark)."""
        return {
            "units_planned": self.units_planned,
            "units_completed": self.units_completed,
            "units_resumed": self.units_resumed,
            "units_failed": self.units_failed,
            "retries": self.retries,
            "duplicates_dropped": self.duplicates_dropped,
            "faults": dict(self.faults),
            "quarantined": dict(self.quarantined),
            "wall_seconds": round(self.wall_seconds, 6),
        }

    def publish(self, registry=REGISTRY) -> None:
        """Fold the campaign totals into the central metrics registry.

        Called once at campaign end (the counters are already final),
        so re-running campaigns in one process accumulates, matching
        counter semantics. ``as_dict``/``summary`` are unchanged.
        """
        for name, value in (
            ("repro_service_units_planned_total", self.units_planned),
            ("repro_service_units_completed_total", self.units_completed),
            ("repro_service_units_resumed_total", self.units_resumed),
            ("repro_service_units_failed_total", self.units_failed),
            ("repro_service_retries_total", self.retries),
            ("repro_service_faults_total", sum(self.faults.values())),
            ("repro_service_quarantined_total", len(self.quarantined)),
        ):
            if value:
                registry.counter(
                    name, "orchestration-service campaign counter"
                ).inc(value)

    def summary(self) -> str:
        """Human-readable end-of-campaign report."""
        lines = [
            "-- campaign ----------------------------------------",
            f"units     {self.units_completed}/{self.units_planned} "
            f"completed ({self.units_resumed} resumed from checkpoint, "
            f"{self.units_failed} failed)",
            f"retries   {self.retries}",
        ]
        if self.faults:
            detail = ", ".join(
                f"{kind}={count}" for kind, count in sorted(self.faults.items())
            )
            lines.append(f"faults    {detail}")
        if self.quarantined:
            for module, reason in sorted(self.quarantined.items()):
                lines.append(f"quarantined  {module}: {reason}")
        lines.append(f"wall      {self.wall_seconds:.2f}s")
        return "\n".join(lines)
