"""Seedable fault injection for the campaign orchestration service.

A real multi-week characterization campaign loses work units to
transient infrastructure faults: the external V_PP supply droops, the
FPGA's command watchdog expires, the host loses its link to the board.
The service rehearses exactly these failure modes against the simulated
bench so its retry / quarantine machinery is exercised under test
instead of discovered in production.

Three kinds of fault are modeled, each tied to the bench site that
raises it:

==================  ========  ============================================
kind                site      raised error
==================  ========  ============================================
``power_droop``     supply    :class:`~repro.errors.PowerDroopError`
``fpga_timeout``    fpga      :class:`~repro.errors.FpgaTimeoutError`
``host_disconnect`` host      :class:`~repro.errors.HostDisconnectError`
==================  ========  ============================================

A :class:`FaultPlan` decides *deterministically* -- from its own seed,
independent of the device-model RNG -- whether a given ``(work unit,
attempt)`` experiences a fault, which kind, and after how many bench
operations it strikes. The orchestrator materializes the decision as a
:class:`FaultInjector` wired into the bench
(:class:`~repro.softmc.infrastructure.TestInfrastructure`); the bench
components call :meth:`FaultInjector.tick` at their site and the
injector raises when its trigger count is reached.

Determinism of results: an injected fault aborts the attempt before any
result is emitted, and the bench (module, RNG state, restore sessions)
is rebuilt from the campaign seed on retry -- so a retried unit is
bit-identical to one that never faulted. The differential tests in
``tests/service/test_orchestrator.py`` assert this.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Mapping, Optional, Tuple

from repro.errors import (
    ConfigurationError,
    FpgaTimeoutError,
    HostDisconnectError,
    PowerDroopError,
)

#: Every fault kind the plan can schedule.
FAULT_KINDS = ("power_droop", "fpga_timeout", "host_disconnect")

#: Bench site whose ``tick`` triggers each kind.
SITE_OF_KIND = {
    "power_droop": "supply",
    "fpga_timeout": "fpga",
    "host_disconnect": "host",
}

_ERROR_OF_KIND = {
    "power_droop": (
        PowerDroopError,
        "injected transient V_PP supply droop (output sagged below "
        "brown-out)",
    ),
    "fpga_timeout": (
        FpgaTimeoutError,
        "injected FPGA command timeout (watchdog expired mid-program)",
    ),
    "host_disconnect": (
        HostDisconnectError,
        "injected host disconnect (FPGA link lost)",
    ),
}

#: Largest operation index a randomly placed fault can strike at. Kept
#: small so every kind can fire during bench bring-up / V_PPmin search
#: regardless of the probe engine in use (the fast engine bypasses the
#: host for its probes, but bring-up always runs command-level).
_MAX_RANDOM_TRIGGER = 6


def _check_kind(kind: str) -> str:
    if kind not in FAULT_KINDS:
        raise ConfigurationError(
            f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}"
        )
    return kind


@dataclass(frozen=True)
class FaultSpec:
    """One concrete fault: which kind, and after how many site ticks.

    ``after`` counts operations at the kind's site (supply setpoints,
    host program launches, FPGA command slots); the injector raises on
    the ``after``-th tick.

    ``hang_seconds`` models the nastier failure mode where the bench
    does not fail fast but *stalls* (a host link that silently drops
    packets, an FPGA stuck in a handshake): the injector sleeps that
    long at the trigger point before raising. Combined with the
    orchestrator's ``unit_timeout`` reaper this rehearses hung-worker
    recovery -- the coordinator declares the attempt dead, kills the
    stuck worker process, and retries.
    """

    kind: str
    after: int = 1
    hang_seconds: float = 0.0

    def __post_init__(self) -> None:
        _check_kind(self.kind)
        if self.after < 1:
            raise ConfigurationError(f"after must be >= 1: {self.after}")
        if self.hang_seconds < 0:
            raise ConfigurationError(
                f"hang_seconds must be >= 0: {self.hang_seconds}"
            )

    @property
    def site(self) -> str:
        """The bench site this fault strikes at."""
        return SITE_OF_KIND[self.kind]


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic schedule of injected faults for a campaign.

    Parameters
    ----------
    seed:
        Root seed of the plan's randomness. Independent of the campaign
        seed: the same campaign can be rehearsed under different fault
        schedules.
    rate:
        Probability that a given (unit, attempt) draws a fault.
    kinds:
        Fault kinds the random draw chooses between.
    faulty_attempts:
        Random faults are injected only on attempts below this bound
        (default 1: first attempts may fault, retries succeed). Raise it
        to rehearse quarantine behaviour.
    scripted:
        Explicit ``{(unit_id, attempt): kind}`` overrides, consulted
        before the random draw. Used by the smoke benchmark and the
        differential tests to place one exact fault.
    """

    seed: int = 0
    rate: float = 0.0
    kinds: Tuple[str, ...] = FAULT_KINDS
    faulty_attempts: int = 1
    scripted: Mapping[Tuple[str, int], str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigurationError(f"rate must be in [0, 1]: {self.rate}")
        if not self.kinds:
            raise ConfigurationError("kinds must not be empty")
        for kind in self.kinds:
            _check_kind(kind)
        for kind in self.scripted.values():
            _check_kind(kind)
        if self.faulty_attempts < 0:
            raise ConfigurationError(
                f"faulty_attempts must be >= 0: {self.faulty_attempts}"
            )

    @classmethod
    def script(cls, scripted: Mapping[Tuple[str, int], str]) -> "FaultPlan":
        """A plan consisting only of explicitly scripted faults."""
        return cls(scripted=dict(scripted))

    def spec_for(self, unit_id: str, attempt: int) -> Optional[FaultSpec]:
        """The fault (if any) this plan injects into one attempt.

        Pure function of ``(plan, unit_id, attempt)``: repeated calls --
        including from different processes -- return the same decision.
        """
        kind = self.scripted.get((unit_id, attempt))
        if kind is not None:
            return FaultSpec(kind=kind, after=1)
        if self.rate <= 0.0 or attempt >= self.faulty_attempts:
            return None
        # random.Random(str) seeds via SHA-512: stable across processes
        # and interpreter launches (unlike hash()).
        rng = random.Random(f"faultplan:{self.seed}:{unit_id}:{attempt}")
        if rng.random() >= self.rate:
            return None
        return FaultSpec(
            kind=rng.choice(list(self.kinds)),
            after=rng.randint(1, _MAX_RANDOM_TRIGGER),
        )


class FaultInjector:
    """Arms one :class:`FaultSpec` against a bench.

    Bench components call :meth:`tick` with their site name on every
    operation; the injector counts ticks at the spec's site and raises
    the spec's error once the trigger count is reached. Fires at most
    once (a fresh injector is built per attempt).
    """

    def __init__(self, spec: Optional[FaultSpec]):
        self.spec = spec
        self.fired = False
        self._ticks = 0

    def tick(self, site: str) -> None:
        """Register one bench operation at ``site``; may raise."""
        spec = self.spec
        if spec is None or self.fired or spec.site != site:
            return
        self._ticks += 1
        if self._ticks >= spec.after:
            self.fired = True
            # Flush the flight recorder *before* a stalling fault goes
            # quiet: a hung worker is later SIGTERMed by the reaper and
            # never gets another chance to write its last moments.
            from repro.obs.flightrec import RECORDER

            RECORDER.record("fault", {
                "kind": spec.kind, "site": site, "after": spec.after,
                "hang_seconds": spec.hang_seconds,
            })
            RECORDER.dump(
                "hang_injected" if spec.hang_seconds
                else f"fault_injected-{spec.kind}",
                extra={"kind": spec.kind, "site": site,
                       "hang_seconds": spec.hang_seconds},
            )
            if spec.hang_seconds:
                # A stalling fault: the bench goes quiet instead of
                # failing fast. Only the coordinator's unit_timeout
                # reaper (or the hang running its course) ends this.
                time.sleep(spec.hang_seconds)
            error_cls, message = _ERROR_OF_KIND[spec.kind]
            raise error_cls(message)
