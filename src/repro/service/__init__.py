"""Campaign orchestration service.

Runs characterization campaigns as resumable, fault-tolerant,
observable jobs instead of one monolithic in-process call:

* :mod:`repro.service.jobs` -- ``(module, row-chunk)`` work-unit
  decomposition (gap-partitioned, merge-safe);
* :mod:`repro.service.orchestrator` -- :class:`CampaignService`:
  scheduling (inline or process pool), retry with backoff, module
  quarantine, bit-identical merge;
* :mod:`repro.service.checkpoint` -- atomic per-unit checkpoints and
  ``--resume``;
* :mod:`repro.service.faults` -- seedable injection of transient bench
  faults (supply droop, FPGA timeout, host disconnect);
* :mod:`repro.service.telemetry` -- JSON-lines event log plus
  unit/campaign metrics.

CLI: ``python -m repro.service --help``; ``docs/SERVICE.md`` has the
full job model and telemetry schema.
"""

from repro.service.faults import FAULT_KINDS, FaultInjector, FaultPlan, FaultSpec
from repro.service.jobs import WorkUnit, plan_units
from repro.service.orchestrator import CampaignOutcome, CampaignService
from repro.service.telemetry import (
    CampaignMetrics,
    TelemetryLog,
    UnitMetrics,
    read_events,
)

__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "WorkUnit",
    "plan_units",
    "CampaignOutcome",
    "CampaignService",
    "CampaignMetrics",
    "TelemetryLog",
    "UnitMetrics",
    "read_events",
]
