"""The campaign orchestration service.

:class:`CampaignService` turns a study request into a fault-tolerant,
resumable, observable campaign:

1. **decompose** -- the request becomes ``(module, row-chunk)`` work
   units (:mod:`repro.service.jobs`), the same gap-partitioned chunking
   the parallel runner uses;
2. **schedule** -- units run inline (``max_workers<=1``) or across a
   process pool, each attempt in a freshly built bench;
3. **tolerate** -- a :class:`~repro.errors.BenchFaultError` (real or
   injected via a :class:`~repro.service.faults.FaultPlan`) triggers
   retry with exponential backoff; a unit that exhausts its attempts
   quarantines its *module* -- reported, never fatal to the campaign;
4. **checkpoint** -- completed units persist atomically
   (:mod:`repro.service.checkpoint`); ``run(resume=True)`` restores
   them instead of re-running;
5. **merge** -- surviving parts reassemble through
   :func:`repro.core.campaign.merge_module_chunks`, so the merged
   :class:`~repro.core.study.StudyResult` is record-identical to a
   sequential, fault-free run;
6. **observe** -- every step emits a structured telemetry event
   (:mod:`repro.service.telemetry`) and bumps the shared
   :data:`~repro.core.perf.PROFILER`.

Determinism: every attempt rebuilds its bench from the campaign seed,
so retries (and resumed runs) replay the exact measurement a sequential
study would make -- asserted bit-for-bit by
``tests/service/test_orchestrator.py``.
"""

from __future__ import annotations

import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.campaign import (
    _attach_state,
    _build_shared_states,
    _release_shared_states,
    merge_module_chunks,
)
from repro.core.perf import PROFILER
from repro.core.probe import engine_selection
from repro.core.results import ModuleResult
from repro.core.scale import StudyScale
from repro.core.serialization import (
    module_result_from_dict,
    module_result_to_dict,
)
from repro.core.study import TEST_TYPES, CharacterizationStudy, StudyResult
from repro.errors import (
    BenchFaultError,
    ConfigurationError,
    WorkerTimeoutError,
)
from repro.obs import clock
from repro.obs import context as obs_context
from repro.obs.flightrec import RECORDER
from repro.obs.metrics import REGISTRY, snapshot_delta
from repro.obs.trace import TRACER
from repro.service.checkpoint import (
    CheckpointStore,
    SERVICE_SCHEMA_VERSION,
    campaign_dir,
    campaign_fingerprint,
)
from repro.service.faults import FaultInjector, FaultPlan, FaultSpec
from repro.service.jobs import WorkUnit, plan_units
from repro.service.telemetry import (
    CampaignMetrics,
    TelemetryLog,
    UnitMetrics,
)


def _execute_unit(
    job: Tuple,
) -> Tuple[ModuleResult, float, Dict, Optional[Dict]]:
    """Worker entry point: characterize one (module, row-chunk) unit.

    Module-level so it pickles into pool workers; also called directly
    in inline mode. Raises :class:`~repro.errors.BenchFaultError` when
    the (possibly injected) bench faults mid-attempt.

    Besides the result and its wall clock, returns the metric delta the
    attempt produced (baseline-relative, so forked pool workers never
    re-report inherited registry state) and -- in pool mode with trace
    propagation active -- the worker's Chrome-trace fragment. The
    coordinator merges the delta and collects the fragment only across
    true process boundaries; in inline mode the increments and spans
    already landed in this process's registry/tracer.

    The job's trailing ``obs`` dict carries the propagated trace
    context (worker spans re-parent under the submitting job) and the
    flight-recorder dump directory. Pool-side, the worker resets the
    inherited tracer before recording -- safe because the fragment is
    this attempt's whole story -- and wraps the attempt in one
    ``work-unit`` root span; inline, the coordinator's live tracer is
    left untouched so span nesting stays exactly as PR 5 shipped it.
    """
    module, rows, tests, scale, seed, probe_engine, program, fault_spec, \
        state_handle, obs_cfg = job
    obs_cfg = obs_cfg or {}
    pool_side = bool(obs_cfg.get("pool"))
    trace_ctx = None
    if pool_side:
        if obs_cfg.get("flight_dir"):
            RECORDER.configure(obs_cfg["flight_dir"])
            RECORDER.attach()
        trace_ctx = obs_context.TraceContext.from_dict(
            obs_cfg.get("trace")
        )
        if trace_ctx is not None:
            TRACER.reset()
            TRACER.label = f"repro worker pid {os.getpid()}"
            TRACER.enable()
    injector = FaultInjector(fault_spec) if fault_spec is not None else None
    state = _attach_state(state_handle)
    try:
        with obs_context.activate(trace_ctx):
            study = CharacterizationStudy(
                scale=scale, seed=seed, probe_engine=probe_engine,
                fault_injector=injector, device_state=state,
                program=program,
            )
            baseline = REGISTRY.snapshot()
            started = clock.monotonic()
            unit_span = (
                TRACER.span("work-unit", module=module, rows=len(rows),
                            engine=probe_engine, pid=os.getpid())
                if pool_side else _noop_span()
            )
            with unit_span:
                result = study.run_module(
                    module, tests=tests, rows=list(rows)
                )
            wall = clock.monotonic() - started
            REGISTRY.histogram(
                "repro_service_unit_run_seconds",
                "in-worker wall clock per work-unit attempt by engine "
                "tier",
                labels=("engine",),
            ).labels(engine=probe_engine).observe(wall)
            delta = snapshot_delta(baseline, REGISTRY.snapshot())
    finally:
        if state is not None:
            state.close()
    fragment = None
    if pool_side and trace_ctx is not None and TRACER.enabled:
        fragment = TRACER.chrome_trace()
        TRACER.disable()
    return result, wall, delta, fragment


class _noop_span:
    """Placeholder context for inline attempts (no extra span)."""

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return None


@dataclass
class CampaignOutcome:
    """Everything a finished orchestrated campaign produced."""

    study: StudyResult
    metrics: CampaignMetrics
    units: Dict[str, UnitMetrics] = field(default_factory=dict)
    #: Chrome-trace fragments returned by pool workers (also deposited
    #: in :mod:`repro.obs.context`'s collector for stitching).
    trace_fragments: List[Dict] = field(default_factory=list)


class CampaignService:
    """Resumable, fault-tolerant campaign orchestration.

    Parameters
    ----------
    modules / tests / scale / seed:
        The campaign request (same semantics as
        :meth:`~repro.core.study.CharacterizationStudy.run`).
    probe_engine:
        Engine override; resolved once (param, else
        ``REPRO_PROBE_ENGINE``, else ``"batch"``) and passed explicitly
        to workers so pool processes cannot drift from the parent's
        environment.
    chunks_per_module:
        Target chunk count per module (default: the scale's
        ``row_chunks``).
    max_workers:
        ``<=1`` runs units in-process (deterministic scheduling, no
        pool overhead); ``N>1`` fans units out over a process pool.
    max_attempts:
        Attempts per unit before its module is quarantined.
    backoff:
        Base retry delay in seconds; attempt ``n`` waits
        ``backoff * 2**(n-1)``.
    fault_plan:
        Optional :class:`~repro.service.faults.FaultPlan` injecting
        transient bench faults (rehearsal / chaos testing).
    checkpoint_dir / checkpoint_base:
        Exact checkpoint directory, or a base directory under which a
        per-campaign subdirectory (``campaign-<fingerprint>``) is
        derived. At most one may be given; both None disables
        checkpointing.
    telemetry:
        A :class:`~repro.service.telemetry.TelemetryLog`; default is an
        in-memory log.
    progress:
        Optional ``(message: str) -> None`` callback for live progress.
    shared_state:
        Generate each module's per-cell parameter planes once, in the
        coordinator, into shared memory (:mod:`repro.core.soa`) and
        have pool workers attach them zero-copy instead of re-deriving
        the device model per process and per retry attempt (default
        True; results are bit-identical either way). Only used in pool
        mode; silently disabled where shared memory is unavailable.
    flight_dir:
        Optional directory for flight-recorder dumps. When set, the
        coordinator's :data:`~repro.obs.flightrec.RECORDER` follows the
        event bus and span stream for the duration of :meth:`run`, pool
        workers configure their own recorders at the same directory,
        and the failure paths (fault injection, the timeout reaper,
        quarantine) flush their rings there; the resulting dump paths
        ride on the corresponding telemetry events.
    unit_timeout:
        Per-attempt wall-clock deadline (seconds) in pool mode. An
        attempt that exceeds it is declared hung: the pool's worker
        processes are killed (a :class:`~concurrent.futures.
        ProcessPoolExecutor` cannot reap a single worker), the unit is
        charged a :class:`~repro.errors.WorkerTimeoutError` fault and
        retried like any transient bench fault, and innocent in-flight
        units are restarted at the same attempt -- every rebuilt bench
        replays bit-identically, so neither reaping nor restarting can
        change the merged study. ``None`` (default) disables the
        reaper; inline mode ignores it (a hung inline unit shares our
        process and cannot be reaped).
    program:
        Optional registered DSL program name (:mod:`repro.progdsl`)
        every worker's study runs its probe schedules through; chunk
        planning widens its gap to the program's coupling reach, and
        the campaign fingerprint (hence checkpoint identity)
        incorporates the canonicalized schedule. None (and any
        structurally-default program) is the paper's schedule.
    """

    def __init__(
        self,
        modules: Sequence[str],
        tests: Sequence[str] = TEST_TYPES,
        scale: StudyScale = None,
        seed: int = 0,
        probe_engine: str = None,
        chunks_per_module: Optional[int] = None,
        max_workers: int = 0,
        max_attempts: int = 3,
        backoff: float = 0.0,
        fault_plan: Optional[FaultPlan] = None,
        checkpoint_dir: Optional[str] = None,
        checkpoint_base: Optional[str] = None,
        telemetry: Optional[TelemetryLog] = None,
        progress: Optional[Callable[[str], None]] = None,
        shared_state: bool = True,
        unit_timeout: Optional[float] = None,
        program: Optional[str] = None,
        flight_dir: Optional[str] = None,
    ):
        from repro.progdsl import compile_program

        compile_program(program)  # fail fast on unknown program names
        if max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1: {max_attempts}"
            )
        if backoff < 0:
            raise ConfigurationError(f"backoff must be >= 0: {backoff}")
        if unit_timeout is not None and unit_timeout <= 0:
            raise ConfigurationError(
                f"unit_timeout must be > 0 (or None): {unit_timeout}"
            )
        if checkpoint_dir and checkpoint_base:
            raise ConfigurationError(
                "pass checkpoint_dir or checkpoint_base, not both"
            )
        self.modules = list(modules)
        self.tests = tuple(tests)
        self.scale = scale or StudyScale.bench()
        self.seed = seed
        self.probe_engine = engine_selection(probe_engine)
        self.chunks_per_module = chunks_per_module
        self.max_workers = max_workers
        self.max_attempts = max_attempts
        self.backoff = backoff
        self.fault_plan = fault_plan
        self.shared_state = shared_state
        self.unit_timeout = unit_timeout
        self.program = program
        self.flight_dir = flight_dir
        self._trace_context: Optional[obs_context.TraceContext] = None
        self._device_states: Dict[str, object] = {}
        self.telemetry = telemetry or TelemetryLog()
        self._progress = progress or (lambda message: None)
        self.fingerprint = campaign_fingerprint(
            self.tests, self.modules, self.scale, self.seed,
            self.probe_engine, self.chunks_per_module,
            program=self.program,
        )
        if checkpoint_base:
            checkpoint_dir = campaign_dir(checkpoint_base, self.fingerprint)
        self.checkpoint_dir = checkpoint_dir

    # -- public API -------------------------------------------------------------

    def run(
        self,
        resume: bool = False,
        on_unit_done: Optional[Callable[[str, int], None]] = None,
    ) -> CampaignOutcome:
        """Execute (or resume) the campaign; returns the merged outcome.

        ``on_unit_done(unit_id, completed_count)`` fires after each
        unit's results are safely checkpointed -- the integration tests
        use it to simulate a mid-run kill; an exception it raises
        propagates after durability, never before.
        """
        if not self.flight_dir:
            return self._run(resume, on_unit_done)
        RECORDER.configure(self.flight_dir)
        RECORDER.attach()
        try:
            return self._run(resume, on_unit_done)
        finally:
            RECORDER.detach()

    def _run(
        self,
        resume: bool,
        on_unit_done: Optional[Callable[[str, int], None]],
    ) -> CampaignOutcome:
        started = clock.monotonic()
        units = plan_units(
            self.modules, self.scale, self.tests, self.chunks_per_module,
            program=self.program,
        )
        metrics = CampaignMetrics(units_planned=len(units))
        unit_metrics = {
            unit.unit_id: UnitMetrics(unit_id=unit.unit_id,
                                      module=unit.module)
            for unit in units
        }
        self.telemetry.emit(
            "campaign_started",
            fingerprint=self.fingerprint,
            modules=list(self.modules),
            tests=list(self.tests),
            seed=self.seed,
            probe_engine=self.probe_engine,
            units=len(units),
            resume=resume,
        )

        store: Optional[CheckpointStore] = None
        completed: Dict[str, ModuleResult] = {}
        if self.checkpoint_dir:
            store = CheckpointStore(self.checkpoint_dir)
            payloads = store.begin(self._manifest(), resume)
            for unit in units:
                payload = payloads.get(unit.unit_id)
                if payload is None:
                    continue
                if (
                    tuple(payload.get("rows", ())) != unit.rows
                    or tuple(payload.get("tests", ())) != unit.tests
                ):
                    continue  # plan changed under the checkpoint; re-run
                completed[unit.unit_id] = module_result_from_dict(
                    payload["result"]
                )
                record = unit_metrics[unit.unit_id]
                record.status = "resumed"
                record.attempts = payload.get("attempts", 1)
                record.wall_seconds = payload.get("wall_seconds", 0.0)
                metrics.units_resumed += 1
                self.telemetry.emit("unit_resumed", unit=unit.unit_id,
                                    module=unit.module)

        pending = [u for u in units if u.unit_id not in completed]
        state = _RunState(
            units=units, pending=pending, completed=completed,
            metrics=metrics, unit_metrics=unit_metrics,
            on_unit_done=on_unit_done, store=store,
        )
        with TRACER.span(
            "campaign", fingerprint=self.fingerprint, units=len(units),
            seed=self.seed, engine=self.probe_engine,
            workers=self.max_workers,
        ) as campaign_span:
            # Pool workers re-parent their spans under this campaign
            # span (which itself parents under any ambient context the
            # API's admission span activated).
            self._trace_context = campaign_span.context()
            try:
                if pending:
                    if self.max_workers <= 1:
                        self._run_inline(state)
                    else:
                        self._run_pool(state)
                study = self._merge(state)
            finally:
                self._trace_context = None
        metrics.wall_seconds = clock.monotonic() - started
        metrics.publish()
        self.telemetry.emit(
            "campaign_finished",
            completed=metrics.units_completed,
            resumed=metrics.units_resumed,
            failed=metrics.units_failed,
            retries=metrics.retries,
            quarantined=sorted(metrics.quarantined),
            wall_seconds=round(metrics.wall_seconds, 6),
        )
        self._progress(metrics.summary())
        return CampaignOutcome(study=study, metrics=metrics,
                               units=unit_metrics,
                               trace_fragments=state.fragments)

    # -- internals --------------------------------------------------------------

    def _manifest(self) -> Dict:
        from repro.core.serialization import _scale_to_dict

        # Informational only -- the trace id names which distributed
        # trace this campaign ran under; it does NOT participate in the
        # fingerprint (resume only compares fingerprints, so a resumed
        # campaign under a new trace still restores its units).
        ambient = obs_context.current()
        trace_id = ambient.trace_id if ambient else TRACER.trace_id
        return {
            "service_schema": SERVICE_SCHEMA_VERSION,
            "fingerprint": self.fingerprint,
            "tests": list(self.tests),
            "modules": list(self.modules),
            "scale": _scale_to_dict(self.scale),
            "seed": self.seed,
            "probe_engine": self.probe_engine,
            "chunks_per_module": self.chunks_per_module,
            "program": self.program,
            "trace_id": trace_id,
            "created": clock.wall(),
        }

    def _job(
        self, unit: WorkUnit, attempt: int, pool: bool = False,
    ) -> Tuple:
        spec: Optional[FaultSpec] = None
        if self.fault_plan is not None:
            spec = self.fault_plan.spec_for(unit.unit_id, attempt)
        state = self._device_states.get(unit.module)
        obs_cfg: Dict = {"pool": pool}
        if pool:
            if self.flight_dir:
                obs_cfg["flight_dir"] = self.flight_dir
            if self._trace_context is not None:
                obs_cfg["trace"] = self._trace_context.to_dict()
        return (
            unit.module, unit.rows, unit.tests, self.scale, self.seed,
            self.probe_engine, self.program, spec,
            state.handle if state is not None else None,
            obs_cfg,
        )

    def _start_attempt(
        self, state: "_RunState", unit: WorkUnit, attempt: int
    ) -> None:
        self.telemetry.emit("unit_started", unit=unit.unit_id,
                            module=unit.module, attempt=attempt,
                            rows=len(unit.rows))
        state.unit_metrics[unit.unit_id].attempts += 1

    def _finish_unit(
        self, state: "_RunState", unit: WorkUnit, result: ModuleResult,
        attempt: int, wall_seconds: float,
    ) -> None:
        state.completed[unit.unit_id] = result
        record = state.unit_metrics[unit.unit_id]
        record.status = "completed"
        record.wall_seconds = wall_seconds
        state.metrics.units_completed += 1
        PROFILER.count("service.units")
        REGISTRY.histogram(
            "repro_service_unit_seconds",
            "in-worker wall clock per completed work unit",
        ).observe(wall_seconds)
        if state.store is not None:
            with PROFILER.phase("service.checkpoint"):
                path = state.store.write_unit({
                    "unit_id": unit.unit_id,
                    "module": unit.module,
                    "chunk_index": unit.chunk_index,
                    "rows": list(unit.rows),
                    "tests": list(unit.tests),
                    "attempts": attempt + 1,
                    "wall_seconds": round(wall_seconds, 6),
                    "result": module_result_to_dict(result),
                })
            self.telemetry.emit("checkpoint_written", unit=unit.unit_id,
                                path=path)
        self.telemetry.emit(
            "unit_finished", unit=unit.unit_id, module=unit.module,
            attempt=attempt, wall_seconds=round(wall_seconds, 6),
            records=(len(result.rowhammer) + len(result.trcd)
                     + len(result.retention)),
        )
        done = state.metrics.units_completed + state.metrics.units_resumed
        self._progress(
            f"[{done}/{state.metrics.units_planned}] {unit.unit_id} "
            f"completed in {wall_seconds:.2f}s"
            + (f" (attempt {attempt + 1})" if attempt else "")
        )
        # Durability first, then the caller's completion hook: anything
        # it does (including killing the run) happens after persistence.
        if state.on_unit_done is not None:
            state.on_unit_done(unit.unit_id, done)

    def _handle_fault(
        self, state: "_RunState", unit: WorkUnit, attempt: int,
        error: BenchFaultError,
    ) -> bool:
        """Process one failed attempt; returns True when a retry should
        be scheduled, False when the module was quarantined."""
        kind = type(error).__name__
        record = state.unit_metrics[unit.unit_id]
        record.faults.append(kind)
        state.metrics.record_fault(kind)
        PROFILER.count("service.faults")
        self.telemetry.emit("unit_fault", unit=unit.unit_id,
                            module=unit.module, attempt=attempt,
                            kind=kind, error=str(error))
        next_attempt = attempt + 1
        if next_attempt < self.max_attempts:
            delay = self.backoff * (2 ** attempt) if self.backoff else 0.0
            record.retries += 1
            state.metrics.retries += 1
            PROFILER.count("service.retries")
            self.telemetry.emit("unit_retry", unit=unit.unit_id,
                                attempt=next_attempt,
                                backoff_seconds=round(delay, 6))
            self._progress(
                f"{unit.unit_id}: {kind} on attempt {attempt}; retrying "
                f"(backoff {delay:.2f}s)"
            )
            if delay:
                time.sleep(delay)
            return True
        reason = (
            f"unit {unit.unit_id} failed {self.max_attempts} attempts "
            f"(last: {kind}: {error})"
        )
        state.quarantine(unit.module, reason)
        record.status = "quarantined"
        state.metrics.units_failed += 1
        dump_path = RECORDER.dump("module_quarantined", extra={
            "module": unit.module, "unit": unit.unit_id,
            "reason": reason,
        })
        self.telemetry.emit("module_quarantined", module=unit.module,
                            unit=unit.unit_id, reason=reason,
                            flightrec=dump_path)
        self._progress(f"QUARANTINED {unit.module}: {reason}")
        return False

    def _skip_unit(self, state: "_RunState", unit: WorkUnit) -> None:
        record = state.unit_metrics[unit.unit_id]
        if record.status in ("completed", "resumed", "quarantined"):
            return
        record.status = "skipped"
        state.metrics.units_failed += 1
        self.telemetry.emit("unit_skipped", unit=unit.unit_id,
                            module=unit.module,
                            reason="module quarantined")

    def _run_inline(self, state: "_RunState") -> None:
        for unit in state.pending:
            if unit.module in state.metrics.quarantined:
                self._skip_unit(state, unit)
                continue
            attempt = 0
            while True:
                self._start_attempt(state, unit, attempt)
                try:
                    with PROFILER.phase("service.unit"):
                        # Inline attempt: the metric delta and spans
                        # already landed in this process's registry
                        # and tracer.
                        result, wall, _, _ = _execute_unit(
                            self._job(unit, attempt)
                        )
                except BenchFaultError as error:
                    if self._handle_fault(state, unit, attempt, error):
                        attempt += 1
                        continue
                    break
                self._deliver_result(state, unit, attempt, result, wall)
                break

    def _deliver_result(
        self,
        state: "_RunState",
        unit: WorkUnit,
        attempt: int,
        result: ModuleResult,
        wall_seconds: float,
        delta: Optional[Dict] = None,
        fragment: Optional[Dict] = None,
    ) -> bool:
        """Accept one successful attempt's outcome, exactly once per unit.

        A unit can deliver more than once in degenerate schedules: an
        attempt declared hung is reaped and re-queued, and the original
        outcome surfaces later anyway (the worker was mid-return when
        the reaper fired). Outcomes are bit-identical by construction,
        so the duplicate is dropped *whole* -- in particular its metric
        delta is never merged, keeping ``repro_probes_*`` (and every
        other counter) exact: one planned unit, one unit's worth of
        telemetry. Dedup is keyed on the unit id.
        """
        if unit.unit_id in state.completed:
            state.metrics.duplicates_dropped += 1
            REGISTRY.counter(
                "repro_service_duplicate_results_total",
                "late duplicate unit outcomes dropped by the coordinator",
            ).inc()
            self.telemetry.emit(
                "unit_duplicate_dropped", unit=unit.unit_id,
                module=unit.module, attempt=attempt,
            )
            return False
        if delta is not None and unit.unit_id not in state.merged_units:
            REGISTRY.merge_snapshot(delta)
            state.merged_units.add(unit.unit_id)
            RECORDER.record("metrics", {
                "unit": unit.unit_id, "delta": delta,
            })
        if fragment is not None:
            # Deposit the worker's trace fragment for stitching; the
            # dedup above guarantees at most one fragment per unit.
            obs_context.add_fragment(fragment)
            state.fragments.append(fragment)
        self._finish_unit(state, unit, result, attempt, wall_seconds)
        return True

    def _run_pool(self, state: "_RunState") -> None:
        if self.shared_state:
            # One shared-memory block per module with pending units;
            # every worker attempt (including retries) attaches it
            # instead of re-deriving the device model.
            pending_modules = sorted({u.module for u in state.pending})
            self._device_states = _build_shared_states(
                pending_modules, self.scale, self.seed
            )
            for module, shared in self._device_states.items():
                self.telemetry.emit(
                    "device_state_shared", module=module,
                    bytes=shared.nbytes,
                    rows=len(shared.handle.physical_rows),
                )
        try:
            self._drain_pool(state)
        finally:
            _release_shared_states(self._device_states)
            self._device_states = {}

    def _drain_pool(self, state: "_RunState") -> None:
        queue = deque((unit, 0) for unit in state.pending)
        inflight: Dict = {}  # future -> (unit, attempt, deadline)
        pool = ProcessPoolExecutor(max_workers=self.max_workers)
        try:
            while queue or inflight:
                while queue and len(inflight) < self.max_workers:
                    unit, attempt = queue.popleft()
                    if unit.module in state.metrics.quarantined:
                        self._skip_unit(state, unit)
                        continue
                    self._start_attempt(state, unit, attempt)
                    deadline = (
                        clock.monotonic() + self.unit_timeout
                        if self.unit_timeout else None
                    )
                    future = pool.submit(
                        _execute_unit, self._job(unit, attempt, pool=True)
                    )
                    inflight[future] = (unit, attempt, deadline)
                if not inflight:
                    break
                timeout = None
                if self.unit_timeout:
                    next_deadline = min(
                        deadline for _, _, deadline in inflight.values()
                    )
                    timeout = max(0.02, next_deadline - clock.monotonic())
                done, _ = wait(inflight, timeout=timeout,
                               return_when=FIRST_COMPLETED)
                for future in done:
                    unit, attempt, _ = inflight.pop(future)
                    if unit.module in state.metrics.quarantined:
                        # A sibling unit quarantined the module while
                        # this one was in flight; drop its outcome.
                        future.exception()  # consume, don't raise
                        self._skip_unit(state, unit)
                        continue
                    try:
                        result, wall, delta, fragment = future.result()
                    except BenchFaultError as error:
                        if self._handle_fault(state, unit, attempt, error):
                            queue.appendleft((unit, attempt + 1))
                        continue
                    self._deliver_result(
                        state, unit, attempt, result, wall, delta,
                        fragment,
                    )
                if self.unit_timeout:
                    now = clock.monotonic()
                    overdue = [
                        future
                        for future, (_, _, deadline) in inflight.items()
                        if now >= deadline and not future.done()
                    ]
                    if overdue:
                        pool = self._reap(
                            pool, state, inflight, overdue, queue
                        )
        finally:
            if any(not future.done() for future in inflight):
                # Exceptional exit with workers still running (or
                # hung): never block shutdown on them.
                _terminate_pool(pool)
            else:
                pool.shutdown(wait=True)

    def _reap(
        self,
        pool: ProcessPoolExecutor,
        state: "_RunState",
        inflight: Dict,
        overdue: List,
        queue: deque,
    ) -> ProcessPoolExecutor:
        """Kill a pool with hung workers and reschedule its in-flight
        units; returns the replacement pool.

        Overdue units are charged a :class:`~repro.errors.
        WorkerTimeoutError` fault (retry or quarantine, like any bench
        fault). The executor cannot terminate a single worker, so the
        whole pool is torn down: innocent in-flight units are
        re-queued at the *same* attempt -- their rebuilt benches replay
        bit-identically, and :meth:`_deliver_result` drops any late
        duplicate outcome that slipped out before the teardown.
        """
        reaped, restarted = [], []
        for future in overdue:
            unit, attempt, _ = inflight.pop(future)
            reaped.append(unit.unit_id)
            error = WorkerTimeoutError(
                f"unit {unit.unit_id} attempt {attempt} exceeded "
                f"unit_timeout={self.unit_timeout}s; worker reaped"
            )
            if self._handle_fault(state, unit, attempt, error):
                queue.appendleft((unit, attempt + 1))
        for future, (unit, attempt, _) in list(inflight.items()):
            restarted.append(unit.unit_id)
            self.telemetry.emit(
                "unit_restarted", unit=unit.unit_id, module=unit.module,
                attempt=attempt, reason="pool reaped",
            )
            queue.appendleft((unit, attempt))
        inflight.clear()
        _terminate_pool(pool)
        REGISTRY.counter(
            "repro_service_worker_timeouts_total",
            "pool workers reaped after exceeding unit_timeout",
        ).inc(len(reaped))
        # The coordinator's own last moments around the reap; the hung
        # worker already flushed its ring when the stall was injected
        # (it cannot after SIGTERM).
        dump_path = RECORDER.dump("pool_reaped", extra={
            "reaped": reaped, "restarted": restarted,
            "timeout_seconds": self.unit_timeout,
        })
        self.telemetry.emit(
            "pool_reaped", reaped=reaped, restarted=restarted,
            timeout_seconds=self.unit_timeout, flightrec=dump_path,
        )
        self._progress(
            f"reaped {len(reaped)} hung worker attempt(s) "
            f"({', '.join(reaped)}); pool rebuilt"
        )
        return ProcessPoolExecutor(max_workers=self.max_workers)

    def _merge(self, state: "_RunState") -> StudyResult:
        study = StudyResult(scale=self.scale, seed=self.seed)
        with PROFILER.phase("service.merge"):
            for module in self.modules:
                if module in state.metrics.quarantined:
                    continue
                parts = [
                    (unit.chunk_index, state.completed[unit.unit_id])
                    for unit in state.units
                    if unit.module == module
                    and unit.unit_id in state.completed
                ]
                if not parts:
                    continue
                parts.sort(key=lambda item: item[0])
                study.modules[module] = merge_module_chunks(
                    module, [part for _, part in parts], self.scale
                )
        return study


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down without waiting on its (possibly hung) workers.

    ``ProcessPoolExecutor`` offers no per-worker reaping, so hung-worker
    recovery kills every worker process and abandons the executor; the
    brief join afterwards just prevents zombie processes.
    """
    processes = list(getattr(pool, "_processes", {}).values())
    for process in processes:
        try:
            process.terminate()
        except Exception:  # already dead / never started
            pass
    pool.shutdown(wait=False, cancel_futures=True)
    for process in processes:
        try:
            process.join(timeout=5.0)
        except Exception:
            pass


@dataclass
class _RunState:
    """Mutable bookkeeping of one ``run()`` invocation."""

    units: List[WorkUnit]
    pending: List[WorkUnit]
    completed: Dict[str, ModuleResult]
    metrics: CampaignMetrics
    unit_metrics: Dict[str, UnitMetrics]
    on_unit_done: Optional[Callable[[str, int], None]]
    store: Optional[CheckpointStore]
    #: Unit ids whose worker metric delta was already folded into the
    #: coordinator registry -- the dedup set that keeps re-queued /
    #: duplicate deliveries from inflating ``repro_probes_*``.
    merged_units: set = field(default_factory=set)
    #: Chrome-trace fragments accepted from pool workers, in delivery
    #: order (one per unit at most; duplicates never reach here).
    fragments: List[Dict] = field(default_factory=list)

    def quarantine(self, module: str, reason: str) -> None:
        """Mark a module as quarantined (idempotent)."""
        self.metrics.quarantined.setdefault(module, reason)
