"""Work-unit decomposition for orchestrated campaigns.

A campaign over ``(modules, tests, scale, seed)`` decomposes into
``(module, row-chunk)`` work units -- the same gap-partitioned chunking
the parallel campaign runner uses (:func:`repro.core.campaign.
plan_row_chunks`), so units are independent under the device model's
coupling rules and merge bit-identically to a sequential run. Each unit
carries everything a worker needs to characterize its rows in a fresh
process: the module name, the row subset, and the test tuple.

Unit ids are stable (``"<module>/<chunk_index>"``) across runs of the
same campaign, which is what makes checkpoints resumable and fault
plans reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.campaign import module_mapping, plan_row_chunks
from repro.core.sampling import sample_rows
from repro.core.scale import StudyScale
from repro.core.study import TEST_TYPES
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class WorkUnit:
    """One schedulable unit: a row chunk of one module's campaign."""

    unit_id: str
    module: str
    chunk_index: int
    rows: Tuple[int, ...]
    tests: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.rows:
            raise ConfigurationError(f"unit {self.unit_id}: empty row set")


def plan_units(
    modules: Sequence[str],
    scale: StudyScale = None,
    tests: Sequence[str] = TEST_TYPES,
    chunks_per_module: Optional[int] = None,
    program: Optional[str] = None,
) -> List[WorkUnit]:
    """Decompose a campaign into independent work units.

    Rows are the scale's standard sample (what a sequential
    ``run_module`` would visit), partitioned into at most
    ``chunks_per_module`` (default: the scale's ``row_chunks``)
    gap-separated chunks -- the gap widened to the DSL ``program``'s
    coupling reach when one is selected. Units are ordered by module
    (in the given order) then chunk index.
    """
    from repro.progdsl import program_chunk_gap

    scale = scale or StudyScale.bench()
    tests = tuple(tests)
    for test in tests:
        if test not in TEST_TYPES:
            raise ConfigurationError(f"unknown test type {test!r}")
    if not tests:
        raise ConfigurationError("tests must not be empty")
    seen = set()
    units: List[WorkUnit] = []
    for name in modules:
        if name in seen:
            raise ConfigurationError(f"duplicate module {name!r}")
        seen.add(name)
        mapping = module_mapping(name, scale)  # validates the name too
        rows = sample_rows(
            mapping.num_rows, scale.rows_per_module, scale.row_chunks
        )
        chunks = plan_row_chunks(
            rows, mapping, chunks_per_module or scale.row_chunks,
            gap=program_chunk_gap(program),
        )
        for index, chunk in enumerate(chunks):
            units.append(
                WorkUnit(
                    unit_id=f"{name}/{index}",
                    module=name,
                    chunk_index=index,
                    rows=tuple(chunk),
                    tests=tests,
                )
            )
    return units
