"""Orchestration-service CLI.

Run a characterization campaign as a resumable, fault-tolerant job::

    python -m repro.service --modules A0 B3 C5 --tests rowhammer \
        --workers 4 --events campaign.jsonl --out study.json

Kill it at any point and pick up where it left off::

    python -m repro.service --modules A0 B3 C5 --tests rowhammer \
        --workers 4 --resume

Rehearse infrastructure faults (retries and quarantine included)::

    python -m repro.service --modules C5 --scale tiny \
        --fault-rate 0.3 --fault-seed 7

Exit codes: 0 success; 2 configuration error; 3 completed but with
quarantined modules (their results are missing from the output).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.scale import SCALE_PRESETS
from repro.core.serialization import save_study
from repro.core.study import TEST_TYPES
from repro.errors import ConfigurationError
from repro.harness.cache import BENCH_MODULES
from repro.harness.validation import validate_modules, validate_program
from repro.obs import ProgressReporter, build_provenance, clock
from repro.obs import context as obs_context
from repro.obs.metrics import REGISTRY
from repro.obs.trace import TRACER
from repro.service.faults import FAULT_KINDS, FaultPlan
from repro.service.orchestrator import CampaignService
from repro.service.telemetry import TelemetryLog

#: Default base directory for checkpoints (one subdirectory per
#: campaign fingerprint).
DEFAULT_CHECKPOINT_BASE = ".service-checkpoints"


def _parse_fault_script(entries: List[str]) -> dict:
    """Parse ``UNIT:ATTEMPT:KIND`` triples (e.g. ``C5/0:0:power_droop``)."""
    scripted = {}
    for entry in entries:
        parts = entry.rsplit(":", 2)
        if len(parts) != 3:
            raise ConfigurationError(
                f"malformed --fault-script {entry!r}; expected "
                f"UNIT:ATTEMPT:KIND (e.g. C5/0:0:power_droop)"
            )
        unit_id, attempt, kind = parts
        try:
            scripted[(unit_id, int(attempt))] = kind
        except ValueError:
            raise ConfigurationError(
                f"malformed --fault-script attempt in {entry!r}"
            ) from None
    return scripted


def build_parser() -> argparse.ArgumentParser:
    """The service CLI's argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro.service",
        description=(
            "Run a characterization campaign as a resumable, "
            "fault-tolerant orchestrated job."
        ),
    )
    parser.add_argument(
        "--modules", nargs="*", default=list(BENCH_MODULES),
        help=f"modules to characterize (default: {' '.join(BENCH_MODULES)})",
    )
    parser.add_argument(
        "--tests", nargs="+", choices=TEST_TYPES, default=list(TEST_TYPES),
        help="test types to run (default: all three)",
    )
    parser.add_argument(
        "--scale", choices=sorted(SCALE_PRESETS), default="bench",
        help="study scale preset (default: bench)",
    )
    parser.add_argument("--seed", type=int, default=0,
                        help="root campaign seed (default 0)")
    parser.add_argument(
        "--probe-engine", choices=("fused", "batch", "fast", "command"),
        default=None,
        help="probe engine override (default: REPRO_PROBE_ENGINE or batch)",
    )
    parser.add_argument(
        "--program", default=None, metavar="NAME",
        help="registered DRAM-program DSL name the probe schedules run "
             "through (default: the paper's schedules); see "
             "docs/PROGRAMS.md",
    )
    parser.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="worker processes; 0/1 runs units in-process (default 0)",
    )
    parser.add_argument(
        "--chunks", type=int, default=None, metavar="N",
        help="target row chunks per module (default: the scale's)",
    )
    parser.add_argument(
        "--max-attempts", type=int, default=3, metavar="N",
        help="attempts per unit before its module is quarantined "
             "(default 3)",
    )
    parser.add_argument(
        "--backoff", type=float, default=0.1, metavar="SECONDS",
        help="base retry backoff; attempt n waits backoff*2^(n-1) "
             "(default 0.1)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-attempt deadline for pool-mode work units; a hung "
             "worker is reaped and the unit retried (default: none)",
    )
    parser.add_argument(
        "--checkpoint-dir", default=DEFAULT_CHECKPOINT_BASE, metavar="DIR",
        help=(
            "base directory for per-campaign checkpoints "
            f"(default: {DEFAULT_CHECKPOINT_BASE})"
        ),
    )
    parser.add_argument(
        "--no-checkpoint", action="store_true",
        help="disable checkpointing for this run",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="restore completed units from the campaign's checkpoints",
    )
    parser.add_argument(
        "--events", default=None, metavar="PATH",
        help="write the JSON-lines telemetry event log to PATH",
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="save the merged study as JSON to PATH",
    )
    parser.add_argument(
        "--fault-rate", type=float, default=0.0, metavar="P",
        help="probability a unit's first attempt suffers an injected "
             "bench fault (default 0)",
    )
    parser.add_argument("--fault-seed", type=int, default=0,
                        help="fault-plan seed (default 0)")
    parser.add_argument(
        "--fault-kinds", nargs="+", choices=FAULT_KINDS,
        default=list(FAULT_KINDS),
        help="fault kinds the random draw chooses between",
    )
    parser.add_argument(
        "--fault-attempts", type=int, default=1, metavar="N",
        help="random faults strike only attempts < N (default 1: "
             "retries always succeed)",
    )
    parser.add_argument(
        "--fault-script", action="append", default=[], metavar="U:A:K",
        help="script one fault: UNIT:ATTEMPT:KIND "
             "(e.g. C5/0:0:power_droop); repeatable",
    )
    parser.add_argument("--quiet", action="store_true",
                        help="suppress live progress output")
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record hierarchical spans and write Chrome-trace JSON "
             "(load in Perfetto / chrome://tracing) to PATH",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the metrics registry as Prometheus text to PATH",
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="render a live rate/ETA progress line on stderr",
    )
    parser.add_argument(
        "--flight-dir", default=None, metavar="DIR",
        help="keep a bounded in-memory flight recorder and dump it to "
             "DIR on faults, reaped timeouts, and quarantine",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        validate_modules(args.modules)
        validate_program(args.program)
        scripted = _parse_fault_script(args.fault_script)
        fault_plan = None
        if scripted or args.fault_rate > 0:
            fault_plan = FaultPlan(
                seed=args.fault_seed,
                rate=args.fault_rate,
                kinds=tuple(args.fault_kinds),
                faulty_attempts=args.fault_attempts,
                scripted=scripted,
            )
        progress = (lambda message: None) if args.quiet else (
            lambda message: print(message, file=sys.stderr)
        )
        if args.trace:
            TRACER.enable()
        reporter = ProgressReporter() if args.progress else None
        if reporter is not None:
            reporter.attach()
        started = clock.monotonic()
        try:
            with TelemetryLog(args.events, resume=args.resume) as telemetry:
                service = CampaignService(
                    modules=args.modules,
                    tests=tuple(args.tests),
                    scale=SCALE_PRESETS[args.scale](),
                    seed=args.seed,
                    probe_engine=args.probe_engine,
                    chunks_per_module=args.chunks,
                    max_workers=args.workers,
                    max_attempts=args.max_attempts,
                    backoff=args.backoff,
                    unit_timeout=args.timeout,
                    fault_plan=fault_plan,
                    checkpoint_base=(
                        None if args.no_checkpoint else args.checkpoint_dir
                    ),
                    telemetry=telemetry,
                    progress=progress,
                    program=args.program,
                    flight_dir=args.flight_dir,
                )
                outcome = service.run(resume=args.resume)
        finally:
            if reporter is not None:
                reporter.detach()
    except ConfigurationError as error:
        TRACER.disable()
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(outcome.metrics.summary())
    for name in sorted(outcome.study.modules):
        module = outcome.study.modules[name]
        print(
            f"{name}: {len(module.vpp_levels)} V_PP levels, "
            f"{len(module.rowhammer)} rowhammer / {len(module.trcd)} tRCD "
            f"/ {len(module.retention)} retention records"
        )
    if args.out:
        outcome.study.provenance = build_provenance(
            fingerprint=service.fingerprint,
            probe_engine=service.probe_engine,
            seed=args.seed,
            cache="off",
            wall_seconds=clock.monotonic() - started,
            counters=REGISTRY.counter_values(),
            tests=list(args.tests),
            modules=list(args.modules),
            scale=args.scale,
        )
        save_study(outcome.study, args.out)
        print(f"study saved: {args.out}")
    if args.trace:
        if obs_context.fragments():
            # Pool workers returned fragments: stitch them with the
            # coordinator's spans into one cross-process document.
            obs_context.write_stitched_trace(args.trace)
        else:
            TRACER.write_chrome_trace(args.trace)
        # Leave the process-global tracer clean for in-process callers
        # (tests, notebooks) that invoke main() repeatedly.
        TRACER.disable()
        obs_context.clear_fragments()
        print(f"trace written: {args.trace}", file=sys.stderr)
    if args.metrics_out:
        REGISTRY.write_prometheus(args.metrics_out)
        print(f"metrics written: {args.metrics_out}", file=sys.stderr)
    if outcome.metrics.quarantined:
        print(
            "warning: quarantined modules missing from the output: "
            + ", ".join(sorted(outcome.metrics.quarantined)),
            file=sys.stderr,
        )
        return 3
    return 0


if __name__ == "__main__":
    sys.exit(main())
