"""On-disk checkpoints for resumable campaigns.

Layout of a checkpoint directory::

    <dir>/manifest.json        # campaign identity (fingerprint, request)
    <dir>/unit-<module>-<chunk>.json   # one file per completed unit

Every file is published atomically (written to a temp file in the same
directory, then ``os.replace``d), so a campaign killed mid-write never
leaves a half-written unit behind -- at worst the unit is missing and is
re-run on resume. Unit payloads embed the serialized
:class:`~repro.core.results.ModuleResult` part
(:func:`repro.core.serialization.module_result_to_dict`) plus the unit's
row set, so resume can verify a checkpoint still matches the plan.

The manifest records a *campaign fingerprint* -- a content hash of the
request (tests, modules, scale, seed, probe engine, chunking) plus both
schema versions -- and ``--resume`` refuses to mix checkpoints from a
different campaign.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Any, Dict, Optional, Sequence

from repro.core.scale import StudyScale
from repro.core.serialization import SCHEMA_VERSION, _scale_to_dict
from repro.errors import ConfigurationError

#: Bumped when the checkpoint layout changes incompatibly.
SERVICE_SCHEMA_VERSION = 1

#: Manifest filename inside a checkpoint directory.
MANIFEST_NAME = "manifest.json"


def campaign_fingerprint(
    tests: Sequence[str],
    modules: Sequence[str],
    scale: StudyScale,
    seed: int,
    probe_engine: str,
    chunks_per_module: Optional[int],
    program: Optional[str] = None,
) -> str:
    """Content fingerprint of an orchestrated-campaign request.

    Everything that can change the merged result -- or the unit
    decomposition -- participates, so checkpoints from a different
    request never get merged together. A non-default DSL program
    contributes its name-normalized schedule; the default leaves the
    payload identical to a pre-DSL request.
    """
    payload = {
        "service_schema": SERVICE_SCHEMA_VERSION,
        "study_schema": SCHEMA_VERSION,
        "tests": sorted(tests),
        "modules": sorted(modules),
        "scale": _scale_to_dict(scale),
        "seed": seed,
        "probe_engine": probe_engine,
        "chunks_per_module": chunks_per_module,
    }
    if program is not None:
        from repro.progdsl import compile_program

        compiled = compile_program(program)
        if not compiled.is_default:
            payload["program"] = compiled.spec.schedule_key()
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:32]


def campaign_dir(base: str, fingerprint: str) -> str:
    """The per-campaign checkpoint directory under a base directory."""
    return os.path.join(base, f"campaign-{fingerprint[:12]}")


def _atomic_write_json(payload: Dict[str, Any], path: str) -> None:
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=".tmp-", suffix=".json"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


class CheckpointStore:
    """Atomic, resumable persistence of completed work units."""

    def __init__(self, directory: str):
        self.directory = directory

    # -- paths ------------------------------------------------------------------

    def _manifest_path(self) -> str:
        return os.path.join(self.directory, MANIFEST_NAME)

    def _unit_path(self, unit_id: str) -> str:
        safe = unit_id.replace("/", "-")
        return os.path.join(self.directory, f"unit-{safe}.json")

    # -- lifecycle --------------------------------------------------------------

    def begin(
        self, manifest: Dict[str, Any], resume: bool
    ) -> Dict[str, Dict[str, Any]]:
        """Prepare the directory for a campaign.

        Fresh start (``resume=False``): stale unit files and manifest
        are removed and the new manifest is written; returns ``{}``.

        Resume (``resume=True``): the stored manifest must exist and
        carry the same fingerprint (:class:`~repro.errors.
        ConfigurationError` otherwise); returns the completed unit
        payloads keyed by unit id. Corrupt unit files are dropped and
        their units re-run.
        """
        manifest_path = self._manifest_path()
        if resume:
            if not os.path.isfile(manifest_path):
                raise ConfigurationError(
                    f"cannot resume: no manifest at {manifest_path}"
                )
            try:
                with open(manifest_path) as handle:
                    stored = json.load(handle)
            except (OSError, ValueError) as error:
                raise ConfigurationError(
                    f"cannot resume: unreadable manifest at "
                    f"{manifest_path}: {error}"
                ) from None
            if stored.get("fingerprint") != manifest["fingerprint"]:
                raise ConfigurationError(
                    f"checkpoint directory {self.directory} belongs to a "
                    f"different campaign (fingerprint "
                    f"{stored.get('fingerprint')!r} != "
                    f"{manifest['fingerprint']!r}); start fresh or point "
                    f"--checkpoint-dir elsewhere"
                )
            return self._load_units()
        # Fresh start: drop anything a previous campaign left behind.
        if os.path.isdir(self.directory):
            for entry in os.listdir(self.directory):
                if entry == MANIFEST_NAME or (
                    entry.startswith("unit-") and entry.endswith(".json")
                ):
                    try:
                        os.unlink(os.path.join(self.directory, entry))
                    except OSError:
                        pass
        _atomic_write_json(manifest, manifest_path)
        return {}

    def write_unit(self, payload: Dict[str, Any]) -> str:
        """Atomically persist one completed unit; returns the path."""
        path = self._unit_path(payload["unit_id"])
        _atomic_write_json(payload, path)
        return path

    def _load_units(self) -> Dict[str, Dict[str, Any]]:
        units: Dict[str, Dict[str, Any]] = {}
        if not os.path.isdir(self.directory):
            return units
        for entry in sorted(os.listdir(self.directory)):
            if not (entry.startswith("unit-") and entry.endswith(".json")):
                continue
            path = os.path.join(self.directory, entry)
            try:
                with open(path) as handle:
                    payload = json.load(handle)
                unit_id = payload["unit_id"]
            except (OSError, ValueError, KeyError, TypeError):
                # Corrupt or stale: drop it; the unit is simply re-run.
                try:
                    os.unlink(path)
                except OSError:
                    pass
                continue
            units[unit_id] = payload
        return units
