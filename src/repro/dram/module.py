"""The simulated DDR4 DIMM.

A :class:`DramModule` ties together the Table 3 profile (identity +
calibration anchors), the derived device physics, the per-bank arrays,
the optional TRR defense, and the shared operating environment (V_PP,
temperature, simulated time) that the SoftMC infrastructure manipulates.

The module is the unit the paper characterizes: the infrastructure sets
its wordline voltage, and every observable -- bit flips, latency
requirements, retention behaviour -- flows from the banks' physics.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.dram.bank import Bank
from repro.dram.calibration import ModuleCalibration, ModuleGeometry, calibrate
from repro.dram.chip import Chip
from repro.dram.commands import Command, CommandKind
from repro.dram.environment import ModuleEnvironment
from repro.dram.mapping import make_mapping
from repro.dram.profiles import ModuleProfile
from repro.dram.spd import SpdRecord
from repro.dram.trr import TargetRowRefresh, TrrConfig
from repro.errors import CommunicationError, DramAddressError
from repro.rng import RngHub


class DramModule:
    """One simulated DDR4 DIMM.

    Parameters
    ----------
    profile:
        The Table 3 module profile to instantiate.
    geometry:
        Array geometry override (rows per bank, banks, row bits).
    seed:
        Root seed for all of the module's stochastic structure. Two
        modules built from the same profile and seed are bit-identical.
    trr_enabled:
        Install the TRR defense model. The paper's tests leave this off
        (equivalently: never issue REF); the TRR-interaction example
        turns it on.
    """

    def __init__(
        self,
        profile: ModuleProfile,
        geometry: ModuleGeometry = None,
        seed: int = 0,
        trr_enabled: bool = False,
        trr_config: TrrConfig = None,
    ):
        self._profile = profile
        self._calibration = calibrate(profile, geometry)
        self._env = ModuleEnvironment()
        self._hub = RngHub(seed).spawn(f"module/{profile.name}")
        geometry = self._calibration.geometry

        width = int(profile.chip_org.lstrip("x"))
        self._chips = [Chip(i, width) for i in range(64 // width)]

        self._banks: List[Bank] = []
        for index in range(geometry.banks):
            mapping = make_mapping(
                self._calibration.vendor.mapping_kind, geometry.rows_per_bank
            )
            trr = (
                TargetRowRefresh(mapping, trr_config) if trr_enabled else None
            )
            self._banks.append(
                Bank(index, self._calibration, mapping, self._hub, self._env, trr)
            )

    # -- identity -----------------------------------------------------------------

    @property
    def profile(self) -> ModuleProfile:
        """The Table 3 profile this module was built from."""
        return self._profile

    @property
    def name(self) -> str:
        """Short module name (e.g. ``"B3"``)."""
        return self._profile.name

    @property
    def calibration(self) -> ModuleCalibration:
        """Derived device-model parameters."""
        return self._calibration

    @property
    def geometry(self) -> ModuleGeometry:
        """Array geometry."""
        return self._calibration.geometry

    @property
    def spd(self) -> SpdRecord:
        """The module's SPD metadata."""
        return SpdRecord.from_profile(self._profile)

    @property
    def chips(self) -> List[Chip]:
        """Lock-step chip views of the rank."""
        return list(self._chips)

    @property
    def env(self) -> ModuleEnvironment:
        """Shared operating environment (V_PP, temperature, clock)."""
        return self._env

    def bank(self, index: int) -> Bank:
        """Access one bank."""
        if not 0 <= index < len(self._banks):
            raise DramAddressError(
                f"bank {index} out of range [0, {len(self._banks)})"
            )
        return self._banks[index]

    @property
    def banks(self) -> List[Bank]:
        """All banks."""
        return list(self._banks)

    # -- operating conditions -------------------------------------------------------

    @property
    def vppmin(self) -> float:
        """Lowest V_PP at which the module still communicates
        (Section 4.1's definition of V_PPmin)."""
        return self._profile.vppmin

    @property
    def responsive(self) -> bool:
        """Whether the module can communicate at the current V_PP."""
        return self._env.vpp >= self._profile.vppmin - 1e-9

    def check_communication(self) -> None:
        """Raise if the module cannot respond (V_PP below V_PPmin)."""
        if not self.responsive:
            raise CommunicationError(
                f"module {self.name} does not respond at "
                f"V_PP = {self._env.vpp:.2f} V (V_PPmin = {self.vppmin:.2f} V)"
            )

    # -- command execution ------------------------------------------------------------

    def execute(self, command: Command, trcd: float = None) -> Optional[np.ndarray]:
        """Execute one DDR4 command against the module.

        Returns read data for RD commands, None otherwise. ``trcd``
        applies to ACT commands (the latency the controller will honor
        before the first column access).
        """
        self.check_communication()
        kind = command.kind
        if kind is CommandKind.ACT:
            self._banks[command.bank].activate(command.row, trcd=trcd)
            return None
        if kind is CommandKind.PRE:
            self._banks[command.bank].precharge()
            return None
        if kind is CommandKind.RD:
            return self._banks[command.bank].read_column(command.column)
        if kind is CommandKind.WR:
            self._banks[command.bank].write_column(command.column, command.data)
            return None
        if kind is CommandKind.REF:
            for bank in self._banks:
                bank.refresh()
            return None
        if kind is CommandKind.NOP:
            return None
        raise CommunicationError(f"unsupported command kind: {kind}")

    # -- statistics ---------------------------------------------------------------------

    def activation_count(self) -> int:
        """Total activations issued across all banks (includes hammer
        loops); feeds the interposer's current-draw model."""
        return sum(bank.total_activations for bank in self._banks)
