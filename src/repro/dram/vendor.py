"""Manufacturer-level parameter distributions.

The paper tests chips from the three major DRAM manufacturers (Table 1,
anonymized as Mfrs. A/B/C but identified as Micron, Samsung and SK Hynix)
and repeatedly observes vendor-level differences:

* the spread and direction of BER/HC_first change with V_PP differ per
  vendor (Observations 3 and 6: e.g. all Mfr. C rows improve by > 5 %,
  while ~half of Mfr. A's rows barely respond);
* retention BER levels at 4 s differ per vendor (Observation 12:
  A 0.3 %, B 0.2 %, C 1.4 % at nominal V_PP);
* internal row address mappings differ per vendor (Section 4.2).

A :class:`VendorProfile` captures those vendor-level distribution
parameters; module-level anchors live in :mod:`repro.dram.profiles`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError


class Vendor(enum.Enum):
    """The three anonymized manufacturers of the paper."""

    A = "A"
    B = "B"
    C = "C"

    @property
    def display_name(self) -> str:
        """Long name used in tables (matches Table 1's parentheticals)."""
        return {
            Vendor.A: "Mfr. A (Micron)",
            Vendor.B: "Mfr. B (Samsung)",
            Vendor.C: "Mfr. C (SK Hynix)",
        }[self]


@dataclass(frozen=True)
class VendorProfile:
    """Distribution parameters shared by all modules of one manufacturer.

    Attributes
    ----------
    vendor:
        Which manufacturer this profile describes.
    mapping_kind:
        Internal row-mapping family (``direct`` / ``mirrored`` /
        ``scrambled``), which the adjacency reverse-engineering step must
        discover.
    row_sigma:
        Lognormal sigma of per-row RowHammer weakness within a module.
    gamma_sigma:
        Spread of the per-row V_PP coupling exponent around the module's
        calibrated mean. Larger values create more rows that buck the
        module trend (Observations 2/5).
    gamma_insensitive_fraction:
        Fraction of rows whose coupling exponent is drawn near zero,
        making them V_PP-insensitive (Observation 3 reports ~half of
        Mfr. A's rows vary by < 2 %).
    retention_ber_4s_nominal / retention_ber_4s_lowvpp:
        Calibration anchors: average retention BER across rows at
        tREFW = 4 s, 80 degC, at V_PP = 2.5 V and 1.5 V respectively
        (Observation 12). The per-cell retention distribution is derived
        from these.
    retention_sigma:
        Lognormal sigma of per-cell retention times.
    trcd_row_sigma:
        Lognormal sigma of per-row tRCD_min variation within a module.
    pattern_spread:
        Upper bound of the non-worst-case data-pattern tolerance
        advantage: a non-WCDP pattern multiplies a row's hammer tolerance
        by a factor drawn from [1, 1 + pattern_spread].
    """

    vendor: Vendor
    mapping_kind: str
    row_sigma: float
    gamma_sigma: float
    gamma_insensitive_fraction: float
    retention_ber_4s_nominal: float
    retention_ber_4s_lowvpp: float
    retention_sigma: float
    trcd_row_sigma: float
    pattern_spread: float

    def __post_init__(self) -> None:
        if self.mapping_kind not in ("direct", "mirrored", "scrambled"):
            raise ConfigurationError(f"unknown mapping kind {self.mapping_kind!r}")
        for name in ("row_sigma", "gamma_sigma", "retention_sigma", "trcd_row_sigma"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be >= 0")
        if not 0.0 <= self.gamma_insensitive_fraction <= 1.0:
            raise ConfigurationError(
                "gamma_insensitive_fraction must be in [0, 1]"
            )
        for name in ("retention_ber_4s_nominal", "retention_ber_4s_lowvpp"):
            value = getattr(self, name)
            if not 0.0 < value < 1.0:
                raise ConfigurationError(f"{name} must be in (0, 1): {value}")


#: Vendor profiles calibrated to the paper's vendor-level observations.
VENDOR_PROFILES = {
    Vendor.A: VendorProfile(
        vendor=Vendor.A,
        mapping_kind="direct",
        row_sigma=0.25,
        gamma_sigma=0.25,
        # Obsv. 3: BER variation < 2 % for 49.6 % of Mfr. A rows.
        gamma_insensitive_fraction=0.50,
        # Obsv. 12: 0.3 % -> 0.8 % from 2.5 V to 1.5 V at tREFW = 4 s.
        retention_ber_4s_nominal=0.003,
        retention_ber_4s_lowvpp=0.008,
        retention_sigma=1.3,
        trcd_row_sigma=0.030,
        pattern_spread=0.25,
    ),
    Vendor.B: VendorProfile(
        vendor=Vendor.B,
        mapping_kind="mirrored",
        row_sigma=0.30,
        # Obsv. 6: widest normalized HC_first range (0.92-1.86) at Mfr. B.
        gamma_sigma=0.50,
        gamma_insensitive_fraction=0.15,
        # Obsv. 12: 0.2 % -> 0.5 %.
        retention_ber_4s_nominal=0.002,
        retention_ber_4s_lowvpp=0.005,
        retention_sigma=1.3,
        trcd_row_sigma=0.035,
        pattern_spread=0.30,
    ),
    Vendor.C: VendorProfile(
        vendor=Vendor.C,
        mapping_kind="scrambled",
        row_sigma=0.22,
        # Obsv. 3/6: tightest per-row ranges; BER improves > 5 % for all
        # rows, HC_first rises for 83.5 % of rows.
        gamma_sigma=0.12,
        gamma_insensitive_fraction=0.03,
        # Obsv. 12: 1.4 % -> 2.5 %.
        retention_ber_4s_nominal=0.014,
        retention_ber_4s_lowvpp=0.025,
        retention_sigma=1.2,
        trcd_row_sigma=0.025,
        pattern_spread=0.20,
    ),
}
