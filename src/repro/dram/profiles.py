"""The 30 DDR4 module profiles of Table 3 (Appendix A).

Each :class:`ModuleProfile` records a tested module's identity (DIMM
model, density, organization, die revision, date -- Table 1/3) and its
measured RowHammer anchors: minimum ``HC_first`` and BER at nominal V_PP
(2.5 V), at the module's ``V_PPmin``, and at the recommended operating
point ``V_PPRec``. The behavioral device model is *calibrated* to these
anchors (see :mod:`repro.dram.calibration`): the anchors pin each
module's weakest-row tolerance and its V_PP response, and everything
else -- per-row/per-cell heterogeneity, reversal populations, retention
tails -- is drawn from vendor-level distributions around them.

Additional per-module reliability character comes from Sections 6.1/6.3:

* ``trcd_at_vppmin_ns`` -- modules A0--A2 require 24 ns and B2/B5 require
  15 ns activation latency at reduced V_PP (Observation 7); all other
  modules stay within the 13.5 ns nominal with a reduced guardband.
* ``retention_tiers`` -- modules B6/B8/B9 and C1/C3/C5/C9 exhibit
  retention bit flips at the 64 ms nominal refresh window when operated
  at V_PPmin (Observation 13); Figure 11 gives the per-row flip-count
  character encoded here as weak-row tiers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.dram.vendor import Vendor
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class RetentionTier:
    """A population of weak rows with clustered short-retention cells.

    Attributes
    ----------
    row_fraction:
        Fraction of rows belonging to this tier.
    mean_weak_cells:
        Mean number of weak cells per tier row (Poisson).
    failing_window:
        The refresh window [s] the tier's cells fail when the module is
        operated at its V_PPmin (64 ms or 128 ms in Figure 11). The
        weak cells' nominal retention median is *derived* from this at
        calibration time: it sits just far enough above the window that
        the cells are clean at nominal V_PP and only the reduced-V_PP
        restoration shortfall pulls them below it.
    retention_sigma:
        Lognormal sigma of the tier's weak-cell retention times (narrow:
        the tier is a distinct defect population).
    vpp_sensitivity:
        Multiplier on the retention model's margin exponent for the
        tier's cells. Weak cells sit behind marginal access paths, so
        the reduced-V_PP restoration shortfall hits them much harder --
        which is what makes them fail their window at V_PPmin while
        staying clean at nominal V_PP (Observation 13).
    """

    row_fraction: float
    mean_weak_cells: float
    failing_window: float
    retention_sigma: float = 0.12
    vpp_sensitivity: float = 5.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.row_fraction <= 1.0:
            raise ConfigurationError(
                f"row_fraction must be in [0, 1]: {self.row_fraction}"
            )
        if self.mean_weak_cells <= 0 or self.failing_window <= 0:
            raise ConfigurationError("tier parameters must be positive")


#: Weak-cell tier that fails the 64 ms window at V_PPmin.
_TIER_64MS = 0.064
#: Weak-cell tier that fails the 128 ms window at V_PPmin.
_TIER_128MS = 0.128


@dataclass(frozen=True)
class ModuleProfile:
    """Identity and calibration anchors of one tested DIMM (Table 3)."""

    name: str
    vendor: Vendor
    dimm_model: str
    die_density: str
    frequency_mts: int
    chip_org: str
    die_revision: str
    mfr_date: str
    num_chips: int
    # RowHammer anchors (Table 3): minimum HC_first across tested rows and
    # the corresponding module BER at a 300K hammer count.
    hcfirst_nominal: float
    ber_nominal: float
    vppmin: float
    hcfirst_at_vppmin: float
    ber_at_vppmin: float
    vpp_recommended: float
    hcfirst_at_rec: float
    ber_at_rec: float
    # Reliability character (Sections 6.1 / 6.3).
    trcd_nominal_ns: float = 11.0
    trcd_at_vppmin_ns: float = 12.5
    retention_tiers: Tuple[RetentionTier, ...] = ()
    vth_eff: float = 0.45

    def __post_init__(self) -> None:
        if not 1.0 <= self.vppmin < 2.5:
            raise ConfigurationError(f"{self.name}: vppmin out of range: {self.vppmin}")
        if not self.vppmin <= self.vpp_recommended <= 2.5:
            raise ConfigurationError(
                f"{self.name}: vpp_recommended must lie in [vppmin, 2.5]"
            )
        for anchor in ("hcfirst_nominal", "hcfirst_at_vppmin", "hcfirst_at_rec"):
            if getattr(self, anchor) <= 0:
                raise ConfigurationError(f"{self.name}: {anchor} must be positive")
        for anchor in ("ber_nominal", "ber_at_vppmin", "ber_at_rec"):
            if not 0.0 < getattr(self, anchor) < 1.0:
                raise ConfigurationError(f"{self.name}: {anchor} must be in (0, 1)")

    @property
    def fails_nominal_trcd(self) -> bool:
        """True if the module needs more than the 13.5 ns nominal tRCD at
        reduced V_PP (Observation 7's five offender modules)."""
        return self.trcd_at_vppmin_ns > 13.5

    @property
    def fails_retention_at_64ms(self) -> bool:
        """True if the module exhibits retention flips at the 64 ms window
        when operated at V_PPmin (Observation 13's seven modules)."""
        return any(
            tier.failing_window <= _TIER_64MS + 1e-9
            for tier in self.retention_tiers
        )


def _p(name, vendor, model, density, freq, org, rev, date, chips,
       hc0, ber0, vmin, hc_min, ber_min, vrec, hc_rec, ber_rec,
       trcd0=11.0, trcd_min=12.5, tiers=()):
    """Compact constructor keeping the Table 3 transcription readable."""
    return ModuleProfile(
        name=name, vendor=vendor, dimm_model=model, die_density=density,
        frequency_mts=freq, chip_org=org, die_revision=rev, mfr_date=date,
        num_chips=chips, hcfirst_nominal=hc0, ber_nominal=ber0, vppmin=vmin,
        hcfirst_at_vppmin=hc_min, ber_at_vppmin=ber_min,
        vpp_recommended=vrec, hcfirst_at_rec=hc_rec, ber_at_rec=ber_rec,
        trcd_nominal_ns=trcd0, trcd_at_vppmin_ns=trcd_min,
        retention_tiers=tuple(tiers),
    )


_A, _B, _C = Vendor.A, Vendor.B, Vendor.C

#: Tier describing Mfr. B's 64 ms failures (Fig. 11a: ~15.5 % of rows with
#: ~4 single-flip words; ~0.01 % of rows with ~116).
_B_TIERS = (
    RetentionTier(0.155, 4.0, _TIER_64MS),
    RetentionTier(0.0001, 116.0, _TIER_64MS),
    RetentionTier(0.047, 2.0, _TIER_128MS),
)
#: Tier describing Mfr. C's 64 ms failures (Fig. 11a: ~0.2 % of rows, one
#: single-flip word; Fig. 11b: ~0.2 % at 128 ms).
_C_TIERS = (
    RetentionTier(0.002, 1.0, _TIER_64MS),
    RetentionTier(0.002, 1.0, _TIER_128MS),
)
#: Mfr. A never fails 64 ms; 0.1 % of rows show one erroneous word at
#: 128 ms (Fig. 11b).
_A_TIERS = (RetentionTier(0.001, 1.0, _TIER_128MS),)


#: All 30 tested modules, transcribed from Table 3.
MODULE_PROFILES: Dict[str, ModuleProfile] = {
    p.name: p
    for p in [
        # ---- Mfr. A (Micron): 112 chips --------------------------------
        _p("A0", _A, "MTA18ASF2G72PZ-2G3B1QK", "8Gb", 2400, "x4", "B", "11-19", 16,
           39_800, 1.24e-3, 1.4, 42_200, 1.00e-3, 1.4, 42_200, 1.00e-3,
           trcd0=11.3, trcd_min=23.3, tiers=_A_TIERS),
        _p("A1", _A, "MTA18ASF2G72PZ-2G3B1QK", "8Gb", 2400, "x4", "B", "11-19", 16,
           42_200, 9.90e-4, 1.4, 46_400, 7.83e-4, 1.4, 46_400, 7.83e-4,
           trcd0=11.2, trcd_min=23.4, tiers=_A_TIERS),
        _p("A2", _A, "MTA18ASF2G72PZ-2G3B1QK", "8Gb", 2400, "x4", "B", "11-19", 16,
           41_000, 1.24e-3, 1.7, 39_800, 1.35e-3, 2.1, 42_100, 1.55e-3,
           trcd0=11.4, trcd_min=23.2, tiers=_A_TIERS),
        _p("A3", _A, "CT4G4DFS8266.C8FF", "4Gb", 2666, "x8", "F", "07-21", 8,
           16_700, 3.33e-2, 1.4, 16_500, 3.52e-2, 1.7, 17_000, 3.48e-2,
           trcd0=10.8, trcd_min=11.23, tiers=_A_TIERS),
        _p("A4", _A, "CT4G4DFS8266.C8FF", "4Gb", 2666, "x8", "F", "07-21", 8,
           14_400, 3.18e-2, 1.5, 14_400, 3.33e-2, 2.5, 14_400, 3.18e-2,
           trcd0=10.6, trcd_min=11.18, tiers=_A_TIERS),
        _p("A5", _A, "CT4G4SFS8213.C8FBD1", "4Gb", 2400, "x8", "-", "48-16", 8,
           140_700, 1.39e-6, 2.4, 145_400, 3.39e-6, 2.4, 145_400, 3.39e-6,
           trcd0=10.9, trcd_min=11.16, tiers=_A_TIERS),
        _p("A6", _A, "CT4G4DFS8266.C8FF", "4Gb", 2666, "x8", "F", "07-21", 8,
           16_500, 3.50e-2, 1.5, 16_500, 3.66e-2, 2.5, 16_500, 3.50e-2,
           trcd0=10.7, trcd_min=11.37, tiers=_A_TIERS),
        _p("A7", _A, "CMV4GX4M1A2133C15", "4Gb", 2133, "x8", "-", "-", 8,
           16_500, 3.42e-2, 1.8, 16_500, 3.52e-2, 2.5, 16_500, 3.42e-2,
           trcd0=11.0, trcd_min=11.7, tiers=_A_TIERS),
        _p("A8", _A, "MTA18ASF2G72PZ-2G3B1QG", "8Gb", 2400, "x4", "B", "11-19", 16,
           35_200, 2.38e-3, 1.4, 39_800, 2.07e-3, 1.4, 39_800, 2.07e-3,
           trcd0=11.1, trcd_min=11.82, tiers=_A_TIERS),
        _p("A9", _A, "CMV4GX4M1A2133C15", "4Gb", 2133, "x8", "-", "-", 8,
           14_300, 3.33e-2, 1.5, 14_300, 3.48e-2, 1.6, 14_600, 3.47e-2,
           trcd0=10.5, trcd_min=11.04, tiers=_A_TIERS),
        # ---- Mfr. B (Samsung): 80 chips --------------------------------
        _p("B0", _B, "M378A1K43DB2-CTD", "8Gb", 2666, "x8", "D", "10-21", 8,
           7_900, 1.18e-1, 2.0, 7_600, 1.22e-1, 2.5, 7_900, 1.18e-1,
           trcd0=10.9, trcd_min=11.47),
        _p("B1", _B, "M378A1K43DB2-CTD", "8Gb", 2666, "x8", "D", "10-21", 8,
           7_300, 1.26e-1, 2.0, 7_600, 1.28e-1, 2.0, 7_600, 1.28e-1,
           trcd0=10.8, trcd_min=11.5),
        _p("B2", _B, "F4-2400C17S-8GNT", "4Gb", 2400, "x8", "F", "02-21", 8,
           11_200, 2.52e-2, 1.6, 12_000, 2.22e-2, 1.6, 12_000, 2.22e-2,
           trcd0=11.5, trcd_min=14.3),
        _p("B3", _B, "M393A1K43BB1-CTD6Y", "8Gb", 2666, "x8", "B", "52-20", 8,
           16_600, 2.73e-3, 1.6, 21_100, 1.09e-3, 1.6, 21_100, 1.09e-3,
           trcd0=10.6, trcd_min=11.18),
        _p("B4", _B, "M393A1K43BB1-CTD6Y", "8Gb", 2666, "x8", "B", "52-20", 8,
           21_000, 2.95e-3, 1.8, 19_900, 2.52e-3, 2.0, 21_100, 2.68e-3,
           trcd0=10.7, trcd_min=11.15),
        _p("B5", _B, "M471A5143EB0-CPB", "4Gb", 2133, "x8", "E", "08-17", 8,
           21_000, 7.78e-3, 1.8, 21_000, 6.02e-3, 2.0, 21_100, 8.67e-3,
           trcd0=11.6, trcd_min=14.2),
        _p("B6", _B, "CMK16GX4M2B3200C16", "8Gb", 3200, "x8", "-", "-", 8,
           10_300, 1.14e-2, 1.7, 10_500, 9.82e-3, 1.7, 10_500, 9.82e-3,
           trcd0=10.8, trcd_min=11.45, tiers=_B_TIERS),
        _p("B7", _B, "M378A1K43DB2-CTD", "8Gb", 2666, "x8", "D", "10-21", 8,
           7_300, 1.32e-1, 2.0, 7_600, 1.33e-1, 2.0, 7_600, 1.33e-1,
           trcd0=10.9, trcd_min=11.37),
        _p("B8", _B, "CMK16GX4M2B3200C16", "8Gb", 3200, "x8", "-", "-", 8,
           11_600, 2.88e-2, 1.7, 10_500, 2.37e-2, 1.8, 11_700, 2.58e-2,
           trcd0=10.7, trcd_min=11.48, tiers=_B_TIERS),
        _p("B9", _B, "M471A5244CB0-CRC", "8Gb", 2133, "x8", "C", "19-19", 8,
           11_800, 2.68e-2, 1.7, 8_800, 2.39e-2, 1.8, 12_300, 2.54e-2,
           trcd0=10.8, trcd_min=11.61, tiers=_B_TIERS),
        # ---- Mfr. C (SK Hynix): 80 chips --------------------------------
        _p("C0", _C, "F4-2400C17S-8GNT", "4Gb", 2400, "x8", "B", "02-21", 8,
           19_300, 7.29e-3, 1.7, 23_400, 6.61e-3, 1.7, 23_400, 6.61e-3,
           trcd0=10.9, trcd_min=11.47),
        _p("C1", _C, "F4-2400C17S-8GNT", "4Gb", 2400, "x8", "B", "02-21", 8,
           19_300, 6.31e-3, 1.7, 20_600, 5.90e-3, 1.7, 20_600, 5.90e-3,
           trcd0=10.8, trcd_min=11.29, tiers=_C_TIERS),
        _p("C2", _C, "KSM32RD8/16HDR", "8Gb", 3200, "x8", "D", "48-20", 8,
           9_600, 2.82e-2, 1.5, 9_200, 2.34e-2, 2.3, 10_000, 2.89e-2,
           trcd0=10.6, trcd_min=11.35),
        _p("C3", _C, "KSM32RD8/16HDR", "8Gb", 3200, "x8", "D", "48-20", 8,
           9_300, 2.57e-2, 1.5, 8_900, 2.21e-2, 2.3, 9_700, 2.66e-2,
           trcd0=10.7, trcd_min=11.48, tiers=_C_TIERS),
        _p("C4", _C, "HMAA4GU6AJR8N-XN", "16Gb", 3200, "x8", "A", "51-20", 8,
           11_600, 3.22e-2, 1.5, 11_700, 2.88e-2, 1.5, 11_700, 2.88e-2,
           trcd0=10.8, trcd_min=11.39),
        _p("C5", _C, "HMAA4GU6AJR8N-XN", "16Gb", 3200, "x8", "A", "51-20", 8,
           9_400, 3.28e-2, 1.5, 12_700, 2.85e-2, 1.5, 12_700, 2.85e-2,
           trcd0=10.9, trcd_min=11.42, tiers=_C_TIERS),
        _p("C6", _C, "CMV4GX4M1A2133C15", "4Gb", 2133, "x8", "C", "-", 8,
           14_200, 3.08e-2, 1.6, 15_500, 2.25e-2, 1.6, 15_500, 2.25e-2,
           trcd0=10.7, trcd_min=11.09),
        _p("C7", _C, "CMV4GX4M1A2133C15", "4Gb", 2133, "x8", "C", "-", 8,
           11_700, 3.24e-2, 1.6, 13_600, 2.60e-2, 1.6, 13_600, 2.60e-2,
           trcd0=10.8, trcd_min=11.29),
        _p("C8", _C, "KSM32RD8/16HDR", "8Gb", 3200, "x8", "D", "48-20", 8,
           11_400, 2.69e-2, 1.6, 9_500, 2.57e-2, 2.5, 11_400, 2.69e-2,
           trcd0=10.6, trcd_min=11.47),
        _p("C9", _C, "F4-2400C17S-8GNT", "4Gb", 2400, "x8", "B", "02-21", 8,
           12_600, 2.18e-2, 1.7, 15_200, 1.63e-2, 1.7, 15_200, 1.63e-2,
           trcd0=10.9, trcd_min=11.47, tiers=_C_TIERS),
    ]
}


def module_profile(name: str) -> ModuleProfile:
    """Look up a module profile by its Table 3 name (e.g. ``"B3"``)."""
    try:
        return MODULE_PROFILES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown module {name!r}; available: {sorted(MODULE_PROFILES)}"
        ) from None


def profiles_by_vendor(vendor: Vendor) -> List[ModuleProfile]:
    """All module profiles of one manufacturer, in Table 3 order."""
    return [p for p in MODULE_PROFILES.values() if p.vendor is vendor]


def total_chip_count() -> int:
    """Total chips across all profiles; the paper tests 272."""
    return sum(p.num_chips for p in MODULE_PROFILES.values())


def build_module(name: str, **kwargs):
    """Construct a simulated :class:`~repro.dram.module.DramModule` for a
    Table 3 profile. Keyword arguments are forwarded to the module
    constructor (e.g. ``seed``, ``geometry``)."""
    from repro.dram.module import DramModule  # local import: avoid cycle

    return DramModule(module_profile(name), **kwargs)
