"""Serial Presence Detect (SPD) metadata emulation.

Real DIMMs carry an SPD EEPROM describing the module; the paper reads
die revisions and organization from it (Appendix A, footnote 15 -- and
notes that some DIMM vendors blank those fields, which we reproduce:
profiles with ``"-"`` markings surface as ``None`` here).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.dram.profiles import ModuleProfile


@dataclass(frozen=True)
class SpdRecord:
    """Decoded SPD contents of a simulated DIMM."""

    dimm_model: str
    manufacturer: str
    die_density: str
    frequency_mts: int
    chip_org: str
    die_revision: Optional[str]
    manufacturing_date: Optional[str]

    @classmethod
    def from_profile(cls, profile: ModuleProfile) -> "SpdRecord":
        """Build the SPD view of a Table 3 module profile."""

        def _or_none(value: str) -> Optional[str]:
            return None if value in ("-", "") else value

        return cls(
            dimm_model=profile.dimm_model,
            manufacturer=profile.vendor.display_name,
            die_density=profile.die_density,
            frequency_mts=profile.frequency_mts,
            chip_org=profile.chip_org,
            die_revision=_or_none(profile.die_revision),
            manufacturing_date=_or_none(profile.mfr_date),
        )
