"""JEDEC DDR4 constants used throughout the library.

Values follow JESD79-4C as cited by the paper (reference [80]) and the
paper's own experimental setup (Section 4).
"""

from __future__ import annotations

from repro.units import ms, ns

# -- voltages ---------------------------------------------------------------

#: Nominal wordline (pump) voltage for DDR4 [V]. The paper's experiments
#: start here and step down in 0.1 V increments (Section 4.1).
NOMINAL_VPP = 2.5

#: Nominal core supply voltage for DDR4 [V]. Held constant in all of the
#: paper's experiments to isolate the effect of V_PP.
NOMINAL_VDD = 1.2

#: Step size used when sweeping V_PP down from nominal [V] (Section 4.1).
VPP_STEP = 0.1

#: Lowest V_PP the paper's SPICE sweep considers [V] (Section 4.5).
VPP_SWEEP_FLOOR = 1.5

# -- timings ----------------------------------------------------------------

#: Nominal row activation latency [s] (Section 4.3; 13.5 ns).
NOMINAL_TRCD = ns(13.5)

#: Nominal charge restoration latency (ACT to PRE) [s].
NOMINAL_TRAS = ns(32.0)

#: Nominal precharge latency [s].
NOMINAL_TRP = ns(13.5)

#: Nominal refresh window [s] (64 ms for DDR4 under 85 degC).
NOMINAL_TREFW = ms(64.0)

#: SoftMC command-clock granularity [s]: the paper's modified SoftMC can
#: issue one DRAM command every 1.5 ns (footnote 10), which quantizes every
#: timing sweep to 1.5 ns steps.
SOFTMC_COMMAND_CLOCK = ns(1.5)

#: Minimum ACT-to-ACT interval to the same bank [s] (tRC = tRAS + tRP).
NOMINAL_TRC = NOMINAL_TRAS + NOMINAL_TRP

# -- organization -----------------------------------------------------------

#: Number of banks per DDR4 chip (Section 2.1 cites 16 [80]).
BANKS_PER_CHIP = 16

#: Bits per DRAM cell word served per chip per column access for an x8 part.
DEVICE_WIDTH_X8 = 8

#: Bits per column access for an x4 part.
DEVICE_WIDTH_X4 = 4

#: ECC data-word size in bits assumed by the paper's mitigation analysis
#: (Observation 14: "a realistic data word size of 64 bits").
ECC_DATA_WORD_BITS = 64

# -- experiment parameters from the paper ------------------------------------

#: Fixed hammer count used for BER measurements (Section 4.2).
BER_HAMMER_COUNT = 300_000

#: Initial hammer count for the HC_first bisection (Alg. 1).
HCFIRST_INITIAL_HC = 300_000

#: Initial bisection step for HC_first (Alg. 1).
HCFIRST_INITIAL_STEP = 150_000

#: Bisection terminates when the step falls to this value (Alg. 1).
HCFIRST_MIN_STEP = 100

#: Number of repetitions of each measurement (Sections 4.2, 4.3).
PAPER_NUM_ITERATIONS = 10

#: Rows tested per module: four chunks of 1K rows (Section 4.2).
PAPER_ROWS_PER_MODULE = 4096
PAPER_ROW_CHUNKS = 4

#: Temperatures used in the paper's tests [degC] (Section 4.1).
ROWHAMMER_TEST_TEMPERATURE = 50.0
RETENTION_TEST_TEMPERATURE = 80.0

#: Retention test refresh-window sweep bounds [s] (Section 4.4):
#: 16 ms to 16 s in increasing powers of two (the top of the sweep is
#: 16 ms * 2^10 = 16.384 s, the paper's "16 s").
RETENTION_TREFW_MIN = ms(16.0)
RETENTION_TREFW_MAX = ms(16.0) * 2**10
