"""Shared operating environment of a simulated module.

The wordline voltage, device temperature and simulated wall-clock are
set by the infrastructure (power supply, temperature controller, host)
and read by every bank when it evaluates fault physics. Keeping them in
one mutable object mirrors the physical reality that all banks of a
module share the same rails and thermal state.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram import constants
from repro.errors import ConfigurationError


@dataclass
class ModuleEnvironment:
    """Mutable operating conditions shared across a module's banks."""

    vpp: float = constants.NOMINAL_VPP
    vdd: float = constants.NOMINAL_VDD
    temperature: float = constants.ROWHAMMER_TEST_TEMPERATURE
    now: float = 0.0  # simulated time [s]

    def advance(self, dt: float) -> None:
        """Advance the simulated clock by ``dt`` seconds."""
        if dt < 0:
            raise ConfigurationError(f"cannot advance time backwards: {dt}")
        self.now += dt

    def set_vpp(self, vpp: float) -> None:
        """Drive the wordline-voltage rail."""
        if vpp <= 0:
            raise ConfigurationError(f"vpp must be positive: {vpp}")
        self.vpp = vpp

    def set_temperature(self, temperature: float) -> None:
        """Set the device temperature [degC]."""
        if not -50.0 <= temperature <= 150.0:
            raise ConfigurationError(
                f"temperature out of supported range: {temperature}"
            )
        self.temperature = temperature
