"""The six standard test data patterns (Section 4.1).

The paper uses row stripe (0xFF/0x00), checkerboard (0xAA/0x55) and
thick checker (0xCC/0x33): six victim-row fill bytes, each hammered with
aggressor rows holding the bitwise inverse. A :class:`DataPattern` knows
its fill byte, its inverse, and its slot in the per-row coupling-factor
tables of :mod:`repro.dram.cell`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class DataPattern:
    """One victim-row test data pattern."""

    name: str
    fill_byte: int
    index: int

    def __post_init__(self) -> None:
        if not 0 <= self.fill_byte <= 0xFF:
            raise ConfigurationError(f"fill_byte out of range: {self.fill_byte}")

    @property
    def inverse_byte(self) -> int:
        """Aggressor-row fill byte (bitwise inverse of the victim's)."""
        return self.fill_byte ^ 0xFF

    def row_bits(self, row_bits: int) -> np.ndarray:
        """The victim-row content as a bit vector (LSB-first per byte)."""
        return np.unpackbits(
            np.full(row_bits // 8, self.fill_byte, dtype=np.uint8),
            bitorder="little",
        )

    def inverse_bits(self, row_bits: int) -> np.ndarray:
        """The aggressor-row content as a bit vector."""
        return np.unpackbits(
            np.full(row_bits // 8, self.inverse_byte, dtype=np.uint8),
            bitorder="little",
        )


#: The six patterns of Section 4.1, in a fixed slot order.
STANDARD_PATTERNS: List[DataPattern] = [
    DataPattern("rowstripe-1", 0xFF, 0),
    DataPattern("rowstripe-0", 0x00, 1),
    DataPattern("checkerboard-a", 0xAA, 2),
    DataPattern("checkerboard-5", 0x55, 3),
    DataPattern("thickchecker-c", 0xCC, 4),
    DataPattern("thickchecker-3", 0x33, 5),
]

_BYTE_TO_PATTERN = {p.fill_byte: p for p in STANDARD_PATTERNS}


def pattern_by_name(name: str) -> DataPattern:
    """Look up a standard pattern by name."""
    for pattern in STANDARD_PATTERNS:
        if pattern.name == name:
            return pattern
    raise ConfigurationError(
        f"unknown pattern {name!r}; available: "
        f"{[p.name for p in STANDARD_PATTERNS]}"
    )


def classify_row_bits(bits: np.ndarray) -> Optional[DataPattern]:
    """Identify which standard pattern (if any) a row's content matches.

    Returns None for content that is not a uniform fill with one of the
    six standard bytes. The device model uses this to index its per-row
    pattern coupling factors.
    """
    if bits.size % 8:
        return None
    row_bytes = np.packbits(bits.astype(np.uint8), bitorder="little")
    first = int(row_bytes[0])
    if first not in _BYTE_TO_PATTERN:
        return None
    if not np.all(row_bytes == first):
        return None
    return _BYTE_TO_PATTERN[first]
