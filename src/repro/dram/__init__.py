"""Behavioral DDR4 DRAM device model.

This subpackage replaces the paper's 272 physical DDR4 chips with a
simulated device whose command-level observable behaviour (which bits flip
after which command sequences, at which wordline voltage) matches the
characteristics reported in the paper.

Layering, bottom-up:

* :mod:`repro.dram.constants`, :mod:`repro.dram.timing`,
  :mod:`repro.dram.commands` -- JEDEC DDR4 vocabulary.
* :mod:`repro.dram.physics` -- analytic circuit-derived models of how the
  wordline voltage affects activation, restoration, disturbance and
  retention. This is the heart of the substitution: the paper's trends
  *emerge* from these models rather than being tabulated.
* :mod:`repro.dram.cell`, :mod:`repro.dram.bank`, :mod:`repro.dram.chip`,
  :mod:`repro.dram.module` -- array organization and the command state
  machine.
* :mod:`repro.dram.mapping` -- DRAM-internal logical-to-physical row
  address mapping schemes.
* :mod:`repro.dram.vendor`, :mod:`repro.dram.profiles` -- manufacturer
  parameter distributions and the 30 module profiles of Table 3.
* :mod:`repro.dram.trr` -- in-DRAM Target Row Refresh defense model.
* :mod:`repro.dram.ecc` -- Hamming SECDED (72,64).
* :mod:`repro.dram.spd` -- serial-presence-detect metadata.
"""

from repro.dram.commands import Command, CommandKind
from repro.dram.constants import (
    NOMINAL_TRCD,
    NOMINAL_TREFW,
    NOMINAL_VDD,
    NOMINAL_VPP,
)
from repro.dram.module import DramModule
from repro.dram.profiles import (
    MODULE_PROFILES,
    build_module,
    module_profile,
    profiles_by_vendor,
)
from repro.dram.timing import TimingParameters
from repro.dram.vendor import Vendor, VendorProfile

__all__ = [
    "Command",
    "CommandKind",
    "DramModule",
    "MODULE_PROFILES",
    "NOMINAL_TRCD",
    "NOMINAL_TREFW",
    "NOMINAL_VDD",
    "NOMINAL_VPP",
    "TimingParameters",
    "Vendor",
    "VendorProfile",
    "build_module",
    "module_profile",
    "profiles_by_vendor",
]
