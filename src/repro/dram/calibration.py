"""Derivation of device-model parameters from Table 3 anchors.

A :class:`ModuleProfile` records what the paper *measured*; this module
turns those measurements into the generative parameters the behavioral
device model needs:

* the per-row RowHammer weakness distribution (lognormal), placed so the
  *minimum* HC_first across the paper's 4K tested rows lands on the
  Table 3 anchor;
* the per-cell tolerance spread within a row, sized so the weakest row's
  BER at the fixed 300K hammer count lands on the Table 3 BER anchor;
* the module's mean V_PP coupling exponent ``gamma``, inverted from the
  HC_first ratio between V_PPmin and nominal;
* the per-cell retention-time distribution, anchored to the vendor-level
  4 s retention BERs of Observation 12;
* the activation-latency curve, anchored to the module's tRCD_min at
  nominal V_PP and at V_PPmin (Observation 7).

The calibration uses closed-form lognormal order statistics -- see
:mod:`repro.stats` -- so it is deterministic and costs microseconds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.dram import constants
from repro.dram.physics.activation import ActivationModel
from repro.dram.physics.disturbance import DisturbanceModel
from repro.dram.physics.restoration import RestorationModel
from repro.dram.physics.retention_model import RetentionModel
from repro.dram.physics.transistor import AccessTransistorModel
from repro.dram.profiles import ModuleProfile
from repro.dram.vendor import VENDOR_PROFILES, VendorProfile
from repro.errors import ConfigurationError
from repro.stats import normal_ppf
from repro.units import clamp, ns


@dataclass(frozen=True)
class ModuleGeometry:
    """Array geometry of a simulated module (per bank).

    The defaults give a realistic logical row space while keeping the
    per-row cell count at 8192 bits (1 KiB) -- large enough for meaningful
    BER resolution, small enough that characterizing thousands of rows
    stays laptop-sized. The paper's modules have larger physical rows;
    only BERs below ~1.2e-4 per row are affected by the difference.
    """

    rows_per_bank: int = 32768
    banks: int = 16
    row_bits: int = 8192

    def __post_init__(self) -> None:
        if self.rows_per_bank < 8 or self.rows_per_bank & (self.rows_per_bank - 1):
            raise ConfigurationError(
                f"rows_per_bank must be a power of two >= 8: {self.rows_per_bank}"
            )
        if self.banks < 1:
            raise ConfigurationError(f"banks must be >= 1: {self.banks}")
        if self.row_bits % 64:
            raise ConfigurationError(
                f"row_bits must be a multiple of 64: {self.row_bits}"
            )

    @property
    def row_bytes(self) -> int:
        """Bytes per row."""
        return self.row_bits // 8

    @property
    def columns(self) -> int:
        """Number of 64-bit column words per row."""
        return self.row_bits // 64


#: Number of rows the paper tests per module; the row-weakness
#: distribution is always anchored against this count so that module
#: character does not depend on how many rows a particular study samples.
PAPER_ROW_COUNT = constants.PAPER_ROWS_PER_MODULE


@dataclass(frozen=True)
class ModuleCalibration:
    """Generative parameters derived from one module profile."""

    profile: ModuleProfile
    vendor: VendorProfile
    geometry: ModuleGeometry
    # Physics models with the module's effective threshold.
    restoration: RestorationModel
    disturbance: DisturbanceModel
    retention: RetentionModel
    activation: ActivationModel
    # RowHammer distribution parameters. Cell tolerances are a
    # two-population mixture (see cell.py): a *bulk* lognormal whose tail
    # carries the 300K-hammer BER, plus sparse *outlier* defect cells that
    # set HC_first. A single lognormal cannot satisfy the paper's anchors:
    # HC_first sits ~10-20x below the 300K BER knee (a stretched lower
    # tail) while the BER's V_PP response requires a steep local density.
    gamma_bulk_mean: float   # V_PP coupling exponent of the bulk population (from the BER anchors)
    gamma_outlier_mean: float  # V_PP coupling exponent of the outlier population (from the HC_first anchors)
    bulk_sigma: float
    bulk_log_weakness: float  # mu of ln(row weakness w); BER_row = Phi((ln HC - ln w)/bulk_sigma)
    outlier_log_median: float  # mu of ln(outlier cell tolerance)
    outlier_sigma: float
    outlier_rate: float  # mean outlier cells per row (Poisson)
    # Retention distribution parameters (at 80 degC, nominal V_PP).
    retention_mu: float
    retention_sigma: float
    # Per-row variation of tRCD_min (lognormal sigma) and the worst-row
    # correction factor already folded into the activation model anchors.
    trcd_row_sigma: float
    # Measurement repeatability: per-iteration multiplicative jitter sigma
    # (drives the CVs of Section 4.6).
    measurement_sigma: float = 0.02


#: Mean number of outlier (defect) cells per row; sets how HC_first-grade
#: weak cells are spread across rows.
OUTLIER_RATE = 1.0
#: Lognormal sigma of outlier-cell tolerances (a narrow, distinct defect
#: population).
OUTLIER_SIGMA = 0.45


#: Lognormal sigma of the bulk cell-tolerance population. Fixed rather
#: than solved: the BER anchors then determine the bulk population's own
#: V_PP coupling exponent (see ``_solve_bulk_gamma_scale``).
BULK_SIGMA = 0.8


def _solve_bulk_gamma_scale(profile: ModuleProfile) -> float:
    """Tolerance-scale factor of the *bulk* population at V_PPmin.

    The Table 3 BER pair pins how far the bulk tail mass at 300K hammers
    moved between nominal V_PP and V_PPmin:
    ``scale = exp(sigma * (z_nominal - z_vppmin))``. This is deliberately
    decoupled from the HC_first ratio -- HC_first is set by the sparse
    outlier population, and the paper's anchors frequently move the two
    metrics in opposite directions (e.g. module B9), which a single
    population cannot reproduce.
    """
    z_nominal = normal_ppf(clamp(profile.ber_nominal, 1e-9, 0.49))
    z_vppmin = normal_ppf(clamp(profile.ber_at_vppmin, 1e-9, 0.49))
    return clamp(math.exp(BULK_SIGMA * (z_nominal - z_vppmin)), 0.3, 3.0)


def _solve_tolerance_populations(
    profile: ModuleProfile, vendor: VendorProfile
) -> tuple:
    """Place the bulk and outlier tolerance populations on the anchors.

    * The weakest of the paper's 4K tested rows must show the Table 3 BER
      at 300K hammers -> anchors the bulk row-weakness location.
    * The weakest outlier cell across those rows must flip first at the
      Table 3 HC_first -> anchors the outlier-tolerance location.

    Returns (bulk_sigma, bulk_log_weakness, outlier_log_median).
    """
    bulk_sigma = BULK_SIGMA
    z_ber = normal_ppf(clamp(profile.ber_nominal, 1e-9, 0.49))
    # The Table 3 BER anchors the ~90th-percentile row: BER_row(300K) =
    # Phi((ln 300K - ln w) / sigma) at the weakness w whose row-quantile
    # is 10%. Anchoring the minimum-over-4K-rows would push typical rows
    # ~100x below the anchor (drowning the per-row normalized BERs of
    # Figures 3/4 in shot noise); anchoring the median would make the
    # module-level maximum BER overshoot Table 3 by >10x. The 90th
    # percentile balances both.
    log_w_anchor = math.log(constants.BER_HAMMER_COUNT) - bulk_sigma * z_ber
    bulk_log_weakness = log_w_anchor - vendor.row_sigma * normal_ppf(0.10)

    # Outliers: ~OUTLIER_RATE per row; the minimum over all outliers of
    # the tested rows lands on HC_first.
    total_outliers = max(2.0, OUTLIER_RATE * PAPER_ROW_COUNT)
    z_out_min = normal_ppf(1.0 / (total_outliers + 1.0))
    outlier_log_median = (
        math.log(profile.hcfirst_nominal) - OUTLIER_SIGMA * z_out_min
    )
    return bulk_sigma, bulk_log_weakness, outlier_log_median


def _solve_activation(
    profile: ModuleProfile,
    restoration: RestorationModel,
    trcd_row_sigma: float,
) -> ActivationModel:
    """Activation model hitting the module's two tRCD anchors.

    The anchors describe the module's *worst row*; the analytic model
    describes the row-population center, so the targets are first divided
    by the expected worst-row factor over the paper's row count.
    """
    worst_row_factor = math.exp(
        trcd_row_sigma * normal_ppf(PAPER_ROW_COUNT / (PAPER_ROW_COUNT + 1.0))
    )
    target_nominal = ns(profile.trcd_nominal_ns) / worst_row_factor
    target_vppmin = ns(profile.trcd_at_vppmin_ns) / worst_row_factor

    base = ActivationModel(restoration=restoration)
    t_w = base.t_wordline
    k_share = base.k_share
    k_sense = max(ns(1.0), target_nominal - t_w - k_share)

    trial = ActivationModel(
        restoration=restoration, k_sense=k_sense, p_share=1.0
    )
    od_ratio = trial._overdrive(restoration.nominal_vpp) / max(
        1e-9, trial._overdrive(profile.vppmin)
    )
    sense_at_vppmin = k_sense / trial.perturbation_ratio(profile.vppmin) ** trial.p_sense
    share_target = target_vppmin - t_w - sense_at_vppmin
    if share_target <= k_share or od_ratio <= 1.0 + 1e-9:
        p_share = 0.1
    else:
        p_share = clamp(
            math.log(share_target / k_share) / math.log(od_ratio), 0.1, 4.0
        )
    return ActivationModel(
        restoration=restoration, k_sense=k_sense, p_share=p_share
    )


def _solve_retention(
    vendor: VendorProfile, restoration: RestorationModel
) -> RetentionModel:
    """Retention model whose margin exponent reproduces the vendor's
    4 s retention-BER shift from 2.5 V to 1.5 V (Observation 12)."""
    sigma = vendor.retention_sigma
    z_nominal = normal_ppf(vendor.retention_ber_4s_nominal)
    z_lowvpp = normal_ppf(vendor.retention_ber_4s_lowvpp)
    # The runtime margin factor is (effective margin ratio) ** beta; solve
    # beta against the same effective (partial-restoration) margin the
    # RetentionModel uses, probed at the 1.5 V anchor with beta = 1.
    probe = RetentionModel(restoration=restoration, beta_retention=1.0)
    margin = probe.margin_factor(1.5)
    if margin >= 1.0 - 1e-9:
        beta = 1.0
    else:
        beta = clamp(
            (z_lowvpp - z_nominal) * sigma / math.log(1.0 / margin), 0.5, 4.0
        )
    return RetentionModel(restoration=restoration, beta_retention=beta)


def calibrate(
    profile: ModuleProfile, geometry: ModuleGeometry = None
) -> ModuleCalibration:
    """Build the full calibration for one module profile."""
    geometry = geometry or ModuleGeometry()
    vendor = VENDOR_PROFILES[profile.vendor]

    transistor = AccessTransistorModel.device(profile.vth_eff)
    restoration = RestorationModel(transistor=transistor)
    disturbance = DisturbanceModel(restoration=restoration)
    retention = _solve_retention(vendor, restoration)
    activation = _solve_activation(profile, restoration, vendor.trcd_row_sigma)

    # V_PP response: the outlier population's exponent comes from the
    # HC_first ratio, the bulk population's from the BER pair.
    hc_ratio = profile.hcfirst_at_vppmin / profile.hcfirst_nominal
    gamma_outlier_mean = disturbance.solve_gamma(profile.vppmin, hc_ratio)
    gamma_bulk_mean = disturbance.solve_gamma(
        profile.vppmin, _solve_bulk_gamma_scale(profile)
    )

    # Cell- and row-level tolerance distributions.
    bulk_sigma, bulk_log_weakness, outlier_log_median = (
        _solve_tolerance_populations(profile, vendor)
    )

    # Retention main population: anchored at the vendor 4 s BER, 80 degC.
    retention_mu = math.log(4.0) - vendor.retention_sigma * normal_ppf(
        vendor.retention_ber_4s_nominal
    )

    return ModuleCalibration(
        profile=profile,
        vendor=vendor,
        geometry=geometry,
        restoration=restoration,
        disturbance=disturbance,
        retention=retention,
        activation=activation,
        gamma_bulk_mean=gamma_bulk_mean,
        gamma_outlier_mean=gamma_outlier_mean,
        bulk_sigma=bulk_sigma,
        bulk_log_weakness=bulk_log_weakness,
        outlier_log_median=outlier_log_median,
        outlier_sigma=OUTLIER_SIGMA,
        outlier_rate=OUTLIER_RATE,
        retention_mu=retention_mu,
        retention_sigma=vendor.retention_sigma,
        trcd_row_sigma=vendor.trcd_row_sigma,
    )
