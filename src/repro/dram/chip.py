"""Chip-level view of a module.

DDR4 chips in a rank operate in lock-step: each chip serves a slice of
every 64-bit beat (Section 2.1). The simulation therefore keeps array
state at module level (one shared set of banks) and exposes chips as
*views* that slice the shared row data -- which is exactly how the paper
counts chips (e.g. "208 out of 272 tested DRAM chips"): a module-level
behaviour statement covers all of its chips at once.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Chip:
    """One DRAM chip of a lock-step rank.

    Attributes
    ----------
    index:
        Position of the chip in the rank.
    width:
        Device width in bits (x4 -> 4, x8 -> 8).
    rank_width:
        Total data-bus width of the rank (64 for non-ECC DDR4).
    """

    index: int
    width: int
    rank_width: int = 64

    def __post_init__(self) -> None:
        if self.width not in (4, 8, 16):
            raise ConfigurationError(f"unsupported device width: x{self.width}")
        if self.rank_width % self.width:
            raise ConfigurationError(
                f"rank width {self.rank_width} not divisible by x{self.width}"
            )
        chips = self.rank_width // self.width
        if not 0 <= self.index < chips:
            raise ConfigurationError(
                f"chip index {self.index} out of range for {chips} chips"
            )

    def bit_positions(self, row_bits: int) -> np.ndarray:
        """Indices of this chip's cells within a module row.

        Beat ``k`` of a row maps bits ``[64k, 64(k+1))`` across the rank;
        this chip owns ``width`` consecutive bits of each beat.
        """
        if row_bits % self.rank_width:
            raise ConfigurationError(
                f"row_bits {row_bits} not divisible by rank width"
            )
        beats = row_bits // self.rank_width
        base = np.arange(beats) * self.rank_width + self.index * self.width
        return (base[:, None] + np.arange(self.width)[None, :]).ravel()

    def slice_row(self, row_bits_vector: np.ndarray) -> np.ndarray:
        """This chip's share of a module row's bits."""
        return row_bits_vector[self.bit_positions(row_bits_vector.size)]
