"""One DRAM bank: command state machine plus fault physics.

The bank is where the paper's three error mechanisms materialize:

* **RowHammer flips** -- aggressor activations accumulate damage on
  physically-neighboring rows (scaled by the V_PP-dependent disturbance
  model); a charged cell flips once the damage exceeds its tolerance.
* **Retention flips** -- a charged cell decays once the time since its
  last restoration exceeds its (V_PP- and temperature-scaled) retention
  time.
* **Activation flips** -- activating with a tRCD below a cell's
  V_PP-dependent requirement corrupts the sensed value of that cell.

Pending decay/hammer flips are evaluated lazily and *persisted* when a
row is next sensed (activated or refreshed) -- matching real DRAM, where
the sense amplifier latches whatever charge remains and restores it.
Activation-latency corruption, by contrast, is a sensing failure and only
affects the data read while the row is open.

Hammering is applied analytically (one vectorized update per hammer
session, never per-activation), which is what makes 300K-hammer
experiments tractable; the SoftMC layer documents this as the semantic
equivalent of its unrolled ACT/PRE loop.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.dram.calibration import ModuleCalibration
from repro.dram.cell import (
    OTHER_PATTERN_INDEX,
    CellParameterGenerator,
    RowState,
)
from repro.dram.environment import ModuleEnvironment
from repro.dram.mapping import RowMapping
from repro.dram.patterns import DataPattern, classify_row_bits
from repro.errors import DramAddressError, DramCommandError
from repro.rng import RngHub

#: Damage weight per aggressor activation on a distance-1 victim. With
#: 0.5 per side, a double-sided attack of HC activations per aggressor
#: deposits exactly HC units -- the unit in which tolerances are
#: calibrated (HC_first is defined per-aggressor for double-sided
#: attacks, Section 4.2).
_DISTANCE1_WEIGHT = 0.5

#: Row-state cache key of the pattern-independent sort statics: the
#: ascending-tolerance cell order, the float64 tolerances in that order
#: and the outlier mask in that order (pure per-row properties; see
#: :meth:`Bank.preheat_tolerance_orders`).
_TOL_ORDER_KEY = "_tol_order"


class Bank:
    """A single DRAM bank of a simulated module."""

    def __init__(
        self,
        index: int,
        calibration: ModuleCalibration,
        mapping: RowMapping,
        hub: RngHub,
        env: ModuleEnvironment,
        trr=None,
    ):
        self._index = index
        self._cal = calibration
        self._mapping = mapping
        self._env = env
        self._cells = CellParameterGenerator(calibration, hub, index)
        self._geometry = calibration.geometry
        self._rows: Dict[int, RowState] = {}
        self._open_row: Optional[int] = None  # logical address
        self._open_corrupt: Optional[np.ndarray] = None
        self._written_columns: set = set()
        self._trr = trr
        self._refresh_cursor = 0
        self._scale_cache = {}
        self.total_activations = 0

    # -- helpers ---------------------------------------------------------------

    @property
    def index(self) -> int:
        """Bank index within the module."""
        return self._index

    @property
    def mapping(self) -> RowMapping:
        """The bank's logical-to-physical row mapping."""
        return self._mapping

    @property
    def open_row(self) -> Optional[int]:
        """Currently open logical row, if any."""
        return self._open_row

    @property
    def trr(self):
        """The bank's TRR defense model, if installed (None otherwise)."""
        return self._trr

    def _check_row(self, row: int) -> None:
        if not 0 <= row < self._geometry.rows_per_bank:
            raise DramAddressError(
                f"row {row} out of range [0, {self._geometry.rows_per_bank})"
            )

    def _check_column(self, column: int) -> None:
        if not 0 <= column < self._geometry.columns:
            raise DramAddressError(
                f"column {column} out of range [0, {self._geometry.columns})"
            )

    def _state(self, physical_row: int) -> RowState:
        state = self._rows.get(physical_row)
        if state is None:
            state = RowState(
                data=self._cells.powerup_bits(physical_row),
                last_restore_time=self._env.now,
                vpp_at_restore=self._env.vpp,
            )
            self._rows[physical_row] = state
        return state

    def _cached(self, state: RowState, physical_row: int, fieldname: str) -> np.ndarray:
        vector = state.cache.get(fieldname)
        if vector is None:
            vector = getattr(self._cells, fieldname)(physical_row)
            state.cache[fieldname] = vector
        return vector

    # -- fault evaluation --------------------------------------------------------

    def _charged_mask(self, physical_row: int, bits: np.ndarray) -> np.ndarray:
        charged_value = 0 if self._cells.is_anti_row(physical_row) else 1
        return bits == charged_value

    def _discharged_value(self, physical_row: int) -> int:
        return 1 if self._cells.is_anti_row(physical_row) else 0

    def _retention_base(
        self, physical_row: int, state: RowState, vpp_at_restore: float
    ) -> np.ndarray:
        """Pattern-independent part of the effective retention times,
        cached for the most recent (V_PP-at-restore, temperature) pair.

        The data pattern only contributes a trailing scalar factor, so
        one base vector serves every pattern probed at an operating
        point -- and scalar multiplication being monotone, the minimum
        effective retention can be taken over the base and scaled."""
        key = (vpp_at_restore, self._env.temperature)
        cached = state.cache.get("_retention_base")
        if cached is not None and cached[0] == key:
            return cached[1]
        retention = self._cached(state, physical_row, "cell_retention_times")
        sensitivity = self._cached(
            state, physical_row, "cell_retention_vpp_sensitivity"
        )
        model = self._cal.retention
        margin = model.margin_factor(vpp_at_restore)
        thermal = model.temperature_factor(self._env.temperature)
        base = retention * thermal * np.power(margin, sensitivity)
        state.cache["_retention_base"] = (key, base)
        return base

    def _effective_retention_times(
        self,
        physical_row: int,
        state: RowState,
        pattern_index: int,
        vpp_at_restore: float,
    ) -> np.ndarray:
        """Per-cell retention thresholds at the current temperature.

        The margin factor is exponentiated by the per-cell V_PP
        sensitivity: weak-tier cells degrade much faster with reduced
        V_PP (Observation 13). Shared between the lazy persist path and
        the batched probe sweeps so both evaluate the exact same
        expression.
        """
        retention_pattern = self._cached(
            state, physical_row, "retention_pattern_factors"
        )[pattern_index]
        return self._retention_base(
            physical_row, state, vpp_at_restore
        ) * retention_pattern

    def _effective_tolerances(
        self,
        physical_row: int,
        state: RowState,
        pattern_index: int,
        session: int,
    ) -> np.ndarray:
        """Per-cell hammer tolerances for one restore session.

        Bulk and outlier cell populations carry independent V_PP
        responses (see calibration.py); the session-keyed jitter models
        the paper's iteration-to-iteration variation (Section 4.6).
        """
        tolerance = self._cached(state, physical_row, "cell_tolerances")
        hammer_pattern = self._cached(state, physical_row, "pattern_factors")[
            pattern_index
        ]
        jitter = self._cells.measurement_jitter(physical_row, session)
        return tolerance * (hammer_pattern * jitter)

    def _persist_pending_flips(self, physical_row: int, state: RowState) -> None:
        """Materialize retention and RowHammer flips into the stored bits.

        A per-session *flip guard* caches the smallest damage and the
        shortest elapsed time that could flip any still-charged cell;
        while the accumulated damage and elapsed time stay below those
        thresholds, the (vectorized) evaluation is skipped entirely.
        This is what keeps per-access system simulation -- one activate
        per read, each disturbing its neighbors -- O(1) per access.
        """
        elapsed = self._env.now - state.last_restore_time
        guard = state.cache.get("_flip_guard")
        if (
            guard is not None
            and guard["pattern"] == state.pattern_index
            and guard["temperature"] == self._env.temperature
            and guard["vpp_at_restore"] == state.vpp_at_restore
            and state.damage_bulk < guard["min_bulk"]
            and state.damage_outlier < guard["min_outlier"]
            and elapsed < guard["min_retention"]
        ):
            return

        bits = state.data
        charged = self._charged_mask(physical_row, bits)
        if not charged.any():
            state.cache["_flip_guard"] = {
                "pattern": state.pattern_index,
                "temperature": self._env.temperature,
                "vpp_at_restore": state.vpp_at_restore,
                "min_bulk": np.inf,
                "min_outlier": np.inf,
                "min_retention": np.inf,
            }
            return
        flips = np.zeros_like(charged)

        effective_retention = self._effective_retention_times(
            physical_row, state, state.pattern_index, state.vpp_at_restore
        )
        if elapsed > 0:
            flips |= charged & (effective_retention < elapsed)

        outlier_mask = self._cached(state, physical_row, "cell_outlier_mask")
        effective_tolerance = self._effective_tolerances(
            physical_row, state, state.pattern_index, state.session
        )
        damage = np.where(
            outlier_mask, state.damage_outlier, state.damage_bulk
        )
        flips |= charged & (damage >= effective_tolerance)

        if flips.any():
            bits[flips] = self._discharged_value(physical_row)
            charged = charged & ~flips

        # Rebuild the guard over the cells that can still flip. The
        # guard outlives the restore session, so its thresholds carry a
        # conservative margin covering the per-session measurement jitter
        # (sigma ~2%; 0.9 is > 4 sigma of headroom): within the band the
        # full evaluation re-runs, outside it the skip is always safe.
        def _min_over(mask: np.ndarray, values: np.ndarray) -> float:
            return float(values[mask].min()) if mask.any() else np.inf

        state.cache["_flip_guard"] = {
            "pattern": state.pattern_index,
            "temperature": self._env.temperature,
            "vpp_at_restore": state.vpp_at_restore,
            "min_bulk": 0.9 * _min_over(
                charged & ~outlier_mask, effective_tolerance
            ),
            "min_outlier": 0.9 * _min_over(
                charged & outlier_mask, effective_tolerance
            ),
            "min_retention": 0.9 * _min_over(charged, effective_retention),
        }

    def _disturbance_scales(self, physical_row: int) -> "tuple[float, float]":
        """Per-row (bulk, outlier) tolerance scales at the current V_PP,
        cached per operating point: every activation consults them, so
        the gamma draws and power evaluations must not repeat."""
        key = (physical_row, self._env.vpp, self._env.temperature)
        cached = self._scale_cache.get(key)
        if cached is None:
            model = self._cal.disturbance
            gamma_bulk, gamma_outlier = self._cells.row_gammas(physical_row)
            cached = (
                float(model.tolerance_scale(
                    self._env.vpp, gamma_bulk, self._env.temperature
                )),
                float(model.tolerance_scale(
                    self._env.vpp, gamma_outlier, self._env.temperature
                )),
            )
            if len(self._scale_cache) > 100_000:
                self._scale_cache.clear()
            self._scale_cache[key] = cached
        return cached

    def _damage_neighbors(self, physical_row: int, count: int) -> None:
        """Deposit ``count`` activations' worth of disturbance on the
        physical neighbors of ``physical_row`` (distance 1 and 2)."""
        attenuation = self._cal.disturbance.distance2_attenuation
        for distance, weight in (
            (1, _DISTANCE1_WEIGHT),
            (2, _DISTANCE1_WEIGHT * attenuation),
        ):
            for victim_physical in (
                physical_row - distance, physical_row + distance
            ):
                if not 0 <= victim_physical < self._geometry.rows_per_bank:
                    continue
                victim = self._state(victim_physical)
                scale_bulk, scale_outlier = self._disturbance_scales(
                    victim_physical
                )
                victim.damage_bulk += count * weight / scale_bulk
                victim.damage_outlier += count * weight / scale_outlier

    def _restore(self, physical_row: int, state: RowState) -> None:
        """Full charge restoration: reset damage and the retention clock."""
        state.last_restore_time = self._env.now
        state.vpp_at_restore = self._env.vpp
        state.damage_bulk = 0.0
        state.damage_outlier = 0.0
        state.session += 1

    def _trcd_worst_requirement(
        self, physical_row: int, state: RowState
    ) -> float:
        """The row's worst-case (slowest-cell) activation requirement at
        the current V_PP and the stored pattern slot. ``inf`` below the
        conduction floor. Every factor is cached, so the common case is
        a few dict hits and three multiplies."""
        base_key = ("_trcd_base", self._env.vpp)
        requirement_base = state.cache.get(base_key)
        if requirement_base is None:
            requirement_base = self._cal.activation.trcd_min(self._env.vpp)
            state.cache[base_key] = requirement_base
        if math.isinf(requirement_base):
            return requirement_base
        row_factor = state.cache.get("_trcd_row_factor")
        if row_factor is None:
            row_factor = self._cells.trcd_row_factor(physical_row)
            state.cache["_trcd_row_factor"] = row_factor
        pattern_factor = self._cached(state, physical_row, "trcd_pattern_factors")[
            state.pattern_index
        ]
        cell_max = state.cache.get("_trcd_cell_max")
        if cell_max is None:
            cell_max = float(
                self._cached(state, physical_row, "cell_trcd_factors").max()
            )
            state.cache["_trcd_cell_max"] = cell_max
        return requirement_base * row_factor * pattern_factor * cell_max

    def _activation_corruption(
        self, physical_row: int, state: RowState, trcd_used: float
    ) -> Optional[np.ndarray]:
        """Cells mis-sensed because ``trcd_used`` undercuts their
        requirement at the current V_PP (Alg. 2's failure mode).

        Hot path: the analytic base requirement is cached per V_PP and
        the row's worst-case requirement is cached per row, so the
        common case (ample tRCD) costs two lookups and a compare.
        """
        worst = self._trcd_worst_requirement(physical_row, state)
        if worst <= trcd_used:
            return None  # even the slowest cell is covered
        if math.isinf(worst):
            # Below the conduction floor nothing senses correctly.
            return self._charged_mask(physical_row, state.data)

        requirement_base = state.cache[("_trcd_base", self._env.vpp)]
        row_factor = state.cache["_trcd_row_factor"]
        pattern_factor = self._cached(state, physical_row, "trcd_pattern_factors")[
            state.pattern_index
        ]
        cell_factors = self._cached(state, physical_row, "cell_trcd_factors")
        requirement = requirement_base * row_factor * pattern_factor * cell_factors
        corrupt = (requirement > trcd_used) & self._charged_mask(
            physical_row, state.data
        )
        return corrupt if corrupt.any() else None

    # -- commands -----------------------------------------------------------------

    def activate(self, logical_row: int, trcd: float = None) -> None:
        """ACT: open ``logical_row``, persisting its pending flips.

        ``trcd`` is the activation latency the controller will respect
        before the first read; if it undercuts cell requirements at the
        current V_PP, those cells read corrupted until the row is closed.
        ``None`` means "ample" (no activation corruption).
        """
        if self._open_row is not None:
            raise DramCommandError(
                f"bank {self._index}: ACT while row {self._open_row} is open"
            )
        self._check_row(logical_row)
        physical = self._mapping.to_physical(logical_row)
        state = self._state(physical)
        self._persist_pending_flips(physical, state)
        self._restore(physical, state)
        # Every activation disturbs the physical neighbors -- RowHammer
        # through the regular command path (system-level attacks issue
        # plain reads; the disturbance must not depend on which API
        # hammered the row).
        self._damage_neighbors(physical, 1)
        self._open_corrupt = (
            None
            if trcd is None
            else self._activation_corruption(physical, state, trcd)
        )
        self._open_row = logical_row
        self._written_columns = set()
        self.total_activations += 1
        if self._trr is not None:
            self._trr.observe_activation(logical_row)

    def precharge(self) -> None:
        """PRE: close the open row (idempotent, like real PRE)."""
        if self._open_row is None:
            return
        physical = self._mapping.to_physical(self._open_row)
        state = self._rows[physical]
        if len(self._written_columns) == self._geometry.columns:
            # A full-row write establishes fresh charge and a known pattern.
            pattern = classify_row_bits(state.data)
            state.pattern_index = (
                pattern.index if pattern is not None else OTHER_PATTERN_INDEX
            )
            self._restore(physical, state)
        self._open_row = None
        self._open_corrupt = None
        self._written_columns = set()

    def read_column(self, column: int) -> np.ndarray:
        """RD: return the 64 bits of ``column`` from the open row."""
        if self._open_row is None:
            raise DramCommandError(f"bank {self._index}: RD with no open row")
        self._check_column(column)
        physical = self._mapping.to_physical(self._open_row)
        state = self._rows[physical]
        lo, hi = column * 64, (column + 1) * 64
        bits = state.data[lo:hi].copy()
        if self._open_corrupt is not None:
            mask = self._open_corrupt[lo:hi]
            bits[mask] = self._discharged_value(physical)
        return bits

    def write_column(self, column: int, bits: np.ndarray) -> None:
        """WR: store 64 bits into ``column`` of the open row."""
        if self._open_row is None:
            raise DramCommandError(f"bank {self._index}: WR with no open row")
        self._check_column(column)
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.shape != (64,):
            raise DramCommandError(
                f"WR payload must be 64 bits, got shape {bits.shape}"
            )
        physical = self._mapping.to_physical(self._open_row)
        state = self._rows[physical]
        state.data[column * 64 : (column + 1) * 64] = bits
        # Data changed: previously-flipped cells may be re-charged, so
        # the cached flip guard (computed over the old charged set) is
        # stale.
        state.cache.pop("_flip_guard", None)
        self._written_columns.add(column)

    def read_row(self) -> np.ndarray:
        """Convenience: all bits of the open row (column reads fused)."""
        if self._open_row is None:
            raise DramCommandError(f"bank {self._index}: read with no open row")
        physical = self._mapping.to_physical(self._open_row)
        state = self._rows[physical]
        bits = state.data.copy()
        if self._open_corrupt is not None:
            bits[self._open_corrupt] = self._discharged_value(physical)
        return bits

    def write_row(self, bits: np.ndarray) -> None:
        """Convenience: fill the open row (column writes fused)."""
        if self._open_row is None:
            raise DramCommandError(f"bank {self._index}: write with no open row")
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.shape != (self._geometry.row_bits,):
            raise DramCommandError(
                f"row payload must be {self._geometry.row_bits} bits"
            )
        physical = self._mapping.to_physical(self._open_row)
        state = self._rows[physical]
        state.data = bits.copy()
        state.cache.pop("_flip_guard", None)  # see write_column
        self._written_columns = set(range(self._geometry.columns))

    # -- hammering -------------------------------------------------------------------

    def hammer(self, aggressor_rows: Sequence[int], count: int) -> None:
        """Apply ``count`` ACT/PRE cycles to each aggressor (logical) row.

        The analytic equivalent of the unrolled activation loop: damage is
        deposited on physical neighbors at distance 1 and 2, scaled by the
        V_PP-dependent disturbance model evaluated at the *current*
        operating point. Aggressor rows themselves end fully restored (each
        activation restores them).
        """
        if self._open_row is not None:
            raise DramCommandError(
                f"bank {self._index}: hammer while row {self._open_row} is open"
            )
        if count < 0:
            raise DramCommandError(f"hammer count must be >= 0: {count}")
        for logical in aggressor_rows:
            self._check_row(logical)
            physical = self._mapping.to_physical(logical)
            agg_state = self._state(physical)
            self._persist_pending_flips(physical, agg_state)
            self._restore(physical, agg_state)
            self._damage_neighbors(physical, count)
            self.total_activations += count
            if self._trr is not None:
                self._trr.observe_activation(logical, count=count)

    # -- refresh ----------------------------------------------------------------------

    def refresh(self) -> List[int]:
        """REF: refresh the next chunk of rows (8192 REFs cover the bank).

        Returns the logical rows refreshed, including any victims the TRR
        defense chose to refresh alongside (Section 4.1's disabled-by-
        withholding-REF behaviour: no REF, no TRR).
        """
        if self._open_row is not None:
            raise DramCommandError(
                f"bank {self._index}: REF while row {self._open_row} is open"
            )
        chunk = max(1, self._geometry.rows_per_bank // 8192)
        start = self._refresh_cursor
        refreshed: List[int] = []
        for physical in range(start, min(start + chunk, self._geometry.rows_per_bank)):
            if physical in self._rows:
                state = self._rows[physical]
                self._persist_pending_flips(physical, state)
                self._restore(physical, state)
            refreshed.append(self._mapping.to_logical(physical))
        self._refresh_cursor = (start + chunk) % self._geometry.rows_per_bank
        if self._trr is not None:
            for victim_logical in self._trr.victims_to_refresh():
                physical = self._mapping.to_physical(victim_logical)
                if physical in self._rows:
                    state = self._rows[physical]
                    self._persist_pending_flips(physical, state)
                    self._restore(physical, state)
                refreshed.append(victim_logical)
        return refreshed

    def refresh_all(self) -> int:
        """Refresh every materialized row in one pass (the controller's
        per-tREFW sweep); returns the number of rows refreshed.

        Equivalent to cycling REF through the whole bank, without paying
        for the empty refresh slots of untouched rows.
        """
        if self._open_row is not None:
            raise DramCommandError(
                f"bank {self._index}: refresh while row {self._open_row} is open"
            )
        refreshed = 0
        for physical, state in self._rows.items():
            self._persist_pending_flips(physical, state)
            self._restore(physical, state)
            refreshed += 1
        return refreshed

    def refresh_rows(self, logical_rows: Sequence[int]) -> None:
        """Refresh specific rows (selective double-rate refresh)."""
        for logical in logical_rows:
            self._check_row(logical)
            physical = self._mapping.to_physical(logical)
            state = self._rows.get(physical)
            if state is None:
                continue
            self._persist_pending_flips(physical, state)
            self._restore(physical, state)

    # -- batched probe sweeps -----------------------------------------------------------

    def hammer_sweep(
        self,
        victim_row: int,
        aggressor_rows: Sequence[int],
        pattern: DataPattern,
    ) -> "HammerSweep":
        """Precompute the flip evaluation of repeated double-sided probes.

        Returns a :class:`HammerSweep` that computes the victim's
        per-cell effective thresholds once per operating point and then
        evaluates any number of hammer counts against them -- the kernel
        behind the fast probe engine and Alg. 1's bisection.
        """
        return HammerSweep(self, victim_row, aggressor_rows, pattern)

    def retention_sweep(
        self, victim_row: int, pattern: DataPattern
    ) -> "RetentionSweep":
        """Precompute the flip evaluation of repeated retention probes
        (all of Alg. 3's refresh windows share one threshold vector)."""
        return RetentionSweep(self, victim_row, pattern)

    def probe_state(self, logical_row: int) -> RowState:
        """Materialize (if needed) and return a row's mutable state.

        Probe engines use this to keep restore-session bookkeeping
        aligned with the command path.
        """
        self._check_row(logical_row)
        return self._state(self._mapping.to_physical(logical_row))

    def preheat_tolerance_orders(self, logical_rows: Sequence[int]) -> int:
        """Warm the per-row tolerance sort orders for a whole row set.

        The batch probe engine's count reductions walk each row's cells
        in ascending-tolerance order (:meth:`HammerSweep.
        threshold_counts`). The order is a pure per-row property, so a
        row set can compute it in one stacked ``(rows, cells)`` argsort
        instead of one argsort per row; the per-row results are
        identical. Returns the number of rows actually warmed (rows
        whose order is already cached are skipped).
        """
        physicals: List[int] = []
        states: List[RowState] = []
        for logical in logical_rows:
            self._check_row(logical)
            physical = self._mapping.to_physical(logical)
            state = self._state(physical)
            if _TOL_ORDER_KEY not in state.cache:
                physicals.append(physical)
                states.append(state)
        if not physicals:
            return 0
        stacked = np.stack([
            self._cached(state, physical, "cell_tolerances")
            for physical, state in zip(physicals, states)
        ])
        orders = np.argsort(stacked, axis=1)
        sorted64 = np.take_along_axis(stacked, orders, axis=1).astype(
            np.float64
        )
        for physical, state, order, tol_sorted in zip(
            physicals, states, orders, sorted64
        ):
            outlier = self._cached(state, physical, "cell_outlier_mask")
            state.cache[_TOL_ORDER_KEY] = (order, tol_sorted, outlier[order])
        return len(physicals)

    def sensing_corruption(
        self, logical_row: int, trcd: float
    ) -> Optional[np.ndarray]:
        """Activation-corruption mask an ACT with ``trcd`` would apply to
        the row's current content (None when every cell senses cleanly).
        """
        self._check_row(logical_row)
        physical = self._mapping.to_physical(logical_row)
        return self._activation_corruption(physical, self._state(physical), trcd)

    def sensing_certainly_clean(self, logical_row: int, trcd: float) -> bool:
        """Whether an ACT with ``trcd`` is guaranteed corruption-free for
        this row *regardless of its content*: even the slowest cell's
        requirement (at the current V_PP and the row's stored pattern
        slot) is covered. Data-independent, so the batch probe engine
        can cache the verdict per operating point across sessions --
        unlike :meth:`sensing_corruption`, whose ``None`` can also mean
        "the vulnerable cells happen to be uncharged right now"."""
        self._check_row(logical_row)
        physical = self._mapping.to_physical(logical_row)
        state = self._state(physical)
        worst = self._trcd_worst_requirement(physical, state)
        return worst <= trcd

    # -- introspection (testing / reverse-engineering support) --------------------------

    def materialized_rows(self) -> Iterable[int]:
        """Physical rows that currently hold state."""
        return self._rows.keys()

    def row_hammer_damage(self, logical_row: int) -> float:
        """Accumulated bulk-population damage on a row, in nominal-hammer
        units (the outlier accumulator tracks separately)."""
        self._check_row(logical_row)
        physical = self._mapping.to_physical(logical_row)
        state = self._rows.get(physical)
        return 0.0 if state is None else state.damage_bulk


class ProbeSweep:
    """Shared precomputation of one (victim row, data pattern) probe.

    Holds the victim's pattern bits, charged-cell mask and -- cached per
    (V_PP, temperature) operating point -- the per-cell effective
    retention thresholds, so repeated probes of the same row skip the
    per-probe parameter rederivation of the command path. The flip
    evaluation reuses the Bank's own threshold expressions, which is
    what keeps the sweep bit-identical to
    :meth:`Bank._persist_pending_flips`.
    """

    def __init__(self, bank: Bank, victim_row: int, pattern: DataPattern):
        bank._check_row(victim_row)
        self._bank = bank
        self.row = victim_row
        self.pattern = pattern
        self.physical = bank._mapping.to_physical(victim_row)
        self.state = bank._state(self.physical)
        # Bits, classification and charged mask are pure functions of
        # (pattern, row polarity); cache them on the row state so sweep
        # rebuilds (e.g. after an LRU eviction) cost dict hits only.
        pattern_key = ("_probe_pattern", pattern)
        cached = self.state.cache.get(pattern_key)
        if cached is None:
            bits = pattern.row_bits(bank._geometry.row_bits)
            classified = classify_row_bits(bits)
            cached = (
                bits,
                classified.index if classified is not None
                else OTHER_PATTERN_INDEX,
                bank._charged_mask(self.physical, bits),
            )
            self.state.cache[pattern_key] = cached
        self.bits, self.pattern_index, self.charged = cached
        self.discharged_value = bank._discharged_value(self.physical)
        self._outlier_mask = bank._cached(
            self.state, self.physical, "cell_outlier_mask"
        )
        self._op_key = None
        self._retention_thresholds = None
        self._counts = None
        self._counts_key = None
        #: Operating point at which sensing is known data-independently
        #: clean (see Bank.sensing_certainly_clean); batch sessions key
        #: their per-session corruption verdict on this.
        self.sensing_clean_at = None

    def effective_retention_times(self) -> np.ndarray:
        """Per-cell retention thresholds at the current operating point
        (recomputed only when V_PP or temperature change)."""
        env = self._bank._env
        key = (env.vpp, env.temperature)
        if key != self._op_key:
            self._retention_thresholds = self._bank._effective_retention_times(
                self.physical, self.state, self.pattern_index, env.vpp
            )
            self._op_key = key
        return self._retention_thresholds


class HammerSweep(ProbeSweep):
    """Batched double-sided RowHammer probe evaluation for one victim.

    ``victim_damage`` replicates, deposit by deposit, the damage the
    command path accumulates on the victim over one Alg. 1 probe (one
    activation per aggressor initialization plus the hammer sessions),
    and ``flip_mask`` evaluates it against the Bank's effective
    thresholds -- so a whole bisection reuses one threshold computation
    per operating point.
    """

    def __init__(
        self,
        bank: Bank,
        victim_row: int,
        aggressor_rows: Sequence[int],
        pattern: DataPattern,
    ):
        super().__init__(bank, victim_row, pattern)
        self.aggressors = list(aggressor_rows)
        self.aggressor_states = []
        self._weights = []
        attenuation = bank._cal.disturbance.distance2_attenuation
        for logical in self.aggressors:
            bank._check_row(logical)
            physical = bank._mapping.to_physical(logical)
            distance = abs(physical - self.physical)
            if distance == 1:
                weight = _DISTANCE1_WEIGHT
            elif distance == 2:
                weight = _DISTANCE1_WEIGHT * attenuation
            else:
                weight = 0.0  # beyond the disturbance radius
            self._weights.append(weight)
            self.aggressor_states.append(bank._state(physical))
        self._damage_terms = None

    def damage_terms(self) -> tuple:
        """``(op_key, base_bulk, base_outlier, terms)`` for
        :meth:`victim_damage` at the current operating point.

        The initialization deposits (one activation per aggressor) and
        the per-aggressor ``weight / scale`` coefficients are constant
        per (V_PP, temperature), so a whole bisection reuses them; the
        base sums are accumulated once in the command path's exact
        order.
        """
        env = self._bank._env
        key = (env.vpp, env.temperature)
        cached = self._damage_terms
        if cached is None or cached[0] != key:
            scale_bulk, scale_outlier = self._bank._disturbance_scales(
                self.physical
            )
            base_bulk = 0.0
            base_outlier = 0.0
            for weight in self._weights:
                base_bulk += 1 * weight / scale_bulk
                base_outlier += 1 * weight / scale_outlier
            terms = tuple(
                (weight, scale_bulk, scale_outlier)
                for weight in self._weights
            )
            cached = (key, base_bulk, base_outlier, terms)
            self._damage_terms = cached
        return cached

    def victim_damage(self, count: int) -> "tuple[float, float]":
        """(bulk, outlier) damage one probe deposits on the victim.

        Accumulated in the command path's order -- one activation per
        aggressor initialization, then ``count`` hammers per aggressor --
        with the same scalar expressions, so the floating-point result is
        bit-identical to ``RowState.damage_*`` after the real commands.
        """
        _, damage_bulk, damage_outlier, terms = self.damage_terms()
        for weight, scale_bulk, scale_outlier in terms:
            damage_bulk += count * weight / scale_bulk
            damage_outlier += count * weight / scale_outlier
        return damage_bulk, damage_outlier

    def flip_mask(
        self,
        damage_bulk: float,
        damage_outlier: float,
        session: int,
        elapsed: float,
    ) -> np.ndarray:
        """Cells the probe flips, exactly as the persist path evaluates
        them at the read-back activation."""
        charged = self.charged
        flips = np.zeros_like(charged)
        effective_retention = self.effective_retention_times()
        if elapsed > 0:
            flips |= charged & (effective_retention < elapsed)
        effective_tolerance = self._bank._effective_tolerances(
            self.physical, self.state, self.pattern_index, session
        )
        damage = np.where(self._outlier_mask, damage_outlier, damage_bulk)
        flips |= charged & (damage >= effective_tolerance)
        return flips

    def threshold_counts(self) -> "_HammerCounts":
        """Sorted-threshold reductions at the current operating point.

        Rebuilt only when V_PP or temperature change -- the per-probe
        cost of a whole bisection then collapses to a few scalar
        multiplies (see :class:`_HammerCounts`).
        """
        env = self._bank._env
        key = (env.vpp, env.temperature)
        if self._counts is None or self._counts_key != key:
            self._counts = _HammerCounts(self)
            self._counts_key = key
        return self._counts

    def flip_counts(
        self, counts: Sequence[int], session: int, elapsed: float
    ) -> np.ndarray:
        """Flipped-cell counts for a whole vector of hammer counts.

        One threshold computation covers every count -- the batched form
        of a bisection's probe ladder (analysis/benchmark use; the probe
        engine evaluates counts one session at a time to preserve the
        per-probe jitter schedule).
        """
        charged = self.charged
        base = np.zeros_like(charged)
        effective_retention = self.effective_retention_times()
        if elapsed > 0:
            base |= charged & (effective_retention < elapsed)
        effective_tolerance = self._bank._effective_tolerances(
            self.physical, self.state, self.pattern_index, session
        )
        results = []
        for count in counts:
            damage_bulk, damage_outlier = self.victim_damage(count)
            damage = np.where(self._outlier_mask, damage_outlier, damage_bulk)
            flips = base | (charged & (damage >= effective_tolerance))
            results.append(int(np.count_nonzero(flips)))
        return np.asarray(results)


class RetentionSweep(ProbeSweep):
    """Batched retention probe evaluation for one victim row.

    A retention probe leaves the victim's accumulated damage at zero
    (the full-row write restores it and nothing activates nearby during
    the wait) and effective tolerances are strictly positive, so the
    command path's damage term can never fire; the sweep therefore only
    evaluates the retention thresholds. Skipping the jitter draw is
    exact because the RNG is stateless (keyed by row and session).
    """

    def flip_mask(self, elapsed: float) -> np.ndarray:
        """Cells that decay within ``elapsed`` seconds of the restore."""
        charged = self.charged
        flips = np.zeros_like(charged)
        if elapsed > 0:
            flips |= charged & (self.effective_retention_times() < elapsed)
        return flips

    def threshold_counts(self) -> "_RetentionCounts":
        """Sorted-threshold reductions at the current operating point
        (exact flip counts for any elapsed time from one binary search).
        """
        env = self._bank._env
        key = (env.vpp, env.temperature)
        if self._counts is None or self._counts_key != key:
            self._counts = _RetentionCounts(self)
            self._counts_key = key
        return self._counts


_EMPTY_INDICES = np.empty(0, dtype=np.intp)


def _flip_prefix(tol64: np.ndarray, factor, damage: float) -> int:
    """Number of leading cells of an ascending-tolerance vector whose
    effective tolerance (``tol * factor``) the damage reaches.

    IEEE-754 multiplication by a positive factor is monotone, so the
    rounded products inherit the vector's ordering and the flip
    predicate ``tol64[k] * factor <= damage`` -- the scalar twin of the
    broadcast ``damage >= tolerance * factor`` in :meth:`HammerSweep.
    flip_mask` (NumPy promotes the float32 tolerances to float64 before
    multiplying, which is exactly what ``tol64`` pre-bakes) -- selects a
    prefix. A binary search finds its exact length.
    """
    n = tol64.shape[0]
    if n == 0 or tol64[0] * factor > damage:
        return 0
    if tol64[n - 1] * factor <= damage:
        return n
    low, high = 0, n - 1
    while high - low > 1:
        mid = (low + high) // 2
        if tol64[mid] * factor <= damage:
            low = mid
        else:
            high = mid
    return low + 1


class _HammerCounts:
    """Exact hammer-probe flip *counts* from scalar reductions.

    A probe's flip set is ``R | D`` where ``R`` (retention decays) and
    ``D`` (damage flips, per bulk/outlier population) are both prefix
    sets of presorted threshold vectors, so

    ``|R | D| = |R| + sum_pop |D_pop| - sum_pop |R & D_pop|``

    needs one ``searchsorted``, one binary search per population, and a
    small overlap count -- no full-row vector work. Every comparison
    replays the exact scalar operations of :meth:`HammerSweep.
    flip_mask` (float64 products of the float32 tolerances, strict /
    non-strict directions preserved), so the counts are bit-consistent
    with ``np.count_nonzero(flip_mask(...))`` -- the batch probe
    engine's differential tests assert exactly that.
    """

    def __init__(self, sweep: HammerSweep):
        bank = sweep._bank
        state = sweep.state
        self._cells = bank._cells
        self._physical = sweep.physical
        # The population index arrays and presorted float64 tolerances
        # are operating-point independent: cache them on the row state
        # (keyed by pattern) so V_PP steps and sweep-LRU evictions only
        # pay for the per-op-point retention slice below.
        static_key = ("_hammer_static", sweep.pattern)
        static = state.cache.get(static_key)
        if static is None:
            # Pattern-independent row precomputation, shared across
            # pattern statics: the ascending-tolerance cell order, the
            # float64 tolerances in that order, and the outlier mask in
            # that order. Tie order within equal tolerances is
            # irrelevant (every prefix cutoff compares values only, so
            # tied cells enter or leave a flip set together) -- the
            # sorts can use the default unstable kind.
            row_static = state.cache.get(_TOL_ORDER_KEY)
            if row_static is None:
                tolerance = bank._cached(
                    state, sweep.physical, "cell_tolerances"
                )
                order = np.argsort(tolerance)
                row_static = (
                    order,
                    tolerance[order].astype(np.float64),
                    sweep._outlier_mask[order],
                )
                state.cache[_TOL_ORDER_KEY] = row_static
            order, tol_sorted, outlier_sorted = row_static
            # Filter once down to the charged cells, then split by the
            # outlier flag at half width -- relative (ascending
            # tolerance) order survives both filters.
            charged_sorted = sweep.charged[order]
            idx_charged = order[charged_sorted]
            tol_charged = tol_sorted[charged_sorted]
            out_charged = outlier_sorted[charged_sorted]
            bulk_flag = ~out_charged
            static = (
                (idx_charged[bulk_flag], tol_charged[bulk_flag]),
                (idx_charged[out_charged], tol_charged[out_charged]),
            )
            state.cache[static_key] = static
        self._bulk, self._outlier = static
        self._hammer_pattern = bank._cached(
            state, sweep.physical, "pattern_factors"
        )[sweep.pattern_index]
        # Retention decay cannot fire below a sound scalar lower bound
        # on the charged cells' effective retention (hammer probes wait
        # micro- to milliseconds, retention thresholds sit orders of
        # magnitude higher), so the full per-cell retention vector is
        # materialized lazily -- usually never. The bound is analytic:
        #   min_i r_i * thermal * margin^s_i * pattern
        #     >= min(r) * thermal * min(margin^min(s), margin^max(s))
        #        * pattern
        # (margin^s is monotone in s), deflated by 1e-5 to absorb the
        # float32 rounding of the vectorized expression.
        guard_key = ("_retention_guard", sweep.pattern)
        guard = state.cache.get(guard_key)
        if guard is None:
            retention = bank._cached(
                state, sweep.physical, "cell_retention_times"
            )
            sensitivity = bank._cached(
                state, sweep.physical, "cell_retention_vpp_sensitivity"
            )
            if sweep.charged.any():
                charged_sensitivity = sensitivity[sweep.charged]
                guard = (
                    float(retention[sweep.charged].min()),
                    float(charged_sensitivity.min()),
                    float(charged_sensitivity.max()),
                )
            else:
                guard = (math.inf, 0.0, 0.0)
            state.cache[guard_key] = guard
        retention_min, sensitivity_min, sensitivity_max = guard
        if math.isinf(retention_min):
            self._retention_bound = math.inf
        else:
            model = bank._cal.retention
            env = bank._env
            margin = model.margin_factor(env.vpp)
            thermal = model.temperature_factor(env.temperature)
            pattern_scalar = float(bank._cached(
                state, sweep.physical, "retention_pattern_factors"
            )[sweep.pattern_index])
            self._retention_bound = (
                retention_min * thermal
                * min(margin ** sensitivity_min, margin ** sensitivity_max)
                * pattern_scalar * (1.0 - 1e-5)
            )
        self._sweep = sweep
        self._retention_sorted = None
        self._effective_retention = None
        # Per-population retention slices, materialized only if a probe
        # actually needs the decay/damage overlap correction.
        self._pop_retention = [None, None]

    def _factor(self, session: int):
        jitter = self._cells.measurement_jitter(self._physical, session)
        return self._hammer_pattern * jitter

    def _decayed(self, elapsed: float) -> int:
        """Exact decayed-cell count; materializes the retention vector
        on first use (callers pre-filter with ``_retention_bound``)."""
        if self._retention_sorted is None:
            self._effective_retention = (
                self._sweep.effective_retention_times()
            )
            self._retention_sorted = np.sort(
                self._effective_retention[self._sweep.charged]
            )
        return int(self._retention_sorted.searchsorted(elapsed, "left"))

    def any_decay(self, elapsed: float) -> bool:
        """True when the probe's wait decays at least one charged cell
        (``flip_mask``'s retention term is nonzero)."""
        return (
            elapsed > 0
            and elapsed > self._retention_bound
            and self._decayed(elapsed) > 0
        )

    def _population_retention(self, index: int) -> np.ndarray:
        retention = self._pop_retention[index]
        if retention is None:
            indices = (self._bulk, self._outlier)[index][0]
            retention = self._effective_retention[indices]
            self._pop_retention[index] = retention
        return retention

    def count(
        self, damage_bulk: float, damage_outlier: float, session: int,
        elapsed: float,
    ) -> int:
        """``np.count_nonzero(flip_mask(...))``, without the vectors."""
        factor = self._factor(session)
        decayed = 0
        if elapsed > 0 and elapsed > self._retention_bound:
            decayed = self._decayed(elapsed)
        total = decayed
        for index, damage in ((0, damage_bulk), (1, damage_outlier)):
            tol64 = (self._bulk, self._outlier)[index][1]
            prefix = _flip_prefix(tol64, factor, damage)
            total += prefix
            if prefix and decayed:
                retention = self._population_retention(index)
                total -= int(np.count_nonzero(retention[:prefix] < elapsed))
        return total

    def any_flip(
        self, damage_bulk: float, damage_outlier: float, session: int,
        elapsed: float,
    ) -> bool:
        """``flip_mask(...).any()``: probes only the population minima.

        Skipping the jitter draw when a retention decay already decides
        the probe is exact -- the RNG is stateless (see the sweep
        docstrings).
        """
        if self.any_decay(elapsed):
            return True
        factor = self._factor(session)
        for (_, tol64), damage in (
            (self._bulk, damage_bulk), (self._outlier, damage_outlier)
        ):
            if tol64.shape[0] and tol64[0] * factor <= damage:
                return True
        return False

    def flip_populations(
        self, damage_bulk: float, damage_outlier: float, session: int
    ) -> List[np.ndarray]:
        """Per-population index arrays of the damage-flipped cells.

        The prefix form of ``flip_mask``'s damage term: monotone
        float64 products make each population's flip set a prefix of
        its presorted index array. When ``elapsed <= min_retention`` no
        retention decay can fire, so these indices *are* the complete
        flip set -- the batch engine materializes a session's final
        data from them without touching a full-row vector.
        """
        factor = self._factor(session)
        parts = []
        for (indices, tol64), damage in (
            (self._bulk, damage_bulk), (self._outlier, damage_outlier)
        ):
            prefix = _flip_prefix(tol64, factor, damage)
            if prefix:
                parts.append(indices[:prefix])
        return parts


class _RetentionCounts:
    """Exact retention-probe flip counts: one sorted threshold vector,
    one ``searchsorted`` per probe (strict ``< elapsed``, matching
    :meth:`RetentionSweep.flip_mask`).

    The decayed cells of any elapsed time are exactly the charged cells
    with threshold strictly below the cutoff, so the word-granular flip
    histogram and the session's final data fall out of one comparison
    against the (lazily materialized) charged threshold slice."""

    def __init__(self, sweep: RetentionSweep):
        state = sweep.state
        charged_key = ("_charged_indices", sweep.pattern)
        charged_indices = state.cache.get(charged_key)
        if charged_indices is None:
            charged_indices = np.flatnonzero(sweep.charged)
            state.cache[charged_key] = charged_indices
        self._charged_indices = charged_indices
        bank = sweep._bank
        env = bank._env
        # The pattern only contributes a trailing positive scalar to the
        # effective retention times, and multiplying by a positive
        # scalar is (weakly) monotone in IEEE floats: sorting commutes
        # with it. Cache the sorted charged *base* retention per
        # operating point so every pattern's session pays one scalar
        # multiply instead of a fresh materialize-and-sort.
        op_key = (env.vpp, env.temperature)
        base_key = ("_retention_sorted_base", sweep.pattern)
        cached = state.cache.get(base_key)
        if cached is None or cached[0] != op_key:
            base = bank._retention_base(sweep.physical, state, env.vpp)
            base_charged = base[charged_indices]
            cached = (op_key, base_charged, np.sort(base_charged))
            state.cache[base_key] = cached
        scalar = bank._cached(
            state, sweep.physical, "retention_pattern_factors"
        )[sweep.pattern_index]
        self._base_charged = cached[1]
        self._scalar = scalar
        if scalar > 0:
            self._retention_sorted = cached[2] * scalar
        else:  # pragma: no cover - calibration factors are positive
            self._retention_sorted = np.sort(cached[1] * scalar)
        # Full charged thresholds, materialized only when a flip *set*
        # is actually requested (counting ladders need just the sorted
        # values).
        self._thresholds = None

    def count(self, elapsed: float) -> int:
        if elapsed <= 0 or self._retention_sorted.size == 0:
            return 0
        return int(self._retention_sorted.searchsorted(elapsed, "left"))

    def count_many(self, elapsed_values: Sequence[float]) -> List[int]:
        """Per-value :meth:`count` for a fused probe ladder. Scalar
        ``searchsorted`` per value keeps the comparison semantics
        identical to :meth:`count` (no dtype promotion of the sorted
        vector against an array of needles)."""
        sorted_thresholds = self._retention_sorted
        if sorted_thresholds.size == 0:
            return [0] * len(elapsed_values)
        searchsorted = sorted_thresholds.searchsorted
        return [
            int(searchsorted(elapsed, "left")) if elapsed > 0 else 0
            for elapsed in elapsed_values
        ]

    def flip_indices(self, elapsed: float) -> np.ndarray:
        """The decayed cells' indices (``flip_mask``'s nonzero set)."""
        count = self.count(elapsed)
        if count == 0:
            return _EMPTY_INDICES
        if count == self._charged_indices.size:
            return self._charged_indices
        if self._thresholds is None:
            self._thresholds = self._base_charged * self._scalar
        return self._charged_indices[self._thresholds < elapsed]

    def word_histogram(self, elapsed: float) -> "Dict[int, int]":
        """``{flips-per-64-bit-word: word count}`` over affected words,
        identical to binning ``flip_mask`` -- the Alg. 3 record's
        word-granular histogram."""
        flipped = self.flip_indices(elapsed)
        if flipped.size == 0:
            return {}
        per_word = np.bincount(flipped >> 6)
        histogram = np.bincount(per_word[per_word > 0])
        return {
            int(v): int(c)
            for v, c in enumerate(histogram)
            if v and c
        }
