"""One DRAM bank: command state machine plus fault physics.

The bank is where the paper's three error mechanisms materialize:

* **RowHammer flips** -- aggressor activations accumulate damage on
  physically-neighboring rows (scaled by the V_PP-dependent disturbance
  model); a charged cell flips once the damage exceeds its tolerance.
* **Retention flips** -- a charged cell decays once the time since its
  last restoration exceeds its (V_PP- and temperature-scaled) retention
  time.
* **Activation flips** -- activating with a tRCD below a cell's
  V_PP-dependent requirement corrupts the sensed value of that cell.

Pending decay/hammer flips are evaluated lazily and *persisted* when a
row is next sensed (activated or refreshed) -- matching real DRAM, where
the sense amplifier latches whatever charge remains and restores it.
Activation-latency corruption, by contrast, is a sensing failure and only
affects the data read while the row is open.

Hammering is applied analytically (one vectorized update per hammer
session, never per-activation), which is what makes 300K-hammer
experiments tractable; the SoftMC layer documents this as the semantic
equivalent of its unrolled ACT/PRE loop.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.dram.calibration import ModuleCalibration
from repro.dram.cell import (
    OTHER_PATTERN_INDEX,
    CellParameterGenerator,
    RowState,
)
from repro.dram.environment import ModuleEnvironment
from repro.dram.mapping import RowMapping
from repro.dram.patterns import DataPattern, classify_row_bits
from repro.errors import DramAddressError, DramCommandError
from repro.rng import RngHub

#: Damage weight per aggressor activation on a distance-1 victim. With
#: 0.5 per side, a double-sided attack of HC activations per aggressor
#: deposits exactly HC units -- the unit in which tolerances are
#: calibrated (HC_first is defined per-aggressor for double-sided
#: attacks, Section 4.2).
_DISTANCE1_WEIGHT = 0.5

#: Row-state cache key of the pattern-independent sort statics: the
#: ascending-tolerance cell order, the float64 tolerances in that order
#: and the outlier mask in that order (pure per-row properties; see
#: :meth:`Bank.preheat_tolerance_orders`).
_TOL_ORDER_KEY = "_tol_order"

#: Row-state cache key of the retention sort statics: the ascending-
#: retention cell order and the float32 retention times in that order
#: (pure per-row properties; see :meth:`Bank.preheat_retention_orders`).
#: The fused probe engine's cross-operating-point kernels re-slice this
#: one order for every V_PP point instead of re-sorting per point.
_RET_ORDER_KEY = "_ret_order"


class Bank:
    """A single DRAM bank of a simulated module."""

    def __init__(
        self,
        index: int,
        calibration: ModuleCalibration,
        mapping: RowMapping,
        hub: RngHub,
        env: ModuleEnvironment,
        trr=None,
    ):
        self._index = index
        self._cal = calibration
        self._mapping = mapping
        self._env = env
        self._cells = CellParameterGenerator(calibration, hub, index)
        self._geometry = calibration.geometry
        self._rows: Dict[int, RowState] = {}
        self._open_row: Optional[int] = None  # logical address
        self._open_corrupt: Optional[np.ndarray] = None
        self._written_columns: set = set()
        self._trr = trr
        self._refresh_cursor = 0
        self._scale_cache = {}
        self.total_activations = 0

    # -- helpers ---------------------------------------------------------------

    @property
    def index(self) -> int:
        """Bank index within the module."""
        return self._index

    @property
    def mapping(self) -> RowMapping:
        """The bank's logical-to-physical row mapping."""
        return self._mapping

    @property
    def open_row(self) -> Optional[int]:
        """Currently open logical row, if any."""
        return self._open_row

    @property
    def trr(self):
        """The bank's TRR defense model, if installed (None otherwise)."""
        return self._trr

    @property
    def cells(self) -> CellParameterGenerator:
        """The bank's deterministic per-cell parameter factory (the
        shared-memory device state of :mod:`repro.core.soa` preloads
        vectors into it)."""
        return self._cells

    def _check_row(self, row: int) -> None:
        if not 0 <= row < self._geometry.rows_per_bank:
            raise DramAddressError(
                f"row {row} out of range [0, {self._geometry.rows_per_bank})"
            )

    def _check_column(self, column: int) -> None:
        if not 0 <= column < self._geometry.columns:
            raise DramAddressError(
                f"column {column} out of range [0, {self._geometry.columns})"
            )

    def _state(self, physical_row: int) -> RowState:
        state = self._rows.get(physical_row)
        if state is None:
            state = RowState(
                data=self._cells.powerup_bits(physical_row),
                last_restore_time=self._env.now,
                vpp_at_restore=self._env.vpp,
            )
            self._rows[physical_row] = state
        return state

    def _cached(self, state: RowState, physical_row: int, fieldname: str) -> np.ndarray:
        vector = state.cache.get(fieldname)
        if vector is None:
            vector = getattr(self._cells, fieldname)(physical_row)
            state.cache[fieldname] = vector
        return vector

    # -- fault evaluation --------------------------------------------------------

    def _charged_mask(self, physical_row: int, bits: np.ndarray) -> np.ndarray:
        charged_value = 0 if self._cells.is_anti_row(physical_row) else 1
        return bits == charged_value

    def _discharged_value(self, physical_row: int) -> int:
        return 1 if self._cells.is_anti_row(physical_row) else 0

    def _retention_base(
        self, physical_row: int, state: RowState, vpp_at_restore: float
    ) -> np.ndarray:
        """Pattern-independent part of the effective retention times,
        cached for the most recent (V_PP-at-restore, temperature) pair.

        The data pattern only contributes a trailing scalar factor, so
        one base vector serves every pattern probed at an operating
        point -- and scalar multiplication being monotone, the minimum
        effective retention can be taken over the base and scaled."""
        key = (vpp_at_restore, self._env.temperature)
        cached = state.cache.get("_retention_base")
        if cached is not None and cached[0] == key:
            return cached[1]
        retention = self._cached(state, physical_row, "cell_retention_times")
        sensitivity = self._cached(
            state, physical_row, "cell_retention_vpp_sensitivity"
        )
        model = self._cal.retention
        margin = model.margin_factor(vpp_at_restore)
        thermal = model.temperature_factor(self._env.temperature)
        base = retention * thermal * np.power(margin, sensitivity)
        state.cache["_retention_base"] = (key, base)
        return base

    def _effective_retention_times(
        self,
        physical_row: int,
        state: RowState,
        pattern_index: int,
        vpp_at_restore: float,
    ) -> np.ndarray:
        """Per-cell retention thresholds at the current temperature.

        The margin factor is exponentiated by the per-cell V_PP
        sensitivity: weak-tier cells degrade much faster with reduced
        V_PP (Observation 13). Shared between the lazy persist path and
        the batched probe sweeps so both evaluate the exact same
        expression.
        """
        retention_pattern = self._cached(
            state, physical_row, "retention_pattern_factors"
        )[pattern_index]
        return self._retention_base(
            physical_row, state, vpp_at_restore
        ) * retention_pattern

    def _effective_tolerances(
        self,
        physical_row: int,
        state: RowState,
        pattern_index: int,
        session: int,
    ) -> np.ndarray:
        """Per-cell hammer tolerances for one restore session.

        Bulk and outlier cell populations carry independent V_PP
        responses (see calibration.py); the session-keyed jitter models
        the paper's iteration-to-iteration variation (Section 4.6).
        """
        tolerance = self._cached(state, physical_row, "cell_tolerances")
        hammer_pattern = self._cached(state, physical_row, "pattern_factors")[
            pattern_index
        ]
        jitter = self._cells.measurement_jitter(physical_row, session)
        return tolerance * (hammer_pattern * jitter)

    def _persist_pending_flips(self, physical_row: int, state: RowState) -> None:
        """Materialize retention and RowHammer flips into the stored bits.

        A per-session *flip guard* caches the smallest damage and the
        shortest elapsed time that could flip any still-charged cell;
        while the accumulated damage and elapsed time stay below those
        thresholds, the (vectorized) evaluation is skipped entirely.
        This is what keeps per-access system simulation -- one activate
        per read, each disturbing its neighbors -- O(1) per access.
        """
        elapsed = self._env.now - state.last_restore_time
        guard = state.cache.get("_flip_guard")
        if (
            guard is not None
            and guard["pattern"] == state.pattern_index
            and guard["temperature"] == self._env.temperature
            and guard["vpp_at_restore"] == state.vpp_at_restore
            and state.damage_bulk < guard["min_bulk"]
            and state.damage_outlier < guard["min_outlier"]
            and elapsed < guard["min_retention"]
        ):
            return

        bits = state.data
        charged = self._charged_mask(physical_row, bits)
        if not charged.any():
            state.cache["_flip_guard"] = {
                "pattern": state.pattern_index,
                "temperature": self._env.temperature,
                "vpp_at_restore": state.vpp_at_restore,
                "min_bulk": np.inf,
                "min_outlier": np.inf,
                "min_retention": np.inf,
            }
            return
        flips = np.zeros_like(charged)

        effective_retention = self._effective_retention_times(
            physical_row, state, state.pattern_index, state.vpp_at_restore
        )
        if elapsed > 0:
            flips |= charged & (effective_retention < elapsed)

        outlier_mask = self._cached(state, physical_row, "cell_outlier_mask")
        effective_tolerance = self._effective_tolerances(
            physical_row, state, state.pattern_index, state.session
        )
        damage = np.where(
            outlier_mask, state.damage_outlier, state.damage_bulk
        )
        flips |= charged & (damage >= effective_tolerance)

        if flips.any():
            bits[flips] = self._discharged_value(physical_row)
            charged = charged & ~flips

        # Rebuild the guard over the cells that can still flip. The
        # guard outlives the restore session, so its thresholds carry a
        # conservative margin covering the per-session measurement jitter
        # (sigma ~2%; 0.9 is > 4 sigma of headroom): within the band the
        # full evaluation re-runs, outside it the skip is always safe.
        def _min_over(mask: np.ndarray, values: np.ndarray) -> float:
            return float(values[mask].min()) if mask.any() else np.inf

        state.cache["_flip_guard"] = {
            "pattern": state.pattern_index,
            "temperature": self._env.temperature,
            "vpp_at_restore": state.vpp_at_restore,
            "min_bulk": 0.9 * _min_over(
                charged & ~outlier_mask, effective_tolerance
            ),
            "min_outlier": 0.9 * _min_over(
                charged & outlier_mask, effective_tolerance
            ),
            "min_retention": 0.9 * _min_over(charged, effective_retention),
        }

    def _disturbance_scales(self, physical_row: int) -> "tuple[float, float]":
        """Per-row (bulk, outlier) tolerance scales at the current V_PP,
        cached per operating point: every activation consults them, so
        the gamma draws and power evaluations must not repeat."""
        key = (physical_row, self._env.vpp, self._env.temperature)
        cached = self._scale_cache.get(key)
        if cached is None:
            model = self._cal.disturbance
            gamma_bulk, gamma_outlier = self._cells.row_gammas(physical_row)
            cached = (
                float(model.tolerance_scale(
                    self._env.vpp, gamma_bulk, self._env.temperature
                )),
                float(model.tolerance_scale(
                    self._env.vpp, gamma_outlier, self._env.temperature
                )),
            )
            if len(self._scale_cache) > 100_000:
                self._scale_cache.clear()
            self._scale_cache[key] = cached
        return cached

    def _damage_neighbors(self, physical_row: int, count: int) -> None:
        """Deposit ``count`` activations' worth of disturbance on the
        physical neighbors of ``physical_row`` (distance 1 and 2)."""
        attenuation = self._cal.disturbance.distance2_attenuation
        for distance, weight in (
            (1, _DISTANCE1_WEIGHT),
            (2, _DISTANCE1_WEIGHT * attenuation),
        ):
            for victim_physical in (
                physical_row - distance, physical_row + distance
            ):
                if not 0 <= victim_physical < self._geometry.rows_per_bank:
                    continue
                victim = self._state(victim_physical)
                scale_bulk, scale_outlier = self._disturbance_scales(
                    victim_physical
                )
                victim.damage_bulk += count * weight / scale_bulk
                victim.damage_outlier += count * weight / scale_outlier

    def _restore(self, physical_row: int, state: RowState) -> None:
        """Full charge restoration: reset damage and the retention clock."""
        state.last_restore_time = self._env.now
        state.vpp_at_restore = self._env.vpp
        state.damage_bulk = 0.0
        state.damage_outlier = 0.0
        state.session += 1

    def _trcd_worst_requirement(
        self, physical_row: int, state: RowState
    ) -> float:
        """The row's worst-case (slowest-cell) activation requirement at
        the current V_PP and the stored pattern slot. ``inf`` below the
        conduction floor. Every factor is cached, so the common case is
        a few dict hits and three multiplies."""
        base_key = ("_trcd_base", self._env.vpp)
        requirement_base = state.cache.get(base_key)
        if requirement_base is None:
            requirement_base = self._cal.activation.trcd_min(self._env.vpp)
            state.cache[base_key] = requirement_base
        if math.isinf(requirement_base):
            return requirement_base
        row_factor = state.cache.get("_trcd_row_factor")
        if row_factor is None:
            row_factor = self._cells.trcd_row_factor(physical_row)
            state.cache["_trcd_row_factor"] = row_factor
        pattern_factor = self._cached(state, physical_row, "trcd_pattern_factors")[
            state.pattern_index
        ]
        cell_max = state.cache.get("_trcd_cell_max")
        if cell_max is None:
            cell_max = float(
                self._cached(state, physical_row, "cell_trcd_factors").max()
            )
            state.cache["_trcd_cell_max"] = cell_max
        return requirement_base * row_factor * pattern_factor * cell_max

    def _activation_corruption(
        self, physical_row: int, state: RowState, trcd_used: float
    ) -> Optional[np.ndarray]:
        """Cells mis-sensed because ``trcd_used`` undercuts their
        requirement at the current V_PP (Alg. 2's failure mode).

        Hot path: the analytic base requirement is cached per V_PP and
        the row's worst-case requirement is cached per row, so the
        common case (ample tRCD) costs two lookups and a compare.
        """
        worst = self._trcd_worst_requirement(physical_row, state)
        if worst <= trcd_used:
            return None  # even the slowest cell is covered
        if math.isinf(worst):
            # Below the conduction floor nothing senses correctly.
            return self._charged_mask(physical_row, state.data)

        requirement_base = state.cache[("_trcd_base", self._env.vpp)]
        row_factor = state.cache["_trcd_row_factor"]
        pattern_factor = self._cached(state, physical_row, "trcd_pattern_factors")[
            state.pattern_index
        ]
        cell_factors = self._cached(state, physical_row, "cell_trcd_factors")
        requirement = requirement_base * row_factor * pattern_factor * cell_factors
        corrupt = (requirement > trcd_used) & self._charged_mask(
            physical_row, state.data
        )
        return corrupt if corrupt.any() else None

    # -- commands -----------------------------------------------------------------

    def activate(self, logical_row: int, trcd: float = None) -> None:
        """ACT: open ``logical_row``, persisting its pending flips.

        ``trcd`` is the activation latency the controller will respect
        before the first read; if it undercuts cell requirements at the
        current V_PP, those cells read corrupted until the row is closed.
        ``None`` means "ample" (no activation corruption).
        """
        if self._open_row is not None:
            raise DramCommandError(
                f"bank {self._index}: ACT while row {self._open_row} is open"
            )
        self._check_row(logical_row)
        physical = self._mapping.to_physical(logical_row)
        state = self._state(physical)
        self._persist_pending_flips(physical, state)
        self._restore(physical, state)
        # Every activation disturbs the physical neighbors -- RowHammer
        # through the regular command path (system-level attacks issue
        # plain reads; the disturbance must not depend on which API
        # hammered the row).
        self._damage_neighbors(physical, 1)
        self._open_corrupt = (
            None
            if trcd is None
            else self._activation_corruption(physical, state, trcd)
        )
        self._open_row = logical_row
        self._written_columns = set()
        self.total_activations += 1
        if self._trr is not None:
            self._trr.observe_activation(logical_row)

    def precharge(self) -> None:
        """PRE: close the open row (idempotent, like real PRE)."""
        if self._open_row is None:
            return
        physical = self._mapping.to_physical(self._open_row)
        state = self._rows[physical]
        if len(self._written_columns) == self._geometry.columns:
            # A full-row write establishes fresh charge and a known pattern.
            pattern = classify_row_bits(state.data)
            state.pattern_index = (
                pattern.index if pattern is not None else OTHER_PATTERN_INDEX
            )
            self._restore(physical, state)
        self._open_row = None
        self._open_corrupt = None
        self._written_columns = set()

    def read_column(self, column: int) -> np.ndarray:
        """RD: return the 64 bits of ``column`` from the open row."""
        if self._open_row is None:
            raise DramCommandError(f"bank {self._index}: RD with no open row")
        self._check_column(column)
        physical = self._mapping.to_physical(self._open_row)
        state = self._rows[physical]
        lo, hi = column * 64, (column + 1) * 64
        bits = state.data[lo:hi].copy()
        if self._open_corrupt is not None:
            mask = self._open_corrupt[lo:hi]
            bits[mask] = self._discharged_value(physical)
        return bits

    def write_column(self, column: int, bits: np.ndarray) -> None:
        """WR: store 64 bits into ``column`` of the open row."""
        if self._open_row is None:
            raise DramCommandError(f"bank {self._index}: WR with no open row")
        self._check_column(column)
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.shape != (64,):
            raise DramCommandError(
                f"WR payload must be 64 bits, got shape {bits.shape}"
            )
        physical = self._mapping.to_physical(self._open_row)
        state = self._rows[physical]
        state.data[column * 64 : (column + 1) * 64] = bits
        # Data changed: previously-flipped cells may be re-charged, so
        # the cached flip guard (computed over the old charged set) is
        # stale.
        state.cache.pop("_flip_guard", None)
        self._written_columns.add(column)

    def read_row(self) -> np.ndarray:
        """Convenience: all bits of the open row (column reads fused)."""
        if self._open_row is None:
            raise DramCommandError(f"bank {self._index}: read with no open row")
        physical = self._mapping.to_physical(self._open_row)
        state = self._rows[physical]
        bits = state.data.copy()
        if self._open_corrupt is not None:
            bits[self._open_corrupt] = self._discharged_value(physical)
        return bits

    def write_row(self, bits: np.ndarray) -> None:
        """Convenience: fill the open row (column writes fused)."""
        if self._open_row is None:
            raise DramCommandError(f"bank {self._index}: write with no open row")
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.shape != (self._geometry.row_bits,):
            raise DramCommandError(
                f"row payload must be {self._geometry.row_bits} bits"
            )
        physical = self._mapping.to_physical(self._open_row)
        state = self._rows[physical]
        state.data = bits.copy()
        state.cache.pop("_flip_guard", None)  # see write_column
        self._written_columns = set(range(self._geometry.columns))

    # -- hammering -------------------------------------------------------------------

    def hammer(self, aggressor_rows: Sequence[int], count: int) -> None:
        """Apply ``count`` ACT/PRE cycles to each aggressor (logical) row.

        The analytic equivalent of the unrolled activation loop: damage is
        deposited on physical neighbors at distance 1 and 2, scaled by the
        V_PP-dependent disturbance model evaluated at the *current*
        operating point. Aggressor rows themselves end fully restored (each
        activation restores them).
        """
        if self._open_row is not None:
            raise DramCommandError(
                f"bank {self._index}: hammer while row {self._open_row} is open"
            )
        if count < 0:
            raise DramCommandError(f"hammer count must be >= 0: {count}")
        for logical in aggressor_rows:
            self._check_row(logical)
            physical = self._mapping.to_physical(logical)
            agg_state = self._state(physical)
            self._persist_pending_flips(physical, agg_state)
            self._restore(physical, agg_state)
            self._damage_neighbors(physical, count)
            self.total_activations += count
            if self._trr is not None:
                self._trr.observe_activation(logical, count=count)

    # -- refresh ----------------------------------------------------------------------

    def refresh(self) -> List[int]:
        """REF: refresh the next chunk of rows (8192 REFs cover the bank).

        Returns the logical rows refreshed, including any victims the TRR
        defense chose to refresh alongside (Section 4.1's disabled-by-
        withholding-REF behaviour: no REF, no TRR).
        """
        if self._open_row is not None:
            raise DramCommandError(
                f"bank {self._index}: REF while row {self._open_row} is open"
            )
        chunk = max(1, self._geometry.rows_per_bank // 8192)
        start = self._refresh_cursor
        refreshed: List[int] = []
        for physical in range(start, min(start + chunk, self._geometry.rows_per_bank)):
            if physical in self._rows:
                state = self._rows[physical]
                self._persist_pending_flips(physical, state)
                self._restore(physical, state)
            refreshed.append(self._mapping.to_logical(physical))
        self._refresh_cursor = (start + chunk) % self._geometry.rows_per_bank
        if self._trr is not None:
            for victim_logical in self._trr.victims_to_refresh():
                physical = self._mapping.to_physical(victim_logical)
                if physical in self._rows:
                    state = self._rows[physical]
                    self._persist_pending_flips(physical, state)
                    self._restore(physical, state)
                refreshed.append(victim_logical)
        return refreshed

    def refresh_all(self) -> int:
        """Refresh every materialized row in one pass (the controller's
        per-tREFW sweep); returns the number of rows refreshed.

        Equivalent to cycling REF through the whole bank, without paying
        for the empty refresh slots of untouched rows.
        """
        if self._open_row is not None:
            raise DramCommandError(
                f"bank {self._index}: refresh while row {self._open_row} is open"
            )
        refreshed = 0
        for physical, state in self._rows.items():
            self._persist_pending_flips(physical, state)
            self._restore(physical, state)
            refreshed += 1
        return refreshed

    def refresh_rows(self, logical_rows: Sequence[int]) -> None:
        """Refresh specific rows (selective double-rate refresh)."""
        for logical in logical_rows:
            self._check_row(logical)
            physical = self._mapping.to_physical(logical)
            state = self._rows.get(physical)
            if state is None:
                continue
            self._persist_pending_flips(physical, state)
            self._restore(physical, state)

    # -- batched probe sweeps -----------------------------------------------------------

    def hammer_sweep(
        self,
        victim_row: int,
        aggressor_rows: Sequence[int],
        pattern: DataPattern,
    ) -> "HammerSweep":
        """Precompute the flip evaluation of repeated double-sided probes.

        Returns a :class:`HammerSweep` that computes the victim's
        per-cell effective thresholds once per operating point and then
        evaluates any number of hammer counts against them -- the kernel
        behind the fast probe engine and Alg. 1's bisection.
        """
        return HammerSweep(self, victim_row, aggressor_rows, pattern)

    def retention_sweep(
        self, victim_row: int, pattern: DataPattern
    ) -> "RetentionSweep":
        """Precompute the flip evaluation of repeated retention probes
        (all of Alg. 3's refresh windows share one threshold vector)."""
        return RetentionSweep(self, victim_row, pattern)

    def probe_state(self, logical_row: int) -> RowState:
        """Materialize (if needed) and return a row's mutable state.

        Probe engines use this to keep restore-session bookkeeping
        aligned with the command path.
        """
        self._check_row(logical_row)
        return self._state(self._mapping.to_physical(logical_row))

    def preheat_tolerance_orders(self, logical_rows: Sequence[int]) -> int:
        """Warm the per-row tolerance sort orders for a whole row set.

        The batch probe engine's count reductions walk each row's cells
        in ascending-tolerance order (:meth:`HammerSweep.
        threshold_counts`). The order is a pure per-row property, so a
        row set can compute it in one stacked ``(rows, cells)`` argsort
        instead of one argsort per row; the per-row results are
        identical. Returns the number of rows actually warmed (rows
        whose order is already cached are skipped).
        """
        physicals: List[int] = []
        states: List[RowState] = []
        for logical in logical_rows:
            self._check_row(logical)
            physical = self._mapping.to_physical(logical)
            state = self._state(physical)
            if _TOL_ORDER_KEY not in state.cache:
                physicals.append(physical)
                states.append(state)
        if not physicals:
            return 0
        stacked = np.stack([
            self._cached(state, physical, "cell_tolerances")
            for physical, state in zip(physicals, states)
        ])
        orders = np.argsort(stacked, axis=1)
        sorted64 = np.take_along_axis(stacked, orders, axis=1).astype(
            np.float64
        )
        for physical, state, order, tol_sorted in zip(
            physicals, states, orders, sorted64
        ):
            outlier = self._cached(state, physical, "cell_outlier_mask")
            state.cache[_TOL_ORDER_KEY] = (order, tol_sorted, outlier[order])
        return len(physicals)

    def preheat_retention_orders(self, logical_rows: Sequence[int]) -> int:
        """Warm the per-row retention sort orders for a whole row set.

        The fused probe engine's cross-operating-point reductions walk
        each row's charged cells in ascending-retention order (see
        :class:`_FusedRetentionCounts`): V_PP, temperature and data
        pattern only reparameterize monotone scalar factors on the
        presorted per-cell retention times, so one sort per row serves
        *every* operating point. Like
        :meth:`preheat_tolerance_orders`, a row set computes the orders
        in one stacked ``(rows, cells)`` argsort; the retention time /
        V_PP-sensitivity structure pair is generated in a single RNG
        replay per row (half the cost of the two single-field
        accessors). Returns the number of rows actually warmed.
        """
        physicals: List[int] = []
        states: List[RowState] = []
        for logical in logical_rows:
            self._check_row(logical)
            physical = self._mapping.to_physical(logical)
            state = self._state(physical)
            if (
                "cell_retention_times" not in state.cache
                or "cell_retention_vpp_sensitivity" not in state.cache
            ):
                times, sensitivity = self._cells.retention_structure_pair(
                    physical
                )
                state.cache["cell_retention_times"] = times
                state.cache["cell_retention_vpp_sensitivity"] = sensitivity
            if _RET_ORDER_KEY not in state.cache:
                physicals.append(physical)
                states.append(state)
        if not physicals:
            return 0
        stacked = np.stack([
            state.cache["cell_retention_times"] for state in states
        ])
        orders = np.argsort(stacked, axis=1)
        sorted_times = np.take_along_axis(stacked, orders, axis=1)
        for state, order, row_sorted in zip(states, orders, sorted_times):
            state.cache[_RET_ORDER_KEY] = (order, row_sorted)
        return len(physicals)

    def sensing_corruption(
        self, logical_row: int, trcd: float
    ) -> Optional[np.ndarray]:
        """Activation-corruption mask an ACT with ``trcd`` would apply to
        the row's current content (None when every cell senses cleanly).
        """
        self._check_row(logical_row)
        physical = self._mapping.to_physical(logical_row)
        return self._activation_corruption(physical, self._state(physical), trcd)

    def sensing_certainly_clean(self, logical_row: int, trcd: float) -> bool:
        """Whether an ACT with ``trcd`` is guaranteed corruption-free for
        this row *regardless of its content*: even the slowest cell's
        requirement (at the current V_PP and the row's stored pattern
        slot) is covered. Data-independent, so the batch probe engine
        can cache the verdict per operating point across sessions --
        unlike :meth:`sensing_corruption`, whose ``None`` can also mean
        "the vulnerable cells happen to be uncharged right now"."""
        self._check_row(logical_row)
        physical = self._mapping.to_physical(logical_row)
        state = self._state(physical)
        worst = self._trcd_worst_requirement(physical, state)
        return worst <= trcd

    # -- introspection (testing / reverse-engineering support) --------------------------

    def materialized_rows(self) -> Iterable[int]:
        """Physical rows that currently hold state."""
        return self._rows.keys()

    def row_hammer_damage(self, logical_row: int) -> float:
        """Accumulated bulk-population damage on a row, in nominal-hammer
        units (the outlier accumulator tracks separately)."""
        self._check_row(logical_row)
        physical = self._mapping.to_physical(logical_row)
        state = self._rows.get(physical)
        return 0.0 if state is None else state.damage_bulk


class ProbeSweep:
    """Shared precomputation of one (victim row, data pattern) probe.

    Holds the victim's pattern bits, charged-cell mask and -- cached per
    (V_PP, temperature) operating point -- the per-cell effective
    retention thresholds, so repeated probes of the same row skip the
    per-probe parameter rederivation of the command path. The flip
    evaluation reuses the Bank's own threshold expressions, which is
    what keeps the sweep bit-identical to
    :meth:`Bank._persist_pending_flips`.
    """

    def __init__(self, bank: Bank, victim_row: int, pattern: DataPattern):
        bank._check_row(victim_row)
        self._bank = bank
        self.row = victim_row
        self.pattern = pattern
        self.physical = bank._mapping.to_physical(victim_row)
        self.state = bank._state(self.physical)
        # Bits, classification and charged mask are pure functions of
        # (pattern, row polarity); cache them on the row state so sweep
        # rebuilds (e.g. after an LRU eviction) cost dict hits only.
        pattern_key = ("_probe_pattern", pattern)
        cached = self.state.cache.get(pattern_key)
        if cached is None:
            bits = pattern.row_bits(bank._geometry.row_bits)
            classified = classify_row_bits(bits)
            cached = (
                bits,
                classified.index if classified is not None
                else OTHER_PATTERN_INDEX,
                bank._charged_mask(self.physical, bits),
            )
            self.state.cache[pattern_key] = cached
        self.bits, self.pattern_index, self.charged = cached
        self.discharged_value = bank._discharged_value(self.physical)
        self._outlier_mask = bank._cached(
            self.state, self.physical, "cell_outlier_mask"
        )
        self._op_key = None
        self._retention_thresholds = None
        self._counts = None
        self._counts_key = None
        self._fused = None
        self._fused_key = None
        #: Operating point at which sensing is known data-independently
        #: clean (see Bank.sensing_certainly_clean); batch sessions key
        #: their per-session corruption verdict on this.
        self.sensing_clean_at = None

    def effective_retention_times(self) -> np.ndarray:
        """Per-cell retention thresholds at the current operating point
        (recomputed only when V_PP or temperature change)."""
        env = self._bank._env
        key = (env.vpp, env.temperature)
        if key != self._op_key:
            self._retention_thresholds = self._bank._effective_retention_times(
                self.physical, self.state, self.pattern_index, env.vpp
            )
            self._op_key = key
        return self._retention_thresholds

    def retention_groups(self) -> tuple:
        """Per-V_PP-sensitivity decomposition of the charged cells.

        Returns a tuple of ``(sensitivity, indices, times)`` groups:
        cell indices and base retention times (80 degC, nominal V_PP) of
        the charged cells sharing one sensitivity exponent, each group
        ascending in retention time. Within a group the effective
        retention threshold is the base time multiplied by *scalars*
        (thermal factor, ``margin ** sensitivity``, pattern factor), and
        positive scalar multiplication is weakly monotone in IEEE
        floats, so every operating point reuses the same presorted
        groups -- the heart of the fused cross-V_PP kernel. Cached on
        the row state per pattern; the candidate sensitivity values come
        from the calibration profile's retention tiers (plus the bulk
        value 1), which is exactly the set the cell generator assigns.
        """
        state = self.state
        key = ("_ret_groups", self.pattern)
        groups = state.cache.get(key)
        if groups is not None:
            return groups
        bank = self._bank
        row_static = state.cache.get(_RET_ORDER_KEY)
        if row_static is None:
            times = bank._cached(
                state, self.physical, "cell_retention_times"
            )
            order = np.argsort(times)
            row_static = (order, times[order])
            state.cache[_RET_ORDER_KEY] = row_static
        order, times_sorted = row_static
        charged_sorted = self.charged[order]
        indices = order[charged_sorted]
        times_charged = times_sorted[charged_sorted]
        sensitivity = bank._cached(
            state, self.physical, "cell_retention_vpp_sensitivity"
        )[indices]
        candidates = {np.float32(1.0)}
        for tier in bank._cal.profile.retention_tiers:
            candidates.add(np.float32(tier.vpp_sensitivity))
        groups = []
        covered = 0
        for value in sorted(candidates):
            member = sensitivity == value
            count = int(np.count_nonzero(member))
            if count == 0:
                continue
            covered += count
            if count == sensitivity.size:
                groups.append((value, indices, times_charged))
            else:
                groups.append(
                    (value, indices[member], times_charged[member])
                )
        if covered != sensitivity.size:  # pragma: no cover - defensive
            # A sensitivity value outside the calibration profile's tier
            # set: rebuild the candidate list from the data itself.
            groups = []
            for value in np.unique(sensitivity):
                member = sensitivity == value
                groups.append(
                    (value, indices[member], times_charged[member])
                )
        groups = tuple(groups)
        state.cache[key] = groups
        return groups

    def cache_nbytes(self) -> int:
        """Approximate bytes of per-operating-point arrays owned by this
        sweep (the effective-retention vector and the counts objects'
        sorted slices). Row-state caches are excluded: they are shared
        across sweeps and survive eviction anyway. The probe engines'
        byte-bounded LRU sums this over its residents."""
        total = 0
        if self._retention_thresholds is not None:
            total += self._retention_thresholds.nbytes
        for counts in (self._counts, self._fused):
            if counts is not None:
                total += counts.nbytes()
        return total


class HammerSweep(ProbeSweep):
    """Batched double-sided RowHammer probe evaluation for one victim.

    ``victim_damage`` replicates, deposit by deposit, the damage the
    command path accumulates on the victim over one Alg. 1 probe (one
    activation per aggressor initialization plus the hammer sessions),
    and ``flip_mask`` evaluates it against the Bank's effective
    thresholds -- so a whole bisection reuses one threshold computation
    per operating point.
    """

    def __init__(
        self,
        bank: Bank,
        victim_row: int,
        aggressor_rows: Sequence[int],
        pattern: DataPattern,
    ):
        super().__init__(bank, victim_row, pattern)
        self.aggressors = list(aggressor_rows)
        self.aggressor_states = []
        self._weights = []
        attenuation = bank._cal.disturbance.distance2_attenuation
        for logical in self.aggressors:
            bank._check_row(logical)
            physical = bank._mapping.to_physical(logical)
            distance = abs(physical - self.physical)
            if distance == 1:
                weight = _DISTANCE1_WEIGHT
            elif distance == 2:
                weight = _DISTANCE1_WEIGHT * attenuation
            else:
                weight = 0.0  # beyond the disturbance radius
            self._weights.append(weight)
            self.aggressor_states.append(bank._state(physical))
        self._damage_terms = None

    def damage_terms(self) -> tuple:
        """``(op_key, base_bulk, base_outlier, terms)`` for
        :meth:`victim_damage` at the current operating point.

        The initialization deposits (one activation per aggressor) and
        the per-aggressor ``weight / scale`` coefficients are constant
        per (V_PP, temperature), so a whole bisection reuses them; the
        base sums are accumulated once in the command path's exact
        order.
        """
        env = self._bank._env
        key = (env.vpp, env.temperature)
        cached = self._damage_terms
        if cached is None or cached[0] != key:
            scale_bulk, scale_outlier = self._bank._disturbance_scales(
                self.physical
            )
            base_bulk = 0.0
            base_outlier = 0.0
            for weight in self._weights:
                base_bulk += 1 * weight / scale_bulk
                base_outlier += 1 * weight / scale_outlier
            terms = tuple(
                (weight, scale_bulk, scale_outlier)
                for weight in self._weights
            )
            cached = (key, base_bulk, base_outlier, terms)
            self._damage_terms = cached
        return cached

    def victim_damage(self, count: int) -> "tuple[float, float]":
        """(bulk, outlier) damage one probe deposits on the victim.

        Accumulated in the command path's order -- one activation per
        aggressor initialization, then ``count`` hammers per aggressor --
        with the same scalar expressions, so the floating-point result is
        bit-identical to ``RowState.damage_*`` after the real commands.
        """
        _, damage_bulk, damage_outlier, terms = self.damage_terms()
        for weight, scale_bulk, scale_outlier in terms:
            damage_bulk += count * weight / scale_bulk
            damage_outlier += count * weight / scale_outlier
        return damage_bulk, damage_outlier

    def flip_mask(
        self,
        damage_bulk: float,
        damage_outlier: float,
        session: int,
        elapsed: float,
    ) -> np.ndarray:
        """Cells the probe flips, exactly as the persist path evaluates
        them at the read-back activation."""
        charged = self.charged
        flips = np.zeros_like(charged)
        effective_retention = self.effective_retention_times()
        if elapsed > 0:
            flips |= charged & (effective_retention < elapsed)
        effective_tolerance = self._bank._effective_tolerances(
            self.physical, self.state, self.pattern_index, session
        )
        damage = np.where(self._outlier_mask, damage_outlier, damage_bulk)
        flips |= charged & (damage >= effective_tolerance)
        return flips

    def threshold_counts(self) -> "_HammerCounts":
        """Sorted-threshold reductions at the current operating point.

        Rebuilt only when V_PP or temperature change -- the per-probe
        cost of a whole bisection then collapses to a few scalar
        multiplies (see :class:`_HammerCounts`).
        """
        env = self._bank._env
        key = (env.vpp, env.temperature)
        if self._counts is None or self._counts_key != key:
            self._counts = _HammerCounts(self)
            self._counts_key = key
        return self._counts

    def fused_counts(self) -> "_FusedHammerCounts":
        """Deferred-statics hammer reductions at the current operating
        point (the fused probe engine's kernel; see
        :class:`_FusedHammerCounts`). Cached separately from
        :meth:`threshold_counts` so mixing engines on one sweep cannot
        alias the two."""
        env = self._bank._env
        key = (env.vpp, env.temperature)
        if self._fused is None or self._fused_key != key:
            self._fused = _FusedHammerCounts(self)
            self._fused_key = key
        return self._fused

    def flip_counts(
        self, counts: Sequence[int], session: int, elapsed: float
    ) -> np.ndarray:
        """Flipped-cell counts for a whole vector of hammer counts.

        One threshold computation covers every count -- the batched form
        of a bisection's probe ladder (analysis/benchmark use; the probe
        engine evaluates counts one session at a time to preserve the
        per-probe jitter schedule).
        """
        charged = self.charged
        base = np.zeros_like(charged)
        effective_retention = self.effective_retention_times()
        if elapsed > 0:
            base |= charged & (effective_retention < elapsed)
        effective_tolerance = self._bank._effective_tolerances(
            self.physical, self.state, self.pattern_index, session
        )
        results = []
        for count in counts:
            damage_bulk, damage_outlier = self.victim_damage(count)
            damage = np.where(self._outlier_mask, damage_outlier, damage_bulk)
            flips = base | (charged & (damage >= effective_tolerance))
            results.append(int(np.count_nonzero(flips)))
        return np.asarray(results)


class RetentionSweep(ProbeSweep):
    """Batched retention probe evaluation for one victim row.

    A retention probe leaves the victim's accumulated damage at zero
    (the full-row write restores it and nothing activates nearby during
    the wait) and effective tolerances are strictly positive, so the
    command path's damage term can never fire; the sweep therefore only
    evaluates the retention thresholds. Skipping the jitter draw is
    exact because the RNG is stateless (keyed by row and session).
    """

    def flip_mask(self, elapsed: float) -> np.ndarray:
        """Cells that decay within ``elapsed`` seconds of the restore."""
        charged = self.charged
        flips = np.zeros_like(charged)
        if elapsed > 0:
            flips |= charged & (self.effective_retention_times() < elapsed)
        return flips

    def threshold_counts(self) -> "_RetentionCounts":
        """Sorted-threshold reductions at the current operating point
        (exact flip counts for any elapsed time from one binary search).
        """
        env = self._bank._env
        key = (env.vpp, env.temperature)
        if self._counts is None or self._counts_key != key:
            self._counts = _RetentionCounts(self)
            self._counts_key = key
        return self._counts

    def fused_counts(self) -> "_FusedRetentionCounts":
        """Group-decomposed retention reductions at the current
        operating point (the fused probe engine's kernel; see
        :class:`_FusedRetentionCounts`)."""
        env = self._bank._env
        key = (env.vpp, env.temperature)
        if self._fused is None or self._fused_key != key:
            self._fused = _FusedRetentionCounts(self)
            self._fused_key = key
        return self._fused


_EMPTY_INDICES = np.empty(0, dtype=np.intp)


def _flip_prefix(tol64: np.ndarray, factor, damage: float) -> int:
    """Number of leading cells of an ascending-tolerance vector whose
    effective tolerance (``tol * factor``) the damage reaches.

    IEEE-754 multiplication by a positive factor is monotone, so the
    rounded products inherit the vector's ordering and the flip
    predicate ``tol64[k] * factor <= damage`` -- the scalar twin of the
    broadcast ``damage >= tolerance * factor`` in :meth:`HammerSweep.
    flip_mask` (NumPy promotes the float32 tolerances to float64 before
    multiplying, which is exactly what ``tol64`` pre-bakes) -- selects a
    prefix. A binary search finds its exact length.
    """
    n = tol64.shape[0]
    if n == 0 or tol64[0] * factor > damage:
        return 0
    if tol64[n - 1] * factor <= damage:
        return n
    low, high = 0, n - 1
    while high - low > 1:
        mid = (low + high) // 2
        if tol64[mid] * factor <= damage:
            low = mid
        else:
            high = mid
    return low + 1


def _hammer_static(sweep: "HammerSweep") -> tuple:
    """The per-(row, pattern) charged-population prefix statics:
    ``((bulk_indices, bulk_tol64), (outlier_indices, outlier_tol64))``.

    The population index arrays and presorted float64 tolerances are
    operating-point independent: they are cached on the row state (keyed
    by pattern) so V_PP steps and sweep-LRU evictions only pay dict
    hits. Shared between :class:`_HammerCounts` (which builds them
    eagerly) and :class:`_FusedHammerCounts` (which defers them until a
    probe schedule proves it needs repeated exact counts).
    """
    state = sweep.state
    static_key = ("_hammer_static", sweep.pattern)
    static = state.cache.get(static_key)
    if static is None:
        bank = sweep._bank
        # Pattern-independent row precomputation, shared across
        # pattern statics: the ascending-tolerance cell order, the
        # float64 tolerances in that order, and the outlier mask in
        # that order. Tie order within equal tolerances is
        # irrelevant (every prefix cutoff compares values only, so
        # tied cells enter or leave a flip set together) -- the
        # sorts can use the default unstable kind.
        row_static = state.cache.get(_TOL_ORDER_KEY)
        if row_static is None:
            tolerance = bank._cached(
                state, sweep.physical, "cell_tolerances"
            )
            order = np.argsort(tolerance)
            row_static = (
                order,
                tolerance[order].astype(np.float64),
                sweep._outlier_mask[order],
            )
            state.cache[_TOL_ORDER_KEY] = row_static
        order, tol_sorted, outlier_sorted = row_static
        # Filter once down to the charged cells, then split by the
        # outlier flag at half width -- relative (ascending
        # tolerance) order survives both filters.
        charged_sorted = sweep.charged[order]
        idx_charged = order[charged_sorted]
        tol_charged = tol_sorted[charged_sorted]
        out_charged = outlier_sorted[charged_sorted]
        bulk_flag = ~out_charged
        static = (
            (idx_charged[bulk_flag], tol_charged[bulk_flag]),
            (idx_charged[out_charged], tol_charged[out_charged]),
        )
        state.cache[static_key] = static
    return static


def _retention_guard(sweep: ProbeSweep) -> tuple:
    """``(min retention, min sensitivity, max sensitivity)`` over the
    charged cells, cached on the row state per pattern (``(inf, 0, 0)``
    when nothing is charged). Pure row/pattern properties -- the inputs
    of the analytic retention lower bound below."""
    state = sweep.state
    guard_key = ("_retention_guard", sweep.pattern)
    guard = state.cache.get(guard_key)
    if guard is None:
        bank = sweep._bank
        retention = bank._cached(
            state, sweep.physical, "cell_retention_times"
        )
        sensitivity = bank._cached(
            state, sweep.physical, "cell_retention_vpp_sensitivity"
        )
        if sweep.charged.any():
            charged_sensitivity = sensitivity[sweep.charged]
            guard = (
                float(retention[sweep.charged].min()),
                float(charged_sensitivity.min()),
                float(charged_sensitivity.max()),
            )
        else:
            guard = (math.inf, 0.0, 0.0)
        state.cache[guard_key] = guard
    return guard


def _retention_lower_bound(sweep: ProbeSweep) -> float:
    """A sound scalar lower bound on the charged cells' effective
    retention at the current operating point.

    Retention decay cannot fire below it (hammer probes wait micro- to
    milliseconds, retention thresholds sit orders of magnitude higher),
    so the per-cell retention evaluation is deferred -- usually forever.
    The bound is analytic:

    ``min_i r_i * thermal * margin^s_i * pattern
      >= min(r) * thermal * min(margin^min(s), margin^max(s)) * pattern``

    (``margin^s`` is monotone in ``s``), deflated by 1e-5 to absorb the
    float32 rounding of the vectorized expression."""
    retention_min, sensitivity_min, sensitivity_max = _retention_guard(sweep)
    if math.isinf(retention_min):
        return math.inf
    bank = sweep._bank
    model = bank._cal.retention
    env = bank._env
    margin = model.margin_factor(env.vpp)
    thermal = model.temperature_factor(env.temperature)
    pattern_scalar = float(bank._cached(
        sweep.state, sweep.physical, "retention_pattern_factors"
    )[sweep.pattern_index])
    return (
        retention_min * thermal
        * min(margin ** sensitivity_min, margin ** sensitivity_max)
        * pattern_scalar * (1.0 - 1e-5)
    )


class _HammerCounts:
    """Exact hammer-probe flip *counts* from scalar reductions.

    A probe's flip set is ``R | D`` where ``R`` (retention decays) and
    ``D`` (damage flips, per bulk/outlier population) are both prefix
    sets of presorted threshold vectors, so

    ``|R | D| = |R| + sum_pop |D_pop| - sum_pop |R & D_pop|``

    needs one ``searchsorted``, one binary search per population, and a
    small overlap count -- no full-row vector work. Every comparison
    replays the exact scalar operations of :meth:`HammerSweep.
    flip_mask` (float64 products of the float32 tolerances, strict /
    non-strict directions preserved), so the counts are bit-consistent
    with ``np.count_nonzero(flip_mask(...))`` -- the batch probe
    engine's differential tests assert exactly that.
    """

    def __init__(self, sweep: HammerSweep):
        bank = sweep._bank
        state = sweep.state
        self._cells = bank._cells
        self._physical = sweep.physical
        self._bulk, self._outlier = _hammer_static(sweep)
        self._hammer_pattern = bank._cached(
            state, sweep.physical, "pattern_factors"
        )[sweep.pattern_index]
        # Retention decay cannot fire below the analytic lower bound, so
        # the full per-cell retention vector is materialized lazily --
        # usually never (see _retention_lower_bound).
        self._retention_bound = _retention_lower_bound(sweep)
        self._sweep = sweep
        self._retention_sorted = None
        self._effective_retention = None
        # Per-population retention slices, materialized only if a probe
        # actually needs the decay/damage overlap correction.
        self._pop_retention = [None, None]

    def _factor(self, session: int):
        jitter = self._cells.measurement_jitter(self._physical, session)
        return self._hammer_pattern * jitter

    def _decayed(self, elapsed: float) -> int:
        """Exact decayed-cell count; materializes the retention vector
        on first use (callers pre-filter with ``_retention_bound``)."""
        if self._retention_sorted is None:
            self._effective_retention = (
                self._sweep.effective_retention_times()
            )
            self._retention_sorted = np.sort(
                self._effective_retention[self._sweep.charged]
            )
        return int(self._retention_sorted.searchsorted(elapsed, "left"))

    def any_decay(self, elapsed: float) -> bool:
        """True when the probe's wait decays at least one charged cell
        (``flip_mask``'s retention term is nonzero)."""
        return (
            elapsed > 0
            and elapsed > self._retention_bound
            and self._decayed(elapsed) > 0
        )

    def _population_retention(self, index: int) -> np.ndarray:
        retention = self._pop_retention[index]
        if retention is None:
            indices = (self._bulk, self._outlier)[index][0]
            retention = self._effective_retention[indices]
            self._pop_retention[index] = retention
        return retention

    def count(
        self, damage_bulk: float, damage_outlier: float, session: int,
        elapsed: float,
    ) -> int:
        """``np.count_nonzero(flip_mask(...))``, without the vectors."""
        factor = self._factor(session)
        decayed = 0
        if elapsed > 0 and elapsed > self._retention_bound:
            decayed = self._decayed(elapsed)
        total = decayed
        for index, damage in ((0, damage_bulk), (1, damage_outlier)):
            tol64 = (self._bulk, self._outlier)[index][1]
            prefix = _flip_prefix(tol64, factor, damage)
            total += prefix
            if prefix and decayed:
                retention = self._population_retention(index)
                total -= int(np.count_nonzero(retention[:prefix] < elapsed))
        return total

    def any_flip(
        self, damage_bulk: float, damage_outlier: float, session: int,
        elapsed: float,
    ) -> bool:
        """``flip_mask(...).any()``: probes only the population minima.

        Skipping the jitter draw when a retention decay already decides
        the probe is exact -- the RNG is stateless (see the sweep
        docstrings).
        """
        if self.any_decay(elapsed):
            return True
        factor = self._factor(session)
        for (_, tol64), damage in (
            (self._bulk, damage_bulk), (self._outlier, damage_outlier)
        ):
            if tol64.shape[0] and tol64[0] * factor <= damage:
                return True
        return False

    def flip_populations(
        self, damage_bulk: float, damage_outlier: float, session: int
    ) -> List[np.ndarray]:
        """Per-population index arrays of the damage-flipped cells.

        The prefix form of ``flip_mask``'s damage term: monotone
        float64 products make each population's flip set a prefix of
        its presorted index array. When ``elapsed <= min_retention`` no
        retention decay can fire, so these indices *are* the complete
        flip set -- the batch engine materializes a session's final
        data from them without touching a full-row vector.
        """
        factor = self._factor(session)
        parts = []
        for (indices, tol64), damage in (
            (self._bulk, damage_bulk), (self._outlier, damage_outlier)
        ):
            prefix = _flip_prefix(tol64, factor, damage)
            if prefix:
                parts.append(indices[:prefix])
        return parts

    def nbytes(self) -> int:
        """Bytes of the operating-point-specific arrays this object
        owns (the lazily sorted retention slices; the prefix statics
        live on the shared row state and are not counted)."""
        total = 0
        if self._retention_sorted is not None:
            total += self._retention_sorted.nbytes
        for retention in self._pop_retention:
            if retention is not None:
                total += retention.nbytes
        return total


class _RetentionCounts:
    """Exact retention-probe flip counts: one sorted threshold vector,
    one ``searchsorted`` per probe (strict ``< elapsed``, matching
    :meth:`RetentionSweep.flip_mask`).

    The decayed cells of any elapsed time are exactly the charged cells
    with threshold strictly below the cutoff, so the word-granular flip
    histogram and the session's final data fall out of one comparison
    against the (lazily materialized) charged threshold slice."""

    def __init__(self, sweep: RetentionSweep):
        state = sweep.state
        charged_key = ("_charged_indices", sweep.pattern)
        charged_indices = state.cache.get(charged_key)
        if charged_indices is None:
            charged_indices = np.flatnonzero(sweep.charged)
            state.cache[charged_key] = charged_indices
        self._charged_indices = charged_indices
        bank = sweep._bank
        env = bank._env
        # The pattern only contributes a trailing positive scalar to the
        # effective retention times, and multiplying by a positive
        # scalar is (weakly) monotone in IEEE floats: sorting commutes
        # with it. Cache the sorted charged *base* retention per
        # operating point so every pattern's session pays one scalar
        # multiply instead of a fresh materialize-and-sort.
        op_key = (env.vpp, env.temperature)
        base_key = ("_retention_sorted_base", sweep.pattern)
        cached = state.cache.get(base_key)
        if cached is None or cached[0] != op_key:
            base = bank._retention_base(sweep.physical, state, env.vpp)
            base_charged = base[charged_indices]
            cached = (op_key, base_charged, np.sort(base_charged))
            state.cache[base_key] = cached
        scalar = bank._cached(
            state, sweep.physical, "retention_pattern_factors"
        )[sweep.pattern_index]
        self._base_charged = cached[1]
        self._scalar = scalar
        if scalar > 0:
            self._retention_sorted = cached[2] * scalar
        else:  # pragma: no cover - calibration factors are positive
            self._retention_sorted = np.sort(cached[1] * scalar)
        # Full charged thresholds, materialized only when a flip *set*
        # is actually requested (counting ladders need just the sorted
        # values).
        self._thresholds = None

    def count(self, elapsed: float) -> int:
        if elapsed <= 0 or self._retention_sorted.size == 0:
            return 0
        return int(self._retention_sorted.searchsorted(elapsed, "left"))

    def count_many(self, elapsed_values: Sequence[float]) -> List[int]:
        """Per-value :meth:`count` for a fused probe ladder. Scalar
        ``searchsorted`` per value keeps the comparison semantics
        identical to :meth:`count` (no dtype promotion of the sorted
        vector against an array of needles)."""
        sorted_thresholds = self._retention_sorted
        if sorted_thresholds.size == 0:
            return [0] * len(elapsed_values)
        searchsorted = sorted_thresholds.searchsorted
        return [
            int(searchsorted(elapsed, "left")) if elapsed > 0 else 0
            for elapsed in elapsed_values
        ]

    def flip_indices(self, elapsed: float) -> np.ndarray:
        """The decayed cells' indices (``flip_mask``'s nonzero set)."""
        count = self.count(elapsed)
        if count == 0:
            return _EMPTY_INDICES
        if count == self._charged_indices.size:
            return self._charged_indices
        if self._thresholds is None:
            self._thresholds = self._base_charged * self._scalar
        return self._charged_indices[self._thresholds < elapsed]

    def word_histogram(self, elapsed: float) -> "Dict[int, int]":
        """``{flips-per-64-bit-word: word count}`` over affected words,
        identical to binning ``flip_mask`` -- the Alg. 3 record's
        word-granular histogram."""
        flipped = self.flip_indices(elapsed)
        if flipped.size == 0:
            return {}
        per_word = np.bincount(flipped >> 6)
        histogram = np.bincount(per_word[per_word > 0])
        return {
            int(v): int(c)
            for v, c in enumerate(histogram)
            if v and c
        }

    def nbytes(self) -> int:
        """Bytes of the operating-point-specific arrays this object owns
        (the sorted charged thresholds and the lazily materialized flip
        threshold slice; the base slice is state-cached and shared)."""
        total = self._retention_sorted.nbytes
        if self._thresholds is not None:
            total += self._thresholds.nbytes
        return total


def _fused_group_prefix(
    times: np.ndarray, thermal, margin_pow, scalar, factor: float,
    elapsed: float,
) -> int:
    """Decayed-cell count of one sensitivity group: the exact partition
    point of ``eff(times[k]) < elapsed`` over ascending base times,
    where ``eff`` is the rounded float32/float64 scalar chain
    ``((t * thermal) * margin_pow) * scalar``.

    Two C-speed ``searchsorted`` calls against the *base* times bracket
    the boundary -- the inverse needle ``elapsed / factor`` is exact up
    to a few float32 ulps of forward-chain rounding, and the 1e-5
    relative window dominates that by >10x -- then a binary search
    inside the bracket replays ``eff`` elementwise (numpy scalar ops
    round identically to their vector twins), so the count is
    bit-identical to ``searchsorted`` over the materialized effective
    thresholds without ever materializing them.
    """
    n = times.shape[0]
    if n == 0:
        return 0
    needle = elapsed / factor
    # float32 needles keep searchsorted on the base times' own dtype (a
    # float64 needle would upcast -- i.e. copy -- the whole array per
    # call); the cast moves each bracket by at most one float32 ulp,
    # two orders of magnitude inside the 1e-5 margin.
    lo = int(times.searchsorted(np.float32(needle * (1.0 - 1e-5)), "left"))
    hi = int(times.searchsorted(np.float32(needle * (1.0 + 1e-5)), "right"))
    while lo < hi:
        mid = (lo + hi) // 2
        if ((times[mid] * thermal) * margin_pow) * scalar < elapsed:
            lo = mid + 1
        else:
            hi = mid
    return lo


class _FusedRetentionCounts:
    """Cross-operating-point retention reductions over the sensitivity
    group decomposition -- the fused probe engine's kernel.

    :class:`_RetentionCounts` materializes and sorts a fresh effective-
    threshold vector per (row, pattern, operating point). Here V_PP,
    temperature and pattern only *reparameterize* the presorted per-
    group base retention times (:meth:`ProbeSweep.retention_groups`):
    each group's effective thresholds are its ascending base times
    multiplied by three positive scalars, so an operating point costs
    just the scalar chain (no per-cell work at all) and every count
    resolves against the shared base-time arrays by needle inversion
    (:func:`_fused_group_prefix`). The boundary correction replays the
    exact float32/float64 operations of the vectorized
    ``retention * thermal * margin**sensitivity * pattern`` chain
    elementwise, so counts, flip sets and histograms are bit-identical
    to :class:`_RetentionCounts`; the fused engine's differential tests
    assert exactly that. The kernel owns *no* per-operating-point
    arrays -- fused retention sweeps are weightless under the sweep
    LRU's byte budget, so V_PP ladders keep every row resident.
    """

    def __init__(self, sweep: ProbeSweep):
        bank = sweep._bank
        env = bank._env
        model = bank._cal.retention
        margin = np.float32(model.margin_factor(env.vpp))
        thermal = np.float32(model.temperature_factor(env.temperature))
        scalar = bank._cached(
            sweep.state, sweep.physical, "retention_pattern_factors"
        )[sweep.pattern_index]
        groups = sweep.retention_groups()
        self._indices = tuple(indices for _, indices, _ in groups)
        self._times = tuple(times for _, _, times in groups)
        # Word numbers of the group cells, for the histogram reduction:
        # shifted once per (row, pattern) and shared through the row
        # state's cache exactly like the group decomposition itself.
        words_key = ("_ret_words", sweep.pattern)
        words = sweep.state.cache.get(words_key)
        if words is None:
            words = tuple(indices >> 6 for indices in self._indices)
            sweep.state.cache[words_key] = words
        self._words = words
        powers = tuple(np.power(margin, value) for value, _, _ in groups)
        self._scalars = tuple(
            (thermal, margin_pow, scalar) for margin_pow in powers
        )
        self._factors = tuple(
            float(thermal) * float(margin_pow) * float(scalar)
            for margin_pow in powers
        )
        # An Alg. 3 ladder re-asks the same elapsed times many times
        # over (every iteration of a worst-probe shares one elapsed;
        # the histogram and session close re-use the winner), so the
        # resolved per-group prefixes are memoized per elapsed.
        self._memo: Dict[float, tuple] = {}

    def _resolve(self, elapsed: float) -> tuple:
        cached = self._memo.get(elapsed)
        if cached is None:
            prefixes = tuple(
                _fused_group_prefix(times, *scalars, factor, elapsed)
                for times, scalars, factor in zip(
                    self._times, self._scalars, self._factors
                )
            )
            cached = (sum(prefixes), prefixes)
            self._memo[elapsed] = cached
        return cached

    def count(self, elapsed: float) -> int:
        if elapsed <= 0:
            return 0
        return self._resolve(elapsed)[0]

    def count_many(self, elapsed_values: Sequence[float]) -> List[int]:
        """Per-value :meth:`count` for a fused probe ladder.

        Alg. 3 ladders ask one elapsed time per iteration and the
        iterations of a window share it, so consecutive repeats resolve
        once."""
        counts: List[int] = []
        last_elapsed = None
        last_count = 0
        for elapsed in elapsed_values:
            if elapsed != last_elapsed:
                last_elapsed = elapsed
                last_count = self.count(elapsed)
            counts.append(last_count)
        return counts

    def flip_indices(self, elapsed: float) -> np.ndarray:
        """The decayed cells' indices (``flip_mask``'s nonzero set, in
        group order rather than index order -- every consumer treats the
        result as a set)."""
        if elapsed <= 0:
            return _EMPTY_INDICES
        parts = []
        for indices, prefix in zip(self._indices, self._resolve(elapsed)[1]):
            if prefix == indices.size:
                parts.append(indices)
            elif prefix:
                parts.append(indices[:prefix])
        if not parts:
            return _EMPTY_INDICES
        if len(parts) == 1:
            return parts[0]
        return np.concatenate(parts)

    def word_histogram(self, elapsed: float) -> "Dict[int, int]":
        """``{flips-per-64-bit-word: word count}`` over affected words,
        identical to :meth:`_RetentionCounts.word_histogram`."""
        if elapsed <= 0:
            return {}
        prefixes = self._resolve(elapsed)[1]
        parts = [
            words if prefix == words.size else words[:prefix]
            for words, prefix in zip(self._words, prefixes)
            if prefix
        ]
        if not parts:
            return {}
        flipped_words = parts[0] if len(parts) == 1 else np.concatenate(parts)
        per_word = np.bincount(flipped_words)
        histogram = np.bincount(per_word[per_word > 0])
        return {
            int(v): int(c)
            for v, c in enumerate(histogram)
            if v and c
        }

    def nbytes(self) -> int:
        """Always 0: needle inversion resolves counts against the
        state-cached base-time arrays, so the kernel owns no
        per-operating-point arrays at all."""
        return 0


class _FusedHammerCounts:
    """Hammer-probe reductions with *deferred* sort statics.

    :class:`_HammerCounts` pays an eager per-(row, pattern) charged-
    population sort the first time a pattern is probed -- dominant in
    WCDP phases, where most (row, pattern) pairs answer a handful of
    probes and never amortize it. This kernel answers

    * ``any_flip`` from two cached population minima (no vectors),
    * retention decay from the shared group decomposition
      (:class:`_FusedRetentionCounts` -- no per-point sort), and
    * exact ``count``/``flip_populations`` from a one-shot vector
      evaluation until a (row, pattern) pair has asked for
      :data:`STATIC_BUILD_THRESHOLD` of them, at which point it builds
      the same prefix statics as :class:`_HammerCounts` (shared cache
      key) and switches to scalar binary searches.

    Every path replays the scalar/broadcast expressions of
    :meth:`HammerSweep.flip_mask` exactly, so results stay bit-identical
    to the batch/fast/command tiers.
    """

    #: Exact-count/flip-set calls per (row, pattern) -- accumulated
    #: across operating points -- after which the prefix statics are
    #: built. Below it, one-shot vector evaluations are cheaper than the
    #: sort; a WCDP tie-break session (one BER probe plus its close)
    #: stays one-shot, while a grid bisection crosses the threshold on
    #: its first operating point and amortizes the sort over the rest.
    STATIC_BUILD_THRESHOLD = 3

    def __init__(self, sweep: HammerSweep):
        bank = sweep._bank
        state = sweep.state
        self._sweep = sweep
        self._bank = bank
        self._cells = bank._cells
        self._physical = sweep.physical
        self._hammer_pattern = bank._cached(
            state, sweep.physical, "pattern_factors"
        )[sweep.pattern_index]
        # Population minima: enough to answer any_flip exactly (the
        # batch kernel compares tol64[0] * factor <= damage; float() of
        # the float32 minimum is the same float64 value).
        minima_key = ("_hammer_minima", sweep.pattern)
        minima = state.cache.get(minima_key)
        if minima is None:
            static = state.cache.get(("_hammer_static", sweep.pattern))
            if static is not None:
                minima = tuple(
                    float(tol64[0]) if tol64.shape[0] else math.inf
                    for _, tol64 in static
                )
            else:
                tolerance = bank._cached(
                    state, sweep.physical, "cell_tolerances"
                )
                charged = sweep.charged
                outlier = sweep._outlier_mask
                values = []
                for mask in (charged & ~outlier, charged & outlier):
                    values.append(
                        float(tolerance[mask].min())
                        if mask.any() else math.inf
                    )
                minima = tuple(values)
            state.cache[minima_key] = minima
        self._min_bulk, self._min_outlier = minima
        self._retention_bound = _retention_lower_bound(sweep)
        self._retention = None

    def _factor(self, session: int):
        jitter = self._cells.measurement_jitter(self._physical, session)
        return self._hammer_pattern * jitter

    def _retention_counts(self) -> _FusedRetentionCounts:
        if self._retention is None:
            self._retention = _FusedRetentionCounts(self._sweep)
        return self._retention

    def any_decay(self, elapsed: float) -> bool:
        """True when the probe's wait decays at least one charged cell
        (group-counted; no per-operating-point sort)."""
        return (
            elapsed > 0
            and elapsed > self._retention_bound
            and self._retention_counts().count(elapsed) > 0
        )

    def any_flip(
        self, damage_bulk: float, damage_outlier: float, session: int,
        elapsed: float,
    ) -> bool:
        """``flip_mask(...).any()`` from the two population minima."""
        if self.any_decay(elapsed):
            return True
        factor = self._factor(session)
        return (
            self._min_bulk * factor <= damage_bulk
            or self._min_outlier * factor <= damage_outlier
        )

    def _statics(self):
        """The prefix statics, or None while the pair is below the build
        threshold (callers then fall back to a one-shot vector pass)."""
        state = self._sweep.state
        static = state.cache.get(("_hammer_static", self._sweep.pattern))
        if static is not None:
            return static
        uses_key = ("_fused_static_uses", self._sweep.pattern)
        uses = state.cache.get(uses_key, 0) + 1
        state.cache[uses_key] = uses
        if uses < self.STATIC_BUILD_THRESHOLD:
            return None
        return _hammer_static(self._sweep)

    def _damage_mask(
        self, damage_bulk: float, damage_outlier: float, factor
    ) -> np.ndarray:
        """``flip_mask``'s damage term, verbatim (one broadcast pass)."""
        sweep = self._sweep
        tolerance = self._bank._cached(
            sweep.state, sweep.physical, "cell_tolerances"
        )
        damage = np.where(
            sweep._outlier_mask, damage_outlier, damage_bulk
        )
        return sweep.charged & (damage >= tolerance * factor)

    def count(
        self, damage_bulk: float, damage_outlier: float, session: int,
        elapsed: float,
    ) -> int:
        """``np.count_nonzero(flip_mask(...))``, statics-free until the
        build threshold."""
        factor = self._factor(session)
        decayed = 0
        if elapsed > 0 and elapsed > self._retention_bound:
            decayed = self._retention_counts().count(elapsed)
        if decayed:
            # Rare: decay during a hammer probe. Evaluate the union
            # exactly by scattering the group flip set over the damage
            # mask -- equivalent to flip_mask's |= accumulation.
            flips = self._damage_mask(damage_bulk, damage_outlier, factor)
            flips[self._retention_counts().flip_indices(elapsed)] = True
            return int(np.count_nonzero(flips))
        static = self._statics()
        if static is not None:
            total = 0
            for (_, tol64), damage in (
                (static[0], damage_bulk), (static[1], damage_outlier)
            ):
                total += _flip_prefix(tol64, factor, damage)
            return total
        return int(np.count_nonzero(
            self._damage_mask(damage_bulk, damage_outlier, factor)
        ))

    def flip_populations(
        self, damage_bulk: float, damage_outlier: float, session: int
    ) -> List[np.ndarray]:
        """Index arrays of the damage-flipped cells (set semantics; see
        :meth:`_HammerCounts.flip_populations`)."""
        factor = self._factor(session)
        static = self._statics()
        if static is not None:
            parts = []
            for (indices, tol64), damage in (
                (static[0], damage_bulk), (static[1], damage_outlier)
            ):
                prefix = _flip_prefix(tol64, factor, damage)
                if prefix:
                    parts.append(indices[:prefix])
            return parts
        mask = self._damage_mask(damage_bulk, damage_outlier, factor)
        if not mask.any():
            return []
        return [np.flatnonzero(mask)]

    def nbytes(self) -> int:
        """Bytes of the owned per-operating-point arrays."""
        return 0 if self._retention is None else self._retention.nbytes()
