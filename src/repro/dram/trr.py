"""In-DRAM Target Row Refresh (TRR) defense model.

Modern DDR4 chips ship with proprietary on-die RowHammer defenses that
track aggressor activations and refresh likely victims *during REF
commands* (Section 4.1, references [36, 43]). The paper disables TRR by
simply never issuing REF -- every TRR implementation needs REF windows to
act -- and our model reproduces exactly that property: the tracker
observes activations continuously but can only refresh victims when
:meth:`victims_to_refresh` is invoked from a REF.

The tracker is a Misra-Gries style frequent-item counter table, the
mechanism reverse-engineered for several vendor TRRs by U-TRR [43].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.dram.mapping import RowMapping
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TrrConfig:
    """Tuning of the TRR tracker.

    Attributes
    ----------
    table_size:
        Number of aggressor counters the tracker maintains.
    action_threshold:
        Activation count above which a tracked row's neighbors are
        refreshed at the next REF.
    neighbor_distance:
        How far around an aggressor the victim refresh reaches.
    """

    table_size: int = 16
    action_threshold: int = 4096
    neighbor_distance: int = 1

    def __post_init__(self) -> None:
        if self.table_size < 1:
            raise ConfigurationError(f"table_size must be >= 1: {self.table_size}")
        if self.action_threshold < 1:
            raise ConfigurationError(
                f"action_threshold must be >= 1: {self.action_threshold}"
            )


class TargetRowRefresh:
    """Counter-table TRR tracker for one bank."""

    def __init__(self, mapping: RowMapping, config: TrrConfig = None):
        self._mapping = mapping
        self._config = config or TrrConfig()
        self._counters: Dict[int, int] = {}

    @property
    def config(self) -> TrrConfig:
        """The tracker's configuration."""
        return self._config

    def observe_activation(self, logical_row: int, count: int = 1) -> None:
        """Record ``count`` activations of ``logical_row``.

        Misra-Gries update: increment if tracked; insert if space;
        otherwise decrement every counter (evicting zeros), which keeps
        heavy hitters tracked without per-row state.
        """
        if count < 1:
            return
        counters = self._counters
        if logical_row in counters:
            counters[logical_row] += count
            return
        if len(counters) < self._config.table_size:
            counters[logical_row] = count
            return
        decrement = min(count, min(counters.values()))
        for row in list(counters):
            counters[row] -= decrement
            if counters[row] <= 0:
                del counters[row]
        remaining = count - decrement
        if remaining > 0 and len(counters) < self._config.table_size:
            counters[logical_row] = remaining

    def victims_to_refresh(self) -> List[int]:
        """Rows to refresh during this REF (called by the bank).

        Selects the hottest tracked aggressor above the action threshold,
        resets its counter, and returns its physical neighbors' logical
        addresses.
        """
        if not self._counters:
            return []
        hottest = max(self._counters, key=self._counters.get)
        if self._counters[hottest] < self._config.action_threshold:
            return []
        self._counters[hottest] = 0
        victims: List[int] = []
        for distance in range(1, self._config.neighbor_distance + 1):
            victims.extend(self._mapping.physical_neighbors(hottest, distance))
        return victims

    def tracked_rows(self) -> Dict[int, int]:
        """Snapshot of the counter table (for tests and demos)."""
        return dict(self._counters)
