"""DRAM timing parameter sets.

A :class:`TimingParameters` instance describes the timings the *memory
controller* uses when driving a module. The device model compares these
against the per-row physical requirements (which depend on V_PP) to decide
whether an access completes reliably: e.g. activating with a ``trcd``
shorter than the row's physical ``tRCDmin`` yields activation bit flips,
exactly as in the paper's Alg. 2 sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.dram import constants
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TimingParameters:
    """Controller-side DRAM timing parameters, in seconds.

    Attributes
    ----------
    trcd:
        Row activation latency: ACT to first RD/WR.
    tras:
        Charge restoration latency: ACT to PRE.
    trp:
        Precharge latency: PRE to next ACT.
    trefw:
        Refresh window: the guaranteed maximum interval between refreshes
        of any given row.
    """

    trcd: float = constants.NOMINAL_TRCD
    tras: float = constants.NOMINAL_TRAS
    trp: float = constants.NOMINAL_TRP
    trefw: float = constants.NOMINAL_TREFW

    def __post_init__(self) -> None:
        for name in ("trcd", "tras", "trp", "trefw"):
            value = getattr(self, name)
            if not value > 0:
                raise ConfigurationError(f"{name} must be positive, got {value}")
        if self.tras < self.trcd:
            raise ConfigurationError(
                f"tras ({self.tras}) must be >= trcd ({self.trcd}): a row "
                "cannot finish restoration before its activation completes"
            )

    @property
    def trc(self) -> float:
        """Minimum ACT-to-ACT interval for one bank (tRAS + tRP)."""
        return self.tras + self.trp

    def with_trcd(self, trcd: float) -> "TimingParameters":
        """Return a copy with a different activation latency.

        ``tras`` is stretched if needed so the invariant tRAS >= tRCD holds;
        this mirrors how a real controller would program a longer tRCD.
        """
        return replace(self, trcd=trcd, tras=max(self.tras, trcd))

    def with_trefw(self, trefw: float) -> "TimingParameters":
        """Return a copy with a different refresh window."""
        return replace(self, trefw=trefw)

    @classmethod
    def nominal(cls) -> "TimingParameters":
        """The JEDEC nominal DDR4 timing set used by the paper."""
        return cls()


def quantize_to_command_clock(
    value: float, clock: float = constants.SOFTMC_COMMAND_CLOCK
) -> float:
    """Round ``value`` up to the next SoftMC command-clock edge.

    The paper's infrastructure can only issue commands on a 1.5 ns grid
    (footnote 10); every programmed timing is therefore a multiple of the
    command clock.
    """
    if value <= 0:
        raise ConfigurationError(f"timing value must be positive, got {value}")
    cycles = int(round(value / clock + 0.5 - 1e-12))
    return max(1, cycles) * clock
