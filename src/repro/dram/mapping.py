"""DRAM-internal logical-to-physical row address mapping.

DRAM manufacturers remap the row addresses exposed on the interface to
physical row locations -- for post-manufacturing repair and cost-optimized
internal organization (Section 4.2, "Finding Physically Adjacent Rows").
Double-sided hammering therefore cannot simply use ``row +- 1``: the test
pipeline must first reverse-engineer the physical neighbors of each
victim, as the paper does following [11, 12].

Three mapping families cover the schemes documented for the three major
manufacturers in the reverse-engineering literature:

* :class:`DirectMapping` -- identity (logical order == physical order).
* :class:`MirroredMapping` -- alternate pairs are swapped
  (physical order 0, 1, 3, 2, 4, 5, 7, 6, ... ), the well-known
  "mirrored even/odd" layout.
* :class:`ScrambledMapping` -- a low-order bit-permutation XOR scramble,
  parameterized per module.

All mappings are bijections on ``range(num_rows)`` and expose both
directions plus the physical-neighbor query the RowHammer tests need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import ConfigurationError, DramAddressError


class RowMapping:
    """Base class: a bijection between logical and physical row addresses."""

    def __init__(self, num_rows: int):
        if num_rows < 2:
            raise ConfigurationError(f"num_rows must be >= 2: {num_rows}")
        self._num_rows = num_rows

    @property
    def num_rows(self) -> int:
        """Number of rows in the bank."""
        return self._num_rows

    def _check(self, row: int) -> None:
        if not 0 <= row < self._num_rows:
            raise DramAddressError(
                f"row {row} out of range [0, {self._num_rows})"
            )

    def to_physical(self, logical_row: int) -> int:
        """Physical location of a logical (interface) row address."""
        raise NotImplementedError

    def to_logical(self, physical_row: int) -> int:
        """Interface address of a physical row location."""
        raise NotImplementedError

    def physical_neighbors(self, logical_row: int, distance: int = 1) -> List[int]:
        """Logical addresses of the rows at physical distance ``distance``.

        These are the aggressor rows a double-sided attack on
        ``logical_row`` must activate (for ``distance == 1``). Rows at the
        edge of the bank have only one neighbor.
        """
        if distance < 1:
            raise ConfigurationError(f"distance must be >= 1: {distance}")
        self._check(logical_row)
        phys = self.to_physical(logical_row)
        neighbors = []
        for candidate in (phys - distance, phys + distance):
            if 0 <= candidate < self._num_rows:
                neighbors.append(self.to_logical(candidate))
        return neighbors


class DirectMapping(RowMapping):
    """Identity mapping: logical row N is physical row N."""

    def to_physical(self, logical_row: int) -> int:
        self._check(logical_row)
        return logical_row

    def to_logical(self, physical_row: int) -> int:
        self._check(physical_row)
        return physical_row


class MirroredMapping(RowMapping):
    """Mirrored even/odd pair layout.

    Physical order of logical addresses: 0, 1, 3, 2, 4, 5, 7, 6, ...
    i.e. within each group of four, the last two logical rows are swapped.
    This mapping is an involution (it is its own inverse).
    """

    @staticmethod
    def _swap(row: int) -> int:
        if row % 4 in (2, 3):
            return row ^ 0x1
        return row

    def to_physical(self, logical_row: int) -> int:
        self._check(logical_row)
        mapped = self._swap(logical_row)
        if mapped >= self._num_rows:  # odd-sized tail: leave unmapped
            return logical_row
        return mapped

    def to_logical(self, physical_row: int) -> int:
        self._check(physical_row)
        mapped = self._swap(physical_row)
        if mapped >= self._num_rows:
            return physical_row
        return mapped


@dataclass(frozen=True)
class ScrambleSpec:
    """Parameters of a :class:`ScrambledMapping`.

    ``xor_mask`` is XORed into the low bits of the address; ``bit_swaps``
    is a sequence of (i, j) bit-position pairs exchanged afterwards. Both
    operations are involutions, so the composite applied in reverse order
    inverts the mapping.
    """

    xor_mask: int = 0
    bit_swaps: Sequence = ()


class ScrambledMapping(RowMapping):
    """Bit-level XOR + bit-swap address scramble.

    Only masks/swaps confined to the address width are valid; the mapping
    is checked to be a bijection at construction time for small banks and
    by algebra (XOR and bit swaps are bijective) in general.
    """

    def __init__(self, num_rows: int, spec: ScrambleSpec):
        super().__init__(num_rows)
        if num_rows & (num_rows - 1):
            raise ConfigurationError(
                f"ScrambledMapping requires a power-of-two row count: {num_rows}"
            )
        width = num_rows.bit_length() - 1
        if spec.xor_mask < 0 or spec.xor_mask >= num_rows:
            raise ConfigurationError(
                f"xor_mask {spec.xor_mask:#x} exceeds address width {width}"
            )
        for i, j in spec.bit_swaps:
            if not (0 <= i < width and 0 <= j < width):
                raise ConfigurationError(
                    f"bit swap ({i}, {j}) exceeds address width {width}"
                )
        self._spec = spec

    @property
    def spec(self) -> ScrambleSpec:
        """The scramble parameters."""
        return self._spec

    @staticmethod
    def _swap_bits(value: int, i: int, j: int) -> int:
        bit_i = (value >> i) & 1
        bit_j = (value >> j) & 1
        if bit_i != bit_j:
            value ^= (1 << i) | (1 << j)
        return value

    def to_physical(self, logical_row: int) -> int:
        self._check(logical_row)
        value = logical_row ^ self._spec.xor_mask
        for i, j in self._spec.bit_swaps:
            value = self._swap_bits(value, i, j)
        return value

    def to_logical(self, physical_row: int) -> int:
        self._check(physical_row)
        value = physical_row
        for i, j in reversed(tuple(self._spec.bit_swaps)):
            value = self._swap_bits(value, i, j)
        return value ^ self._spec.xor_mask


def make_mapping(kind: str, num_rows: int, spec: ScrambleSpec = None) -> RowMapping:
    """Factory used by vendor profiles.

    ``kind`` is one of ``"direct"``, ``"mirrored"``, ``"scrambled"``.
    """
    if kind == "direct":
        return DirectMapping(num_rows)
    if kind == "mirrored":
        return MirroredMapping(num_rows)
    if kind == "scrambled":
        return ScrambledMapping(num_rows, spec or ScrambleSpec(xor_mask=0b110))
    raise ConfigurationError(f"unknown mapping kind: {kind!r}")
