"""Per-row cell state and lazily-generated cell parameters.

A simulated bank holds billions of cells; materializing them all would be
absurd when a study touches a few thousand rows. Rows are therefore
created on first touch, and each row's per-cell parameter vectors
(hammer tolerances, retention times, activation-latency factors) are
drawn deterministically from RNG substreams keyed by the row's physical
address -- so the same cell always has the same weakness, which is what
makes RowHammer bit flips land "at consistently predictable bit
locations" (Section 1) and retention profiling meaningful.

Cell polarity: DRAM arrays alternate *true* and *anti* cell rows with the
sense-amplifier orientation; a true cell stores logical 1 as charge, an
anti cell stores logical 0 as charge (see e.g. the paper's references
[55, 74]). All three error mechanisms modeled here -- RowHammer
disturbance, retention decay, and under-latency activation -- discharge a
cell, so only cells currently holding their *charged* value can flip, and
they flip toward the discharged value. Data-pattern dependence
(Section 4.1) emerges from this polarity structure plus a per-row,
per-pattern coupling factor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from repro.dram.calibration import ModuleCalibration
from repro.rng import RngHub
from repro.stats import normal_ppf

#: Number of data patterns distinguished by the coupling-factor table
#: (the six patterns of Section 4.1), plus one "other data" slot.
PATTERN_SLOTS = 7
#: Index used for data that matches none of the six standard patterns.
OTHER_PATTERN_INDEX = 6


@dataclass
class RowState:
    """Mutable state of one materialized physical row."""

    #: Stored bits, one uint8 (0/1) per cell; None until first write.
    data: Optional[np.ndarray] = None
    #: Simulated time of the last full restoration (write/refresh) [s].
    last_restore_time: float = 0.0
    #: Wordline voltage during the last restoration [V].
    vpp_at_restore: float = 2.5
    #: Accumulated RowHammer damage on the bulk cell population, in units
    #: of nominal-V_PP hammers.
    damage_bulk: float = 0.0
    #: Accumulated RowHammer damage on the outlier cell population.
    damage_outlier: float = 0.0
    #: Pattern slot of the stored data (set on full-row writes).
    pattern_index: int = OTHER_PATTERN_INDEX
    #: Count of restorations; salts the per-measurement jitter stream.
    session: int = 0
    #: Cached per-cell parameter vectors, keyed by field name.
    cache: Dict[str, np.ndarray] = field(default_factory=dict)


class CellParameterGenerator:
    """Deterministic per-row cell parameter factory for one bank.

    All draws are keyed by ``(bank, physical_row, field)`` through the
    module's :class:`~repro.rng.RngHub`, so touching rows in any order --
    or twice -- yields identical parameters.
    """

    def __init__(self, calibration: ModuleCalibration, hub: RngHub, bank_index: int):
        self._cal = calibration
        self._hub = hub
        self._bank = bank_index
        geometry = calibration.geometry
        self._cells = geometry.row_bits
        # Normalizer so the expected per-row max of the cell tRCD factors
        # is ~1.0 (the row factor carries the row-to-row variation).
        self._trcd_cell_sigma = 0.02
        self._trcd_cell_norm = float(
            np.exp(
                self._trcd_cell_sigma
                * normal_ppf(self._cells / (self._cells + 1.0))
            )
        )
        # Prefetched measurement-jitter values, keyed (physical_row,
        # session). Populated by prefetch_measurement_jitter (batch
        # probe engine); consulted first by measurement_jitter. Values
        # are bit-identical to the direct draw, so a hit and a miss are
        # indistinguishable to callers.
        self._jitter_cache: Dict[Tuple[int, int], float] = {}
        # Per-row high-water mark of the prefetched session lattice
        # (see ensure_jitter_window).
        self._jitter_horizon: Dict[int, int] = {}
        # Externally supplied per-cell vectors, keyed (physical_row,
        # fieldname). Populated by adopt_preloaded (the shared-memory
        # struct-of-arrays device state of :mod:`repro.core.soa`);
        # consulted before any RNG derivation. Preloaded vectors were
        # produced by an identical generator, so a hit and a fresh draw
        # are bit-identical.
        self._preload: Dict[Tuple[int, str], np.ndarray] = {}

    def _rng(self, physical_row: int, fieldname: str) -> np.random.Generator:
        return self._hub.generator(
            f"bank/{self._bank}/row/{physical_row}/{fieldname}"
        )

    # -- row-level scalars -----------------------------------------------------

    def row_weakness(self, physical_row: int) -> float:
        """Bulk-population weakness ``w`` of the row: the row's BER at a
        hammer count HC is ``Phi((ln HC - ln w) / bulk_sigma)``."""
        rng = self._rng(physical_row, "row_weakness")
        return float(
            np.exp(
                self._cal.bulk_log_weakness
                + self._cal.vendor.row_sigma * rng.standard_normal()
            )
        )

    def row_gammas(self, physical_row: int) -> "tuple[float, float]":
        """The row's V_PP coupling exponents ``(bulk, outlier)``.

        The bulk exponent drives the row's BER response to V_PP, the
        outlier exponent its HC_first response; the two populations are
        calibrated independently (see :mod:`repro.dram.calibration`).
        A vendor-dependent fraction of rows draws near-zero exponents,
        making them V_PP-insensitive (Observation 3).
        """
        rng = self._rng(physical_row, "gamma")
        if rng.random() < self._cal.vendor.gamma_insensitive_fraction:
            return (
                abs(float(rng.normal(0.0, 0.05))),
                abs(float(rng.normal(0.0, 0.05))),
            )
        sigma = self._cal.vendor.gamma_sigma
        bulk = max(-1.5, float(rng.normal(self._cal.gamma_bulk_mean, sigma)))
        outlier = max(
            -1.5, float(rng.normal(self._cal.gamma_outlier_mean, sigma))
        )
        return bulk, outlier

    def pattern_factors(self, physical_row: int) -> np.ndarray:
        """Per-pattern tolerance multipliers (>= 1; the worst-case pattern
        has factor 1.0). Index :data:`OTHER_PATTERN_INDEX` covers
        non-standard data."""
        rng = self._rng(physical_row, "pattern")
        spread = self._cal.vendor.pattern_spread
        factors = 1.0 + spread * rng.random(PATTERN_SLOTS)
        factors[int(np.argmin(factors[:6]))] = 1.0
        return factors

    def retention_pattern_factors(self, physical_row: int) -> np.ndarray:
        """Per-pattern retention-time multipliers (>= 1; the retention
        worst-case pattern has factor 1.0, i.e. the shortest retention)."""
        rng = self._rng(physical_row, "retention_pattern")
        spread = 0.5 * self._cal.vendor.pattern_spread
        factors = 1.0 + spread * rng.random(PATTERN_SLOTS)
        factors[int(np.argmin(factors[:6]))] = 1.0
        return factors

    def trcd_pattern_factors(self, physical_row: int) -> np.ndarray:
        """Per-pattern activation-requirement multipliers (<= 1; the tRCD
        worst-case pattern has factor 1.0, i.e. the longest requirement)."""
        rng = self._rng(physical_row, "trcd_pattern")
        spread = 0.10
        factors = 1.0 - spread * rng.random(PATTERN_SLOTS)
        factors[int(np.argmax(factors[:6]))] = 1.0
        return factors

    def trcd_row_factor(self, physical_row: int) -> float:
        """Lognormal row-to-row activation-latency factor."""
        rng = self._rng(physical_row, "trcd_row")
        return float(np.exp(self._cal.trcd_row_sigma * rng.standard_normal()))

    def measurement_jitter(self, physical_row: int, session: int) -> float:
        """Per-restoration multiplicative jitter on the row's tolerances.

        Models the iteration-to-iteration variation behind the paper's
        coefficient-of-variation analysis (Section 4.6).
        """
        cached = self._jitter_cache.get((physical_row, session))
        if cached is not None:
            return cached
        rng = self._hub.generator(
            f"bank/{self._bank}/row/{physical_row}/jitter/{session}"
        )
        return float(np.exp(self._cal.measurement_sigma * rng.standard_normal()))

    def prefetch_measurement_jitter(
        self, physical_row: int, sessions: Iterable[int]
    ) -> int:
        """Bulk-derive the jitter values of a set of restore sessions.

        The batch probe engine knows its deterministic probe schedule --
        and therefore the session numbers whose jitter it will consume
        -- ahead of time, so the per-session generator constructions can
        be replaced by one vectorized derivation
        (:meth:`repro.rng.RngHub.standard_normals`, bit-identical per
        key). Returns the number of newly cached values.
        """
        cache = self._jitter_cache
        missing = [
            session for session in sessions
            if (physical_row, session) not in cache
        ]
        if not missing:
            return 0
        if len(cache) > 262_144:
            cache.clear()
        prefix = f"bank/{self._bank}/row/{physical_row}/jitter/"
        draws = self._hub.standard_normals(
            [prefix + str(session) for session in missing]
        )
        # One vectorized exp over the block (bit-identical to the
        # per-draw scalar exp: same ufunc, same float64 inputs).
        sigma = self._cal.measurement_sigma
        values = np.exp(np.asarray(draws) * sigma)
        for session, value in zip(missing, values.tolist()):
            cache[(physical_row, session)] = value
        return len(missing)

    #: Sessions per initial prefetched jitter block. A hammer probe
    #: advances the victim's session by 3 (+2 before the evaluation,
    #: +1 after), so a block covers 20 consecutive probes -- one Alg. 1
    #: bisection per operating point (worst-BER repetitions plus the
    #: ~16 bisection rounds).
    JITTER_WINDOW_SPAN = 3 * 19
    #: Sessions per extension block once a row is past its initial
    #: window. Every probe schedule advances a row's session by a
    #: multiple of 3, so in practice the stride-3 lattice persists for
    #: a row's entire campaign and almost all prefetches are extends --
    #: a V_PP ladder walks one row through hundreds of probes. The
    #: derivation kernel's cost is dominated by a fixed per-call term
    #: (:meth:`repro.rng.RngHub.standard_normals` batches arbitrarily
    #: wide), so extends are sized to cover several operating points
    #: per call; the stranded tail, at most one block per row per
    #: campaign, is noise by comparison.
    JITTER_EXTEND_SPAN = 3 * 127

    def ensure_jitter_window(self, physical_row: int, session: int) -> None:
        """Guarantee the jitter block covering ``session`` is prefetched.

        Tracks, per row, the stride-3 session lattice already derived:
        because sessions only ever increase and each prefetch covers a
        contiguous stride-3 block up to its horizon, ``session`` is
        covered exactly when it lies on the horizon's lattice at or
        below it. External session bumps (a restore between probes)
        shift the row onto a new lattice; the next call then derives a
        fresh block, and any overlap with previously cached sessions is
        filtered out by :meth:`prefetch_measurement_jitter`.
        """
        horizon = self._jitter_horizon.get(physical_row)
        span = self.JITTER_WINDOW_SPAN
        if horizon is not None:
            delta = horizon - session
            if delta % 3 == 0:
                if delta >= 0:
                    return
                span = self.JITTER_EXTEND_SPAN
        horizon = session + span
        self._jitter_horizon[physical_row] = horizon
        self.prefetch_measurement_jitter(
            physical_row, range(session, horizon + 1, 3)
        )

    def is_anti_row(self, physical_row: int) -> bool:
        """True cell rows store 1 as charge; anti rows store 0."""
        return bool(physical_row % 2)

    # -- preloaded (shared-memory) vectors ---------------------------------------

    def adopt_preloaded(
        self, vectors: Dict[Tuple[int, str], np.ndarray]
    ) -> int:
        """Install externally generated per-cell vectors.

        ``vectors`` maps ``(physical_row, fieldname)`` to an ndarray --
        typically read-only views into a shared-memory struct-of-arrays
        block built by :func:`repro.core.soa.build_device_state`. The
        vectors must come from a generator with the same calibration,
        seed and bank index; they then shadow the RNG derivation
        bit-identically. Returns the number of vectors adopted.
        """
        self._preload.update(vectors)
        return len(vectors)

    def _preloaded(
        self, physical_row: int, fieldname: str
    ) -> Optional[np.ndarray]:
        if not self._preload:
            return None
        return self._preload.get((physical_row, fieldname))

    # -- per-cell vectors --------------------------------------------------------

    def cell_tolerances(self, physical_row: int) -> np.ndarray:
        """Per-cell hammer tolerances at nominal V_PP (float32).

        Two populations (see :mod:`repro.dram.calibration`): a bulk
        lognormal around the row's weakness ``w`` (whose lower tail is
        the 300K-hammer BER), overlaid with a Poisson-sparse set of
        outlier defect cells whose much lower tolerances set HC_first.
        """
        preloaded = self._preloaded(physical_row, "cell_tolerances")
        if preloaded is not None:
            return preloaded
        rng = self._rng(physical_row, "tolerance")
        weakness = self.row_weakness(physical_row)
        draws = rng.standard_normal(self._cells).astype(np.float32)
        tolerances = (
            weakness * np.exp(self._cal.bulk_sigma * draws)
        ).astype(np.float32)

        outlier_rng = self._rng(physical_row, "tolerance_outliers")
        count = int(outlier_rng.poisson(self._cal.outlier_rate))
        if count:
            count = min(count, self._cells)
            positions = outlier_rng.choice(self._cells, size=count, replace=False)
            outliers = np.exp(
                self._cal.outlier_log_median
                + self._cal.outlier_sigma * outlier_rng.standard_normal(count)
            ).astype(np.float32)
            replace = outliers < tolerances[positions]
            tolerances[positions[replace]] = outliers[replace]
        return tolerances

    def cell_outlier_mask(self, physical_row: int) -> np.ndarray:
        """Boolean mask of the row's outlier (defect) cells.

        Derived from the same RNG stream as :meth:`cell_tolerances`, so
        the mask marks exactly the cells whose tolerance was replaced by
        an outlier draw.
        """
        preloaded = self._preloaded(physical_row, "cell_outlier_mask")
        if preloaded is not None:
            return preloaded
        # Reproduce the outlier placement deterministically.
        rng = self._rng(physical_row, "tolerance")
        weakness = self.row_weakness(physical_row)
        draws = rng.standard_normal(self._cells).astype(np.float32)
        bulk = (weakness * np.exp(self._cal.bulk_sigma * draws)).astype(np.float32)

        mask = np.zeros(self._cells, dtype=bool)
        outlier_rng = self._rng(physical_row, "tolerance_outliers")
        count = int(outlier_rng.poisson(self._cal.outlier_rate))
        if count:
            count = min(count, self._cells)
            positions = outlier_rng.choice(self._cells, size=count, replace=False)
            outliers = np.exp(
                self._cal.outlier_log_median
                + self._cal.outlier_sigma * outlier_rng.standard_normal(count)
            ).astype(np.float32)
            mask[positions[outliers < bulk[positions]]] = True
        return mask

    def _retention_structure(self, physical_row: int):
        """Per-cell (retention times, V_PP sensitivity) at 80 degC and
        nominal V_PP.

        The bulk population is lognormal around the vendor-calibrated
        median with sensitivity 1; rows assigned to a weak tier (see
        :class:`~repro.dram.profiles.RetentionTier`) additionally carry a
        Poisson-sized cluster of much weaker, much more V_PP-sensitive
        cells, placed in distinct 64-bit words (which is why the paper's
        Observation 14 finds every failing word single-error-
        correctable).
        """
        rng = self._rng(physical_row, "retention")
        draws = rng.standard_normal(self._cells).astype(np.float32)
        times = np.exp(
            self._cal.retention_mu + self._cal.retention_sigma * draws
        ).astype(np.float32)
        sensitivity = np.ones(self._cells, dtype=np.float32)

        tier_rng = self._rng(physical_row, "retention_tier")
        available_words = np.arange(self._cells // 64)
        for tier in self._cal.profile.retention_tiers:
            if tier_rng.random() >= tier.row_fraction:
                continue
            count = int(tier_rng.poisson(tier.mean_weak_cells))
            count = min(count, available_words.size)
            if count == 0:
                continue
            # Weak cells land in distinct 64-bit words, including across
            # tiers: the physical defect clusters the paper observes are
            # word-sparse (Observation 14 finds every word singly flipped).
            chosen = tier_rng.choice(available_words.size, size=count,
                                     replace=False)
            words = available_words[chosen]
            available_words = np.delete(available_words, chosen)
            offsets = tier_rng.integers(0, 64, size=count)
            positions = words * 64 + offsets
            # Place the tier median so the cells fail tier.failing_window
            # at V_PPmin (effective threshold = window / margin**s) with
            # ~0.9 probability, which leaves them comfortably clean at
            # nominal V_PP and at the next-smaller window.
            margin_at_vppmin = self._cal.retention.margin_factor(
                self._cal.profile.vppmin
            ) ** tier.vpp_sensitivity
            effective_threshold = tier.failing_window / max(
                1e-6, margin_at_vppmin
            )
            median = effective_threshold * float(
                np.exp(-1.35 * tier.retention_sigma)
            )
            weak = np.exp(
                np.log(median)
                + tier.retention_sigma * tier_rng.standard_normal(count)
            ).astype(np.float32)
            replace = weak < times[positions]
            times[positions[replace]] = weak[replace]
            sensitivity[positions[replace]] = tier.vpp_sensitivity
        return times, sensitivity

    def retention_structure_pair(self, physical_row: int):
        """``(retention times, V_PP sensitivity)`` in one generation pass.

        The two vectors come from the same RNG replay, so callers that
        need both (the fused probe engine's preheat, the SoA device-state
        builder) should use this accessor instead of the two single-field
        ones -- it halves the generation cost.
        """
        times = self._preloaded(physical_row, "cell_retention_times")
        sensitivity = self._preloaded(
            physical_row, "cell_retention_vpp_sensitivity"
        )
        if times is not None and sensitivity is not None:
            return times, sensitivity
        return self._retention_structure(physical_row)

    def cell_retention_times(self, physical_row: int) -> np.ndarray:
        """Per-cell retention times at 80 degC and nominal V_PP [s]."""
        preloaded = self._preloaded(physical_row, "cell_retention_times")
        if preloaded is not None:
            return preloaded
        return self._retention_structure(physical_row)[0]

    def cell_retention_vpp_sensitivity(self, physical_row: int) -> np.ndarray:
        """Per-cell margin-exponent multipliers (1 for bulk cells)."""
        preloaded = self._preloaded(
            physical_row, "cell_retention_vpp_sensitivity"
        )
        if preloaded is not None:
            return preloaded
        return self._retention_structure(physical_row)[1]

    def cell_trcd_factors(self, physical_row: int) -> np.ndarray:
        """Per-cell activation-latency factors, normalized so the row's
        worst cell sits at ~1.0 relative to the row factor."""
        preloaded = self._preloaded(physical_row, "cell_trcd_factors")
        if preloaded is not None:
            return preloaded
        rng = self._rng(physical_row, "trcd_cell")
        draws = rng.standard_normal(self._cells).astype(np.float32)
        factors = np.exp(self._trcd_cell_sigma * draws) / self._trcd_cell_norm
        return factors.astype(np.float32)

    def powerup_bits(self, physical_row: int) -> np.ndarray:
        """Pseudo-random content of a never-written row."""
        rng = self._rng(physical_row, "powerup")
        return rng.integers(0, 2, size=self._cells, dtype=np.uint8)
