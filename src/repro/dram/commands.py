"""DDR4 command vocabulary.

The device model consumes a stream of :class:`Command` records. Only the
commands the paper's tests exercise are modeled: ACT, PRE, RD, WR, REF,
plus NOP for explicit waits.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError


class CommandKind(enum.Enum):
    """The DDR4 command types relevant to the paper's experiments."""

    ACT = "ACT"
    PRE = "PRE"
    RD = "RD"
    WR = "WR"
    REF = "REF"
    NOP = "NOP"


@dataclass(frozen=True)
class Command:
    """A single DRAM command with its operands.

    Attributes
    ----------
    kind:
        The command type.
    bank:
        Target bank index; required for ACT/PRE/RD/WR.
    row:
        Target row address; required for ACT.
    column:
        Target column address; required for RD/WR.
    data:
        Write payload for WR commands: a uint8 numpy array of the column's
        byte width.
    """

    kind: CommandKind
    bank: Optional[int] = None
    row: Optional[int] = None
    column: Optional[int] = None
    data: Optional[np.ndarray] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        needs_bank = self.kind in (
            CommandKind.ACT,
            CommandKind.PRE,
            CommandKind.RD,
            CommandKind.WR,
        )
        if needs_bank and self.bank is None:
            raise ConfigurationError(f"{self.kind.value} requires a bank operand")
        if self.kind is CommandKind.ACT and self.row is None:
            raise ConfigurationError("ACT requires a row operand")
        if self.kind in (CommandKind.RD, CommandKind.WR) and self.column is None:
            raise ConfigurationError(f"{self.kind.value} requires a column operand")
        if self.kind is CommandKind.WR and self.data is None:
            raise ConfigurationError("WR requires a data payload")

    # -- convenience constructors -------------------------------------------

    @classmethod
    def act(cls, bank: int, row: int) -> "Command":
        """Activate ``row`` in ``bank``."""
        return cls(CommandKind.ACT, bank=bank, row=row)

    @classmethod
    def pre(cls, bank: int) -> "Command":
        """Precharge ``bank``."""
        return cls(CommandKind.PRE, bank=bank)

    @classmethod
    def rd(cls, bank: int, column: int) -> "Command":
        """Read ``column`` from the open row of ``bank``."""
        return cls(CommandKind.RD, bank=bank, column=column)

    @classmethod
    def wr(cls, bank: int, column: int, data: np.ndarray) -> "Command":
        """Write ``data`` to ``column`` of the open row of ``bank``."""
        return cls(CommandKind.WR, bank=bank, column=column, data=data)

    @classmethod
    def ref(cls) -> "Command":
        """Refresh command (advances the device's internal refresh state
        and feeds TRR trackers, when present)."""
        return cls(CommandKind.REF)

    @classmethod
    def nop(cls) -> "Command":
        """No-operation; used to encode explicit waits."""
        return cls(CommandKind.NOP)
