"""Access-transistor model.

A DRAM cell's access transistor is an NMOS whose gate is driven to V_PP
when the row's wordline is asserted (Section 2.2). Its behaviour enters
the study in two ways:

* the **overdrive** ``V_PP - V_TH - V_source`` sets the channel strength,
  and thereby how fast charge sharing and restoration proceed
  (Observations 8 and 11);
* the transistor **cuts off** when the cell voltage rises to within V_TH
  of the gate, which caps the restored cell voltage at
  ``min(V_DD, V_PP - V_TH)`` (Observation 10).

The model is deliberately simple -- a threshold plus a smooth-max -- and is
shared between the behavioral chip model and the calibration formulas; the
full nonlinear I-V curve lives in :mod:`repro.spice.components` where the
circuit simulator needs it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

#: Threshold voltage that reproduces the paper's SPICE saturation numbers
#: (Observation 10: cell saturates 4.1 % / 11.0 % / 18.1 % below V_DD at
#: V_PP = 1.9 / 1.8 / 1.7 V, i.e. V_sat = V_PP - 0.72 V).
SPICE_VTH = 0.72

#: Default *effective* threshold for the behavioral model of real chips.
#: Real devices operate reliably down to V_PP = 1.4 V (Table 3, module A0)
#: which the paper's own SPICE model cannot explain (footnote 13); an
#: effective threshold near 0.45 V reconciles the two.
DEVICE_VTH = 0.45


@dataclass(frozen=True)
class AccessTransistorModel:
    """Analytic access-transistor behaviour.

    Parameters
    ----------
    vth:
        Threshold voltage in volts.
    smoothing:
        Width (in volts) of the soft transition around cutoff. A small
        positive value keeps derivatives finite, which the calibration
        solvers appreciate; ``0`` gives a hard threshold.
    """

    vth: float = DEVICE_VTH
    smoothing: float = 0.02

    def __post_init__(self) -> None:
        if not 0.0 < self.vth < 2.0:
            raise ConfigurationError(f"vth out of plausible range: {self.vth}")
        if self.smoothing < 0:
            raise ConfigurationError(f"smoothing must be >= 0: {self.smoothing}")

    def overdrive(self, vpp: float, v_source: float) -> float:
        """Gate overdrive ``max(0, vpp - vth - v_source)``, smoothed.

        ``v_source`` is the higher of the cell and bitline voltages at the
        transistor's source terminal.
        """
        raw = vpp - self.vth - v_source
        if self.smoothing == 0.0:
            return max(0.0, raw)
        # softplus with width = smoothing; ~= max(0, raw) away from 0.
        scaled = raw / self.smoothing
        if scaled > 40.0:
            return raw
        return self.smoothing * float(np.log1p(np.exp(scaled)))

    def conducts(self, vpp: float, v_source: float) -> bool:
        """True if the channel is on (overdrive meaningfully positive)."""
        return vpp - self.vth - v_source > 0.0

    def max_restorable_voltage(self, vpp: float, vdd: float) -> float:
        """The voltage a cell can be restored to (Observation 10).

        The sense amplifier drives the bitline to ``vdd``; the access
        transistor passes charge only while the cell is more than ``vth``
        below the gate, so restoration saturates at
        ``min(vdd, vpp - vth)``.
        """
        if vdd <= 0:
            raise ConfigurationError(f"vdd must be positive: {vdd}")
        return min(vdd, max(0.0, vpp - self.vth))

    @classmethod
    def spice(cls) -> "AccessTransistorModel":
        """The transistor model matching the paper's SPICE setup."""
        return cls(vth=SPICE_VTH)

    @classmethod
    def device(cls, vth: float = DEVICE_VTH) -> "AccessTransistorModel":
        """The effective-threshold model for real-chip behaviour."""
        return cls(vth=vth)
