"""Charge-restoration model (Section 6.2 of the paper).

After row activation, the sense amplifier restores each cell of the row
toward ``V_DD`` through the access transistor's channel. Two effects of
reduced V_PP matter:

* **Saturation** (Observation 10): the cell voltage cannot exceed
  ``V_PP - V_TH``; below ``V_PP ~= V_DD + V_TH`` the cell is left
  under-charged no matter how long the row stays open.
* **Slowdown** (Observation 11): the weaker channel stretches the time to
  reach any given level, widening and right-shifting the tRAS_min
  distribution.

The restoration trajectory is modeled as an exponential approach to the
saturation voltage with a V_PP-dependent time constant -- the closed-form
solution of the RC charging problem with the channel conductance
proportional to overdrive.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.dram.physics.transistor import AccessTransistorModel
from repro.errors import ConfigurationError
from repro.units import ns


@dataclass(frozen=True)
class RestorationModel:
    """Charge-restoration behaviour of one cell.

    Parameters
    ----------
    transistor:
        The access transistor model (supplies V_TH and saturation).
    vdd:
        Core supply voltage driving the bitline high level.
    tau_nominal:
        Restoration time constant at nominal overdrive [s]. Chosen so the
        nominal tRAS (32 ns) comfortably completes restoration, with the
        paper-reported guardband.
    nominal_vpp:
        The V_PP at which ``tau_nominal`` is defined.
    restore_fraction:
        Restoration counts as complete when the cell is within
        ``1 - restore_fraction`` of its saturation level (e.g. 0.95).
    """

    transistor: AccessTransistorModel = AccessTransistorModel()
    vdd: float = 1.2
    tau_nominal: float = ns(7.0)
    nominal_vpp: float = 2.5
    restore_fraction: float = 0.95

    def __post_init__(self) -> None:
        if not 0.0 < self.restore_fraction < 1.0:
            raise ConfigurationError(
                f"restore_fraction must be in (0, 1): {self.restore_fraction}"
            )
        if self.tau_nominal <= 0:
            raise ConfigurationError(f"tau_nominal must be positive: {self.tau_nominal}")

    # -- saturation -----------------------------------------------------------

    def saturation_voltage(self, vpp: float) -> float:
        """Maximum restorable cell voltage at ``vpp`` (Observation 10)."""
        return self.transistor.max_restorable_voltage(vpp, self.vdd)

    def saturation_deficit(self, vpp: float) -> float:
        """Fractional shortfall of the restored level below V_DD.

        Zero while ``vpp >= vdd + vth``; e.g. 0.181 at V_PP = 1.7 V with
        the SPICE threshold (Observation 10).
        """
        return 1.0 - self.saturation_voltage(vpp) / self.vdd

    # -- dynamics -------------------------------------------------------------

    def time_constant(self, vpp: float) -> float:
        """Restoration RC time constant at ``vpp``.

        The channel conductance scales with the average overdrive seen
        while pulling the cell from mid-level toward saturation; the time
        constant is inversely proportional to it.
        """
        v_mid = 0.5 * self.saturation_voltage(vpp)
        od = self.transistor.overdrive(vpp, v_mid)
        od_nom = self.transistor.overdrive(
            self.nominal_vpp, 0.5 * self.saturation_voltage(self.nominal_vpp)
        )
        if od <= 1e-6:
            return math.inf
        return self.tau_nominal * od_nom / od

    def restored_voltage(self, vpp: float, duration: float, v_start: float = 0.6) -> float:
        """Cell voltage after holding the row open for ``duration`` seconds.

        Exponential approach from ``v_start`` (the post-charge-sharing
        level, typically near V_DD/2) toward the saturation voltage.
        """
        if duration < 0:
            raise ConfigurationError(f"duration must be >= 0: {duration}")
        v_sat = self.saturation_voltage(vpp)
        if v_sat <= v_start:
            return v_sat
        tau = self.time_constant(vpp)
        if math.isinf(tau):
            return v_start
        return v_sat - (v_sat - v_start) * math.exp(-duration / tau)

    def restoration_latency(self, vpp: float, v_start: float = 0.6) -> float:
        """Minimum tRAS to restore to ``restore_fraction`` of saturation.

        Returns ``inf`` when the channel cannot conduct at all.
        """
        v_sat = self.saturation_voltage(vpp)
        target = self.restore_fraction * v_sat
        if target <= v_start:
            return 0.0
        tau = self.time_constant(vpp)
        if math.isinf(tau):
            return math.inf
        # Solve v_sat - (v_sat - v_start) e^{-t/tau} = target.
        return tau * math.log((v_sat - v_start) / (v_sat - target))

    def charge_margin(self, vpp: float, v_read_threshold: float = 0.6) -> float:
        """Noise margin of a fully-restored charged cell at ``vpp``.

        The margin is the headroom between the restored level and the
        sensing threshold; it scales both the RowHammer tolerance
        (a smaller margin means fewer disturbance events suffice to flip
        the cell) and the retention time.
        """
        return max(0.0, self.saturation_voltage(vpp) - v_read_threshold)

    def margin_ratio(self, vpp: float, v_read_threshold: float = 0.6) -> float:
        """Charge margin at ``vpp`` relative to nominal V_PP, in (0, 1]."""
        nominal = self.charge_margin(self.nominal_vpp, v_read_threshold)
        if nominal <= 0:
            raise ConfigurationError(
                "nominal charge margin is non-positive; check vdd/vth/threshold"
            )
        return max(1e-3, self.charge_margin(vpp, v_read_threshold) / nominal)
