"""Row-activation latency model (Section 6.1 of the paper).

Activation has two phases:

1. **Charge sharing** -- the cell dumps its charge onto the bitline
   through the access transistor; its duration grows as the channel
   overdrive shrinks.
2. **Sensing** -- the sense amplifier amplifies the bitline perturbation
   to a reliably readable level; its duration grows when the initial
   perturbation is smaller, which happens when the cell was restored only
   to the reduced saturation voltage (Observation 8's "two reasons").

Calibration: with the SPICE threshold (V_TH = 0.72 V) and default
coefficients, ``trcd_min`` is 11.6 ns at V_PP = 2.5 V and ~13.6 ns at
1.7 V, matching the Monte-Carlo means of Observation 8, and crosses the
13.5 ns nominal just below 1.7 V, consistent with footnote 13 (SPICE
predicts unreliability for V_PP <= 1.6 V). The behavioral chip model
reuses this shape with per-module effective thresholds and scale factors
to produce the Figure 7 fan.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.dram.physics.restoration import RestorationModel
from repro.dram.physics.transistor import AccessTransistorModel
from repro.errors import ConfigurationError
from repro.units import ns


@dataclass(frozen=True)
class ActivationModel:
    """Analytic tRCD_min(V_PP) model.

    Parameters
    ----------
    restoration:
        Restoration model; supplies the saturation voltage that sets the
        charge-sharing perturbation magnitude.
    t_wordline:
        Fixed wordline rise / decoder delay [s].
    k_share:
        Charge-sharing duration at nominal overdrive [s].
    p_share:
        Exponent of the overdrive dependence of charge sharing. The
        effective dependence is sub-linear because the channel overdrive
        recovers as the cell discharges onto the bitline.
    k_sense:
        Sensing duration at full perturbation [s].
    p_sense:
        Exponent of the perturbation dependence of sensing (logarithmic
        amplification makes this weak).
    v_bitline_ref:
        Source-side reference voltage used for the overdrive during charge
        sharing [V]; the bitline starts precharged to V_DD/2 but the
        relevant average is lower because sharing completes early.
    """

    restoration: RestorationModel = RestorationModel()
    t_wordline: float = ns(2.0)
    k_share: float = ns(2.0)
    p_share: float = 0.5
    k_sense: float = ns(7.6)
    p_sense: float = 0.3
    v_bitline_ref: float = 0.3

    def __post_init__(self) -> None:
        for name in ("t_wordline", "k_share", "k_sense"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be >= 0")
        for name in ("p_share", "p_sense"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be > 0")

    @property
    def transistor(self) -> AccessTransistorModel:
        """The underlying access transistor model."""
        return self.restoration.transistor

    def _overdrive(self, vpp: float) -> float:
        return self.transistor.overdrive(vpp, self.v_bitline_ref)

    def charge_sharing_time(self, vpp: float) -> float:
        """Duration of the charge-sharing phase at ``vpp`` [s]."""
        od = self._overdrive(vpp)
        od_nom = self._overdrive(self.restoration.nominal_vpp)
        if od <= 1e-6:
            return math.inf
        return self.k_share * (od_nom / od) ** self.p_share

    def perturbation_ratio(self, vpp: float) -> float:
        """Bitline swing relative to the fully-charged nominal case.

        A cell restored only to the saturation voltage perturbs the
        bitline proportionally less (the second mechanism of
        Observation 8).
        """
        v_ref = 0.5 * self.restoration.vdd
        swing = max(1e-3, self.restoration.saturation_voltage(vpp) - v_ref)
        swing_nom = max(
            1e-3,
            self.restoration.saturation_voltage(self.restoration.nominal_vpp) - v_ref,
        )
        return swing / swing_nom

    def sensing_time(self, vpp: float) -> float:
        """Duration of the sensing phase at ``vpp`` [s]."""
        return self.k_sense / self.perturbation_ratio(vpp) ** self.p_sense

    def trcd_min(self, vpp: float) -> float:
        """Minimum reliable activation latency at ``vpp`` [s].

        ``inf`` when the access transistor cannot conduct (below the
        device's hard V_PP floor).
        """
        share = self.charge_sharing_time(vpp)
        if math.isinf(share):
            return math.inf
        return self.t_wordline + share + self.sensing_time(vpp)

    def trcd_ratio(self, vpp: float) -> float:
        """tRCD_min at ``vpp`` relative to nominal V_PP (>= 1 for lower V_PP)."""
        nominal = self.trcd_min(self.restoration.nominal_vpp)
        value = self.trcd_min(vpp)
        if math.isinf(value):
            return math.inf
        return value / nominal
