"""Data-retention model (Section 6.3 of the paper).

A DRAM cell leaks charge and loses its data after its *retention time*.
Two V_PP effects matter for the paper:

* A cell restored only to the reduced saturation voltage starts with less
  charge, so it crosses the sensing threshold sooner -- retention time
  scales with the charge margin (Observation 12).
* Temperature accelerates leakage; the paper tests retention at 80 degC
  and cites the standard rule of roughly halving retention per +10 degC.

The model scales a cell's *nominal* retention time (sampled per cell at
80 degC and nominal V_PP by the vendor profile) by a margin factor and a
temperature factor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.dram.physics.restoration import RestorationModel
from repro.errors import ConfigurationError
from repro.units import ns

ArrayLike = Union[float, np.ndarray]

#: Time the sense amplifier restores a cell during a normal access or
#: refresh (the nominal tRAS).
NOMINAL_RESTORE_TIME = ns(32.0)


@dataclass(frozen=True)
class RetentionModel:
    """V_PP- and temperature-dependent retention-time scaling.

    Parameters
    ----------
    restoration:
        Restoration model providing the charge-margin ratio.
    beta_retention:
        Exponent of the margin dependence. Leakage current is roughly
        constant near the stored level, so retention falls about linearly
        with the initial margin; ``1.0`` by default.
    reference_temperature:
        Temperature [degC] at which nominal retention times are defined
        (the paper's retention tests run at 80 degC).
    halving_per_degc:
        Retention halves every this-many degC of temperature increase
        (about 10 degC for modern DRAM; see the paper's Section 4.1
        citations [74, 77, 120]).
    """

    restoration: RestorationModel = RestorationModel()
    beta_retention: float = 1.0
    reference_temperature: float = 80.0
    halving_per_degc: float = 10.0

    def __post_init__(self) -> None:
        if self.beta_retention <= 0:
            raise ConfigurationError(
                f"beta_retention must be > 0: {self.beta_retention}"
            )
        if self.halving_per_degc <= 0:
            raise ConfigurationError(
                f"halving_per_degc must be > 0: {self.halving_per_degc}"
            )

    def margin_factor(self, vpp: float) -> float:
        """Retention multiplier from the restored charge margin at ``vpp``.

        Uses the charge actually restored within the nominal tRAS rather
        than the asymptotic saturation level: the restoration slowdown at
        reduced V_PP (Observation 11) erodes the stored charge *gradually*
        across the whole V_PP range, which is what makes the Figure 10a
        curves separate level by level rather than only below the
        saturation knee.
        """
        v_read = 0.6
        restored = self.restoration.restored_voltage(
            vpp, NOMINAL_RESTORE_TIME
        )
        restored_nominal = self.restoration.restored_voltage(
            self.restoration.nominal_vpp, NOMINAL_RESTORE_TIME
        )
        margin = max(1e-3, restored - v_read)
        margin_nominal = max(1e-3, restored_nominal - v_read)
        return (margin / margin_nominal) ** self.beta_retention

    def temperature_factor(self, temperature: float) -> float:
        """Retention multiplier at ``temperature`` relative to reference."""
        return 2.0 ** (
            (self.reference_temperature - temperature) / self.halving_per_degc
        )

    def retention_time(
        self,
        nominal_retention: ArrayLike,
        vpp: float,
        temperature: float = 80.0,
        restored_fraction: float = 1.0,
    ) -> ArrayLike:
        """Effective retention time(s) under the given conditions.

        Parameters
        ----------
        nominal_retention:
            Per-cell retention time(s) at nominal V_PP and the reference
            temperature [s].
        vpp:
            Wordline voltage during the last restoration of the cell.
        temperature:
            Device temperature [degC].
        restored_fraction:
            Fraction of the full restoration achieved (1.0 when the row
            was held open for at least tRAS_min; lower if restoration was
            cut short). Scales the margin linearly.
        """
        if not 0.0 < restored_fraction <= 1.0:
            raise ConfigurationError(
                f"restored_fraction must be in (0, 1]: {restored_fraction}"
            )
        factor = (
            self.margin_factor(vpp)
            * self.temperature_factor(temperature)
            * restored_fraction**self.beta_retention
        )
        return np.asarray(nominal_retention) * factor
