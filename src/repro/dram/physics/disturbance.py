"""RowHammer disturbance model (Sections 2.3, 2.4, 5 of the paper).

Each activation of an aggressor row disturbs the cells of its physical
neighbors through two mechanisms -- electron injection/diffusion/drift and
capacitive crosstalk -- both of which strengthen with the wordline voltage
swing. A victim cell flips once the accumulated disturbance exceeds its
charge margin.

The model expresses this as a per-cell *hammer tolerance*: the number of
aggressor activations the cell withstands. At an arbitrary V_PP,

    tolerance(vpp) = tolerance_nominal
                     * margin_ratio(vpp) ** beta_margin   (restoration term)
                     / coupling_ratio(vpp)                (disturbance term)

with ``coupling_ratio(vpp) = (vpp / vpp_nominal) ** gamma`` for a per-row
coupling exponent ``gamma`` and ``margin_ratio`` from the restoration
model. Lowering V_PP shrinks the coupling (raising tolerance -- the
dominant trend of Observations 1/4) but, once V_PP drops below
``V_DD + V_TH``, also shrinks the stored-charge margin (lowering
tolerance -- the reversals of Observations 2/5). Which effect wins for a
given row depends on its sampled ``gamma``, so the reversal *population*
is emergent rather than scripted.

Distance-2 neighbors receive the same disturbance attenuated by
``distance2_attenuation`` -- double-sided hammering of the two immediate
neighbors is the paper's (and the literature's) most effective pattern.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.dram.physics.restoration import RestorationModel
from repro.errors import ConfigurationError

ArrayLike = Union[float, np.ndarray]


@dataclass(frozen=True)
class DisturbanceModel:
    """V_PP-dependent RowHammer disturbance behaviour.

    Parameters
    ----------
    restoration:
        Restoration model providing the charge-margin ratio.
    beta_margin:
        Sensitivity of the hammer tolerance to the stored-charge margin.
        Deliberately weak by default: the net per-row V_PP response
        (including the restoration-weakening reversals the paper suspects
        in Observations 2/5) is carried by the per-row coupling exponent
        ``gamma``, which calibration lets go negative for rows where the
        weakened-restoration effect wins. The ablation benchmark raises
        beta_margin to show the margin-driven mechanism explicitly.
    distance2_attenuation:
        Disturbance multiplier for rows at physical distance 2 (blast
        radius); distance-1 neighbors get 1.0.
    temperature_coefficient:
        Fractional change of disturbance per degC away from the 50 degC
        test temperature; the paper characterizes at a fixed 50 degC, so
        this only matters for extension studies.
    """

    restoration: RestorationModel = RestorationModel()
    beta_margin: float = 0.1
    distance2_attenuation: float = 0.12
    temperature_coefficient: float = 0.002
    reference_temperature: float = 50.0

    def __post_init__(self) -> None:
        if self.beta_margin <= 0:
            raise ConfigurationError(f"beta_margin must be > 0: {self.beta_margin}")
        if not 0.0 <= self.distance2_attenuation < 1.0:
            raise ConfigurationError(
                f"distance2_attenuation must be in [0, 1): {self.distance2_attenuation}"
            )

    def coupling_ratio(self, vpp: float, gamma: ArrayLike) -> ArrayLike:
        """Per-activation disturbance at ``vpp`` relative to nominal V_PP.

        ``gamma`` may be a scalar or a per-row/per-cell array of coupling
        exponents; values near 0 make the row V_PP-insensitive (as
        observed for about half of Mfr. A's rows, Observation 3).
        """
        if vpp <= 0:
            raise ConfigurationError(f"vpp must be positive: {vpp}")
        base = vpp / self.restoration.nominal_vpp
        return np.power(base, gamma)

    def tolerance_scale(
        self, vpp: float, gamma: ArrayLike, temperature: float = 50.0
    ) -> ArrayLike:
        """Multiplier on the nominal hammer tolerance at ``vpp``.

        Values above 1 mean the row/cell withstands more hammers than at
        nominal V_PP (HC_first increases); below 1, fewer (the
        Observation 5 reversal).
        """
        margin = self.restoration.margin_ratio(vpp) ** self.beta_margin
        coupling = self.coupling_ratio(vpp, gamma)
        thermal = 1.0 - self.temperature_coefficient * (
            temperature - self.reference_temperature
        )
        thermal = max(0.1, thermal)
        return margin / np.asarray(coupling) * thermal

    def solve_gamma(
        self, vpp: float, tolerance_ratio: float, temperature: float = 50.0
    ) -> float:
        """Invert :meth:`tolerance_scale` for calibration.

        Given the observed tolerance ratio at ``vpp`` (e.g. Table 3's
        HC_first at V_PPmin over HC_first at nominal), return the coupling
        exponent ``gamma`` that produces it. Used by
        :mod:`repro.dram.profiles` to anchor each module to its Table 3
        measurements.
        """
        if tolerance_ratio <= 0:
            raise ConfigurationError(
                f"tolerance_ratio must be positive: {tolerance_ratio}"
            )
        if vpp >= self.restoration.nominal_vpp or vpp <= 0:
            raise ConfigurationError(
                f"calibration vpp must be in (0, nominal): {vpp}"
            )
        margin = self.restoration.margin_ratio(vpp) ** self.beta_margin
        thermal = 1.0 - self.temperature_coefficient * (
            temperature - self.reference_temperature
        )
        # tolerance_ratio = margin * thermal / (vpp/nom)**gamma
        base = vpp / self.restoration.nominal_vpp
        return float(
            np.log(margin * thermal / tolerance_ratio) / np.log(base)
        )
