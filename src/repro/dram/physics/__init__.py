"""Analytic, circuit-derived device physics shared by the DRAM model.

The paper explains its real-device observations through two competing
mechanisms controlled by the wordline voltage ``V_PP``:

1. **Disturbance coupling** (Sections 2.3, 2.4): both RowHammer error
   mechanisms (electron injection/diffusion/drift and capacitive
   crosstalk) strengthen with the wordline voltage swing. Lowering V_PP
   therefore *weakens* the per-activation disturbance -- the dominant
   trend (Observations 1 and 4).
2. **Charge restoration weakening** (Section 6.2): the access transistor
   turns off once the cell voltage approaches ``V_PP - V_TH``, so at low
   V_PP a cell restores to less than ``V_DD``. A smaller stored charge
   means a smaller noise margin, which *increases* apparent vulnerability
   for some rows (Observations 2 and 5) and shortens retention times
   (Observation 12).

Each module here implements one piece of that story with a small analytic
model calibrated against the paper's SPICE results (Figures 8--10), and
the behavioral DRAM model composes them. Nothing in the composition
hard-codes the paper's outcomes: the reversal populations of
Observations 2/5, the retention degradation of Observation 12, and the
tRCD guardband erosion of Observation 7 all emerge from the interaction
of these models with per-row/per-cell parameter heterogeneity.

Note on threshold voltages: the paper itself observes (footnote 13) that
its SPICE model is *pessimistic* -- SPICE predicts unreliable operation at
V_PP <= 1.6 V while real chips work down to 1.4 V. We reproduce that
discrepancy deliberately: :mod:`repro.spice` uses the paper's SPICE-level
threshold (V_TH ~= 0.72 V, which reproduces Observation 10 exactly), while
the behavioral chip model uses a lower per-module *effective* threshold,
as the real devices evidently have.
"""

from repro.dram.physics.transistor import AccessTransistorModel
from repro.dram.physics.restoration import RestorationModel
from repro.dram.physics.activation import ActivationModel
from repro.dram.physics.disturbance import DisturbanceModel
from repro.dram.physics.retention_model import RetentionModel

__all__ = [
    "AccessTransistorModel",
    "ActivationModel",
    "DisturbanceModel",
    "RestorationModel",
    "RetentionModel",
]
