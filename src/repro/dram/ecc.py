"""Hamming SECDED (72, 64) error-correcting code.

The paper's Observation 14 concludes that all data-retention bit flips at
the first failing refresh window are correctable by a *single-error
correcting, double-error detecting* code over 64-bit data words -- the
standard rank-level ECC configuration [54, 32, 128]. This module
implements that code so the mitigation analysis can actually encode,
corrupt, and decode words rather than merely counting flips.

Construction: an extended Hamming code. Seven parity bits cover the
positions whose index has the corresponding bit set (classic Hamming
H(71,64) layout over positions 1..71), plus one overall parity bit for
double-error detection.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, UncorrectableError

DATA_BITS = 64
PARITY_BITS = 7  # Hamming parity bits (positions 1, 2, 4, ..., 64)
CODE_BITS = DATA_BITS + PARITY_BITS + 1  # + overall parity = 72


class DecodeStatus(enum.Enum):
    """Outcome classification of a SECDED decode."""

    CLEAN = "clean"
    CORRECTED = "corrected"
    DETECTED = "detected"  # double error: detected, not correctable


@dataclass(frozen=True)
class DecodeResult:
    """Result of decoding one 72-bit codeword."""

    data: np.ndarray  # (64,) uint8 bit array
    status: DecodeStatus
    corrected_position: int = -1  # codeword bit index, -1 if none


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


def _hamming_positions() -> np.ndarray:
    """Codeword positions 1..71 that carry data bits (non powers of two)."""
    return np.array(
        [p for p in range(1, DATA_BITS + PARITY_BITS + 1) if not _is_power_of_two(p)],
        dtype=np.int64,
    )


_DATA_POSITIONS = _hamming_positions()
_PARITY_POSITIONS = np.array([1 << i for i in range(PARITY_BITS)], dtype=np.int64)


def _check_bits(word: np.ndarray, length: int, name: str) -> np.ndarray:
    arr = np.asarray(word, dtype=np.uint8)
    if arr.shape != (length,):
        raise ConfigurationError(
            f"{name} must be a ({length},) bit array, got shape {arr.shape}"
        )
    if np.any(arr > 1):
        raise ConfigurationError(f"{name} must contain only 0/1 values")
    return arr


class SecdedCodec:
    """Encoder/decoder for the (72, 64) extended Hamming code.

    The codec works on bit arrays (uint8 vectors of 0/1). Helpers convert
    to and from 64-bit integers for convenience.
    """

    def encode(self, data_bits: np.ndarray) -> np.ndarray:
        """Encode 64 data bits into a 72-bit codeword.

        Codeword layout: index 0 is the overall parity bit; indices 1..71
        follow the classic Hamming numbering (parity at powers of two).
        """
        data = _check_bits(data_bits, DATA_BITS, "data_bits")
        code = np.zeros(CODE_BITS, dtype=np.uint8)
        code[_DATA_POSITIONS] = data
        for i, pos in enumerate(_PARITY_POSITIONS):
            covered = np.arange(1, CODE_BITS)
            mask = (covered & pos) != 0
            code[pos] = np.bitwise_xor.reduce(code[covered[mask]])
        code[0] = np.bitwise_xor.reduce(code)  # overall parity (even)
        return code

    def decode(self, codeword: np.ndarray) -> DecodeResult:
        """Decode a 72-bit codeword, correcting up to one flipped bit.

        Raises
        ------
        UncorrectableError
            When the syndrome indicates a double (or worse even-weight)
            error: detected but not correctable.
        """
        code = _check_bits(codeword, CODE_BITS, "codeword").copy()
        syndrome = 0
        for i, pos in enumerate(_PARITY_POSITIONS):
            covered = np.arange(1, CODE_BITS)
            mask = (covered & pos) != 0
            if np.bitwise_xor.reduce(code[covered[mask]]):
                syndrome |= pos
        overall = int(np.bitwise_xor.reduce(code))

        if syndrome == 0 and overall == 0:
            return DecodeResult(data=code[_DATA_POSITIONS], status=DecodeStatus.CLEAN)
        if syndrome == 0 and overall == 1:
            # the overall parity bit itself flipped
            code[0] ^= 1
            return DecodeResult(
                data=code[_DATA_POSITIONS],
                status=DecodeStatus.CORRECTED,
                corrected_position=0,
            )
        if syndrome != 0 and overall == 1:
            # single error at position `syndrome`
            if syndrome >= CODE_BITS:
                raise UncorrectableError(
                    f"syndrome {syndrome} outside the codeword: multi-bit error"
                )
            code[syndrome] ^= 1
            return DecodeResult(
                data=code[_DATA_POSITIONS],
                status=DecodeStatus.CORRECTED,
                corrected_position=int(syndrome),
            )
        # syndrome != 0 and overall parity even: double error
        raise UncorrectableError(
            f"double-bit error detected (syndrome {syndrome:#x})"
        )

    # -- integer convenience ---------------------------------------------------

    @staticmethod
    def bits_from_int(value: int) -> np.ndarray:
        """Little-endian 64-bit array from an unsigned integer."""
        if not 0 <= value < (1 << DATA_BITS):
            raise ConfigurationError(f"value out of 64-bit range: {value}")
        return np.array(
            [(value >> i) & 1 for i in range(DATA_BITS)], dtype=np.uint8
        )

    @staticmethod
    def int_from_bits(bits: np.ndarray) -> int:
        """Unsigned integer from a little-endian 64-bit array."""
        data = _check_bits(bits, DATA_BITS, "bits")
        return int(sum(int(b) << i for i, b in enumerate(data)))


class BatchSecdedCodec:
    """Vectorized encoder/decoder for many 64-bit words at once.

    Matrix formulation of the same (72, 64) extended Hamming code as
    :class:`SecdedCodec`: parity bits are XOR-sums selected by the
    positional bitmask, computed as boolean matrix products. Used on hot
    paths (full-row ECC scrubs); results are bit-identical to the scalar
    codec.
    """

    def __init__(self):
        positions = np.arange(1, CODE_BITS)
        # parity_matrix[i, j]: parity bit i covers codeword position j+1.
        self._parity_matrix = (
            (positions[None, :] & _PARITY_POSITIONS[:, None]) != 0
        )
        # Restriction of the coverage matrix to data positions.
        data_index = {int(p): k for k, p in enumerate(_DATA_POSITIONS)}
        self._data_cover = np.zeros((PARITY_BITS, DATA_BITS), dtype=bool)
        for i in range(PARITY_BITS):
            for j, position in enumerate(positions):
                if self._parity_matrix[i, j] and int(position) in data_index:
                    self._data_cover[i, data_index[int(position)]] = True

    def encode_many(self, data_words: np.ndarray) -> np.ndarray:
        """Encode an (N, 64) bit array into an (N, 72) codeword array."""
        data = np.asarray(data_words, dtype=np.uint8)
        if data.ndim != 2 or data.shape[1] != DATA_BITS:
            raise ConfigurationError(
                f"data_words must be (N, {DATA_BITS}), got {data.shape}"
            )
        count = data.shape[0]
        codes = np.zeros((count, CODE_BITS), dtype=np.uint8)
        codes[:, _DATA_POSITIONS] = data
        parities = (data @ self._data_cover.T.astype(np.uint8)) & 1
        codes[:, _PARITY_POSITIONS] = parities
        codes[:, 0] = codes.sum(axis=1) & 1
        return codes

    def decode_many(self, codewords: np.ndarray):
        """Decode an (N, 72) codeword array.

        Returns ``(data, corrected, uncorrectable)``: the (N, 64)
        decoded data (uncorrectable rows returned as-read), a boolean
        mask of rows where a single error was fixed, and a boolean mask
        of rows with detected-uncorrectable (double) errors.
        """
        codes = np.asarray(codewords, dtype=np.uint8)
        if codes.ndim != 2 or codes.shape[1] != CODE_BITS:
            raise ConfigurationError(
                f"codewords must be (N, {CODE_BITS}), got {codes.shape}"
            )
        codes = codes.copy()
        body = codes[:, 1:]
        checks = (body @ self._parity_matrix.T.astype(np.uint8)) & 1
        syndrome = (checks * _PARITY_POSITIONS[None, :]).sum(axis=1)
        overall = codes.sum(axis=1) & 1

        clean = (syndrome == 0) & (overall == 0)
        overall_only = (syndrome == 0) & (overall == 1)
        single = (syndrome != 0) & (overall == 1) & (syndrome < CODE_BITS)
        uncorrectable = ~(clean | overall_only | single)

        rows = np.flatnonzero(overall_only)
        codes[rows, 0] ^= 1
        rows = np.flatnonzero(single)
        codes[rows, syndrome[rows]] ^= 1

        corrected = overall_only | single
        return codes[:, _DATA_POSITIONS], corrected, uncorrectable


def count_correctable_words(word_flip_counts: np.ndarray) -> dict:
    """Classify 64-bit data words by SECDED outcome given per-word flip
    counts (the analysis behind Observation 14 / Figure 11).

    Returns a dict with keys ``clean``, ``correctable`` (exactly one
    flip), and ``uncorrectable`` (two or more flips).
    """
    counts = np.asarray(word_flip_counts)
    if counts.ndim != 1:
        raise ConfigurationError("word_flip_counts must be one-dimensional")
    return {
        "clean": int(np.count_nonzero(counts == 0)),
        "correctable": int(np.count_nonzero(counts == 1)),
        "uncorrectable": int(np.count_nonzero(counts >= 2)),
    }
