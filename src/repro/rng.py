"""Deterministic random-number streams.

Every stochastic element of the simulation (per-cell retention times,
per-row disturbance couplings, Monte-Carlo circuit parameter draws, ...)
pulls its randomness from an :class:`RngHub` substream addressed by a
string key. Two properties follow:

* **Reproducibility** -- a study run with the same seed produces bit-exact
  identical results, regardless of execution order, because each substream
  is derived from ``(root_seed, key)`` rather than from a shared mutable
  generator.
* **Independence** -- tests that touch one module's rows do not perturb the
  random draws of another module, so adding an experiment never changes the
  outcome of an existing one.

Keys are free-form strings; by convention they are slash-separated paths
such as ``"module/A0/bank/0/row/1234/retention"``.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(root_seed: int, key: str) -> int:
    """Derive a 64-bit child seed from a root seed and a string key.

    Uses BLAKE2b over the concatenation so that nearby keys (e.g. row 12 vs
    row 13) yield statistically independent streams.
    """
    digest = hashlib.blake2b(
        f"{root_seed}:{key}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "little")


class RngHub:
    """Factory of independent, deterministic numpy generators.

    Parameters
    ----------
    root_seed:
        The study-level seed. Everything downstream derives from it.
    """

    def __init__(self, root_seed: int = 0):
        if not isinstance(root_seed, int):
            raise TypeError(f"root_seed must be an int, got {type(root_seed)!r}")
        self._root_seed = root_seed

    @property
    def root_seed(self) -> int:
        """The root seed this hub was constructed with."""
        return self._root_seed

    def generator(self, key: str) -> np.random.Generator:
        """Return a fresh generator for ``key``.

        Calling this twice with the same key returns two generators that
        produce the same sequence -- substreams are *stateless* with respect
        to the hub, which is what makes evaluation order irrelevant.
        """
        return np.random.default_rng(derive_seed(self._root_seed, key))

    def spawn(self, key: str) -> "RngHub":
        """Return a child hub rooted at ``(root_seed, key)``.

        Useful for handing a subsystem its own namespace without leaking
        the parent's key layout into it.
        """
        return RngHub(derive_seed(self._root_seed, key))

    def __repr__(self) -> str:
        return f"RngHub(root_seed={self._root_seed})"
