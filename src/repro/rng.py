"""Deterministic random-number streams.

Every stochastic element of the simulation (per-cell retention times,
per-row disturbance couplings, Monte-Carlo circuit parameter draws, ...)
pulls its randomness from an :class:`RngHub` substream addressed by a
string key. Two properties follow:

* **Reproducibility** -- a study run with the same seed produces bit-exact
  identical results, regardless of execution order, because each substream
  is derived from ``(root_seed, key)`` rather than from a shared mutable
  generator.
* **Independence** -- tests that touch one module's rows do not perturb the
  random draws of another module, so adding an experiment never changes the
  outcome of an existing one.

Keys are free-form strings; by convention they are slash-separated paths
such as ``"module/A0/bank/0/row/1234/retention"``.
"""

from __future__ import annotations

import hashlib
from typing import List, Sequence, Tuple

import numpy as np

# SeedSequence pool-mixing and PCG64 stream-initialization constants
# (numpy/random/bit_generator.pyx and pcg64.c). _bulk_pcg64_states
# replays both bit-exactly; tests/core/test_rng.py asserts equality
# against np.random.default_rng for every derivation path.
_INIT_A = np.uint32(0x43B0D7E5)
_MULT_A = 0x931E8875
_INIT_B = np.uint32(0x8B51F9DD)
_MULT_B = 0x58F38DED
_MIX_MULT_L = np.uint32(0xCA01F9DD)
_MIX_MULT_R = np.uint32(0x4973F715)
_XSHIFT = np.uint32(16)
_M32 = 0xFFFFFFFF
_M128 = (1 << 128) - 1
_PCG_DEFAULT_MULT = (2549297995355413924 << 64) + 4865540595714422341


def _hash_schedule(init: int, mult: int, steps: int) -> np.ndarray:
    """The SeedSequence hash-constant chain ``(xor, mult)`` per step --
    seed-independent, so it is precomputed once at import."""
    table = np.empty((steps, 2), dtype=np.uint32)
    const = init
    for step in range(steps):
        table[step, 0] = const
        const = (const * mult) & _M32
        table[step, 1] = const
    return table


#: Mixing-phase constants: 4 initial pool hashes + 12 src/dst mixes.
_MIX_SCHEDULE = _hash_schedule(int(_INIT_A), _MULT_A, 16)
#: Output-phase constants: 8 generated state words.
_OUT_SCHEDULE = _hash_schedule(int(_INIT_B), _MULT_B, 8)
#: Destination rows per mixing source; within one source iteration the
#: three destination updates never read each other, so they run stacked.
_MIX_DSTS = [
    np.array([dst for dst in range(4) if dst != src]) for src in range(4)
]
#: Output words draw round-robin from the pool rows.
_OUT_ROWS = np.array([0, 1, 2, 3, 0, 1, 2, 3])


def _bulk_pcg64_states(seeds: Sequence[int]) -> List[Tuple[int, int]]:
    """PCG64 ``(state, inc)`` pairs for a batch of integer seeds.

    Equivalent to ``np.random.PCG64(seed).state`` for each seed, but the
    SeedSequence entropy-pool mixing runs vectorized across the whole
    batch (the hash-constant schedule is seed-independent, so every
    lane shares it). Seeds must be non-negative and < 2**64; the
    entropy words are then ``[lo32]`` or ``[lo32, hi32]``, and because
    a missing second word hashes identically to a zero word, one
    two-word layout covers both cases.
    """
    arr = np.asarray(seeds, dtype=np.uint64)
    pool = np.zeros((4, arr.shape[0]), dtype=np.uint32)
    pool[0] = arr.astype(np.uint32)
    pool[1] = (arr >> np.uint64(32)).astype(np.uint32)

    # Initial per-entry hash: one stacked pass over all four pool rows
    # (constants 0..3 of the mixing schedule, one per row).
    values = (pool ^ _MIX_SCHEDULE[:4, :1]) * _MIX_SCHEDULE[:4, 1:]
    pool = values ^ (values >> _XSHIFT)
    step = 4
    for src in range(4):
        # One source feeds three destinations with consecutive schedule
        # constants, and no destination reads another within the
        # iteration -- so hash and mix all three lanes in (3, n) blocks.
        consts = _MIX_SCHEDULE[step:step + 3]
        step += 3
        values = (pool[src] ^ consts[:, :1]) * consts[:, 1:]
        dsts = _MIX_DSTS[src]
        mixed = pool[dsts] * _MIX_MULT_L - (
            values ^ (values >> _XSHIFT)
        ) * _MIX_MULT_R
        pool[dsts] = mixed ^ (mixed >> _XSHIFT)

    # Output pass, stacked over the 8 generated words (word i draws
    # from pool row i % 4).
    values = (pool[_OUT_ROWS] ^ _OUT_SCHEDULE[:, :1]) * _OUT_SCHEDULE[:, 1:]
    words = values ^ (values >> _XSHIFT)
    halves = [
        ((words[2 * i + 1].astype(np.uint64) << np.uint64(32))
         | words[2 * i]).tolist()
        for i in range(4)
    ]

    states = []
    for w0, w1, w2, w3 in zip(*halves):
        initstate = (w0 << 64) | w1
        inc = (((((w2 << 64) | w3) << 1) | 1)) & _M128
        state = ((inc + initstate) * _PCG_DEFAULT_MULT + inc) & _M128
        states.append((state, inc))
    return states


class _NormalDrawKernel:
    """One reused PCG64 generator fed precomputed stream states.

    Injecting ``(state, inc)`` and drawing reproduces
    ``np.random.Generator(np.random.PCG64(seed)).standard_normal()``
    without paying the per-seed Generator/SeedSequence construction.
    """

    __slots__ = ("_bit_generator", "_generator", "_template")

    def __init__(self):
        self._bit_generator = np.random.PCG64()
        self._generator = np.random.Generator(self._bit_generator)
        self._template = {
            "bit_generator": "PCG64",
            "state": {"state": 0, "inc": 0},
            "has_uint32": 0,
            "uinteger": 0,
        }

    def standard_normal(self, state: int, inc: int):
        inner = self._template["state"]
        inner["state"] = state
        inner["inc"] = inc
        self._bit_generator.state = self._template
        return self._generator.standard_normal()


def derive_seed(root_seed: int, key: str) -> int:
    """Derive a 64-bit child seed from a root seed and a string key.

    Uses BLAKE2b over the concatenation so that nearby keys (e.g. row 12 vs
    row 13) yield statistically independent streams.
    """
    digest = hashlib.blake2b(
        f"{root_seed}:{key}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "little")


class RngHub:
    """Factory of independent, deterministic numpy generators.

    Parameters
    ----------
    root_seed:
        The study-level seed. Everything downstream derives from it.
    """

    def __init__(self, root_seed: int = 0):
        if not isinstance(root_seed, int):
            raise TypeError(f"root_seed must be an int, got {type(root_seed)!r}")
        self._root_seed = root_seed
        self._draw_kernel = None

    @property
    def root_seed(self) -> int:
        """The root seed this hub was constructed with."""
        return self._root_seed

    def generator(self, key: str) -> np.random.Generator:
        """Return a fresh generator for ``key``.

        Calling this twice with the same key returns two generators that
        produce the same sequence -- substreams are *stateless* with respect
        to the hub, which is what makes evaluation order irrelevant.
        """
        return np.random.default_rng(derive_seed(self._root_seed, key))

    def standard_normals(self, keys: Sequence[str]) -> List:
        """One standard-normal draw per key, in order.

        Bit-identical to ``self.generator(key).standard_normal()`` for
        every key, but the per-key SeedSequence mixing is vectorized
        across the batch and a single generator is reused for the draws
        -- the kernel behind the batch probe engine's jitter prefetch.
        """
        kernel = self._draw_kernel
        if kernel is None:
            kernel = self._draw_kernel = _NormalDrawKernel()
        root = f"{self._root_seed}:".encode("utf-8")
        blake2b = hashlib.blake2b
        from_bytes = int.from_bytes
        states = _bulk_pcg64_states([
            from_bytes(
                blake2b(
                    root + key.encode("utf-8"), digest_size=8
                ).digest(),
                "little",
            )
            for key in keys
        ])
        return [kernel.standard_normal(state, inc) for state, inc in states]

    def spawn(self, key: str) -> "RngHub":
        """Return a child hub rooted at ``(root_seed, key)``.

        Useful for handing a subsystem its own namespace without leaking
        the parent's key layout into it.
        """
        return RngHub(derive_seed(self._root_seed, key))

    def __repr__(self) -> str:
        return f"RngHub(root_seed={self._root_seed})"
