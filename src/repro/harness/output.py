"""Experiment output containers and text rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

from repro.errors import ConfigurationError


def format_value(value: Any) -> str:
    """Consistent cell formatting: scientific for small floats, fixed
    otherwise, pass-through for everything else."""
    if isinstance(value, bool) or value is None:
        return str(value)
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) < 1e-2 or abs(value) >= 1e6:
            return f"{value:.2e}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


@dataclass
class ExperimentTable:
    """One printable table of an experiment's output."""

    title: str
    headers: Sequence[str]
    rows: List[Sequence[Any]] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        """Append a row (must match the header width)."""
        if len(values) != len(self.headers):
            raise ConfigurationError(
                f"row width {len(values)} != header width {len(self.headers)}"
            )
        self.rows.append(values)

    def render(self) -> str:
        """ASCII rendering with aligned columns."""
        cells = [[format_value(v) for v in row] for row in self.rows]
        widths = [
            max(len(str(h)), *(len(r[i]) for r in cells)) if cells else len(str(h))
            for i, h in enumerate(self.headers)
        ]
        lines = [self.title, "-" * len(self.title)]
        lines.append("  ".join(str(h).ljust(w) for h, w in zip(self.headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in cells:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)


@dataclass
class ExperimentOutput:
    """Everything one experiment produced."""

    experiment_id: str
    title: str
    description: str
    tables: List[ExperimentTable] = field(default_factory=list)
    charts: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    data: Dict[str, Any] = field(default_factory=dict)

    def add_table(self, table: ExperimentTable) -> ExperimentTable:
        """Attach a table and return it for chained row-adding."""
        self.tables.append(table)
        return table

    def add_chart(self, rendered: str) -> None:
        """Attach a pre-rendered ASCII chart."""
        self.charts.append(rendered)

    def note(self, text: str) -> None:
        """Attach a paper-vs-measured note."""
        self.notes.append(text)

    def render(self) -> str:
        """Full text report of the experiment."""
        parts = [f"== {self.experiment_id}: {self.title} ==", self.description, ""]
        for table in self.tables:
            parts.append(table.render())
            parts.append("")
        for chart in self.charts:
            parts.append(chart)
            parts.append("")
        if self.notes:
            parts.append("Notes:")
            parts.extend(f"  - {note}" for note in self.notes)
        return "\n".join(parts)
