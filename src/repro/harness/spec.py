"""Declarative experiment specs: one source of truth per experiment.

Every module under :mod:`repro.harness.experiments` exports an
:class:`ExperimentSpec` named ``SPEC`` declaring

* identity -- id, title, description (the uniform output/export schema
  is built from these),
* the characterization campaigns it consumes, as typed
  :class:`StudyRequest` tuples (what the runner's ``--parallel`` /
  ``--orchestrate`` preload planning is derived from),
* spec-only knobs (e.g. ``fig8``'s ``samples``) with their defaults,
* an analysis callable that receives the *resolved studies* -- specs
  are the only study entry point; analyses never call ``get_study``
  themselves (enforced by :mod:`repro.harness.lint` and the drift-guard
  test in ``tests/harness/test_spec.py``).

The registry auto-discovers specs, so adding an experiment is a single
new module; see ``docs/ADDING_EXPERIMENTS.md`` for the contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.scale import StudyScale
from repro.harness import cache
from repro.harness.output import ExperimentOutput


@dataclass(frozen=True)
class StudyRequest:
    """One characterization campaign an experiment declares.

    ``None`` fields are holes filled at run time: ``modules`` falls back
    to the runner's ``--modules`` (then the spec's ``default_modules``,
    then :data:`repro.harness.cache.BENCH_MODULES`), ``scale`` and
    ``seed`` to the run's scale/seed. Non-``None`` fields pin the
    campaign regardless of runner arguments (e.g. ``pareto`` always
    studies its two showcase modules).
    """

    tests: Tuple[str, ...]
    modules: Optional[Tuple[str, ...]] = None
    scale: Optional[StudyScale] = None
    seed: Optional[int] = None
    #: Registered DSL program name (:mod:`repro.progdsl`) the campaign's
    #: probe schedules run through. None (the default) is the paper's
    #: schedule -- and the pre-DSL cache identity.
    program: Optional[str] = None

    def resolve(
        self,
        modules: Optional[Tuple[str, ...]] = None,
        scale: Optional[StudyScale] = None,
        seed: int = 0,
        program: Optional[str] = None,
    ) -> "ResolvedStudy":
        """Fill the request's holes with run-time values."""
        resolved_modules = self.modules if self.modules is not None else modules
        if resolved_modules is None:
            resolved_modules = cache.BENCH_MODULES
        return ResolvedStudy(
            tests=tuple(self.tests),
            modules=tuple(resolved_modules),
            scale=self.scale if self.scale is not None else scale,
            seed=self.seed if self.seed is not None else seed,
            program=self.program if self.program is not None else program,
        )


@dataclass(frozen=True)
class ResolvedStudy:
    """A :class:`StudyRequest` with every run-time hole filled in --
    exactly one cacheable campaign."""

    tests: Tuple[str, ...]
    modules: Tuple[str, ...]
    scale: Optional[StudyScale]
    seed: int
    program: Optional[str] = None

    @property
    def label(self) -> str:
        """Human-readable campaign label, e.g. ``"rowhammer+trcd"``."""
        label = "+".join(self.tests)
        if self.program is not None:
            label = f"{label}@{self.program}"
        return label

    def cache_key(self) -> Tuple:
        """Order-normalized identity, mirroring the study cache's key
        (same campaign => same key, regardless of declaration order;
        a default-schedule program normalizes to the pre-DSL key)."""
        return (
            tuple(sorted(self.tests)), tuple(sorted(self.modules)),
            self.scale, self.seed, cache._program_key(self.program),
        )

    def fetch(self):
        """Fetch the campaign through the study cache (in-process +
        disk layers)."""
        # Looked up through the module so tests can monkeypatch
        # ``cache.get_study`` and observe/redirect every fetch.
        return cache.get_study(
            self.tests, modules=self.modules, scale=self.scale,
            seed=self.seed, program=self.program,
        )


#: Analysis callable contract: ``analyze(output, studies, *, modules,
#: scale, seed, **knobs)`` fills ``output`` in place.
AnalysisFn = Callable[..., None]

#: Descriptions are either a plain string or a callable
#: ``(modules, knobs) -> str`` for the few experiments whose prose
#: depends on run parameters.
Description = Union[str, Callable[[Optional[Tuple[str, ...]], Dict[str, Any]], str]]


@dataclass(frozen=True)
class ExperimentSpec:
    """Everything the harness needs to know about one experiment."""

    id: str
    title: str
    description: Description
    analyze: AnalysisFn
    studies: Tuple[StudyRequest, ...] = ()
    default_modules: Optional[Tuple[str, ...]] = None
    #: Default DSL program name applied to this spec's study requests
    #: (individual :class:`StudyRequest.program` pins still win); the
    #: runner's ``--program`` overrides this default at run time.
    program: Optional[str] = None
    knobs: Mapping[str, Any] = field(default_factory=dict)
    #: False for experiments whose results do not depend on the module
    #: selection (static tables, SPICE circuit studies); the runner
    #: warns when ``--modules`` is passed to one of these.
    module_scoped: bool = True
    #: Sort key for registry/listing order (paper artifacts first, then
    #: the extension experiments, mirroring DESIGN.md).
    order: int = 1000

    def resolve_modules(
        self, modules: Optional[Sequence[str]] = None
    ) -> Optional[Tuple[str, ...]]:
        """The module tuple an invocation operates on: an explicit
        argument wins, else the spec default (which may be None for
        all-modules/module-free experiments)."""
        if modules:
            return tuple(modules)
        return self.default_modules

    def resolved_studies(
        self,
        modules: Optional[Sequence[str]] = None,
        scale: Optional[StudyScale] = None,
        seed: int = 0,
        program: Optional[str] = None,
    ) -> Tuple[ResolvedStudy, ...]:
        """The exact campaigns one invocation will fetch, in declaration
        order. This is what preload planning and the drift-guard test
        consume."""
        resolved_modules = self.resolve_modules(modules)
        effective_program = program if program is not None else self.program
        return tuple(
            request.resolve(resolved_modules, scale, seed, effective_program)
            for request in self.studies
        )

    def resolve_knobs(self, overrides: Mapping[str, Any]) -> Dict[str, Any]:
        """Spec knob defaults with ``overrides`` applied; unknown names
        are an error (they would be silently dropped otherwise)."""
        unknown = sorted(set(overrides) - set(self.knobs))
        if unknown:
            raise TypeError(
                f"experiment {self.id!r} got unexpected knob(s): "
                f"{', '.join(unknown)}; declared knobs: "
                f"{sorted(self.knobs) or '(none)'}"
            )
        knobs = dict(self.knobs)
        knobs.update(overrides)
        return knobs

    def describe(
        self,
        modules: Optional[Sequence[str]] = None,
        knobs: Optional[Mapping[str, Any]] = None,
    ) -> str:
        """The output description for an invocation (resolves callable
        descriptions against the modules/knobs in effect)."""
        if callable(self.description):
            resolved = self.resolve_knobs(dict(knobs or {}))
            return self.description(self.resolve_modules(modules), resolved)
        return self.description

    def run(
        self,
        modules: Optional[Sequence[str]] = None,
        scale: Optional[StudyScale] = None,
        seed: int = 0,
        program: Optional[str] = None,
        **overrides: Any,
    ) -> ExperimentOutput:
        """Run the experiment: resolve knobs and modules, fetch the
        declared studies through the cache, and hand everything to the
        analysis callable."""
        knobs = self.resolve_knobs(overrides)
        resolved_modules = self.resolve_modules(modules)
        studies = tuple(
            resolved.fetch()
            for resolved in self.resolved_studies(
                modules, scale, seed, program
            )
        )
        output = ExperimentOutput(
            experiment_id=self.id,
            title=self.title,
            description=self.describe(modules, knobs),
        )
        self.analyze(
            output, studies, modules=resolved_modules, scale=scale,
            seed=seed, **knobs,
        )
        return output
