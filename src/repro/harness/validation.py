"""Shared request validation for every front end.

The runner, the orchestration-service CLI (``python -m repro.service``)
and the characterization API (``python -m repro.api``) all accept module
names, test types and experiment ids from the outside world. Each used
to carry its own ad-hoc checks; this module is the single source of
truth so the three surfaces reject the same inputs with the same
messages -- and the CLIs agree on exit code 2 for unknown ids
(``tests/api/test_cli.py`` pins the contract).

Everything raises :class:`~repro.errors.ConfigurationError`; HTTP
front ends map that to a 400 response, CLIs to exit code 2.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.study import TEST_TYPES
from repro.dram.profiles import MODULE_PROFILES
from repro.errors import ConfigurationError


def unknown_modules(modules: Sequence[str]) -> List[str]:
    """The subset of ``modules`` that are not Table 3 module names, in
    input order (deduplicated)."""
    seen = set()
    unknown = []
    for name in modules:
        if name not in MODULE_PROFILES and name not in seen:
            unknown.append(name)
            seen.add(name)
    return unknown


def validate_modules(modules: Sequence[str]) -> Tuple[str, ...]:
    """Check every name against the module catalog; returns the tuple."""
    unknown = unknown_modules(modules)
    if unknown:
        raise ConfigurationError(
            "unknown module id(s): " + ", ".join(unknown)
            + "; available: " + ", ".join(sorted(MODULE_PROFILES))
        )
    if not modules:
        raise ConfigurationError("modules must not be empty")
    return tuple(modules)


def validate_tests(tests: Sequence[str]) -> Tuple[str, ...]:
    """Check every test type against the study vocabulary."""
    unknown = [test for test in tests if test not in TEST_TYPES]
    if unknown:
        raise ConfigurationError(
            "unknown test type(s): " + ", ".join(sorted(set(unknown)))
            + "; available: " + ", ".join(TEST_TYPES)
        )
    if not tests:
        raise ConfigurationError("tests must not be empty")
    return tuple(tests)


def validate_program(name: Optional[str]) -> Optional[str]:
    """Check a DSL program name against the program registry.

    None (no program requested) passes through. Imported lazily for the
    same reason as :func:`validate_experiments` -- front ends that never
    see a ``--program`` should not pay the import.
    """
    if name is None:
        return None
    from repro.progdsl import is_known_program, program_names

    if not is_known_program(name):
        raise ConfigurationError(
            f"unknown program id(s): {name}"
            + "; available: " + ", ".join(program_names())
        )
    return name


def validate_experiments(ids: Sequence[str]) -> Tuple[str, ...]:
    """Check every experiment id against the registry.

    Imported lazily: the registry pulls in every experiment module, and
    the service CLI should not pay that import unless experiment ids
    are actually being validated.
    """
    from repro.harness.registry import EXPERIMENT_IDS, unknown_experiments

    unknown = unknown_experiments(ids)
    if unknown:
        raise ConfigurationError(
            "unknown experiment id(s): " + ", ".join(unknown)
            + "; known ids: " + ", ".join(EXPERIMENT_IDS)
        )
    return tuple(ids)


def validate_subset(
    values: Sequence[str],
    allowed: Optional[Sequence[str]],
    what: str,
) -> Tuple[str, ...]:
    """Check ``values`` against an optional allowlist (API front ends
    restrict tenants to ``--modules`` / ``--experiments`` subsets)."""
    if allowed is not None:
        blocked = sorted(set(values) - set(allowed))
        if blocked:
            raise ConfigurationError(
                f"{what} not allowed by this server: "
                + ", ".join(blocked)
                + "; allowed: " + ", ".join(sorted(allowed))
            )
    return tuple(values)
