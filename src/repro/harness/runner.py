"""Experiment runner CLI.

Run any registered experiment (or all of them) and optionally export
CSV/JSON to a results directory::

    python -m repro.harness.runner fig3 fig5 --out results/
    python -m repro.harness.runner --all --modules A0 B3 C5
    python -m repro.harness.runner --list

Completed campaigns persist in a disk cache (``.study-cache/`` by
default) keyed by scale/seed/modules/tests, so repeated invocations
skip straight to the analysis; ``--no-cache`` opts out and
``--cache-dir`` relocates it. ``--profile`` prints a per-phase timing
breakdown (WCDP / probe loops / export) and probe counters at the end.

The campaigns pre-run by ``--parallel`` and ``--orchestrate`` are
derived from the experiments' declared specs (one shared
:class:`~repro.harness.plan.PreloadPlan`), so the pre-run always
matches what the experiments actually fetch.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.core.perf import PROFILER
from repro.harness.cache import DEFAULT_CACHE_DIR, set_study_cache_dir
from repro.harness.export import export_output
from repro.harness.plan import build_plan
from repro.harness.registry import (
    EXPERIMENT_IDS,
    all_specs,
    get_spec,
    run_experiment,
    unknown_experiments,
)


def build_parser() -> argparse.ArgumentParser:
    """The runner's argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro.harness.runner",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments", nargs="*", metavar="ID",
        help=f"experiment ids to run; known: {', '.join(EXPERIMENT_IDS)}",
    )
    parser.add_argument(
        "--all", action="store_true", help="run every registered experiment"
    )
    parser.add_argument(
        "--list", action="store_true",
        help="list every registered experiment (id, campaign needs, "
             "title) and exit",
    )
    parser.add_argument(
        "--modules", nargs="*", default=None,
        help="module subset (default: the benchmark subset)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="root seed (default 0)"
    )
    parser.add_argument(
        "--out", default=None, metavar="DIR",
        help="export CSV/JSON results into DIR",
    )
    parser.add_argument(
        "--parallel", type=int, default=None, metavar="N",
        help=(
            "pre-run the characterization campaigns the requested "
            "experiments declare with N worker processes "
            "((module, row-chunk) granularity) before dispatching the "
            "experiments"
        ),
    )
    parser.add_argument(
        "--orchestrate", type=int, default=None, metavar="N",
        help=(
            "like --parallel, but pre-run the declared campaigns through "
            "the orchestration service (repro.service): checkpointed, "
            "resumable with --resume, fault-tolerant, with structured "
            "telemetry; N worker processes (0/1 runs in-process)"
        ),
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="with --orchestrate: restore completed work units from the "
             "campaign checkpoints",
    )
    parser.add_argument(
        "--service-dir", default=".service-checkpoints", metavar="DIR",
        help="with --orchestrate: base directory for campaign "
             "checkpoints (default: .service-checkpoints)",
    )
    parser.add_argument(
        "--events", default=None, metavar="PATH",
        help="with --orchestrate: write the JSON-lines telemetry event "
             "log to PATH",
    )
    parser.add_argument(
        "--cache-dir", default=DEFAULT_CACHE_DIR, metavar="DIR",
        help=(
            "directory of the persistent study cache "
            f"(default: {DEFAULT_CACHE_DIR})"
        ),
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the persistent study cache for this run",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="print a per-phase timing breakdown and probe counters",
    )
    return parser


def list_experiments() -> str:
    """The ``--list`` report: one line per experiment with its id, the
    campaigns its spec declares, and its title."""
    specs = all_specs()
    id_width = max(len(spec.id) for spec in specs.values())
    needs = {
        spec.id: ", ".join("+".join(r.tests) for r in spec.studies) or "-"
        for spec in specs.values()
    }
    needs_width = max(len(text) for text in needs.values())
    lines = [
        f"{spec.id:<{id_width}}  {needs[spec.id]:<{needs_width}}  "
        f"{spec.title}"
        for spec in specs.values()
    ]
    header = (
        f"{'id':<{id_width}}  {'campaigns':<{needs_width}}  title"
    )
    return "\n".join([header, "-" * len(header)] + lines)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.list:
        print(list_experiments())
        return 0
    ids = EXPERIMENT_IDS if args.all else args.experiments
    if not ids:
        build_parser().print_help()
        return 2
    unknown = unknown_experiments(ids)
    if unknown:
        print(
            "error: unknown experiment id(s): " + ", ".join(unknown),
            file=sys.stderr,
        )
        print("known ids: " + ", ".join(EXPERIMENT_IDS), file=sys.stderr)
        return 2
    if args.parallel and args.orchestrate is not None:
        print("error: --parallel and --orchestrate are mutually exclusive",
              file=sys.stderr)
        return 2
    if args.modules:
        for experiment_id in ids:
            if not get_spec(experiment_id).module_scoped:
                print(
                    f"warning: {experiment_id} is not module-scoped; "
                    "--modules has no effect on it",
                    file=sys.stderr,
                )
    set_study_cache_dir(None if args.no_cache else args.cache_dir)
    if args.profile:
        PROFILER.enable()
        PROFILER.reset()
    kwargs = {"seed": args.seed}
    if args.modules:
        kwargs["modules"] = tuple(args.modules)
    if args.parallel or args.orchestrate is not None:
        plan = build_plan(
            ids, modules=kwargs.get("modules"), seed=args.seed
        )
    if args.parallel:
        if not plan:
            print("no shared campaigns needed; skipping pre-run")
        else:
            print(f"pre-running the {plan.describe()} campaigns with "
                  f"{args.parallel} workers...")
            plan.preload_parallel(max_workers=args.parallel)
    if args.orchestrate is not None:
        if not plan:
            print("no shared campaigns needed; skipping orchestration")
        else:
            from repro.service.telemetry import TelemetryLog

            with TelemetryLog(args.events, resume=args.resume) as telemetry:
                quarantined = plan.orchestrate(
                    max_workers=args.orchestrate,
                    checkpoint_base=args.service_dir,
                    telemetry=telemetry, resume=args.resume,
                )
            if quarantined:
                print(
                    "warning: quarantined modules: "
                    + ", ".join(quarantined),
                    file=sys.stderr,
                )
    for experiment_id in ids:
        started = time.monotonic()
        output = run_experiment(experiment_id, **kwargs)
        print(output.render())
        print(f"[{experiment_id} completed in "
              f"{time.monotonic() - started:.1f}s]\n")
        if args.out:
            with PROFILER.phase("export"):
                written = export_output(output, args.out)
            print("exported: " + ", ".join(written) + "\n")
    if args.profile:
        # Phases timed inside --parallel worker processes stay in the
        # workers; the report covers this process's share.
        print(PROFILER.report())
    return 0


if __name__ == "__main__":
    sys.exit(main())
