"""Experiment runner CLI.

Run any registered experiment (or all of them) and optionally export
CSV/JSON to a results directory::

    python -m repro.harness.runner fig3 fig5 --out results/
    python -m repro.harness.runner --all --modules A0 B3 C5
    python -m repro.harness.runner --list

Completed campaigns persist in a disk cache (``.study-cache/`` by
default) keyed by scale/seed/modules/tests, so repeated invocations
skip straight to the analysis; ``--no-cache`` opts out and
``--cache-dir`` relocates it. ``--profile`` prints a per-phase timing
breakdown (WCDP / probe loops / export) and probe counters at the end.

The campaigns pre-run by ``--parallel`` and ``--orchestrate`` are
derived from the experiments' declared specs (one shared
:class:`~repro.harness.plan.PreloadPlan`), so the pre-run always
matches what the experiments actually fetch.
"""

from __future__ import annotations

import argparse
import hashlib
import sys
from typing import List, Optional

from repro.core.perf import PROFILER
from repro.core.probe import engine_selection
from repro.harness.cache import DEFAULT_CACHE_DIR, set_study_cache_dir
from repro.harness.export import export_output
from repro.harness.plan import build_plan
from repro.errors import ConfigurationError
from repro.harness.registry import (
    EXPERIMENT_IDS,
    all_specs,
    get_spec,
    run_experiment,
)
from repro.harness.validation import (
    validate_experiments,
    validate_modules,
    validate_program,
)
from repro.obs import ProgressReporter, build_provenance, clock
from repro.obs import context as obs_context
from repro.obs.metrics import REGISTRY
from repro.obs.trace import TRACER

#: Study-cache counters consulted to label an experiment's provenance
#: block with how its campaign was satisfied.
_CACHE_HIT_COUNTERS = (
    "repro_study_cache_memory_hits_total",
    "repro_study_cache_disk_hits_total",
)


def build_parser() -> argparse.ArgumentParser:
    """The runner's argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro.harness.runner",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments", nargs="*", metavar="ID",
        help=f"experiment ids to run; known: {', '.join(EXPERIMENT_IDS)}",
    )
    parser.add_argument(
        "--all", action="store_true", help="run every registered experiment"
    )
    parser.add_argument(
        "--list", action="store_true",
        help="list every registered experiment (id, campaign needs, "
             "title) and exit",
    )
    parser.add_argument(
        "--modules", nargs="*", default=None,
        help="module subset (default: the benchmark subset)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="root seed (default 0)"
    )
    parser.add_argument(
        "--program", default=None, metavar="NAME",
        help="registered DRAM-program DSL name the campaigns' probe "
             "schedules run through (default: the paper's schedules); "
             "see docs/PROGRAMS.md",
    )
    parser.add_argument(
        "--out", default=None, metavar="DIR",
        help="export CSV/JSON results into DIR",
    )
    parser.add_argument(
        "--parallel", type=int, default=None, metavar="N",
        help=(
            "pre-run the characterization campaigns the requested "
            "experiments declare with N worker processes "
            "((module, row-chunk) granularity) before dispatching the "
            "experiments"
        ),
    )
    parser.add_argument(
        "--orchestrate", type=int, default=None, metavar="N",
        help=(
            "like --parallel, but pre-run the declared campaigns through "
            "the orchestration service (repro.service): checkpointed, "
            "resumable with --resume, fault-tolerant, with structured "
            "telemetry; N worker processes (0/1 runs in-process)"
        ),
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="with --orchestrate: restore completed work units from the "
             "campaign checkpoints",
    )
    parser.add_argument(
        "--service-dir", default=".service-checkpoints", metavar="DIR",
        help="with --orchestrate: base directory for campaign "
             "checkpoints (default: .service-checkpoints)",
    )
    parser.add_argument(
        "--events", default=None, metavar="PATH",
        help="with --orchestrate: write the JSON-lines telemetry event "
             "log to PATH",
    )
    parser.add_argument(
        "--cache-dir", default=DEFAULT_CACHE_DIR, metavar="DIR",
        help=(
            "directory of the persistent study cache "
            f"(default: {DEFAULT_CACHE_DIR})"
        ),
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the persistent study cache for this run",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="print a per-phase timing breakdown and probe counters",
    )
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record hierarchical spans and write Chrome-trace JSON "
             "(load in Perfetto / chrome://tracing) to PATH",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the metrics registry as Prometheus text to PATH",
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="render a live rate/ETA progress line on stderr",
    )
    return parser


def _experiment_provenance(
    experiment_id: str, seed: int, modules, wall_seconds: float,
    counters_before, counters_after, cache_enabled: bool,
):
    """The provenance block embedded in one experiment's JSON export.

    The fingerprint hashes the experiment request (id, seed, module
    subset, engine tier); the cache label reflects what the study cache
    actually did while the experiment ran.
    """
    canonical = (
        f"{experiment_id}|seed={seed}|modules={sorted(modules or ())}"
        f"|engine={engine_selection()}"
    )
    if not cache_enabled:
        cache_state = "off"
    elif any(
        counters_after.get(name, 0.0) > counters_before.get(name, 0.0)
        for name in _CACHE_HIT_COUNTERS
    ):
        cache_state = "hit"
    else:
        cache_state = "miss"
    spent = {
        name: value - counters_before.get(name, 0.0)
        for name, value in counters_after.items()
        if value - counters_before.get(name, 0.0)
    }
    return build_provenance(
        fingerprint=hashlib.sha256(
            canonical.encode("utf-8")
        ).hexdigest()[:32],
        probe_engine=engine_selection(),
        seed=seed,
        cache=cache_state,
        wall_seconds=wall_seconds,
        counters=spent,
        experiment=experiment_id,
    )


def list_experiments() -> str:
    """The ``--list`` report: one line per experiment with its id, the
    campaigns its spec declares, and its title."""
    specs = all_specs()
    id_width = max(len(spec.id) for spec in specs.values())
    needs = {
        spec.id: ", ".join("+".join(r.tests) for r in spec.studies) or "-"
        for spec in specs.values()
    }
    needs_width = max(len(text) for text in needs.values())
    lines = [
        f"{spec.id:<{id_width}}  {needs[spec.id]:<{needs_width}}  "
        f"{spec.title}"
        for spec in specs.values()
    ]
    header = (
        f"{'id':<{id_width}}  {'campaigns':<{needs_width}}  title"
    )
    return "\n".join([header, "-" * len(header)] + lines)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.list:
        print(list_experiments())
        return 0
    ids = EXPERIMENT_IDS if args.all else args.experiments
    if not ids:
        build_parser().print_help()
        return 2
    try:
        validate_experiments(ids)
        if args.modules:
            validate_modules(args.modules)
        validate_program(args.program)
    except ConfigurationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.parallel and args.orchestrate is not None:
        print("error: --parallel and --orchestrate are mutually exclusive",
              file=sys.stderr)
        return 2
    if args.modules:
        for experiment_id in ids:
            if not get_spec(experiment_id).module_scoped:
                print(
                    f"warning: {experiment_id} is not module-scoped; "
                    "--modules has no effect on it",
                    file=sys.stderr,
                )
    set_study_cache_dir(None if args.no_cache else args.cache_dir)
    if args.profile:
        PROFILER.enable()
        PROFILER.reset()
    if args.trace:
        TRACER.enable()
    reporter = ProgressReporter() if args.progress else None
    if reporter is not None:
        reporter.attach()
    try:
        kwargs = {"seed": args.seed}
        if args.modules:
            kwargs["modules"] = tuple(args.modules)
        if args.program:
            kwargs["program"] = args.program
        if args.parallel or args.orchestrate is not None:
            plan = build_plan(
                ids, modules=kwargs.get("modules"), seed=args.seed,
                program=args.program,
            )
        if args.parallel:
            if not plan:
                print("no shared campaigns needed; skipping pre-run")
            else:
                print(f"pre-running the {plan.describe()} campaigns with "
                      f"{args.parallel} workers...")
                plan.preload_parallel(max_workers=args.parallel)
        if args.orchestrate is not None:
            if not plan:
                print("no shared campaigns needed; skipping orchestration")
            else:
                from repro.service.telemetry import TelemetryLog

                with TelemetryLog(
                    args.events, resume=args.resume
                ) as telemetry:
                    quarantined = plan.orchestrate(
                        max_workers=args.orchestrate,
                        checkpoint_base=args.service_dir,
                        telemetry=telemetry, resume=args.resume,
                    )
                if quarantined:
                    print(
                        "warning: quarantined modules: "
                        + ", ".join(quarantined),
                        file=sys.stderr,
                    )
        for experiment_id in ids:
            started = clock.monotonic()
            counters_before = REGISTRY.counter_values()
            with TRACER.span("experiment", experiment=experiment_id):
                output = run_experiment(experiment_id, **kwargs)
            elapsed = clock.monotonic() - started
            print(output.render())
            print(f"[{experiment_id} completed in {elapsed:.1f}s]\n")
            if args.out:
                provenance = _experiment_provenance(
                    experiment_id, args.seed, args.modules, elapsed,
                    counters_before, REGISTRY.counter_values(),
                    cache_enabled=not args.no_cache,
                )
                with PROFILER.phase("export"):
                    written = export_output(
                        output, args.out, provenance=provenance
                    )
                print("exported: " + ", ".join(written) + "\n")
    finally:
        # The reporter must detach even when an experiment raises:
        # leaving its bus subscription behind would have the *next*
        # in-process main() call (tests, notebooks) painting progress
        # for a reporter whose output stream is long gone.
        if reporter is not None:
            reporter.detach()
    if args.profile:
        # Phases timed inside --parallel worker processes stay in the
        # workers; the report covers this process's share.
        print(PROFILER.report())
        if TRACER.enabled:
            print(TRACER.report())
        PROFILER.disable()
    if args.trace:
        if obs_context.fragments():
            # Stitched: the local document plus the fragments deposited
            # by --orchestrate pool workers, on one timeline with flow
            # arrows.
            obs_context.write_stitched_trace(args.trace)
        else:
            TRACER.write_chrome_trace(args.trace)
        # Leave the process-global tracer clean for in-process callers
        # (tests, notebooks) that invoke main() repeatedly.
        TRACER.disable()
        obs_context.clear_fragments()
        print(f"trace written: {args.trace}", file=sys.stderr)
    if args.metrics_out:
        REGISTRY.write_prometheus(args.metrics_out)
        print(f"metrics written: {args.metrics_out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
