"""Experiment runner CLI.

Run any registered experiment (or all of them) and optionally export
CSV/JSON to a results directory::

    python -m repro.harness.runner fig3 fig5 --out results/
    python -m repro.harness.runner --all --modules A0 B3 C5
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.harness.export import export_output
from repro.harness.registry import EXPERIMENT_IDS, run_experiment


def build_parser() -> argparse.ArgumentParser:
    """The runner's argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro.harness.runner",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments", nargs="*", metavar="ID",
        help=f"experiment ids to run; known: {', '.join(EXPERIMENT_IDS)}",
    )
    parser.add_argument(
        "--all", action="store_true", help="run every registered experiment"
    )
    parser.add_argument(
        "--modules", nargs="*", default=None,
        help="module subset (default: the benchmark subset)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="root seed (default 0)"
    )
    parser.add_argument(
        "--out", default=None, metavar="DIR",
        help="export CSV/JSON results into DIR",
    )
    parser.add_argument(
        "--parallel", type=int, default=None, metavar="N",
        help=(
            "pre-run the underlying characterization campaigns with N "
            "worker processes (one module per worker) before dispatching "
            "the experiments"
        ),
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    ids = EXPERIMENT_IDS if args.all else args.experiments
    if not ids:
        build_parser().print_help()
        return 2
    kwargs = {"seed": args.seed}
    if args.modules:
        kwargs["modules"] = tuple(args.modules)
    if args.parallel:
        from repro.harness.cache import BENCH_MODULES, preload_parallel

        modules = kwargs.get("modules", BENCH_MODULES)
        print(f"pre-running campaigns over {len(modules)} modules with "
              f"{args.parallel} workers...")
        preload_parallel(
            [("rowhammer",), ("trcd",), ("retention",)],
            modules=modules, seed=args.seed, max_workers=args.parallel,
        )
    for experiment_id in ids:
        started = time.monotonic()
        output = run_experiment(experiment_id, **kwargs)
        print(output.render())
        print(f"[{experiment_id} completed in "
              f"{time.monotonic() - started:.1f}s]\n")
        if args.out:
            written = export_output(output, args.out)
            print("exported: " + ", ".join(written) + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
