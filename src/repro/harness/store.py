"""Content-addressed study store with multi-process write safety.

The disk layer of the study cache (:mod:`repro.harness.cache`) and the
characterization API (:mod:`repro.api`) share this store: one directory
holding ``study-<fingerprint>.json`` entries, where the fingerprint is
the content hash of the campaign *request* (tests, modules, scale,
seed, probe engine, schema version -- see
:func:`repro.harness.cache.study_fingerprint`). Because the request
determines the result bit-for-bit, two writers racing on the same
fingerprint are by construction writing identical bytes; the store only
has to guarantee that

* **readers never observe a torn entry** -- every publish is a write to
  a temp file in the same directory followed by ``os.replace`` (atomic
  on POSIX and Windows), and
* **writers do not waste work or collide on temp state** -- a per-
  fingerprint lockfile (``O_CREAT | O_EXCL``) admits a single writer;
  a second writer waits briefly and then simply adopts the published
  entry instead of re-serializing it.

Lockfiles are advisory and crash-tolerant: a lock older than
``stale_lock_seconds`` is broken (its holder died mid-write; the temp
file it may have leaked is invisible to readers).

``tests/api/test_store.py`` races two *processes* on one fingerprint to
pin these guarantees.
"""

from __future__ import annotations

import errno
import json
import os
import tempfile
import time
from typing import List, Optional

from repro.core.serialization import load_study, save_study
from repro.core.study import StudyResult
from repro.errors import AnalysisError
from repro.obs import clock, validate_provenance
from repro.obs.metrics import REGISTRY

#: Prefix/suffix of every store entry.
ENTRY_PREFIX = "study-"
ENTRY_SUFFIX = ".json"


def entry_name(fingerprint: str) -> str:
    """Filename of a fingerprint's entry inside a store directory."""
    return f"{ENTRY_PREFIX}{fingerprint}{ENTRY_SUFFIX}"


class StudyStore:
    """One directory of content-addressed study entries.

    Parameters
    ----------
    directory:
        Store root; created lazily on the first write.
    lock_timeout:
        How long :meth:`store` waits for a concurrent writer of the
        same fingerprint before giving up (seconds). Because entries
        are content-addressed, "giving up" normally means the other
        writer already published the identical entry.
    stale_lock_seconds:
        Age beyond which an abandoned lockfile is broken.
    """

    def __init__(
        self,
        directory: str,
        lock_timeout: float = 10.0,
        stale_lock_seconds: float = 60.0,
    ):
        self.directory = directory
        self.lock_timeout = lock_timeout
        self.stale_lock_seconds = stale_lock_seconds

    # -- addressing -------------------------------------------------------------

    def path(self, fingerprint: str) -> str:
        """Absolute path of a fingerprint's entry (existing or not)."""
        return os.path.join(self.directory, entry_name(fingerprint))

    def _lock_path(self, fingerprint: str) -> str:
        return os.path.join(self.directory, f".lock-{fingerprint}")

    def contains(self, fingerprint: str) -> bool:
        """Whether an entry is currently published for ``fingerprint``."""
        return os.path.isfile(self.path(fingerprint))

    def fingerprints(self) -> List[str]:
        """Every published fingerprint, sorted."""
        if not os.path.isdir(self.directory):
            return []
        found = []
        for entry in os.listdir(self.directory):
            if entry.startswith(ENTRY_PREFIX) and entry.endswith(
                ENTRY_SUFFIX
            ):
                found.append(entry[len(ENTRY_PREFIX):-len(ENTRY_SUFFIX)])
        return sorted(found)

    # -- reading ----------------------------------------------------------------

    def load(self, fingerprint: str) -> Optional[StudyResult]:
        """Load one entry; ``None`` when absent or corrupt.

        A corrupt entry (unparseable, schema mismatch, invalid
        provenance block) is unlinked so the campaign is recomputed
        rather than failing forever.
        """
        path = self.path(fingerprint)
        if not os.path.isfile(path):
            return None
        try:
            size = os.path.getsize(path)
            study = load_study(path)
            if study.provenance is not None:
                # load_study already schema-checked the block;
                # re-validate so a corrupted-but-parseable entry is
                # treated like any other corrupt entry.
                validate_provenance(study.provenance)
        except (OSError, ValueError, KeyError, TypeError, AnalysisError):
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        REGISTRY.counter(
            "repro_study_cache_read_bytes_total",
            "bytes read from the on-disk study store",
        ).inc(size)
        return study

    def load_dict(self, fingerprint: str) -> Optional[dict]:
        """The raw JSON document of one entry (the API serves this
        verbatim, no deserialize/re-serialize round trip)."""
        path = self.path(fingerprint)
        try:
            with open(path) as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return None

    # -- writing ----------------------------------------------------------------

    def _acquire_lock(self, fingerprint: str) -> Optional[int]:
        """Single-writer admission for one fingerprint.

        Returns the lock fd, or ``None`` when another writer published
        the entry while we waited (nothing left to do).
        """
        lock_path = self._lock_path(fingerprint)
        deadline = clock.monotonic() + self.lock_timeout
        while True:
            try:
                fd = os.open(
                    lock_path,
                    os.O_CREAT | os.O_EXCL | os.O_WRONLY,
                    0o644,
                )
                os.write(fd, str(os.getpid()).encode("ascii"))
                return fd
            except FileExistsError:
                pass
            except OSError as error:  # pragma: no cover - exotic fs
                if error.errno != errno.EEXIST:
                    raise
            if self.contains(fingerprint):
                # The racing writer finished: identical content is
                # already published; adopt it.
                return None
            try:
                age = clock.wall() - os.path.getmtime(lock_path)
                if age > self.stale_lock_seconds:
                    os.unlink(lock_path)  # holder died; break the lock
                    continue
            except OSError:
                continue  # lock vanished between checks; retry
            if clock.monotonic() >= deadline:
                if self.contains(fingerprint):
                    return None
                raise TimeoutError(
                    f"timed out waiting for study-store lock on "
                    f"{fingerprint} ({lock_path})"
                )
            time.sleep(0.005)

    def store(self, study: StudyResult, fingerprint: str) -> str:
        """Publish one entry atomically; returns its path.

        Safe against concurrent writers of the same fingerprint (they
        serialize on the lockfile, and a late writer adopts the early
        writer's entry) and against readers (the entry appears in one
        ``os.replace``).
        """
        os.makedirs(self.directory, exist_ok=True)
        path = self.path(fingerprint)
        lock_fd = self._acquire_lock(fingerprint)
        if lock_fd is None:
            _store_event("write_races")
            return path
        try:
            fd, tmp_path = tempfile.mkstemp(
                dir=self.directory, prefix=".tmp-", suffix=ENTRY_SUFFIX
            )
            try:
                os.close(fd)
                save_study(study, tmp_path)
                written = os.path.getsize(tmp_path)
                os.replace(tmp_path, path)
            except BaseException:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
                raise
        finally:
            os.close(lock_fd)
            try:
                os.unlink(self._lock_path(fingerprint))
            except OSError:
                pass
        REGISTRY.counter(
            "repro_study_cache_write_bytes_total",
            "bytes written to the on-disk study store",
        ).inc(written)
        return path

    # -- maintenance ------------------------------------------------------------

    def delete(self, fingerprint: str) -> bool:
        """Drop one entry; returns True when it existed."""
        try:
            os.unlink(self.path(fingerprint))
            return True
        except OSError:
            return False

    def clear(self) -> List[str]:
        """Delete every entry; returns the removed paths."""
        removed = []
        for fingerprint in self.fingerprints():
            path = self.path(fingerprint)
            if self.delete(fingerprint):
                removed.append(path)
        return removed


def _store_event(kind: str) -> None:
    REGISTRY.counter(
        f"repro_study_cache_{kind}_total",
        f"study-store {kind.replace('_', ' ')}",
    ).inc()
