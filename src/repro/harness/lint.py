"""Harness lint: enforce the declarative-spec contract.

Experiment modules must declare their campaign needs as ``StudyRequest``
entries on their ``SPEC`` and receive the resolved studies from the
harness -- calling :func:`repro.harness.cache.get_study` directly would
hide a need from the preload planner (``runner --parallel`` /
``--orchestrate``) and from the drift-guard test. This checker walks
the AST of every module under ``repro/harness/experiments/`` and flags:

* ``from repro.harness.cache import get_study`` (any alias), and
* any call whose callee is named ``get_study`` (bare or attribute).

Run it via ``make lint`` or ``python -m repro.harness.lint``; exits
non-zero when a violation is found.
"""

from __future__ import annotations

import ast
import os
import sys
from typing import List, Optional, Tuple

#: (path, line, message) triple.
Violation = Tuple[str, int, str]


def _experiments_dir() -> str:
    from repro.harness import experiments

    return os.path.dirname(os.path.abspath(experiments.__file__))


def _callee_name(func: ast.expr) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def check_source(path: str, source: str) -> List[Violation]:
    """Lint one experiment module's source text."""
    violations: List[Violation] = []
    tree = ast.parse(source, filename=path)
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            if node.module == "repro.harness.cache" and any(
                alias.name == "get_study" for alias in node.names
            ):
                violations.append((
                    path, node.lineno,
                    "imports get_study from repro.harness.cache; declare "
                    "a StudyRequest on the module's SPEC instead",
                ))
        elif isinstance(node, ast.Call):
            if _callee_name(node.func) == "get_study":
                violations.append((
                    path, node.lineno,
                    "calls get_study directly; declare a StudyRequest on "
                    "the module's SPEC and use the studies argument",
                ))
    return violations


def check_experiments(directory: Optional[str] = None) -> List[Violation]:
    """Lint every experiment module; returns the violations found."""
    directory = directory or _experiments_dir()
    violations: List[Violation] = []
    for filename in sorted(os.listdir(directory)):
        if not filename.endswith(".py"):
            continue
        path = os.path.join(directory, filename)
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        violations.extend(check_source(path, source))
    return violations


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    directory = argv[0] if argv else None
    violations = check_experiments(directory)
    for path, line, message in violations:
        print(f"{path}:{line}: {message}", file=sys.stderr)
    if violations:
        print(
            f"harness lint: {len(violations)} violation(s)",
            file=sys.stderr,
        )
        return 1
    print("harness lint: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
