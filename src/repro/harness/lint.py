"""Harness lint: AST checks enforcing two repo contracts.

**Declarative-spec contract.** Experiment modules must declare their
campaign needs as ``StudyRequest`` entries on their ``SPEC`` and
receive the resolved studies from the harness -- calling
:func:`repro.harness.cache.get_study` directly would hide a need from
the preload planner (``runner --parallel`` / ``--orchestrate``) and
from the drift-guard test. The checker walks the AST of every module
under ``repro/harness/experiments/`` and flags:

* ``from repro.harness.cache import get_study`` (any alias), and
* any call whose callee is named ``get_study`` (bare or attribute).

**Sanctioned-clock contract.** Code under ``repro/core`` and
``repro/service`` must take timestamps through :mod:`repro.obs.clock`
(``wall()`` / ``monotonic()``), never ``time.time()`` /
``time.monotonic()`` / ``time.perf_counter()`` directly: mixing wall
and monotonic sources is how duration bugs (NTP steps, DST) creep into
telemetry and profiles. ``time.sleep`` is fine -- it is not a
timestamp. The checker flags both direct calls and ``from time
import time/monotonic/perf_counter``.

**Program-DSL contract.** Hammer schedules belong to the DRAM-program
DSL (:mod:`repro.progdsl`) or the :class:`~repro.softmc.program.
Program` builder macros -- never hand-rolled ACT loops. Outside
``repro/progdsl`` and ``repro/softmc`` the checker flags:

* any ``.act(...)`` call (raw ACT streams are the builders' job), and
* any ``for``/``while`` loop whose body both hammers
  (``.hammer``/``.hammer_doublesided``) and refreshes (``.ref``) --
  the ad-hoc burst-schedule shape; use a registered DSL program or
  ``Program.hammer_rounds`` instead (see docs/PROGRAMS.md).

Run via ``make lint`` or ``python -m repro.harness.lint``; exits
non-zero when a violation is found.
"""

from __future__ import annotations

import ast
import os
import sys
from typing import List, Optional, Tuple

#: (path, line, message) triple.
Violation = Tuple[str, int, str]

#: ``time`` module attributes that read a clock (``sleep`` is allowed).
_CLOCK_ATTRS = ("time", "monotonic", "perf_counter", "perf_counter_ns",
                "monotonic_ns", "time_ns")


def _experiments_dir() -> str:
    from repro.harness import experiments

    return os.path.dirname(os.path.abspath(experiments.__file__))


def _package_dir(dotted: str) -> str:
    import importlib

    module = importlib.import_module(dotted)
    return os.path.dirname(os.path.abspath(module.__file__))


def _callee_name(func: ast.expr) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def check_source(path: str, source: str) -> List[Violation]:
    """Lint one experiment module's source text."""
    violations: List[Violation] = []
    tree = ast.parse(source, filename=path)
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            if node.module == "repro.harness.cache" and any(
                alias.name == "get_study" for alias in node.names
            ):
                violations.append((
                    path, node.lineno,
                    "imports get_study from repro.harness.cache; declare "
                    "a StudyRequest on the module's SPEC instead",
                ))
        elif isinstance(node, ast.Call):
            if _callee_name(node.func) == "get_study":
                violations.append((
                    path, node.lineno,
                    "calls get_study directly; declare a StudyRequest on "
                    "the module's SPEC and use the studies argument",
                ))
    return violations


def check_timing_source(path: str, source: str) -> List[Violation]:
    """Flag direct ``time``-module clock reads (sanctioned-clock
    contract; see the module docstring)."""
    violations: List[Violation] = []
    tree = ast.parse(source, filename=path)
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            if node.module == "time":
                names = [
                    alias.name for alias in node.names
                    if alias.name in _CLOCK_ATTRS
                ]
                if names:
                    violations.append((
                        path, node.lineno,
                        f"imports {', '.join(names)} from time; use "
                        "repro.obs.clock.wall()/monotonic() instead",
                    ))
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _CLOCK_ATTRS
                and isinstance(func.value, ast.Name)
                and func.value.id == "time"
            ):
                violations.append((
                    path, node.lineno,
                    f"calls time.{func.attr}() directly; use "
                    "repro.obs.clock.wall()/monotonic() instead",
                ))
    return violations


#: Attribute-call names that mean "this loop hammers".
_HAMMER_ATTRS = ("hammer", "hammer_doublesided")


def check_program_source(path: str, source: str) -> List[Violation]:
    """Flag hand-rolled hammer schedules (program-DSL contract; see
    the module docstring)."""
    violations: List[Violation] = []
    tree = ast.parse(source, filename=path)
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "act":
                violations.append((
                    path, node.lineno,
                    "builds a raw ACT stream with .act(); use the "
                    "Program builder macros or a registered DSL program "
                    "(repro.progdsl)",
                ))
        elif isinstance(node, (ast.For, ast.While)):
            hammers = refreshes = None
            for child in ast.walk(node):
                if not isinstance(child, ast.Call):
                    continue
                func = child.func
                if not isinstance(func, ast.Attribute):
                    continue
                if func.attr in _HAMMER_ATTRS:
                    hammers = child.lineno
                elif func.attr == "ref":
                    refreshes = child.lineno
            if hammers is not None and refreshes is not None:
                violations.append((
                    path, node.lineno,
                    "hand-rolls a refresh-interleaved hammer schedule; "
                    "use a registered DSL program (repro.progdsl) or "
                    "Program.hammer_rounds",
                ))
    return violations


def _walk_python_files(directory: str):
    for root, _dirs, files in os.walk(directory):
        for filename in sorted(files):
            if filename.endswith(".py"):
                yield os.path.join(root, filename)


def check_experiments(directory: Optional[str] = None) -> List[Violation]:
    """Lint every experiment module; returns the violations found."""
    directory = directory or _experiments_dir()
    violations: List[Violation] = []
    for filename in sorted(os.listdir(directory)):
        if not filename.endswith(".py"):
            continue
        path = os.path.join(directory, filename)
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        violations.extend(check_source(path, source))
    return violations


def check_programs(directories: Optional[List[str]] = None) -> List[Violation]:
    """Lint the whole ``repro`` package -- minus the sanctioned
    ``progdsl`` and ``softmc`` zones -- for hand-rolled hammer
    schedules."""
    if directories is None:
        base = _package_dir("repro")
        sanctioned = {
            os.path.join(base, "progdsl"), os.path.join(base, "softmc"),
        }
        directories = [
            os.path.join(base, entry)
            for entry in sorted(os.listdir(base))
            if os.path.isdir(os.path.join(base, entry))
            and os.path.join(base, entry) not in sanctioned
        ]
    violations: List[Violation] = []
    for directory in directories:
        for path in _walk_python_files(directory):
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            violations.extend(check_program_source(path, source))
    return violations


def check_clocks(directories: Optional[List[str]] = None) -> List[Violation]:
    """Lint ``repro.core`` and ``repro.service`` (or explicit
    directories) for unsanctioned clock reads."""
    if directories is None:
        directories = [
            _package_dir("repro.core"), _package_dir("repro.service"),
        ]
    violations: List[Violation] = []
    for directory in directories:
        for path in _walk_python_files(directory):
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            violations.extend(check_timing_source(path, source))
    return violations


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    directory = argv[0] if argv else None
    violations = check_experiments(directory)
    violations.extend(check_clocks() if directory is None else [])
    violations.extend(check_programs() if directory is None else [])
    for path, line, message in violations:
        print(f"{path}:{line}: {message}", file=sys.stderr)
    if violations:
        print(
            f"harness lint: {len(violations)} violation(s)",
            file=sys.stderr,
        )
        return 1
    print("harness lint: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
