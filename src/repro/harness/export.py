"""Serialization of experiment outputs (CSV per table, JSON summary)."""

from __future__ import annotations

import csv
import json
import os
import re
from typing import Any, Dict, Optional

import numpy as np

from repro.harness.output import ExperimentOutput
from repro.obs.provenance import validate_provenance


def _slug(text: str) -> str:
    return re.sub(r"[^a-z0-9]+", "_", text.lower()).strip("_") or "table"


def _jsonable(value: Any) -> Any:
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def export_output(
    output: ExperimentOutput, directory: str,
    provenance: Optional[Dict[str, Any]] = None,
) -> list:
    """Write an experiment's tables as CSV and its data as JSON.

    ``provenance`` (a :mod:`repro.obs.provenance` block) is validated
    and embedded in the JSON summary when given -- the runner passes
    one for every ``--out`` export. Returns the list of file paths
    written.
    """
    os.makedirs(directory, exist_ok=True)
    written = []
    for table in output.tables:
        path = os.path.join(
            directory, f"{output.experiment_id}_{_slug(table.title)}.csv"
        )
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(table.headers)
            writer.writerows(table.rows)
        written.append(path)
    summary = {
        "experiment_id": output.experiment_id,
        "title": output.title,
        "description": output.description,
        "notes": output.notes,
        "data": _jsonable(output.data),
    }
    if provenance is not None:
        summary["provenance"] = validate_provenance(provenance)
    summary_path = os.path.join(directory, f"{output.experiment_id}.json")
    with open(summary_path, "w") as handle:
        json.dump(summary, handle, indent=2)
    written.append(summary_path)
    return written
