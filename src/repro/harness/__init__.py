"""Experiment harness: one runnable target per paper artifact.

Every table and figure of the paper's evaluation maps to an experiment
module under :mod:`repro.harness.experiments` that exports a
declarative ``SPEC`` (:class:`repro.harness.spec.ExperimentSpec`):
id (``"table3"``, ``"fig8"``, ...), title, declared study needs, and
the analysis callable. :mod:`repro.harness.registry` discovers the
specs automatically; :mod:`repro.harness.plan` derives campaign preload
plans from the declared needs; :mod:`repro.harness.runner` executes
experiments and :mod:`repro.harness.export` serializes the resulting
:class:`~repro.harness.output.ExperimentOutput`.
"""

from repro.harness.output import ExperimentOutput, ExperimentTable
from repro.harness.registry import (
    EXPERIMENT_IDS,
    all_specs,
    get_experiment,
    get_spec,
    run_experiment,
)
from repro.harness.spec import ExperimentSpec, StudyRequest

__all__ = [
    "EXPERIMENT_IDS",
    "ExperimentOutput",
    "ExperimentSpec",
    "ExperimentTable",
    "StudyRequest",
    "all_specs",
    "get_experiment",
    "get_spec",
    "run_experiment",
]
