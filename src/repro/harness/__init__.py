"""Experiment harness: one runnable target per paper artifact.

Every table and figure of the paper's evaluation maps to an experiment
module under :mod:`repro.harness.experiments`, registered by id
(``"table3"``, ``"fig8"``, ...) in :mod:`repro.harness.registry`. Each
experiment returns an :class:`~repro.harness.output.ExperimentOutput`
holding the regenerated rows/series, printable tables, and
paper-vs-measured notes; :mod:`repro.harness.runner` executes them and
:mod:`repro.harness.export` serializes results.
"""

from repro.harness.output import ExperimentOutput, ExperimentTable
from repro.harness.registry import EXPERIMENT_IDS, get_experiment, run_experiment

__all__ = [
    "EXPERIMENT_IDS",
    "ExperimentOutput",
    "ExperimentTable",
    "get_experiment",
    "run_experiment",
]
