"""Experiment registry: paper-artifact id -> declarative spec.

Every module under :mod:`repro.harness.experiments` exports a ``SPEC``
(:class:`repro.harness.spec.ExperimentSpec`) declaring its id, title,
study needs, and analysis; the registry discovers them automatically,
so adding an experiment is a one-file change (docs/ADDING_EXPERIMENTS.md
walks through it). Ids follow the paper's numbering (``table1``-
``table3``, ``fig3``-``fig11``) plus ``significance`` (Section 4.6) and
the extension experiments documented in DESIGN.md.
"""

from __future__ import annotations

import importlib
import pkgutil
from typing import Callable, Dict, Iterable, List, Tuple

from repro.errors import ConfigurationError
from repro.harness.output import ExperimentOutput
from repro.harness.spec import ExperimentSpec

_SPECS: Dict[str, ExperimentSpec] = {}


def _discover() -> Dict[str, ExperimentSpec]:
    """Import every experiment module and collect its ``SPEC``, ordered
    by ``(spec.order, spec.id)`` -- the report order."""
    from repro.harness import experiments

    specs: List[ExperimentSpec] = []
    for info in pkgutil.iter_modules(experiments.__path__):
        if info.name.startswith("_"):
            continue
        module = importlib.import_module(
            f"{experiments.__name__}.{info.name}"
        )
        spec = getattr(module, "SPEC", None)
        if not isinstance(spec, ExperimentSpec):
            raise ConfigurationError(
                f"experiment module {module.__name__} does not export a "
                "SPEC (repro.harness.spec.ExperimentSpec)"
            )
        specs.append(spec)
    ordered: Dict[str, ExperimentSpec] = {}
    for spec in sorted(specs, key=lambda s: (s.order, s.id)):
        if spec.id in ordered:
            raise ConfigurationError(
                f"duplicate experiment id {spec.id!r} in "
                "repro.harness.experiments"
            )
        ordered[spec.id] = spec
    return ordered


def all_specs() -> Dict[str, ExperimentSpec]:
    """Id -> spec for every discovered experiment, in report order."""
    if not _SPECS:
        _SPECS.update(_discover())
    return _SPECS


def get_spec(experiment_id: str) -> ExperimentSpec:
    """Resolve an experiment id to its spec."""
    specs = all_specs()
    try:
        return specs[experiment_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; available: "
            f"{sorted(specs)}"
        ) from None


#: Public list of experiment ids, in report order.
EXPERIMENT_IDS: List[str] = list(all_specs())


def campaign_tests(experiment_ids: Iterable[str]) -> List[Tuple[str, ...]]:
    """The deduplicated campaign test tuples a set of experiments
    declares (via their specs' ``StudyRequest``s), in first-use order.

    This is the coarse, tests-only view; :func:`repro.harness.plan.
    build_plan` additionally resolves modules/scale/seed per request.
    """
    needed: List[Tuple[str, ...]] = []
    for experiment_id in experiment_ids:
        for request in get_spec(experiment_id).studies:
            tests = tuple(request.tests)
            if tests not in needed:
                needed.append(tests)
    return needed


def unknown_experiments(experiment_ids: Iterable[str]) -> List[str]:
    """The ids in ``experiment_ids`` not present in the registry
    (order-preserving, deduplicated). The runner uses this to fail fast
    with a readable message instead of a traceback."""
    known = all_specs()
    unknown: List[str] = []
    for experiment_id in experiment_ids:
        if experiment_id not in known and experiment_id not in unknown:
            unknown.append(experiment_id)
    return unknown


def get_experiment(experiment_id: str) -> Callable[..., ExperimentOutput]:
    """Resolve an experiment id to its ``run`` callable."""
    return get_spec(experiment_id).run


def run_experiment(experiment_id: str, **kwargs) -> ExperimentOutput:
    """Run one experiment by id."""
    return get_experiment(experiment_id)(**kwargs)
