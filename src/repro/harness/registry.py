"""Experiment registry: paper-artifact id -> runnable experiment.

Ids follow the paper's numbering (``table1``-``table3``, ``fig3``-
``fig11``) plus ``significance`` (Section 4.6) and the extension
experiments documented in DESIGN.md.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Tuple

from repro.errors import ConfigurationError
from repro.harness.output import ExperimentOutput


def _load() -> Dict[str, Callable[..., ExperimentOutput]]:
    from repro.harness.experiments import (
        ablation,
        attack_comparison,
        blast_radius,
        defense_synergy,
        fig3,
        fig4,
        fig5,
        fig6,
        fig7,
        fig8,
        fig9,
        fig10,
        fig11,
        finer_refresh,
        pareto,
        power,
        significance,
        system_mitigations,
        table1,
        table2,
        table3,
        temperature_sweep,
        trcd_stability,
        trr_demo,
        vppmin_survey,
        wcdp_distribution,
        wcdp_sensitivity,
    )

    return {
        "table1": table1.run,
        "table2": table2.run,
        "table3": table3.run,
        "fig3": fig3.run,
        "fig4": fig4.run,
        "fig5": fig5.run,
        "fig6": fig6.run,
        "fig7": fig7.run,
        "fig8": fig8.run,
        "fig9": fig9.run,
        "fig10": fig10.run,
        "fig11": fig11.run,
        "significance": significance.run,
        # Extensions beyond the paper's artifacts (DESIGN.md section 6).
        "ablation": ablation.run,
        "wcdp_sensitivity": wcdp_sensitivity.run,
        "trr_demo": trr_demo.run,
        "pareto": pareto.run,
        "attack_comparison": attack_comparison.run,
        "temperature_sweep": temperature_sweep.run,
        "finer_refresh": finer_refresh.run,
        "trcd_stability": trcd_stability.run,
        "power": power.run,
        "system_mitigations": system_mitigations.run,
        "defense_synergy": defense_synergy.run,
        "vppmin_survey": vppmin_survey.run,
        "blast_radius": blast_radius.run,
        "wcdp_distribution": wcdp_distribution.run,
    }


#: Public list of experiment ids.
EXPERIMENT_IDS: List[str] = [
    "table1", "table2", "table3",
    "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
    "significance",
    "ablation", "wcdp_sensitivity", "trr_demo", "pareto",
    "attack_comparison", "temperature_sweep", "finer_refresh",
    "trcd_stability", "power", "system_mitigations", "defense_synergy",
    "vppmin_survey", "blast_radius", "wcdp_distribution",
]


#: Which shared campaigns (``get_study`` test tuples) each experiment
#: consumes. Experiments absent from this map build their own bespoke
#: studies and gain nothing from pre-running the shared campaigns.
CAMPAIGN_TESTS: Dict[str, Tuple[Tuple[str, ...], ...]] = {
    "table3": (("rowhammer",),),
    "fig3": (("rowhammer",),),
    "fig4": (("rowhammer",),),
    "fig5": (("rowhammer",),),
    "fig6": (("rowhammer",),),
    "fig7": (("trcd",),),
    "fig10": (("retention",),),
    "fig11": (("retention",),),
    "significance": (("rowhammer",),),
    "defense_synergy": (("rowhammer",),),
    "pareto": (("rowhammer", "trcd"),),
}


def campaign_tests(experiment_ids: Iterable[str]) -> List[Tuple[str, ...]]:
    """The deduplicated campaign test tuples a set of experiments needs,
    in first-use order (what ``--parallel`` should pre-run)."""
    needed: List[Tuple[str, ...]] = []
    for experiment_id in experiment_ids:
        for tests in CAMPAIGN_TESTS.get(experiment_id, ()):
            if tests not in needed:
                needed.append(tests)
    return needed


def unknown_experiments(experiment_ids: Iterable[str]) -> List[str]:
    """The ids in ``experiment_ids`` not present in the registry
    (order-preserving, deduplicated). The runner uses this to fail fast
    with a readable message instead of a traceback."""
    known = set(EXPERIMENT_IDS)
    unknown: List[str] = []
    for experiment_id in experiment_ids:
        if experiment_id not in known and experiment_id not in unknown:
            unknown.append(experiment_id)
    return unknown


def get_experiment(experiment_id: str) -> Callable[..., ExperimentOutput]:
    """Resolve an experiment id to its ``run`` callable."""
    registry = _load()
    try:
        return registry[experiment_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; available: "
            f"{sorted(registry)}"
        ) from None


def run_experiment(experiment_id: str, **kwargs) -> ExperimentOutput:
    """Run one experiment by id."""
    return get_experiment(experiment_id)(**kwargs)
