"""Campaign preload plans derived from experiment specs.

:func:`build_plan` turns a set of experiment ids plus run arguments
into the deduplicated list of :class:`~repro.harness.spec.
ResolvedStudy` fetches those experiments will perform. One plan object
drives both pre-run paths -- the process-parallel pre-run (``runner
--parallel``) and the checkpointed orchestration service (``runner
--orchestrate``) -- so the pre-run can never drift from what the
experiments actually fetch (the failure mode the old hand-maintained
``CAMPAIGN_TESTS`` dict allowed: it routed pareto's preload over the
benchmark subset while the experiment fetched its own module pair).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.scale import StudyScale
from repro.harness import cache
from repro.harness.spec import ResolvedStudy


@dataclass(frozen=True)
class PreloadPlan:
    """The deduplicated studies a set of experiments will fetch."""

    requests: Tuple[ResolvedStudy, ...]

    def __bool__(self) -> bool:
        return bool(self.requests)

    def describe(self) -> str:
        """Human-readable ``tests@modules`` summary of the plan."""
        return ", ".join(
            f"{request.label}@{'+'.join(request.modules)}"
            for request in self.requests
        )

    def preload_parallel(self, max_workers: int) -> None:
        """Pre-run every planned study with worker processes
        ((module, row-chunk) granularity), priming the in-process and
        on-disk caches for the experiments that follow. Workers attach
        each module's per-cell parameter planes from a shared-memory
        device-state block (:mod:`repro.core.soa`) instead of
        re-deriving them per process."""
        for request in self.requests:
            cache.preload_parallel(
                [request.tests], modules=request.modules,
                scale=request.scale, seed=request.seed,
                max_workers=max_workers, program=request.program,
            )

    def orchestrate(
        self,
        max_workers: int,
        checkpoint_base: str,
        telemetry=None,
        resume: bool = False,
        progress=print,
    ) -> List[str]:
        """Run every planned study through the orchestration service
        (checkpointed, resumable, fault-tolerant) and install the merged
        studies in the cache; pool workers preload shared-memory device
        state (:mod:`repro.core.soa`). Returns the quarantined module
        names."""
        from repro.service.orchestrator import CampaignService

        quarantined: List[str] = []
        for request in self.requests:
            progress(
                f"orchestrating the {request.label} campaign over "
                f"{len(request.modules)} modules with {max_workers} "
                "workers..."
            )
            service = CampaignService(
                modules=request.modules, tests=request.tests,
                scale=request.scale, seed=request.seed,
                max_workers=max_workers, checkpoint_base=checkpoint_base,
                telemetry=telemetry, progress=progress,
                program=request.program,
            )
            outcome = service.run(resume=resume)
            quarantined.extend(sorted(outcome.metrics.quarantined))
            cache.preload_study(
                outcome.study, request.tests, request.modules,
                seed=request.seed,
                wall_seconds=outcome.metrics.wall_seconds,
                program=request.program,
            )
        return quarantined


def build_plan(
    experiment_ids: Iterable[str],
    modules: Optional[Sequence[str]] = None,
    scale: Optional[StudyScale] = None,
    seed: int = 0,
    program: Optional[str] = None,
) -> PreloadPlan:
    """Resolve the declared study needs of ``experiment_ids`` under the
    given run arguments, deduplicated on the cache key in first-use
    order."""
    from repro.harness.registry import get_spec

    seen = set()
    requests: List[ResolvedStudy] = []
    for experiment_id in experiment_ids:
        spec = get_spec(experiment_id)
        for resolved in spec.resolved_studies(modules, scale, seed, program):
            key = resolved.cache_key()
            if key not in seen:
                seen.add(key)
                requests.append(resolved)
    return PreloadPlan(requests=tuple(requests))
