"""Figure 9: SPICE charge-restoration study.

(a) cell-capacitor waveforms following an activation at several V_PP
levels, showing the saturation behaviour of Observation 10 (4.1 / 11.0 /
18.1 % below V_DD at 1.9 / 1.8 / 1.7 V);
(b) Monte-Carlo distribution of tRAS_min per V_PP (Observation 11:
shifts above nominal below ~2.0 V and widens).
"""

from __future__ import annotations

import numpy as np

from repro import paper
from repro.harness.figures import line_plot
from repro.harness.output import ExperimentTable
from repro.harness.spec import ExperimentSpec
from repro.spice.experiments import (
    activation_waveforms,
    restoration_saturation,
    tras_distribution,
)
from repro.units import ns, seconds_to_ns

WAVEFORM_LEVELS = (2.5, 2.0, 1.9, 1.8, 1.7)
DISTRIBUTION_LEVELS = (2.5, 2.2, 2.0, 1.8)


def _analyze(output, studies, *, modules, scale, seed, samples):
    """Regenerate the Figure 9 waveforms and distributions."""
    paper_deficit = paper.value("fig9.saturation_deficit")

    waveforms = activation_waveforms(WAVEFORM_LEVELS, t_stop=ns(80.0))
    wave_table = output.add_table(
        ExperimentTable(
            "Cell waveform samples (Fig. 9a)",
            ["V_PP", "t [ns]", "cell [V]"],
        )
    )
    for vpp, wave in waveforms.items():
        stride = max(1, wave.times.size // 24)
        for t, v in zip(wave.times[::stride], wave.cell[::stride]):
            wave_table.add_row(vpp, seconds_to_ns(t), float(v))

    saturation = restoration_saturation(WAVEFORM_LEVELS)
    sat_table = output.add_table(
        ExperimentTable(
            "Saturation voltage (Observation 10)",
            ["V_PP", "V_sat [V]", "deficit", "paper deficit"],
        )
    )
    for vpp, info in saturation.items():
        sat_table.add_row(
            vpp,
            info["saturation_voltage"],
            info["deficit_fraction"],
            paper_deficit.get(vpp),
        )

    dist_table = output.add_table(
        ExperimentTable(
            "tRAS_min distribution (Fig. 9b)",
            ["V_PP", "mean [ns]", "std [ns]", "worst [ns]", "incomplete"],
        )
    )
    distributions = {}
    for vpp in DISTRIBUTION_LEVELS:
        values = tras_distribution(vpp, samples=samples, seed=seed)
        valid = values[~np.isnan(values)]
        distributions[vpp] = values
        dist_table.add_row(
            vpp,
            seconds_to_ns(float(valid.mean())) if valid.size else float("nan"),
            seconds_to_ns(float(valid.std())) if valid.size else float("nan"),
            seconds_to_ns(float(valid.max())) if valid.size else float("nan"),
            int(np.isnan(values).sum()),
        )

    chart_levels = [v for v in (2.5, 1.9, 1.7) if v in waveforms]
    if chart_levels:
        reference = waveforms[chart_levels[0]]
        stride = max(1, reference.times.size // 64)
        output.add_chart(
            line_plot(
                reference.times[::stride] * 1e9,
                {
                    f"{vpp}V": waveforms[vpp].cell[::stride]
                    for vpp in chart_levels
                },
                title="cell capacitor voltage after activation (Fig. 9a)",
                x_label="t [ns]", y_label="V",
            )
        )
    output.data["waveforms"] = {
        str(vpp): {
            "t_ns": (wave.times * 1e9).tolist(),
            "cell": wave.cell.tolist(),
        }
        for vpp, wave in waveforms.items()
    }
    output.data["saturation"] = {
        str(vpp): info for vpp, info in saturation.items()
    }
    output.data["tras_ns"] = {
        str(vpp): (values * 1e9).tolist()
        for vpp, values in distributions.items()
    }
    output.note(
        "paper (Obsv. 10): cell saturates "
        f"{paper_deficit[1.9] * 100:.1f}/{paper_deficit[1.8] * 100:.1f}/"
        f"{paper_deficit[1.7] * 100:.1f}% below V_DD at "
        "1.9/1.8/1.7 V; (Obsv. 11) tRAS_min exceeds nominal below ~2.0 V "
        "and its distribution widens; (footnote 13) restoration never "
        "completes at V_PP <= 1.6 V in SPICE while real chips still work"
    )


SPEC = ExperimentSpec(
    id="fig9",
    title=(
        "SPICE: cell restoration waveforms and tRAS_min distribution "
        "(Figure 9)"
    ),
    description=(
        "Cell-capacitor voltage after activation per V_PP, the "
        "saturation deficit of Observation 10, and the Monte-Carlo "
        "tRAS_min distribution of Observation 11."
    ),
    analyze=_analyze,
    knobs={"samples": 200},
    module_scoped=False,
    order=100,
)

run = SPEC.run
