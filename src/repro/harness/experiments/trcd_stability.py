"""tRCD_min stability over time (footnote 11).

The paper re-measures tRCD_min on 24 chips after a week of RowHammer
testing and finds only 2.1 % of rows varying, each by less than one
1.5 ns step. This experiment reproduces the protocol: measure tRCD_min,
subject the module to a week of simulated time and heavy hammering,
re-measure, and report the per-row deltas.
"""

from __future__ import annotations

from repro.core.context import TestContext
from repro.core.sampling import sample_rows
from repro.core.scale import StudyScale
from repro.core.trcd import find_trcd_min
from repro.core.wcdp import trcd_wcdp
from repro.dram import constants
from repro.harness.output import ExperimentTable
from repro.harness.spec import ExperimentSpec
from repro.softmc.infrastructure import TestInfrastructure
from repro.softmc.program import Program
from repro.units import seconds_to_ns

#: One week, the paper's re-test interval.
ONE_WEEK = 7 * 24 * 3600.0


def _analyze(output, studies, *, modules, scale, seed):
    """Measure, age for a week under hammering, re-measure."""
    scale = scale or StudyScale.bench()
    name = modules[0]
    infra = TestInfrastructure.for_module(
        name, geometry=scale.geometry, seed=seed
    )
    ctx = TestContext(infra, scale)
    infra.set_temperature(constants.ROWHAMMER_TEST_TEMPERATURE)
    rows = sample_rows(
        infra.module.geometry.rows_per_bank,
        min(scale.rows_per_module, 24),
        scale.row_chunks,
    )
    wcdp = {row: trcd_wcdp(ctx, row) for row in rows}

    before = {row: find_trcd_min(ctx, row, wcdp[row]) for row in rows}

    # A week of RowHammer characterization in between (footnote 11: the
    # chips "are tested for RowHammer vulnerability" during the week).
    aging = Program()
    for row in rows:
        aggressors = ctx.adjacency.neighbors(ctx.bank, row)
        aging.hammer_doublesided(ctx.bank, aggressors, 100_000)
    infra.host.execute(aging)
    infra.module.env.advance(ONE_WEEK)

    after = {row: find_trcd_min(ctx, row, wcdp[row]) for row in rows}

    table = output.add_table(
        ExperimentTable(
            "Stability", ["Module", "rows", "rows changed",
                          "max |delta| [ns]"],
        )
    )
    changed = [row for row in rows if after[row] != before[row]]
    max_delta = max(
        (abs(after[row] - before[row]) for row in rows), default=0.0
    )
    table.add_row(
        name, len(rows), len(changed), seconds_to_ns(max_delta)
    )
    output.data["rows"] = len(rows)
    output.data["changed"] = len(changed)
    output.data["max_delta_ns"] = seconds_to_ns(max_delta)
    output.note(
        "paper (footnote 11): only 2.1% of rows vary, each by < 1.5 ns -- "
        "activation latency is a stable per-row property, which the "
        "deterministic per-cell parameters of the device model reproduce"
    )


SPEC = ExperimentSpec(
    id="trcd_stability",
    title="tRCD_min stability after one week (footnote 11)",
    description=(
        "Per-row tRCD_min before and after a week of simulated time "
        "and heavy hammering."
    ),
    analyze=_analyze,
    default_modules=("B3",),
    order=270,
)

run = SPEC.run
